"""Setup shim: enables `pip install -e .` in offline environments lacking
the `wheel` package (pip falls back to legacy `setup.py develop`)."""

from setuptools import setup

setup()
