"""Hiding audit: run the Lemma 3.2 characterization on every scheme.

For each LCP in the catalog, build (a subgraph of) its accepting
neighborhood graph ``V(D, n)`` and report the verdict: schemes from the
paper are hiding (odd closed walk found), the revealing baseline is not —
and for the baseline we compile the extraction decoder ``D'`` and watch
it recover a proper 2-coloring from the certificates.

Run:  python examples/hiding_audit.py
"""

from repro import Instance
from repro.core import (
    DegreeOneLCP,
    EvenCycleLCP,
    RevealingLCP,
    ShatterLCP,
    WatermelonLCP,
)
from repro.engine import ExecutionPlan, decide_hiding
from repro.graphs import cycle_graph, path_graph
from repro.neighborhood import (
    build_extraction_decoder,
    hiding_verdict_from_instances,
    run_extraction,
)


def main() -> None:
    print("=== Lemma 3.2 hiding audit ===\n")

    # Anonymous schemes: the full Lemma 3.1 sweep at small n, routed
    # through the decision engine (one plan reused for every scheme).
    plan = ExecutionPlan()
    for name, lcp, n in [
        ("degree-one (Lemma 4.1)", DegreeOneLCP(), 4),
        ("even-cycle (Lemma 4.2)", EvenCycleLCP(), 6),
        ("revealing baseline", RevealingLCP(), 4),
    ]:
        verdict = decide_hiding(lcp, n, plan)
        print(f"{name:28s} V(D,{n}): {verdict.ngraph.order:3d} views  -> {verdict.summary()}")

    # Non-anonymous schemes: the Section 7 witness constructions.
    from repro.experiments.theorems import (
        shatter_hiding_witnesses,
        watermelon_hiding_witnesses,
    )

    for name, lcp, witnesses in [
        ("shatter (Thm 1.3)", ShatterLCP(), shatter_hiding_witnesses()),
        ("watermelon (Thm 1.4)", WatermelonLCP(), watermelon_hiding_witnesses()),
    ]:
        verdict = hiding_verdict_from_instances(lcp, list(witnesses))
        print(f"{name:28s} witness pair          -> {verdict.summary()}")

    # The converse direction: extraction from the revealing baseline.
    print("\n=== Extraction from the non-hiding baseline ===\n")
    lcp = RevealingLCP()
    verdict = decide_hiding(lcp, 4, plan)
    decoder = build_extraction_decoder(verdict.ngraph, 2)
    assert decoder is not None
    for graph, label in [(path_graph(4), "P4"), (cycle_graph(4), "C4")]:
        instance = Instance.build(graph, id_bound=4)
        labeling = lcp.prover.certify(instance)
        outcome = run_extraction(decoder, lcp, instance.with_labeling(labeling))
        print(f"D' on {label}: extracted {outcome.extracted}  proper={outcome.proper}")


if __name__ == "__main__":
    main()
