"""Quickstart: certify 2-colorability without revealing the coloring.

Runs the degree-one scheme (Lemma 4.1) end to end on a path: the prover
assigns certificates, every node verifies locally, and the hiding
property is demonstrated by showing the accepting neighborhood graph of
small instances contains an odd cycle (Lemma 3.2).

Run:  python examples/quickstart.py
"""

from repro import Instance
from repro.core import DegreeOneLCP
from repro.engine import ExecutionPlan, decide_hiding
from repro.graphs import path_graph


def main() -> None:
    # 1. A yes-instance: the 6-node path (bipartite, has degree-1 nodes).
    graph = path_graph(6)
    lcp = DegreeOneLCP()
    instance = Instance.build(graph)

    # 2. The prover assigns certificates from {0, 1, ⊥, ⊤}: the coloring
    #    is revealed everywhere except at one degree-1 node.
    labeling = lcp.prover.certify(instance)
    print("certificates:")
    for v in graph.nodes:
        print(f"  node {v}: {labeling.of(v)!r}")

    # 3. Every node runs the one-round decoder on its local view.
    result = lcp.check(instance.with_labeling(labeling))
    print(f"\nverdict: unanimous = {result.unanimous}")
    assert result.unanimous

    # 4. Hiding (Lemma 3.2): the accepting neighborhood graph V(D, 4) is
    #    not 2-colorable, so no one-round decoder can extract a coloring.
    #    The plan picks the execution route (backend, workers, caches);
    #    the defaults are fine for a sweep this small.
    verdict = decide_hiding(lcp, 4, ExecutionPlan())
    print(f"\n{verdict.summary()}")
    print(
        f"V(D, 4): {verdict.ngraph.order} accepting views, "
        f"{verdict.ngraph.size} compatibility edges"
    )
    assert verdict.hiding is True


if __name__ == "__main__":
    main()
