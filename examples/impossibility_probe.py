"""Impossibility probe (Theorem 1.2): the strong-vs-hiding dichotomy.

The paper proves no r-round LCP on a class containing an r-forgetful,
min-degree-2, non-cycle graph can be simultaneously strongly sound and
hiding.  This probe makes the prediction concrete: every candidate
decoder in a catalog — including randomly generated ones — is either
revealed (no hiding witness among its accepted views) or refuted (an
adversarial labeling makes the accepting nodes induce an odd cycle).

Run:  python examples/impossibility_probe.py [num_random_decoders]
"""

import random
import sys

from repro.certification import (
    ConstantDecoder,
    EnumerativeLCP,
    ExhaustiveAdversary,
    FunctionDecoder,
    check_strong_soundness,
)
from repro.graphs import complete_graph, cycle_graph, is_bipartite, theta_graph
from repro.neighborhood import build_neighborhood_graph, labeled_yes_instances


def random_decoder(seed: int):
    """A random anonymous one-round decoder over a 2-symbol alphabet.

    Decisions are a deterministic hash of (own label, sorted neighbor
    labels, degree) seeded by *seed* — a draw from the space Theorem 1.2
    quantifies over.
    """
    rng = random.Random(seed)
    table: dict[tuple, bool] = {}

    def decide(view) -> bool:
        key = (
            view.center_label,
            tuple(sorted(map(repr, (view.label_of(w) for w in view.neighbors_in_view(0))))),
            view.center_degree,
        )
        if key not in table:
            table[key] = rng.random() < 0.7
        return table[key]

    return FunctionDecoder(decide, anonymous=True, name=f"random-{seed}")


def main() -> None:
    num_random = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    theta = theta_graph(4, 4, 6)  # r-forgetful, min degree 2, two cycles
    no_instances = [complete_graph(3), cycle_graph(5), theta_graph(2, 2, 3)]

    candidates = [
        EnumerativeLCP(ConstantDecoder(True, anonymous=True), ["c"],
                       promise_fn=is_bipartite, name="accept-all"),
    ]
    for seed in range(num_random):
        candidates.append(
            EnumerativeLCP(random_decoder(seed), ["a", "b"],
                           promise_fn=is_bipartite, name=f"random-{seed}")
        )

    print(f"{'decoder':14s} {'complete':9s} {'hiding?':8s} {'strong?':8s} verdict")
    print("-" * 60)
    dichotomy_holds = True
    for lcp in candidates:
        try:
            labeled = list(labeled_yes_instances(lcp, [theta], port_limit=1,
                                                 id_bound=theta.order))
        except Exception:
            labeled = []
        complete = bool(labeled)
        hiding = None
        if labeled:
            ngraph = build_neighborhood_graph(lcp, labeled[:40])
            hiding = ngraph.find_odd_cycle() is not None
        strong = check_strong_soundness(
            lcp, no_instances, ExhaustiveAdversary(max_labelings=100_000), port_limit=1
        ).passed
        both = complete and strong and hiding is True
        dichotomy_holds = dichotomy_holds and not both
        verdict = "VIOLATES THEOREM" if both else "consistent with Thm 1.2"
        print(f"{lcp.name:14s} {str(complete):9s} {str(hiding):8s} {str(strong):8s} {verdict}")

    print("-" * 60)
    print(f"dichotomy holds on the whole catalog: {dichotomy_holds}")
    assert dichotomy_holds


if __name__ == "__main__":
    main()
