"""The non-anonymous upper bounds (Theorems 1.3 and 1.4) in action.

Certifies a watermelon graph and a shatter-point graph, prints the
structured certificates with their bit sizes, shows an adversarial
labeling being caught, and replays both hiding witnesses from Section 7.

Run:  python examples/watermelon_and_shatter.py
"""

from repro import Instance
from repro.core import ShatterLCP, WatermelonLCP
from repro.graphs import (
    shatter_points,
    spider_graph,
    watermelon_decomposition,
    watermelon_graph,
)
from repro.local.labeling import Labeling
from repro.neighborhood import hiding_verdict_from_instances


def watermelon_demo() -> None:
    print("=== Watermelon LCP (Theorem 1.4) ===")
    graph = watermelon_graph([2, 4, 4])
    decomp = watermelon_decomposition(graph)
    assert decomp is not None
    print(f"watermelon with endpoints {decomp.endpoints}, "
          f"path lengths {decomp.path_lengths()}")

    lcp = WatermelonLCP()
    instance = Instance.build(graph)
    labeling = lcp.prover.certify(instance)
    bits = lcp.labeling_bits(labeling, instance.n, instance.id_bound)
    print(f"certificates (max {bits} bits/node):")
    for v in graph.nodes:
        print(f"  node {v}: {labeling.of(v)!r}")
    assert lcp.check(instance.with_labeling(labeling)).unanimous
    print("verdict: unanimously accepted")

    # An adversary flips one edge color; the decoder catches it locally.
    tampered = labeling.as_dict()
    kind, id1, id2, number, (p1, c1), (p2, c2) = tampered[2]
    tampered[2] = (kind, id1, id2, number, (p1, 1 - c1), (p2, c2))
    result = lcp.check(instance.with_labeling(Labeling(tampered)))
    print(f"tampered edge color -> rejecting nodes: {sorted(result.rejecting)}\n")
    assert not result.unanimous


def shatter_demo() -> None:
    print("=== Shatter LCP (Theorem 1.3) ===")
    graph = spider_graph(3, 2)
    points = shatter_points(graph)
    print(f"spider(3,2): shatter points = {points}")

    lcp = ShatterLCP()
    instance = Instance.build(graph)
    labeling = lcp.prover.certify(instance)
    bits = lcp.labeling_bits(labeling, instance.n, instance.id_bound)
    print(f"certificates (max {bits} bits/node):")
    for v in graph.nodes:
        print(f"  node {v}: {labeling.of(v)!r}")
    assert lcp.check(instance.with_labeling(labeling)).unanimous
    print("verdict: unanimously accepted\n")


def hiding_witnesses_demo() -> None:
    print("=== Section 7 hiding witnesses ===")
    from repro.experiments.theorems import (
        shatter_hiding_witnesses,
        watermelon_hiding_witnesses,
    )

    s1, s2 = shatter_hiding_witnesses()
    verdict = hiding_verdict_from_instances(ShatterLCP(), [s1, s2])
    print(f"shatter P1/P2 pair:    {verdict.summary()}")

    w1, w2 = watermelon_hiding_witnesses()
    verdict = hiding_verdict_from_instances(WatermelonLCP(), [w1, w2])
    print(f"watermelon id1/id2 P8: {verdict.summary()}")


if __name__ == "__main__":
    watermelon_demo()
    shatter_demo()
    hiding_witnesses_demo()
