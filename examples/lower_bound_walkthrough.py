"""Walkthrough of the Theorem 1.5 lower-bound machinery (Section 5).

Follows the proof's storyline on concrete objects:

1. take a hiding decoder and an r-forgetful yes-instance;
2. find an odd closed walk in the accepting neighborhood graph
   (Lemma 3.2's witness);
3. build the escape walk ``W_e`` (Fig. 8) and compose it into the odd
   walk (Lemma 5.4) — still odd, still closed, now non-backtracking;
4. show the other side of the coin: for the paper's *strongly sound*
   watermelon scheme, the odd walk of views cannot be realized as a
   ``G_bad`` (Lemma 5.1's merge fails), which is exactly why strong
   soundness survives there.

Run:  python examples/lower_bound_walkthrough.py
"""

from repro.certification import ConstantDecoder, EnumerativeLCP
from repro.core import WatermelonLCP
from repro.graphs import is_bipartite, theta_graph
from repro.neighborhood import build_neighborhood_graph, labeled_yes_instances
from repro.realizability import (
    candidates_from_witnesses,
    compose_with_escape_walks,
    escape_walk,
    is_non_backtracking,
    realize_views,
    walk_length,
)
from repro.local import Instance


def main() -> None:
    # --- 1. A hiding (but not strongly sound) decoder on B(Δ, r) -------
    accept_all = EnumerativeLCP(
        ConstantDecoder(True, anonymous=True), ["c"],
        promise_fn=is_bipartite, name="accept-all",
    )
    theta = theta_graph(4, 4, 6)   # r-forgetful, min degree 2, two cycles
    print(f"yes-instance: θ(4,4,6), n={theta.order}")

    # --- 2. Odd closed walk in V(D, n) ---------------------------------
    labeled = list(
        labeled_yes_instances(accept_all, [theta], port_limit=1, id_bound=theta.order)
    )
    ngraph = build_neighborhood_graph(accept_all, labeled)
    odd = ngraph.find_odd_cycle()
    assert odd is not None
    print(f"V(D, n): {ngraph.order} views; odd closed walk of {len(odd) - 1} edge(s)")

    # --- 3. The escape walk and the Lemma 5.4 composition --------------
    instance = Instance.build(theta)
    w_e = escape_walk(instance, 0, 2, radius=1)
    print(f"W_e from edge (0,2): length {walk_length(w_e)} "
          f"(even={walk_length(w_e) % 2 == 0}, "
          f"non-backtracking={is_non_backtracking(w_e)})")
    composed = compose_with_escape_walks(accept_all, ngraph, odd)
    print(f"composed walk: {composed.length()} edges "
          f"(odd={composed.length() % 2 == 1}, closed={composed.is_closed()})")

    # --- 4. Strong soundness blocks realization ------------------------
    lcp = WatermelonLCP()
    from repro.experiments.theorems import watermelon_hiding_witnesses

    inst1, inst2 = watermelon_hiding_witnesses()
    wng = build_neighborhood_graph(lcp, [inst1, inst2])
    wodd = wng.find_odd_cycle()
    assert wodd is not None
    walk_views = list(dict.fromkeys(wodd))
    candidates = candidates_from_witnesses(
        walk_views, list(wng.view_witness.values()), lcp.radius
    )
    result = realize_views(lcp, walk_views, candidates, id_bound=8)
    print(f"\nwatermelon scheme: odd walk of {len(wodd) - 1} views found "
          f"(the scheme IS hiding)")
    print(f"Lemma 5.1 merge of that walk: realized={result.realized}")
    if result.failures:
        print(f"  first obstruction: {result.failures[0]}")
    assert not (result.realized and result.all_centers_accepted)
    print("strong soundness holds precisely because the walk cannot be "
          "realized as a G_bad.")


if __name__ == "__main__":
    main()
