"""Adversarial soundness attacks, and why they fail on the paper's LCPs.

A malicious prover tries to get a non-2-colorable graph accepted — or,
against *strong* soundness, to get any set of accepting nodes to induce
an odd cycle.  This example runs the exhaustive adversary against the
degree-one scheme, shows the deliberately weakened decoder (missing the
common-color check at ⊤ nodes) being broken, and shows the repaired
shatter decoder resisting the two hand-built attacks from the
reproduction notes.

Run:  python examples/adversary_attack.py
"""

from repro.certification import ExhaustiveAdversary, check_strong_soundness
from repro.core import DegreeOneLCP, ShatterLCP
from repro.experiments.theorems import (
    _check_common_color_counterexample,
    _check_rogue_type1_counterexample,
)
from repro.graphs import complete_graph, cycle_graph, pan_graph


def main() -> None:
    adversary = ExhaustiveAdversary()
    targets = [complete_graph(3), cycle_graph(5), pan_graph(3, 1)]

    print("=== Exhaustive attack on the degree-one LCP ===")
    report = check_strong_soundness(DegreeOneLCP(), targets, adversary, port_limit=2)
    print(report.summary())
    assert report.passed

    print("\n=== The same attack on the weakened decoder (no common-β) ===")
    weak = DegreeOneLCP(require_common_beta=False)
    report = check_strong_soundness(weak, [pan_graph(5, 1)], adversary, port_limit=1)
    print(report.summary())
    assert not report.passed
    violation = report.violations[0]
    print(f"accepted odd cycle: {list(violation.witness)}")
    print("certificates of the violating labeling:")
    for v in violation.instance.graph.nodes:
        print(f"  node {v}: {violation.labeling.of(v)!r}")

    print("\n=== Hand-built attacks against the shatter decoder ===")
    for flag, attack, name in [
        (ShatterLCP(anchored_type0_id=False), _check_rogue_type1_counterexample,
         "rogue type-1 (anchor check disabled)"),
        (ShatterLCP(common_touch_color=False), _check_common_color_counterexample,
         "two-sided touch (common-color check disabled)"),
    ]:
        broken = attack(flag)
        print(f"{name}: attack succeeds = {broken}")
        assert broken
    repaired = ShatterLCP()
    print("repaired decoder resists both attacks:",
          not _check_rogue_type1_counterexample(repaired)
          and not _check_common_color_counterexample(repaired))


if __name__ == "__main__":
    main()
