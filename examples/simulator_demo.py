"""Message-passing simulation of distributed verification.

Runs the even-cycle LCP through the synchronous flooding engine instead
of direct view extraction: nodes exchange knowledge for r rounds,
reconstruct their views, and verify — with message accounting, a
demonstration that the reconstruction matches the model exactly,
certificate-erasure fault injection, and the same protocol over an
*asynchronous* network through an α-synchronizer.

Run:  python examples/simulator_demo.py
"""

from repro import Instance
from repro.core import EvenCycleLCP
from repro.graphs import cycle_graph
from repro.local import (
    extract_all_views,
    run_algorithm_distributed,
    simulate_views,
    simulate_views_async,
)


def main() -> None:
    graph = cycle_graph(10)
    lcp = EvenCycleLCP()
    instance = Instance.build(graph)
    labeled = instance.with_labeling(lcp.prover.certify(instance))

    # 1. Run the decoder through the flooding engine.
    votes, stats = run_algorithm_distributed(lcp.decoder, labeled)
    print(f"C10 verification: all accept = {all(votes.values())}")
    print(f"messages sent: {stats.total_messages} "
          f"(= 2m per round = {2 * graph.size} for r=1)")
    assert all(votes.values())

    # 2. Simulated views are exactly the model's views, at any radius.
    for radius in (1, 2, 3):
        simulated, s = simulate_views(labeled, radius, include_ids=False)
        direct = extract_all_views(labeled, radius, include_ids=False)
        match = simulated == direct
        print(f"radius {radius}: simulated == direct: {match}; "
              f"record units moved: {s.total_record_units}")
        assert match

    # 3. Fault injection: erase two certificates; the neighbors notice.
    views, _ = simulate_views(labeled, 1, include_ids=False, erased_nodes={0, 5})
    votes = {v: lcp.decoder.decide(view) for v, view in views.items()}
    rejecting = sorted(v for v, vote in votes.items() if not vote)
    print(f"after erasing certificates at nodes 0 and 5, rejecting: {rejecting}")
    assert rejecting

    # 4. Asynchrony: adversarial message delays + an α-synchronizer give
    #    back the exact same views — LOCAL semantics survive asynchrony.
    for seed in (1, 2, 3):
        async_views, stats = simulate_views_async(labeled, 2, seed=seed)
        assert async_views == extract_all_views(labeled, 2)
        print(f"async schedule {seed}: views identical; "
              f"{stats.events_processed} deliveries, "
              f"max round skew {stats.max_round_skew}")


if __name__ == "__main__":
    main()
