"""Tests for port assignments, identifier assignments, and labelings."""

import pytest

from repro.errors import (
    IdentifierAssignmentError,
    LabelingError,
    PortAssignmentError,
)
from repro.graphs import Graph, cycle_graph, path_graph, star_graph
from repro.local import (
    IdentifierAssignment,
    Labeling,
    PortAssignment,
    all_identifier_assignments,
    all_labelings,
    all_order_types,
    all_port_assignments,
    count_labelings,
    count_port_assignments,
    same_order_type,
)


class TestPortAssignment:
    def test_canonical_valid(self):
        g = star_graph(3)
        ports = PortAssignment.canonical(g)
        ports.validate(g)
        assert ports.port(0, 1) in (1, 2, 3)
        assert sorted(ports.ports_of(0).values()) == [1, 2, 3]

    def test_neighbor_at_roundtrip(self):
        g = cycle_graph(5)
        ports = PortAssignment.canonical(g)
        for v in g.nodes:
            for u in g.neighbors(v):
                assert ports.neighbor_at(v, ports.port(v, u)) == u

    def test_edge_ports(self):
        g = path_graph(3)
        ports = PortAssignment.canonical(g)
        p_u, p_v = ports.edge_ports(0, 1)
        assert p_u == ports.port(0, 1) and p_v == ports.port(1, 0)

    def test_duplicate_port_rejected(self):
        with pytest.raises(PortAssignmentError):
            PortAssignment({0: {1: 1, 2: 1}, 1: {0: 1}, 2: {0: 1}})

    def test_validate_out_of_range(self):
        g = path_graph(2)
        ports = PortAssignment({0: {1: 2}, 1: {0: 1}})
        with pytest.raises(PortAssignmentError):
            ports.validate(g)

    def test_validate_coverage(self):
        g = path_graph(3)
        ports = PortAssignment({0: {1: 1}, 1: {0: 1}, 2: {}})
        with pytest.raises(PortAssignmentError):
            ports.validate(g)

    def test_loops_rejected(self):
        g = Graph.from_edges([(0, 0)])
        with pytest.raises(PortAssignmentError):
            PortAssignment.canonical(g).validate(g)

    def test_random_deterministic(self):
        g = cycle_graph(6)
        assert PortAssignment.random(g, 3) == PortAssignment.random(g, 3)

    def test_enumeration_count(self):
        g = path_graph(4)  # degrees 1,2,2,1 -> 1!*2!*2!*1! = 4
        assert count_port_assignments(g) == 4
        assignments = list(all_port_assignments(g))
        assert len(assignments) == 4
        assert len({repr(sorted((repr(v), tuple(sorted(a.ports_of(v).items(), key=repr))) for v in g.nodes)) for a in assignments}) == 4

    def test_relabeled(self):
        g = path_graph(2)
        ports = PortAssignment.canonical(g)
        moved = ports.relabeled({0: "a", 1: "b"})
        assert moved.port("a", "b") == 1


class TestIdentifierAssignment:
    def test_canonical(self):
        g = path_graph(3)
        ids = IdentifierAssignment.canonical(g)
        assert [ids.id_of(v) for v in g.nodes] == [1, 2, 3]
        assert ids.node_of(2) == 1

    def test_injectivity_enforced(self):
        with pytest.raises(IdentifierAssignmentError):
            IdentifierAssignment({0: 1, 1: 1})

    def test_positive_ids_enforced(self):
        with pytest.raises(IdentifierAssignmentError):
            IdentifierAssignment({0: 0})

    def test_validate_bound(self):
        g = path_graph(2)
        ids = IdentifierAssignment({0: 1, 1: 9})
        with pytest.raises(IdentifierAssignmentError):
            ids.validate(g, 8)
        ids.validate(g, 9)

    def test_validate_coverage(self):
        g = path_graph(3)
        with pytest.raises(IdentifierAssignmentError):
            IdentifierAssignment({0: 1, 1: 2}).validate(g, 10)

    def test_random_within_bound(self):
        g = cycle_graph(5)
        ids = IdentifierAssignment.random(g, 50, seed=4)
        ids.validate(g, 50)

    def test_random_space_too_small(self):
        with pytest.raises(IdentifierAssignmentError):
            IdentifierAssignment.random(path_graph(3), 2, seed=0)

    def test_order_rank(self):
        ids = IdentifierAssignment({0: 10, 1: 3, 2: 7})
        assert ids.order_rank(1) == 0
        assert ids.order_rank(2) == 1
        assert ids.order_rank(0) == 2

    def test_all_assignments_count(self):
        g = path_graph(2)
        # choose 2 ids from [3], ordered: 3*2 = 6.
        assert len(list(all_identifier_assignments(g, 3))) == 6

    def test_order_types_count(self):
        g = path_graph(3)
        assert len(list(all_order_types(g))) == 6

    def test_same_order_type(self):
        g = path_graph(3)
        a = IdentifierAssignment({0: 1, 1: 5, 2: 9})
        b = IdentifierAssignment({0: 2, 1: 4, 2: 8})
        c = IdentifierAssignment({0: 9, 1: 5, 2: 1})
        assert same_order_type(a, b, g.nodes)
        assert not same_order_type(a, c, g.nodes)


class TestLabeling:
    def test_of_and_get(self):
        lab = Labeling({0: "x"})
        assert lab.of(0) == "x"
        assert lab.get(1, "d") == "d"
        with pytest.raises(LabelingError):
            lab.of(1)

    def test_validate(self):
        g = path_graph(3)
        with pytest.raises(LabelingError):
            Labeling({0: "a"}).validate(g)
        Labeling.uniform(g, "c").validate(g)

    def test_with_label_copy(self):
        lab = Labeling({0: "a"})
        lab2 = lab.with_label(0, "b")
        assert lab.of(0) == "a" and lab2.of(0) == "b"

    def test_all_labelings_count(self):
        g = path_graph(3)
        assert count_labelings(g, 2) == 8
        assert len(list(all_labelings(g, ["x", "y"]))) == 8

    def test_relabeled(self):
        lab = Labeling({0: "a", 1: "b"})
        moved = lab.relabeled({0: 1, 1: 0})
        assert moved.of(1) == "a"
