"""Tests for the shatter-point LCP (Theorem 1.3), including the two
decoder repairs and their hand-built refutations."""

import pytest

from repro.certification import GreedyAdversary, check_completeness, check_strong_soundness
from repro.core import (
    ShatterLCP,
    component_certificate,
    neighbor_certificate,
    shatter_certificate,
)
from repro.errors import PromiseViolationError
from repro.experiments.theorems import (
    _check_common_color_counterexample,
    _check_rogue_type1_counterexample,
    shatter_hiding_witnesses,
)
from repro.graphs import (
    complete_graph,
    cycle_graph,
    grid_graph,
    pan_graph,
    path_graph,
    spider_graph,
    star_graph,
    theta_graph,
)
from repro.graphs.families import bipartite_shatter_graphs_up_to
from repro.local import Instance, Labeling, extract_view
from repro.neighborhood import hiding_verdict_from_instances


@pytest.fixture(scope="module")
def lcp() -> ShatterLCP:
    return ShatterLCP()


class TestProver:
    def test_round_trip_on_shatter_graphs(self, lcp):
        for g in [path_graph(8), spider_graph(3, 2), grid_graph(2, 4), star_graph(4)]:
            assert lcp.certify_and_check(Instance.build(g)).unanimous

    def test_certificate_types_partition(self, lcp):
        g = path_graph(7)
        instance = Instance.build(g)
        labeling = lcp.prover.certify(instance)
        kinds = [labeling.of(v)[0] for v in g.nodes]
        assert kinds.count("shatter") == 1
        assert kinds.count("nbr") >= 1
        assert kinds.count("comp") >= 2

    def test_rejects_no_shatter_point(self, lcp):
        with pytest.raises(PromiseViolationError):
            lcp.prover.certify(Instance.build(cycle_graph(8)))

    def test_rejects_non_bipartite(self, lcp):
        with pytest.raises(PromiseViolationError):
            lcp.prover.certify(Instance.build(pan_graph(3, 2)))

    def test_orientation_freedom(self, lcp):
        """all_certifications enumerates per-block orientations — the
        freedom the hiding construction exploits."""
        instance = Instance.build(path_graph(8))
        labelings = list(lcp.prover.all_certifications(instance))
        vectors = {
            labeling.of(v)[2]
            for labeling in labelings
            for v in instance.graph.nodes
            if labeling.of(v)[0] == "nbr"
        }
        assert len(vectors) >= 4  # both components flip independently


class TestCompleteness:
    def test_family_up_to_6(self, lcp):
        report = check_completeness(
            lcp, list(bipartite_shatter_graphs_up_to(6)), port_limit=2, id_samples=2
        )
        assert report.passed
        assert report.graphs_checked >= 10


class TestStrongSoundness:
    def test_greedy_adversary(self, lcp):
        report = check_strong_soundness(
            lcp,
            [complete_graph(3), cycle_graph(5), theta_graph(2, 2, 3)],
            GreedyAdversary(restarts=4, sweeps=2, seed=3,
                            pool_graphs=[path_graph(8), spider_graph(3, 2)]),
            port_limit=1,
        )
        assert report.passed

    def test_rogue_type1_attack_fails_on_repaired(self, lcp):
        assert not _check_rogue_type1_counterexample(lcp)

    def test_rogue_type1_attack_breaks_unanchored(self):
        assert _check_rogue_type1_counterexample(ShatterLCP(anchored_type0_id=False))

    def test_two_sided_touch_breaks_no_common_color(self):
        assert _check_common_color_counterexample(ShatterLCP(common_touch_color=False))

    def test_two_sided_touch_fails_on_repaired(self, lcp):
        assert not _check_common_color_counterexample(lcp)


class TestDecoderConditions:
    def test_type0_checks_own_id(self, lcp):
        g = path_graph(5)
        instance = Instance.build(g)
        labeling = lcp.prover.certify(instance)
        shatter_node = next(v for v in g.nodes if labeling.of(v)[0] == "shatter")
        tampered = labeling.with_label(shatter_node, shatter_certificate(99))
        # (allow the larger claimed id by raising the bound)
        from dataclasses import replace

        inst = replace(instance, id_bound=99)
        result = lcp.check(inst.with_labeling(tampered))
        assert shatter_node in result.rejecting

    def test_type1_requires_unique_type0(self, lcp):
        g = path_graph(3)
        labels = Labeling({
            0: shatter_certificate(1),
            1: neighbor_certificate(1, (0,)),
            2: shatter_certificate(3),
        })
        result = lcp.check(Instance.build(g).with_labeling(labels))
        assert 1 in result.rejecting

    def test_type2_rejects_type0_neighbor(self, lcp):
        g = path_graph(2)
        labels = Labeling({0: shatter_certificate(1), 1: component_certificate(1, 1, 0)})
        result = lcp.check(Instance.build(g).with_labeling(labels))
        assert 1 in result.rejecting

    def test_type2_same_component_alternates(self, lcp):
        g = path_graph(2)
        labels = Labeling({
            0: component_certificate(7, 1, 0),
            1: component_certificate(7, 1, 0),
        })
        from dataclasses import replace

        inst = replace(Instance.build(g), id_bound=7)
        result = lcp.check(inst.with_labeling(labels))
        assert result.rejecting == {0, 1}

    def test_component_number_bounds_checked(self, lcp):
        g = path_graph(3)
        labels = Labeling({
            0: component_certificate(9, 3, 0),
            1: neighbor_certificate(9, (0, 1)),  # vector has 2 entries, #3 invalid
            2: shatter_certificate(9),
        })
        from dataclasses import replace

        inst = replace(Instance.build(g), id_bound=9)
        result = lcp.check(inst.with_labeling(labels))
        assert 1 in result.rejecting

    def test_malformed_rejected(self, lcp):
        g = path_graph(2)
        result = lcp.check(Instance.build(g).with_labeling(Labeling.uniform(g, 42)))
        assert result.rejecting == {0, 1}


class TestHiding:
    def test_p1_p2_witnesses(self, lcp):
        inst1, inst2 = shatter_hiding_witnesses()
        assert lcp.check(inst1).unanimous
        assert lcp.check(inst2).unanimous
        # Boundary views glue (w3 = node 0, z2 = node 7).
        assert extract_view(inst1, 0, 1) == extract_view(inst2, 0, 1)
        assert extract_view(inst1, 7, 1) == extract_view(inst2, 7, 1)
        verdict = hiding_verdict_from_instances(lcp, [inst1, inst2])
        assert verdict.hiding is True

    def test_certificate_bits_scale(self, lcp):
        bits_small = lcp.certificate_bits(component_certificate(1, 1, 0), 8, 8)
        bits_large = lcp.certificate_bits(component_certificate(1, 1, 0), 1024, 1024)
        assert bits_large > bits_small
