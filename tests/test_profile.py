"""Span self-time profiling: exclusive-time math, folded-stack export,
and the rendered table's reconciliation against measured wall time.
"""

from __future__ import annotations

import pytest

from repro.core import EvenCycleLCP
from repro.engine import ExecutionPlan, RunContext, clear_engine_state, decide_hiding
from repro.obs import (
    folded_stacks,
    render_profile,
    self_times,
    total_self_time,
    write_folded,
)


@pytest.fixture(autouse=True)
def _fresh_engine_state():
    clear_engine_state()
    yield
    clear_engine_state()


def _span(name, span_id, parent_id, duration_s, trace_id="t"):
    return {
        "name": name,
        "span_id": span_id,
        "parent_id": parent_id,
        "trace_id": trace_id,
        "start_time": 0.0,
        "duration_s": duration_s,
        "attributes": {},
    }


def _toy_records():
    # root (10s) -> child-a (4s) -> leaf (1s); root -> child-b (3s)
    return [
        _span("root", "1", None, 10.0),
        _span("child-a", "2", "1", 4.0),
        _span("leaf", "3", "2", 1.0),
        _span("child-b", "4", "1", 3.0),
    ]


# ----------------------------------------------------------------------
# self_times
# ----------------------------------------------------------------------


def test_self_time_subtracts_direct_children():
    agg = self_times(_toy_records())
    assert agg["root"]["self_s"] == pytest.approx(3.0)  # 10 - 4 - 3
    assert agg["child-a"]["self_s"] == pytest.approx(3.0)  # 4 - 1
    assert agg["child-b"]["self_s"] == pytest.approx(3.0)
    assert agg["leaf"]["self_s"] == pytest.approx(1.0)
    assert agg["root"]["total_s"] == pytest.approx(10.0)
    assert all(entry["calls"] == 1 for entry in agg.values())


def test_self_times_reconcile_with_root_inclusive_total():
    records = _toy_records()
    assert total_self_time(records) == pytest.approx(10.0)


def test_child_outlasting_parent_clamps_to_zero():
    # Clock jitter: children sum past the parent's inclusive duration.
    records = [
        _span("root", "1", None, 1.0),
        _span("child", "2", "1", 1.5),
    ]
    agg = self_times(records)
    assert agg["root"]["self_s"] == 0.0  # clamped, not negative
    assert agg["child"]["self_s"] == pytest.approx(1.5)


def test_repeated_names_aggregate_calls():
    records = [
        _span("root", "1", None, 5.0),
        _span("step", "2", "1", 2.0),
        _span("step", "3", "1", 1.0),
    ]
    agg = self_times(records)
    assert agg["step"]["calls"] == 2
    assert agg["step"]["self_s"] == pytest.approx(3.0)
    assert agg["root"]["self_s"] == pytest.approx(2.0)


# ----------------------------------------------------------------------
# Folded stacks
# ----------------------------------------------------------------------


def test_folded_stacks_paths_and_microseconds():
    lines = folded_stacks(_toy_records())
    assert lines == sorted(lines)  # deterministic output order
    as_map = dict(line.rsplit(" ", 1) for line in lines)
    assert as_map["root"] == str(3_000_000)
    assert as_map["root;child-a"] == str(3_000_000)
    assert as_map["root;child-a;leaf"] == str(1_000_000)
    assert as_map["root;child-b"] == str(3_000_000)


def test_folded_stacks_omit_zero_self_paths():
    records = [
        _span("root", "1", None, 1.0),
        _span("child", "2", "1", 1.0),  # root's self time is exactly 0
    ]
    lines = folded_stacks(records)
    assert lines == ["root;child 1000000"]


def test_write_folded_roundtrip(tmp_path):
    path = write_folded(_toy_records(), tmp_path / "out" / "profile.folded")
    text = path.read_text()
    assert text.endswith("\n")
    assert text.splitlines() == folded_stacks(_toy_records())


def test_write_folded_empty(tmp_path):
    path = write_folded([], tmp_path / "empty.folded")
    assert path.read_text() == ""


# ----------------------------------------------------------------------
# render_profile
# ----------------------------------------------------------------------


def test_render_profile_table_and_reconciliation():
    text = render_profile(_toy_records(), wall_time_s=10.0)
    lines = text.splitlines()
    assert lines[0].split() == ["span", "calls", "self", "total", "self%"]
    # Hottest-first: three names tie at 3.0s, leaf (1.0s) comes last
    # among the named rows.
    named = [line.split()[0] for line in lines[1:5]]
    assert named[-1] == "leaf"
    assert "(span total)" in text
    assert "reconciliation:" in text
    assert "(100.0%)" in text


def test_render_profile_without_wall_time_omits_reconciliation():
    text = render_profile(_toy_records())
    assert "reconciliation" not in text


def test_render_profile_empty():
    assert render_profile([]) == "(no spans recorded)"


# ----------------------------------------------------------------------
# End to end: a traced decision profiles coherently
# ----------------------------------------------------------------------


def test_traced_decision_profile_reconciles():
    ctx = RunContext.observed()
    plan = ExecutionPlan(
        backend="streaming", warm_start=False, disk_cache=False, memory_cache=False
    )
    verdict = decide_hiding(EvenCycleLCP(), n=6, plan=plan, ctx=ctx)
    records = ctx.tracer.finished_spans()
    agg = self_times(records)
    assert "decide_hiding" in agg
    # Self times sum to the root span's inclusive duration ...
    root_total = agg["decide_hiding"]["total_s"]
    assert total_self_time(records) == pytest.approx(root_total, rel=1e-9)
    # ... and the folded export covers the same total (up to rounding).
    folded_usec = sum(int(line.rsplit(" ", 1)[1]) for line in folded_stacks(records))
    assert folded_usec == pytest.approx(root_total * 1e6, abs=len(records) + 1)
    # The externally measured wall time is in the same ballpark as the
    # span tree (the CLI prints the exact ratio; here we only pin that
    # both clocks saw the same run).
    assert verdict.provenance.wall_time_s > 0
