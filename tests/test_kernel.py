"""The vectorized batch kernel (:mod:`repro.kernel`).

The kernel's contract is *exact* parity with the scalar unanimity
generators: same yield stream, same ``seen``-set mutations, and the same
``SymmetryAccount`` totals at every yield point — including under
streaming early exit, where a closed generator must leave the account in
the same state the scalar generator would.  Plus the capability probe:
without numpy (simulated via ``REPRO_DISABLE_NUMPY``) everything falls
back to the pure-Python loops and ``auto`` plans never select the
vectorized backend.
"""

from __future__ import annotations

import pytest

from repro.core.registry import all_lcps, make_lcp
from repro.engine import (
    BACKEND_VECTORIZED,
    ExecutionPlan,
    available_backends,
    get_backend,
    resolve_plan,
)
from repro.graphs import cycle_graph, path_graph, star_graph
from repro.kernel import (
    DISABLE_ENV,
    clear_kernel_tables,
    kernel_available,
    numpy_or_none,
    numpy_version,
)
from repro.kernel.batch import kernel_supports
from repro.local.instance import Instance
from repro.local.labeling import labeling_key, node_sort_order
from repro.perf import PerfStats
from repro.perf.config import CONFIG
from repro.symmetry.prune import SymmetryAccount

HAVE_NUMPY = kernel_available()
needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not importable")


def _account_state(account):
    if account is None:
        return None
    return (
        account.labelings_total,
        account.labelings_pruned,
        account.instances_suppressed,
    )


def _sweep_args(lcp, graph, stabilized):
    """(decoder, base, alphabet, stabilizer) for one unanimity sweep, or
    None when the scheme has no finite alphabet on this graph."""
    alphabet = lcp.certificate_alphabet(graph)
    if alphabet is None or len(alphabet) ** graph.order > 20_000:
        return None
    base = Instance.build(graph)
    stabilizer = None
    if stabilized:
        from repro.symmetry.groups import automorphism_group
        from repro.symmetry.prune import instance_stabilizer

        group = automorphism_group(graph)
        if group.is_trivial:
            return None
        stabilizer = instance_stabilizer(
            group, graph, base.ports, base.ids, not lcp.anonymous
        )
    return lcp.decoder, base, alphabet, stabilizer


def _run_pair(lcp, graph, stabilized, prefix=None, block_size=None):
    """Drive the scalar and the batch generator in lockstep; compare the
    yields, the seen sets, and the account state after every pull (and
    after closing both when *prefix* truncates the stream)."""
    from repro.certification.enumeration import unanimously_accepted_labelings

    args = _sweep_args(lcp, graph, stabilized)
    if args is None:
        return False
    decoder, base, alphabet, stabilizer = args
    node_order = node_sort_order(graph)
    streams = {}
    for kernel in (None, "batch"):
        seen = set()
        account = SymmetryAccount()
        overrides = {}
        if block_size is not None:
            overrides["kernel_block_size"] = block_size
        with CONFIG.overridden(**overrides):
            gen = unanimously_accepted_labelings(
                decoder,
                base,
                alphabet,
                lcp.radius,
                include_ids=not lcp.anonymous,
                seen=seen,
                stabilizer=stabilizer,
                account=account,
                kernel=kernel,
            )
            yielded, states = [], []
            for labeling in gen:
                yielded.append(labeling_key(labeling, node_order))
                states.append(_account_state(account))
                if prefix is not None and len(yielded) >= prefix:
                    break
            gen.close()
        streams[kernel] = (yielded, states, frozenset(seen), _account_state(account))
    assert streams["batch"] == streams[None], (lcp.name, graph.order, stabilized)
    return True


@needs_numpy
@pytest.mark.parametrize("scheme", sorted(all_lcps()))
@pytest.mark.parametrize("stabilized", [False, True])
def test_batch_matches_scalar_stream_and_accounts(scheme, stabilized):
    lcp = make_lcp(scheme)
    ran = 0
    for graph in (path_graph(2), path_graph(3), cycle_graph(4), star_graph(3)):
        ran += _run_pair(lcp, graph, stabilized)
    if not ran:
        pytest.skip("no finite-alphabet base for this scheme/mode")


@needs_numpy
@pytest.mark.parametrize("prefix", [1, 2])
def test_early_exit_leaves_identical_accounts(prefix):
    """Closing both generators after *prefix* yields must leave the
    account in the same state — the post-yield suppressed commit of the
    scalar orbit path must not run on either side."""
    ran = 0
    for scheme in sorted(all_lcps()):
        lcp = make_lcp(scheme)
        for stabilized in (False, True):
            ran += _run_pair(lcp, path_graph(3), stabilized, prefix=prefix)
            ran += _run_pair(lcp, cycle_graph(4), stabilized, prefix=prefix)
    assert ran


@needs_numpy
@pytest.mark.parametrize("block_size", [1, 2, 7, 4096])
def test_block_boundaries_are_unobservable(block_size):
    """The stream and every account state are block-size independent."""
    lcp = make_lcp("degree-one")
    assert _run_pair(lcp, path_graph(3), False, block_size=block_size)
    assert _run_pair(lcp, star_graph(3), True, block_size=block_size)


@needs_numpy
def test_mixed_alphabet_parity():
    """Certificate alphabets mixing ints, strings, and tuples must not
    break the index encoding (indices compare; values never do)."""
    from repro.certification.enumeration import (
        EnumerativeLCP,
        unanimously_accepted_labelings,
    )
    from repro.core import DegreeOneLCP

    inner = DegreeOneLCP()
    lcp = EnumerativeLCP(inner.decoder, [0, "far", ("d1", 1)], k=2)
    graph = path_graph(3)
    base = Instance.build(graph)
    node_order = node_sort_order(graph)
    results = {}
    for kernel in (None, "batch"):
        seen = set()
        stream = [
            labeling_key(labeling, node_order)
            for labeling in unanimously_accepted_labelings(
                lcp.decoder,
                base,
                lcp.certificate_alphabet(graph),
                lcp.radius,
                include_ids=not lcp.anonymous,
                seen=seen,
                kernel=kernel,
            )
        ]
        results[kernel] = (stream, frozenset(seen))
    assert results["batch"] == results[None]


@needs_numpy
def test_acceptance_tables_are_shared_across_bases():
    """Re-sweeping a base with the same decoder reuses its tables."""
    clear_kernel_tables()
    lcp = make_lcp("degree-one")
    stats = PerfStats()
    args = _sweep_args(lcp, path_graph(3), False)
    decoder, base, alphabet, _ = args
    from repro.certification.enumeration import unanimously_accepted_labelings

    for _ in range(2):
        list(
            unanimously_accepted_labelings(
                decoder,
                base,
                alphabet,
                lcp.radius,
                include_ids=not lcp.anonymous,
                kernel="batch",
                stats=stats,
            )
        )
    assert stats.get("kernel_table_misses") >= 1
    assert stats.get("kernel_table_hits") >= stats.get("kernel_table_misses")
    clear_kernel_tables()


def test_unknown_kernel_name_is_rejected():
    from repro.certification.enumeration import unanimously_accepted_labelings

    lcp = make_lcp("degree-one")
    args = _sweep_args(lcp, path_graph(3), False)
    decoder, base, alphabet, _ = args
    with pytest.raises(ValueError, match="unknown sweep kernel"):
        next(
            unanimously_accepted_labelings(
                decoder, base, alphabet, lcp.radius, include_ids=True, kernel="simd"
            )
        )


def test_kernel_supports_bounds():
    assert kernel_supports(path_graph(3), [0, 1])
    # 3 ** 64 overflows int64 index arithmetic -> scalar fallback.
    assert not kernel_supports(path_graph(64), [0, 1, 2])


class TestCapabilityProbe:
    def test_disable_env_forces_fallback(self, monkeypatch):
        monkeypatch.setenv(DISABLE_ENV, "1")
        assert numpy_or_none() is None
        assert not kernel_available()
        assert numpy_version() is None
        assert BACKEND_VECTORIZED not in available_backends()
        with pytest.raises(ValueError, match="unavailable"):
            get_backend(BACKEND_VECTORIZED)
        with pytest.raises(ValueError, match="unavailable"):
            ExecutionPlan(backend=BACKEND_VECTORIZED).resolve()
        # auto routes to the scalar streaming backend.
        plan = resolve_plan(
            config=type(CONFIG)(streaming=True), disk_cache=False
        )
        assert plan.backend == "streaming"

    @needs_numpy
    def test_probe_reports_numpy(self, monkeypatch):
        monkeypatch.delenv(DISABLE_ENV, raising=False)
        assert numpy_or_none() is not None
        assert isinstance(numpy_version(), str)
        assert BACKEND_VECTORIZED in available_backends()
        assert get_backend(BACKEND_VECTORIZED).unavailable_reason() is None

    def test_sweep_falls_back_without_numpy(self, monkeypatch):
        """kernel='batch' without numpy silently runs the scalar loop —
        zero-dependency operation, identical stream."""
        from repro.certification.enumeration import unanimously_accepted_labelings

        lcp = make_lcp("degree-one")
        decoder, base, alphabet, _ = _sweep_args(lcp, path_graph(3), False)
        node_order = node_sort_order(path_graph(3))

        def run():
            return [
                labeling_key(lab, node_order)
                for lab in unanimously_accepted_labelings(
                    decoder,
                    base,
                    alphabet,
                    lcp.radius,
                    include_ids=not lcp.anonymous,
                    kernel="batch",
                )
            ]

        monkeypatch.setenv(DISABLE_ENV, "1")
        disabled = run()
        monkeypatch.delenv(DISABLE_ENV)
        assert disabled == run()
