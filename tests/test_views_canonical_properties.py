"""Property tests pinning down view canonicalization: views are values
that depend only on the rooted port/id/label structure — never on node
names, insertion order, or extraction order."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import random_graph
from repro.graphs.traversal import is_connected
from repro.local import Instance, Labeling, PortAssignment, extract_view


def _connected(n, p, seed):
    g = random_graph(n, p, seed)
    if not is_connected(g):
        nodes = g.nodes
        for a, b in zip(nodes, nodes[1:]):
            g.add_edge(a, b)
    return g


class TestNameInvariance:
    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(3, 7),
        p=st.floats(0.3, 0.8),
        seed=st.integers(0, 10**5),
        shift=st.integers(1, 50),
        radius=st.integers(1, 2),
    )
    def test_node_renaming_preserves_views(self, n, p, seed, shift, radius):
        """Renaming graph nodes (keeping ports/ids/labels attached) must
        not change any extracted view."""
        g = _connected(n, p, seed)
        labeling = Labeling({v: f"L{v % 3}" for v in g.nodes})
        instance = Instance.build(g, labeling=labeling)
        mapping = {v: v + shift for v in g.nodes}
        renamed = instance.relabeled_nodes(mapping)
        for v in g.nodes:
            assert extract_view(instance, v, radius) == extract_view(
                renamed, mapping[v], radius
            )

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(3, 7),
        p=st.floats(0.3, 0.8),
        seed=st.integers(0, 10**5),
        port_seed=st.integers(0, 10**5),
    )
    def test_same_structure_same_view(self, n, p, seed, port_seed):
        """Two extractions of the same node agree regardless of when or
        how often we extract (no hidden state)."""
        g = _connected(n, p, seed)
        instance = Instance.build(g, ports=PortAssignment.random(g, port_seed))
        v = g.nodes[0]
        first = extract_view(instance, v, 2)
        # Interleave other extractions.
        for u in g.nodes:
            extract_view(instance, u, 1)
        assert extract_view(instance, v, 2) == first


class TestLayoutFastPath:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(3, 7),
        p=st.floats(0.3, 0.8),
        seed=st.integers(0, 10**5),
        radius=st.integers(1, 2),
    )
    def test_relabel_view_equals_full_extraction(self, n, p, seed, radius):
        """The exhaustive-adversary fast path must agree with full
        extraction for every labeling."""
        from repro.local.views import extract_view_layouts, relabel_view

        g = _connected(n, p, seed)
        instance = Instance.build(g)
        layouts = extract_view_layouts(instance, radius)
        for labels in ({v: v % 2 for v in g.nodes}, {v: "x" for v in g.nodes}):
            labeling = Labeling(labels)
            labeled = instance.with_labeling(labeling)
            for v, (template, order) in layouts.items():
                assert relabel_view(template, order, labeling) == extract_view(
                    labeled, v, radius
                )

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(3, 7), p=st.floats(0.3, 0.8), seed=st.integers(0, 10**5))
    def test_layouts_anonymous(self, n, p, seed):
        from repro.local.views import extract_view_layouts, relabel_view

        g = _connected(n, p, seed)
        instance = Instance.build(g)
        layouts = extract_view_layouts(instance, 1, include_ids=False)
        labeling = Labeling.uniform(g, "c")
        labeled = instance.with_labeling(labeling)
        for v, (template, order) in layouts.items():
            rebuilt = relabel_view(template, order, labeling)
            assert rebuilt == extract_view(labeled, v, 1, include_ids=False)
            assert rebuilt.is_anonymous
