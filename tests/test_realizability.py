"""Tests for Section 5's machinery: compatibility, G_bad realization,
walks, surgery, and the Lemma 5.2 identifier remap."""

import pytest

from repro.certification import ConstantDecoder, EnumerativeLCP
from repro.errors import GraphError, RealizabilityError, ViewError
from repro.graphs import (
    cycle_graph,
    is_bipartite,
    path_graph,
    theta_graph,
)
from repro.local import Instance, Labeling, extract_view
from repro.neighborhood import build_neighborhood_graph, labeled_yes_instances
from repro.realizability import (
    build_g_bad,
    candidates_from_witnesses,
    choose_realizing_views,
    compose_with_escape_walks,
    debacktrack_odd_cycle,
    escape_walk,
    forgotten_node,
    is_closed,
    is_non_backtracking,
    is_valid_walk,
    lift_walk,
    node_compatible_with,
    non_backtracking_walk_between,
    order_preserving_remap,
    realize_views,
    walk_length,
)
from repro.realizability.compatibility import (
    identifiers_in,
    occurrences_of_identifier,
)


class TestCompatibility:
    def test_same_instance_views_compatible(self):
        """Views from one instance are always mutually compatible w.r.t.
        their shared identifiers."""
        instance = Instance.build(path_graph(6), id_bound=9)
        v2 = extract_view(instance, 2, 2)
        v4 = extract_view(instance, 4, 2)
        shared = identifiers_in(v2) & identifiers_in(v4)
        for ident in shared:
            (u_local,) = occurrences_of_identifier(v2, ident)
            target = extract_view(instance, instance.ids.node_of(ident), 2)
            assert node_compatible_with(v2, u_local, target)

    def test_wrong_center_id_incompatible(self):
        instance = Instance.build(path_graph(4), id_bound=9)
        v0 = extract_view(instance, 0, 1)
        v2 = extract_view(instance, 2, 1)
        # node with id 2 inside v0 vs a view centered at id 3.
        u_local = occurrences_of_identifier(v0, 2)[0]
        assert not node_compatible_with(v0, u_local, v2)

    def test_anonymous_views_rejected(self):
        instance = Instance.build(path_graph(3))
        view = extract_view(instance, 1, 1, include_ids=False)
        with pytest.raises(ViewError):
            node_compatible_with(view, 0, view)


def _accept_all_lcp():
    return EnumerativeLCP(
        ConstantDecoder(True, anonymous=False), ["c"],
        promise_fn=is_bipartite, name="accept-all-ids",
    )


class TestRealization:
    def test_single_instance_realizes_itself(self):
        """Lemma 5.1 on views from one instance rebuilds that instance."""
        lcp = _accept_all_lcp()
        graph = path_graph(5)
        labeled = list(labeled_yes_instances(lcp, [graph], port_limit=1, id_bound=5))
        ngraph = build_neighborhood_graph(lcp, labeled)
        views = list(ngraph.views)
        candidates = candidates_from_witnesses(
            views, list(ngraph.view_witness.values()), lcp.radius
        )
        result = realize_views(lcp, views, candidates, id_bound=5)
        assert result.realized
        assert result.instance is not None
        assert result.instance.graph.order == 5
        assert result.all_centers_accepted
        assert len(result.verified_centers) == 5

    def test_missing_candidates_reported(self):
        lcp = _accept_all_lcp()
        instance = Instance.build(path_graph(3), id_bound=3)
        view = extract_view(instance, 1, 1)
        chosen, failures = choose_realizing_views([view], {})
        assert failures
        assert all("no candidate" in f for f in failures)

    def test_conflicting_ports_fail_merge(self):
        """Two views claiming different ports for the same edge cannot
        merge into a valid G_bad."""
        g = path_graph(3)
        from repro.local import PortAssignment

        ports_a = PortAssignment({0: {1: 1}, 1: {0: 1, 2: 2}, 2: {1: 1}})
        ports_b = PortAssignment({0: {1: 1}, 1: {0: 2, 2: 1}, 2: {1: 1}})
        inst_a = Instance.build(g, ports=ports_a, id_bound=3)
        inst_b = Instance.build(g, ports=ports_b, id_bound=3)
        mu1 = extract_view(inst_a, 0, 1)
        mu2 = extract_view(inst_b, 1, 1)
        instance, failures = build_g_bad({1: mu1, 2: mu2}, id_bound=3)
        assert instance is None
        assert any("conflicting ports" in f for f in failures)

    def test_conflicting_labels_fail_merge(self):
        g = path_graph(2)
        inst_a = Instance.build(g, id_bound=2, labeling=Labeling({0: "x", 1: "y"}))
        inst_b = Instance.build(g, id_bound=2, labeling=Labeling({0: "x", 1: "z"}))
        mu1 = extract_view(inst_a, 0, 1)
        mu2 = extract_view(inst_b, 1, 1)
        instance, failures = build_g_bad({1: mu1, 2: mu2}, id_bound=2)
        assert instance is None
        assert failures


class TestWalks:
    def test_lift_walk(self):
        instance = Instance.build(cycle_graph(6), id_bound=6)
        walk = [0, 1, 2, 1]
        views = lift_walk(instance, walk, 1)
        assert len(views) == 4
        assert views[1] == views[3]

    def test_non_backtracking_predicate(self):
        assert is_non_backtracking([0, 1, 2, 3])
        assert not is_non_backtracking([0, 1, 0])
        # closed walk wrap-around: last step reverses the first.
        assert not is_non_backtracking([0, 1, 2, 1, 0])
        assert is_non_backtracking([0, 1, 2, 0])

    def test_non_backtracking_walk_between(self):
        g = theta_graph(2, 2, 2)
        walk = non_backtracking_walk_between(g, 0, 1)
        assert walk[0] == 0 and walk[-1] == 1
        assert is_non_backtracking(walk, closed=False)
        assert is_valid_walk(g, walk)

    def test_forbidden_first_respected(self):
        g = cycle_graph(6)
        walk = non_backtracking_walk_between(g, 0, 3, forbidden_first=1)
        assert walk[1] == 5

    def test_walk_between_impossible(self):
        g = path_graph(3)
        with pytest.raises(GraphError):
            non_backtracking_walk_between(g, 0, 0, forbidden_first=1)

    def test_forgotten_node(self):
        g = cycle_graph(12)
        hidden = forgotten_node(g, 0, 1, 1)
        assert hidden is not None
        from repro.graphs import distance

        assert distance(g, hidden, 0) > 2
        assert distance(g, hidden, 1) > 2

    def test_forgotten_node_missing_on_small_graph(self):
        assert forgotten_node(cycle_graph(4), 0, 1, 1) is None

    def test_escape_walk_properties(self):
        for graph in [cycle_graph(12), theta_graph(4, 4, 6)]:
            instance = Instance.build(graph)
            walk = escape_walk(instance, 0, sorted(graph.neighbors(0))[0], 1)
            assert is_closed(walk)
            assert walk_length(walk) % 2 == 0
            assert is_non_backtracking(walk)
            assert is_valid_walk(graph, walk)

    def test_escape_walk_needs_forgetfulness(self):
        instance = Instance.build(path_graph(6))
        with pytest.raises(GraphError):
            escape_walk(instance, 1, 0, 1)


class TestSurgery:
    def test_debacktrack_preserves_parity_and_validity(self):
        g = theta_graph(4, 4, 6)
        instance = Instance.build(g)
        bad = [3, 2, 0, 2, 3]  # closed, backtracking everywhere
        fixed = debacktrack_odd_cycle(instance, bad)
        assert is_non_backtracking(fixed)
        assert is_valid_walk(g, fixed)
        assert is_closed(fixed)
        assert (walk_length(fixed) - walk_length(bad)) % 2 == 0

    def test_debacktrack_noop_on_clean_walk(self):
        g = theta_graph(2, 2, 2)
        instance = Instance.build(g)
        clean = [0, 2, 1, 3, 0]
        assert debacktrack_odd_cycle(instance, clean) == clean

    def test_debacktrack_needs_second_cycle(self):
        g = cycle_graph(6)
        instance = Instance.build(g)
        with pytest.raises(GraphError):
            debacktrack_odd_cycle(instance, [1, 0, 1])

    def test_order_preserving_remap(self):
        instance = Instance.build(path_graph(4), id_bound=4)
        moved = order_preserving_remap(instance, slot=1, slots=3)
        old = [instance.ids.id_of(v) for v in instance.graph.nodes]
        new = [moved.ids.id_of(v) for v in moved.graph.nodes]
        # Order preserved, values disjoint from slot 0's range.
        assert sorted(range(len(old)), key=lambda i: old[i]) == sorted(
            range(len(new)), key=lambda i: new[i]
        )
        slot0 = order_preserving_remap(instance, slot=0, slots=3)
        assert not set(new) & {slot0.ids.id_of(v) for v in slot0.graph.nodes}
        assert moved.id_bound == 3 * instance.id_bound

    def test_remap_bad_slot(self):
        instance = Instance.build(path_graph(2))
        with pytest.raises(RealizabilityError):
            order_preserving_remap(instance, slot=3, slots=3)

    def test_compose_with_escape_walks(self):
        trivial = EnumerativeLCP(
            ConstantDecoder(True, anonymous=True), ["c"],
            promise_fn=is_bipartite, name="accept-all",
        )
        theta = theta_graph(4, 4, 6)
        labeled = list(
            labeled_yes_instances(trivial, [theta], port_limit=1, id_bound=theta.order)
        )
        ngraph = build_neighborhood_graph(trivial, labeled)
        odd = ngraph.find_odd_cycle()
        assert odd is not None
        composed = compose_with_escape_walks(trivial, ngraph, odd)
        assert composed.length() % 2 == 1
        assert composed.is_closed()
        assert composed.node_walks_non_backtracking()
        views = composed.views()
        assert len(views) == composed.length() + 1


class TestStrongSoundnessBlocksRealization:
    """The logical keystone of Section 5, run in reverse: the paper's
    *strongly sound* schemes have odd walks in V(D, n) (they are hiding),
    so by Lemma 5.1 those walks must NOT be realizable — otherwise G_bad
    would be an accepted odd cycle.  The pipeline must fail, concretely."""

    def test_watermelon_odd_walk_not_realizable(self):
        from repro.core import WatermelonLCP
        from repro.experiments.theorems import watermelon_hiding_witnesses

        lcp = WatermelonLCP()
        inst1, inst2 = watermelon_hiding_witnesses()
        ngraph = build_neighborhood_graph(lcp, [inst1, inst2])
        odd = ngraph.find_odd_cycle()
        assert odd is not None
        walk_views = list(dict.fromkeys(odd))  # distinct views of the walk
        candidates = candidates_from_witnesses(
            walk_views, list(ngraph.view_witness.values()), lcp.radius
        )
        result = realize_views(lcp, walk_views, candidates, id_bound=8)
        # Either no compatible μ_i exists, the merge is inconsistent, or
        # the merged instance fails verification — never a clean success
        # with every center accepted and verified.
        clean_success = (
            result.realized
            and result.all_centers_accepted
            and len(result.verified_centers) == len({v.ids[0] for v in walk_views})
        )
        assert not clean_success

    def test_shatter_odd_walk_not_realizable(self):
        from repro.core import ShatterLCP
        from repro.experiments.theorems import shatter_hiding_witnesses

        lcp = ShatterLCP()
        inst1, inst2 = shatter_hiding_witnesses()
        ngraph = build_neighborhood_graph(lcp, [inst1, inst2])
        odd = ngraph.find_odd_cycle()
        assert odd is not None
        walk_views = list(dict.fromkeys(odd))
        candidates = candidates_from_witnesses(
            walk_views, list(ngraph.view_witness.values()), lcp.radius
        )
        result = realize_views(lcp, walk_views, candidates, id_bound=8)
        clean_success = (
            result.realized
            and result.all_centers_accepted
            and len(result.verified_centers) == len({v.ids[0] for v in walk_views})
        )
        assert not clean_success


class TestComponentWiseRealization:
    """Lemmas 5.2/5.3 executably: realizing composed closed walks."""

    def _accept_all_with_ids(self):
        return EnumerativeLCP(
            ConstantDecoder(True, anonymous=False), ["c"],
            promise_fn=is_bipartite, name="accept-all-ids",
        )

    def test_even_single_instance_walk_realizes(self):
        """A closed even walk inside one instance is trivially
        component-wise realizable; the merge reproduces the instance's
        structure and every walk center is accepted and verified."""
        from repro.realizability.realize import realize_walk_component_wise
        from repro.realizability.surgery import ComposedWalk

        lcp = self._accept_all_with_ids()
        graph = theta_graph(2, 2, 4)
        instance = Instance.build(graph, id_bound=graph.order).with_labeling(
            Labeling.uniform(graph, "c")
        )
        walk = ComposedWalk(radius=1, include_ids=True)
        # Around one even cycle of the theta graph: 0-2-1-3-0.
        cycle_nodes = [0, 2, 1, 3, 0]
        for a, b in zip(cycle_nodes, cycle_nodes[1:]):
            assert graph.has_edge(a, b)
        walk.segments.append((instance, cycle_nodes))
        result = realize_walk_component_wise(lcp, walk, id_bound=graph.order)
        assert result.realized, result.failures
        assert result.all_centers_accepted
        assert result.instance is not None

    def test_open_walk_rejected(self):
        from repro.errors import RealizabilityError
        from repro.realizability.realize import realize_walk_component_wise
        from repro.realizability.surgery import ComposedWalk

        lcp = self._accept_all_with_ids()
        instance = Instance.build(path_graph(3), id_bound=3).with_labeling(
            Labeling.uniform(path_graph(3), "c")
        )
        walk = ComposedWalk(radius=1, include_ids=True)
        walk.segments.append((instance, [0, 1, 2]))
        with pytest.raises(RealizabilityError):
            realize_walk_component_wise(lcp, walk, id_bound=3)

    def test_cross_instance_odd_walk_reports_obstructions(self):
        """Composed odd walks spanning two identifier-twisted instances:
        the pipeline runs end to end and, where the paper's (glossed)
        view manipulations would be needed, reports the precise
        obstruction instead of fabricating a G_bad."""
        from repro.local import IdentifierAssignment, PortAssignment
        from repro.neighborhood import build_neighborhood_graph
        from repro.realizability.realize import realize_walk_component_wise

        lcp = self._accept_all_with_ids()
        g = theta_graph(4, 4, 6)
        ports = {v: {} for v in g.nodes}

        def setp(a, b, p):
            ports[a][b] = p

        setp(0, 2, 1); setp(0, 5, 2); setp(0, 8, 3)
        setp(1, 4, 1); setp(1, 7, 2); setp(1, 12, 3)
        setp(2, 0, 1); setp(2, 3, 2); setp(3, 2, 1); setp(3, 4, 2)
        setp(4, 3, 1); setp(4, 1, 2)
        setp(5, 0, 1); setp(5, 6, 2); setp(6, 5, 1); setp(6, 7, 2)
        setp(7, 6, 1); setp(7, 1, 2)
        setp(8, 0, 2); setp(8, 9, 1); setp(9, 8, 2); setp(9, 10, 1)
        setp(10, 9, 2); setp(10, 11, 1); setp(11, 10, 1); setp(11, 12, 2)
        setp(12, 11, 1); setp(12, 1, 2)
        prt = PortAssignment(ports)
        prt.validate(g)
        ids1 = IdentifierAssignment({v: v + 1 for v in g.nodes})
        perm = {9: 12, 10: 11, 11: 10, 12: 9}
        ids2 = IdentifierAssignment({v: perm.get(v, v) + 1 for v in g.nodes})
        labeling = Labeling.uniform(g, "c")
        i1 = Instance(graph=g, ports=prt, ids=ids1, id_bound=13).with_labeling(labeling)
        i2 = Instance(graph=g, ports=prt, ids=ids2, id_bound=13).with_labeling(labeling)

        ngraph = build_neighborhood_graph(lcp, [i1, i2])
        odd = ngraph.find_odd_cycle()
        assert odd is not None
        assert (len(odd) - 1) % 2 == 1
        composed = compose_with_escape_walks(lcp, ngraph, odd)
        assert composed.length() % 2 == 1
        result = realize_walk_component_wise(lcp, composed, id_bound=13)
        # Either a genuine accepted odd-walk G_bad, or explicit obstructions.
        if result.realized:
            from repro.graphs.properties import bipartition

            assert result.instance is not None
            assert not bipartition(result.instance.graph).is_bipartite
            assert result.all_centers_accepted
        else:
            assert result.failures
            assert all("identifier" in f or "edge" in f for f in result.failures)
