"""Tests for the command-line interface."""

import pytest

from repro.cli import main, parse_graph_spec


class TestGraphSpec:
    def test_path(self):
        assert parse_graph_spec("path:5").order == 5

    def test_cycle(self):
        assert parse_graph_spec("cycle:6").order == 6

    def test_grid(self):
        assert parse_graph_spec("grid:2,3").order == 6

    def test_theta(self):
        assert parse_graph_spec("theta:2,2,2").order == 5

    def test_melon(self):
        assert parse_graph_spec("melon:2,3,4").order == 2 + 1 + 2 + 3

    def test_star(self):
        assert parse_graph_spec("star:4").order == 5

    def test_unknown(self):
        with pytest.raises(SystemExit):
            parse_graph_spec("blob:3")


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "thm14" in out

    def test_schemes(self, capsys):
        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        assert "watermelon" in out and "Lemma 4.1" in out

    def test_certify_accepts(self, capsys):
        assert main(["certify", "degree-one", "path:6"]) == 0
        out = capsys.readouterr().out
        assert "unanimously ACCEPTED" in out

    def test_certify_show_certificates(self, capsys):
        assert main(["certify", "even-cycle", "cycle:4", "--show-certificates"]) == 0
        out = capsys.readouterr().out
        assert "node 0" in out

    def test_run_fast_experiment(self, capsys):
        assert main(["run", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "OK" in out

    def test_run_requires_known_id(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            main(["run", "not-an-experiment"])


class TestHidingBackendFlag:
    def test_explicit_backend_runs_and_reports(self, capsys):
        assert main(
            ["hiding", "degree-one", "--n", "3", "--backend", "streaming",
             "--no-disk-cache"]
        ) == 0
        out = capsys.readouterr().out
        assert "backend=streaming" in out

    def test_unknown_backend_lists_the_live_registry(self, capsys):
        """The --backend choices (and therefore the unknown-name error)
        come from available_backends(), not a hardcoded list."""
        from repro.engine import available_backends

        with pytest.raises(SystemExit) as exc:
            main(["hiding", "degree-one", "--n", "3", "--backend", "quantum"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice: 'quantum'" in err
        for name in available_backends():
            assert name in err

    def test_backend_conflicts_with_materialized(self):
        with pytest.raises(SystemExit, match="conflicts with --materialized"):
            main(
                ["hiding", "degree-one", "--n", "3", "--backend", "streaming",
                 "--materialized"]
            )

    def test_backend_materialized_agrees_with_the_flag(self, capsys):
        assert main(
            ["hiding", "degree-one", "--n", "3", "--backend", "materialized",
             "--materialized"]
        ) == 0
        out = capsys.readouterr().out
        assert "backend=materialized" in out


class TestViewsCommand:
    def test_views_prints_verdicts(self, capsys):
        assert main(["views", "degree-one", "path:3"]) == 0
        out = capsys.readouterr().out
        assert "[accept]" in out
        assert "center" in out
        assert "edge 0" in out

    def test_views_radius2(self, capsys):
        assert main(["views", "watermelon", "path:4", "--radius", "2"]) == 0
        out = capsys.readouterr().out
        assert "radius-2 view" in out
        assert "N = 4" in out  # non-anonymous scheme shows the id bound


def test_describe_view_anonymous():
    from repro.graphs import path_graph
    from repro.local import Instance, extract_view
    from repro.local.views import describe_view

    view = extract_view(Instance.build(path_graph(3)), 1, 1, include_ids=False)
    text = describe_view(view)
    assert "anonymous" in text
    assert "id=  -" in text
