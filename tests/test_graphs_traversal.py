"""Unit tests for BFS traversal primitives, cross-checked with networkx."""

import networkx as nx
import pytest

from repro.errors import DisconnectedGraphError, NodeNotFoundError
from repro.graphs import (
    Graph,
    ball,
    bfs_distances,
    connected_components,
    cycle_graph,
    diameter,
    distance,
    eccentricity,
    grid_graph,
    is_connected,
    non_backtracking_walk,
    path_edges,
    path_graph,
    shortest_path,
    view_subgraph_nodes_and_edges,
)


def to_nx(g: Graph) -> nx.Graph:
    h = nx.Graph()
    h.add_nodes_from(g.nodes)
    h.add_edges_from(g.edges)
    return h


class TestDistances:
    def test_path_distances(self):
        g = path_graph(5)
        dist = bfs_distances(g, 0)
        assert dist == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_limit_cuts_exploration(self):
        g = path_graph(6)
        dist = bfs_distances(g, 0, limit=2)
        assert set(dist) == {0, 1, 2}

    def test_missing_source_raises(self):
        with pytest.raises(NodeNotFoundError):
            bfs_distances(path_graph(2), 9)

    def test_distance_matches_networkx(self):
        g = grid_graph(3, 4)
        h = to_nx(g)
        for target in (5, 11, 0):
            assert distance(g, 0, target) == nx.shortest_path_length(h, 0, target)

    def test_distance_disconnected_raises(self):
        g = Graph(nodes=[0, 1])
        with pytest.raises(DisconnectedGraphError):
            distance(g, 0, 1)

    def test_ball(self):
        g = cycle_graph(8)
        assert ball(g, 0, 1) == {7, 0, 1}
        assert ball(g, 0, 2) == {6, 7, 0, 1, 2}


class TestPaths:
    def test_shortest_path_endpoints(self):
        g = grid_graph(3, 3)
        path = shortest_path(g, 0, 8)
        assert path[0] == 0 and path[-1] == 8
        assert len(path) - 1 == distance(g, 0, 8)
        for u, v in path_edges(path):
            assert g.has_edge(u, v)

    def test_shortest_path_self(self):
        g = path_graph(3)
        assert shortest_path(g, 1, 1) == [1]

    def test_shortest_path_disconnected(self):
        g = Graph(nodes=[0, 1])
        with pytest.raises(DisconnectedGraphError):
            shortest_path(g, 0, 1)


class TestComponents:
    def test_connected_cycle(self):
        assert is_connected(cycle_graph(5))

    def test_empty_graph_connected(self):
        assert is_connected(Graph())

    def test_components(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        comps = connected_components(g)
        assert sorted(sorted(c) for c in comps) == [[0, 1], [2, 3]]


class TestDiameter:
    @pytest.mark.parametrize(
        "graph,expected",
        [
            (path_graph(5), 4),
            (cycle_graph(6), 3),
            (cycle_graph(7), 3),
            (grid_graph(3, 4), 5),
        ],
    )
    def test_diameter_known(self, graph, expected):
        assert diameter(graph) == expected

    def test_diameter_matches_networkx(self):
        g = grid_graph(4, 4)
        assert diameter(g) == nx.diameter(to_nx(g))

    def test_eccentricity_disconnected_raises(self):
        g = Graph(nodes=[0, 1])
        with pytest.raises(DisconnectedGraphError):
            eccentricity(g, 0)


class TestViewSubgraph:
    def test_c5_radius2_drops_far_edge(self):
        """The paper's G_v^r: C5's edge between the two distance-2 nodes
        is on no path of length <= 2 from the center."""
        g = cycle_graph(5)
        dist, edges = view_subgraph_nodes_and_edges(g, 0, 2)
        assert set(dist) == {0, 1, 2, 3, 4}
        assert (2, 3) not in edges
        assert len(edges) == 4

    def test_radius1_star(self):
        g = cycle_graph(6)
        dist, edges = view_subgraph_nodes_and_edges(g, 0, 1)
        assert set(dist) == {5, 0, 1}
        assert edges == {(0, 1), (0, 5)}

    def test_full_radius_covers_graph(self):
        g = grid_graph(3, 3)
        dist, edges = view_subgraph_nodes_and_edges(g, 4, 4)
        assert len(dist) == 9
        assert len(edges) == g.size


class TestNonBacktrackingWalk:
    def test_walk_on_cycle(self):
        g = cycle_graph(6)
        walk = non_backtracking_walk(g, 0, 12)
        assert len(walk) == 13
        for i in range(len(walk) - 2):
            assert walk[i] != walk[i + 2]

    def test_walk_stuck_at_leaf(self):
        g = path_graph(2)
        with pytest.raises(DisconnectedGraphError):
            non_backtracking_walk(g, 0, 2)
