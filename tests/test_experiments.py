"""Integration tests: every registered experiment runs and reports OK.

These are the machine checks of the paper's claims — a failing test here
means a reproduction mismatch, not a code bug.
"""

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    ExperimentResult,
    all_experiments,
    experiment_ids,
    get_experiment,
    render_result,
    render_results,
    run_experiment,
)

FAST_EXPERIMENTS = [
    "fig1",
    "fig2",
    "fig7",
    "tbl_sim",
    "tbl_hiding_fraction",
    "tbl_resilience",
]

SLOW_EXPERIMENTS = [
    "ext_chromatic",
    "ext_decoder_universe",
    "fig3_4",
    "fig5_6",
    "fig8",
    "lem32",
    "lem62",
    "tbl_cert",
    "thm11",
    "thm12",
    "thm13",
    "thm14",
]


def test_registry_complete():
    ids = experiment_ids()
    assert set(FAST_EXPERIMENTS + SLOW_EXPERIMENTS) == set(ids)


def test_registry_metadata():
    for experiment in all_experiments():
        assert experiment.title
        assert experiment.paper_ref


def test_unknown_experiment_raises():
    with pytest.raises(ExperimentError):
        get_experiment("nope")


@pytest.mark.parametrize("exp_id", FAST_EXPERIMENTS)
def test_fast_experiment_ok(exp_id):
    result = run_experiment(exp_id)
    assert isinstance(result, ExperimentResult)
    assert result.ok, f"{exp_id} mismatch: {result.notes}"
    assert result.rows
    assert result.require_ok() is result


@pytest.mark.parametrize("exp_id", SLOW_EXPERIMENTS)
def test_slow_experiment_ok(exp_id):
    result = run_experiment(exp_id)
    assert result.ok, f"{exp_id} mismatch: {result.notes}"
    assert result.rows


def test_require_ok_raises_on_mismatch():
    bad = ExperimentResult(
        exp_id="x", title="t", paper_claim="c", ok=False, rows=[], notes=["n"]
    )
    with pytest.raises(ExperimentError):
        bad.require_ok()


def test_render_result_contains_rows():
    result = ExperimentResult(
        exp_id="demo",
        title="Demo",
        paper_claim="claim",
        ok=True,
        rows=[{"a": 1, "b": 2}],
        notes=["a note"],
    )
    text = render_result(result)
    assert "demo" in text and "OK" in text and "a note" in text
    assert "a" in text and "1" in text


def test_render_results_summary_block():
    results = [
        ExperimentResult(exp_id="one", title="One", paper_claim="c", ok=True),
        ExperimentResult(exp_id="two", title="Two", paper_claim="c", ok=False),
    ]
    text = render_results(results)
    assert "summary" in text
    assert "MISMATCH" in text


def test_runner_module_entrypoint(tmp_path, monkeypatch):
    """`python -m repro.experiments.runner <path>` writes a report."""
    import sys

    from repro.experiments import registry as reg
    from repro.experiments import runner

    fast = [reg.get_experiment("fig2")]
    monkeypatch.setattr(runner, "all_experiments", lambda: fast)
    target = tmp_path / "out.txt"
    monkeypatch.setattr(sys, "argv", ["runner", str(target)])
    assert runner.main() == 0
    assert "fig2" in target.read_text()
