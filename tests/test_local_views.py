"""Tests for view extraction and canonicalization — the heart of the
model.  Key invariants: canonicalization is isomorphism-invariant,
boundary edges between distance-r nodes are invisible, and anonymized /
order-normalized forms behave as the paper's definitions demand."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ViewError
from repro.graphs import cycle_graph, grid_graph, path_graph, random_graph, star_graph
from repro.graphs.traversal import is_connected
from repro.local import (
    IdentifierAssignment,
    Instance,
    Labeling,
    PortAssignment,
    extract_all_views,
    extract_view,
)


class TestExtraction:
    def test_radius1_star_structure(self):
        instance = Instance.build(star_graph(3))
        view = extract_view(instance, 0, 1)
        assert view.size == 4
        assert view.center_degree == 3
        assert view.dist == (0, 1, 1, 1)

    def test_center_is_local_zero(self):
        instance = Instance.build(grid_graph(3, 3))
        for v in instance.graph.nodes:
            view = extract_view(instance, v, 2)
            assert view.dist[0] == 0
            assert view.id_of(0) == instance.ids.id_of(v)

    def test_invisible_far_edge(self):
        instance = Instance.build(cycle_graph(5))
        view = extract_view(instance, 0, 2)
        assert view.size == 5
        assert len(view.edges) == 4  # the (2,3) edge of C5 is invisible

    def test_radius_zero_rejected(self):
        instance = Instance.build(path_graph(2))
        with pytest.raises(ViewError):
            extract_view(instance, 0, 0)

    def test_labels_carried(self):
        g = path_graph(3)
        instance = Instance.build(g, labeling=Labeling({0: "a", 1: "b", 2: "c"}))
        view = extract_view(instance, 1, 1)
        assert view.center_label == "b"
        assert sorted(
            view.label_of(w) for w in view.neighbors_in_view(0)
        ) == ["a", "c"]

    def test_unlabeled_instance_gives_none_labels(self):
        instance = Instance.build(path_graph(3))
        view = extract_view(instance, 1, 1)
        assert view.center_label is None


class TestCanonicalization:
    def test_same_view_across_isomorphic_positions(self):
        """In C6 with rotation-symmetric ports, all anonymous views match."""
        g = cycle_graph(6)
        ports = PortAssignment(
            {v: {(v + 1) % 6: 1, (v - 1) % 6: 2} for v in range(6)}
        )
        instance = Instance.build(g, ports=ports)
        views = {
            extract_view(instance, v, 1, include_ids=False) for v in g.nodes
        }
        assert len(views) == 1

    def test_port_sensitivity(self):
        """Swapping ports between *distinguishable* neighbors changes the
        view; between indistinguishable leaves it does not (the whole
        point of canonicalization)."""
        g = path_graph(3)
        labels = Labeling({0: "a", 1: "m", 2: "b"})
        ports_a = PortAssignment({0: {1: 1}, 1: {0: 1, 2: 2}, 2: {1: 1}})
        ports_b = PortAssignment({0: {1: 1}, 1: {0: 2, 2: 1}, 2: {1: 1}})
        va = extract_view(
            Instance.build(g, ports=ports_a, labeling=labels), 1, 1, include_ids=False
        )
        vb = extract_view(
            Instance.build(g, ports=ports_b, labeling=labels), 1, 1, include_ids=False
        )
        assert va != vb
        # Without labels the two leaf neighbors are indistinguishable and
        # the canonical views coincide.
        ua = extract_view(Instance.build(g, ports=ports_a), 1, 1, include_ids=False)
        ub = extract_view(Instance.build(g, ports=ports_b), 1, 1, include_ids=False)
        assert ua == ub

    def test_id_relabeling_changes_identified_view_only(self):
        g = path_graph(3)
        ids_a = IdentifierAssignment({0: 1, 1: 2, 2: 3})
        ids_b = IdentifierAssignment({0: 3, 1: 2, 2: 1})
        ia = Instance.build(g, ids=ids_a, id_bound=3)
        ib = Instance.build(g, ids=ids_b, id_bound=3)
        assert extract_view(ia, 1, 1) != extract_view(ib, 1, 1)
        assert extract_view(ia, 1, 1, include_ids=False) == extract_view(
            ib, 1, 1, include_ids=False
        )

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(3, 8), p=st.floats(0.3, 0.8), seed=st.integers(0, 10**5))
    def test_views_hashable_and_stable(self, n, p, seed):
        g = random_graph(n, p, seed)
        if not is_connected(g):
            return
        instance = Instance.build(g)
        for radius in (1, 2):
            views = extract_all_views(instance, radius)
            again = extract_all_views(instance, radius)
            assert views == again
            assert all(hash(v) == hash(again[k]) for k, v in views.items())

    def test_identified_views_unique_per_node(self):
        instance = Instance.build(grid_graph(3, 3))
        views = extract_all_views(instance, 1)
        assert len(set(views.values())) == 9


class TestViewQueries:
    def test_center_neighbors_sorted_by_port(self):
        instance = Instance.build(star_graph(3))
        view = extract_view(instance, 0, 1)
        ports = [own for _w, own, _far in view.center_neighbors()]
        assert ports == sorted(ports)

    def test_neighbor_via_port(self):
        instance = Instance.build(path_graph(3))
        view = extract_view(instance, 1, 1)
        w = view.neighbor_via_port(1)
        assert view.port(0, w) == 1
        with pytest.raises(ViewError):
            view.neighbor_via_port(9)

    def test_port_missing_edge(self):
        instance = Instance.build(path_graph(3))
        view = extract_view(instance, 0, 1)
        with pytest.raises(ViewError):
            view.port(0, 0)

    def test_degree_in_view_boundary_underestimates(self):
        instance = Instance.build(path_graph(5))
        view = extract_view(instance, 0, 2)
        # node at distance 2 (local index of dist 2) has true degree 2 but
        # only 1 visible edge.
        boundary = [x for x in view.nodes() if view.dist[x] == 2][0]
        assert view.degree_in_view(boundary) == 1

    def test_to_graph(self):
        instance = Instance.build(cycle_graph(6))
        view = extract_view(instance, 0, 2)
        g = view.to_graph()
        assert g.order == view.size
        assert g.size == len(view.edges)


class TestDerivedViews:
    def test_anonymized(self):
        instance = Instance.build(path_graph(3))
        view = extract_view(instance, 1, 1)
        anon = view.anonymized()
        assert anon.is_anonymous
        with pytest.raises(ViewError):
            anon.id_of(0)

    def test_order_normalized(self):
        g = path_graph(3)
        ids = IdentifierAssignment({0: 10, 1: 99, 2: 5})
        instance = Instance.build(g, ids=ids, id_bound=99)
        view = extract_view(instance, 1, 1)
        normalized = view.order_normalized()
        assert set(normalized.ids) == {1, 2, 3}
        # Order preserved: 99 was the largest -> center rank 3.
        assert normalized.ids[0] == 3

    def test_order_normalized_anonymous_raises(self):
        instance = Instance.build(path_graph(3))
        view = extract_view(instance, 1, 1, include_ids=False)
        with pytest.raises(ViewError):
            view.order_normalized()

    def test_structure_key_ignores_id_values(self):
        g = path_graph(3)
        ia = Instance.build(g, ids=IdentifierAssignment({0: 1, 1: 2, 2: 3}), id_bound=9)
        ib = Instance.build(g, ids=IdentifierAssignment({0: 4, 1: 6, 2: 8}), id_bound=9)
        va = extract_view(ia, 1, 1)
        vb = extract_view(ib, 1, 1)
        assert va.structure_key() == vb.structure_key()

    def test_subview_radius1_matches_direct(self):
        instance = Instance.build(grid_graph(3, 3))
        big = extract_view(instance, 4, 2)
        # Inner node: local name of a distance-1 node.
        inner = [x for x in big.nodes() if big.dist[x] == 1][0]
        sub = big.subview_radius1(inner)
        assert sub.radius == 1
        assert sub.dist[0] == 0

    def test_subview_radius1_boundary_raises(self):
        instance = Instance.build(path_graph(5))
        view = extract_view(instance, 0, 2)
        boundary = [x for x in view.nodes() if view.dist[x] == 2][0]
        with pytest.raises(ViewError):
            view.subview_radius1(boundary)

    def test_with_relabeled_ids(self):
        instance = Instance.build(path_graph(3))
        view = extract_view(instance, 1, 1)
        moved = view.with_relabeled_ids({1: 11, 2: 12, 3: 13})
        assert moved.ids == tuple(i + 10 for i in view.ids)
        with pytest.raises(ViewError):
            view.with_relabeled_ids({1: 2})  # collides with existing id 2
