"""Unit tests for graph generators: orders, sizes, degrees, structure."""

import pytest

from repro.errors import GraphError
from repro.graphs import (
    barbell_graph,
    binary_tree,
    book_graph,
    caterpillar_graph,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    empty_graph,
    friendship_graph,
    grid_graph,
    hypercube_graph,
    is_bipartite,
    is_connected,
    is_tree,
    is_watermelon,
    lollipop_with_pendants,
    pan_graph,
    path_graph,
    random_bipartite_graph,
    random_graph,
    random_tree,
    spider_graph,
    star_graph,
    theta_graph,
    toroidal_grid_graph,
    tree_from_prufer,
    watermelon_graph,
)


class TestBasicShapes:
    def test_empty_graph(self):
        g = empty_graph(4)
        assert g.order == 4 and g.size == 0

    def test_path(self):
        g = path_graph(5)
        assert g.order == 5 and g.size == 4
        assert g.degree_sequence() == [2, 2, 2, 1, 1]

    def test_cycle(self):
        g = cycle_graph(7)
        assert g.order == 7 and g.size == 7
        assert all(g.degree(v) == 2 for v in g.nodes)

    def test_star(self):
        g = star_graph(4)
        assert g.order == 5 and g.degree(0) == 4

    def test_complete(self):
        g = complete_graph(5)
        assert g.size == 10

    def test_complete_bipartite(self):
        g = complete_bipartite_graph(2, 3)
        assert g.size == 6 and is_bipartite(g)

    @pytest.mark.parametrize("bad_call", [
        lambda: path_graph(0),
        lambda: cycle_graph(2),
        lambda: star_graph(0),
        lambda: grid_graph(0, 3),
        lambda: watermelon_graph([1, 2]),
        lambda: watermelon_graph([]),
    ])
    def test_invalid_parameters(self, bad_call):
        with pytest.raises(GraphError):
            bad_call()


class TestGridsAndTori:
    def test_grid_structure(self):
        g = grid_graph(3, 4)
        assert g.order == 12
        assert g.size == 3 * 3 + 2 * 4  # horizontal + vertical edges
        assert is_bipartite(g)

    def test_torus_regular(self):
        g = toroidal_grid_graph(4, 6)
        assert all(g.degree(v) == 4 for v in g.nodes)

    def test_torus_bipartite_iff_even_dims(self):
        assert is_bipartite(toroidal_grid_graph(4, 6))
        assert not is_bipartite(toroidal_grid_graph(3, 4))

    def test_hypercube(self):
        g = hypercube_graph(3)
        assert g.order == 8 and g.size == 12
        assert is_bipartite(g)


class TestTrees:
    def test_binary_tree(self):
        g = binary_tree(3)
        assert g.order == 15 and is_tree(g)

    def test_spider(self):
        g = spider_graph(3, 2)
        assert g.order == 7 and is_tree(g)
        assert g.degree(0) == 3

    def test_caterpillar(self):
        g = caterpillar_graph(4, 2)
        assert g.order == 12 and is_tree(g)

    def test_random_tree_is_tree(self):
        for seed in range(5):
            for n in (1, 2, 3, 8):
                assert is_tree(random_tree(n, seed))

    def test_prufer_roundtrip_known(self):
        # Prüfer sequence (3, 3) encodes a star centered at 3 on 4 nodes.
        g = tree_from_prufer([3, 3])
        assert g.degree(3) == 3
        assert is_tree(g)


class TestCycleVariants:
    def test_pan(self):
        g = pan_graph(5, 2)
        assert g.order == 7
        assert g.min_degree() == 1

    def test_theta(self):
        g = theta_graph(2, 3, 4)
        assert g.degree(0) == 3 and g.degree(1) == 3
        assert g.order == 2 + 1 + 2 + 3

    def test_watermelon(self):
        g = watermelon_graph([2, 2, 2, 2])
        assert g.degree(0) == 4
        assert is_watermelon(g)

    def test_book_and_friendship_not_bipartite(self):
        assert not is_bipartite(book_graph(2))
        assert not is_bipartite(friendship_graph(2))

    def test_lollipop_with_pendants(self):
        g = lollipop_with_pendants(4, 2)
        assert g.min_degree() == 1
        assert g.order == 6

    def test_barbell(self):
        g = barbell_graph(3, 2)
        assert is_connected(g)
        assert g.order == 7


class TestRandomGraphs:
    def test_random_graph_deterministic_per_seed(self):
        assert random_graph(8, 0.4, 7) == random_graph(8, 0.4, 7)
        assert random_graph(8, 0.4, 7) != random_graph(8, 0.4, 8)

    def test_random_bipartite_is_bipartite(self):
        for seed in range(4):
            assert is_bipartite(random_bipartite_graph(4, 5, 0.6, seed))

    def test_probability_bounds(self):
        with pytest.raises(GraphError):
            random_graph(4, 1.5, 0)
