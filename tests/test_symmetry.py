"""Unit tests for the symmetry layer: orderly generation, automorphism
groups, frozen family caches, and the canonical-form plumbing they share.

The load-bearing claim of :mod:`repro.symmetry` is *exactness*: the
orderly generator must emit the same representative stream as the legacy
edge-subset enumerator (so every cache and provenance count downstream is
unchanged), and the automorphism groups it seeds must be the true groups
(so orbit pruning never merges labelings that are not actually
equivalent).  These tests pin both against brute-force oracles.
"""

from __future__ import annotations

import pickle

import pytest

from repro.graphs.encoding import are_isomorphic
from repro.graphs.families import (
    _enumerate_graphs_exactly,
    all_graphs_exactly,
    clear_family_cache,
    enumerate_graphs_exactly_reference,
    family_cache_snapshot,
    prime_family_cache,
    warm_graph_families,
)
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.graphs.graph import FrozenGraph, Graph, GraphError
from repro.perf import overridden
from repro.symmetry import (
    automorphism_group,
    clear_automorphism_cache,
    clear_orderly_cache,
    count_classes,
    orderly_graphs_exactly,
    seed_automorphisms,
)

# OEIS A000088 (graphs on n nodes) and A001349 (connected graphs).
ALL_COUNTS = [1, 1, 2, 4, 11, 34, 156, 1044]
CONNECTED_COUNTS = [1, 1, 1, 2, 6, 21, 112, 853]


# ---------------------------------------------------------------------------
# Orderly generation
# ---------------------------------------------------------------------------


class TestOrderlyGeneration:
    def test_class_counts_match_known_sequences(self):
        clear_orderly_cache()
        for n in range(1, 8):
            assert count_classes(n, connected_only=False) == ALL_COUNTS[n]
            assert count_classes(n, connected_only=True) == CONNECTED_COUNTS[n]

    @pytest.mark.parametrize("connected_only", [True, False])
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_matches_reference_oracle_up_to_isomorphism(self, n, connected_only):
        orderly = list(orderly_graphs_exactly(n, connected_only=connected_only))
        reference = list(
            enumerate_graphs_exactly_reference(n, connected_only=connected_only)
        )
        assert len(orderly) == len(reference)
        # One representative per class, and the classes are the same.
        for g in orderly:
            assert sum(1 for h in reference if are_isomorphic(g, h)) == 1
        for i, g in enumerate(orderly):
            assert not any(are_isomorphic(g, h) for h in orderly[i + 1 :])

    @pytest.mark.parametrize("connected_only", [True, False])
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    def test_emission_stream_identical_to_legacy(self, n, connected_only):
        # Not just the same classes: the same representatives, in the
        # same order, with the same node names — downstream caches key
        # on the labelled stream, so it must be byte-identical.
        orderly = [
            (tuple(g.nodes), tuple(g.edges))
            for g in orderly_graphs_exactly(n, connected_only=connected_only)
        ]
        legacy = [
            (tuple(g.nodes), tuple(g.edges))
            for g in _enumerate_graphs_exactly(n, connected_only)
        ]
        assert orderly == legacy

    def test_emission_stream_identical_to_legacy_n6_connected(self):
        orderly = [tuple(g.edges) for g in orderly_graphs_exactly(6)]
        legacy = [tuple(g.edges) for g in _enumerate_graphs_exactly(6, True)]
        assert orderly == legacy

    def test_generator_seeds_true_automorphism_groups(self):
        # The groups seeded at emission time must equal the groups
        # computed from scratch on the emitted graph.
        for g in orderly_graphs_exactly(5):
            seeded = automorphism_group(g)
            clear_automorphism_cache()
            fresh = automorphism_group(g)
            assert set(seeded.perms) == set(fresh.perms)


# ---------------------------------------------------------------------------
# Automorphism groups and orbits
# ---------------------------------------------------------------------------


class TestAutomorphismGroups:
    @pytest.mark.parametrize(
        "graph, order",
        [
            (path_graph(2), 2),
            (path_graph(4), 2),  # reversal only
            (cycle_graph(4), 8),  # dihedral D4
            (cycle_graph(5), 10),  # dihedral D5
            (cycle_graph(6), 12),  # dihedral D6
            (star_graph(4), 24),  # S4 on the leaves
            (complete_graph(4), 24),  # S4
            (complete_graph(5), 120),  # S5
        ],
    )
    def test_group_orders(self, graph, order):
        clear_automorphism_cache()
        group = automorphism_group(graph)
        assert group.order == order
        # Every permutation really is an automorphism.
        nodes = tuple(graph.nodes)
        index = {v: i for i, v in enumerate(nodes)}
        edges = {frozenset((index[u], index[v])) for u, v in graph.edges}
        for perm in group.perms:
            assert {frozenset((perm[a], perm[b])) for e in edges for a, b in [tuple(e)]} == edges

    def test_path_orbits_pair_mirror_nodes(self):
        group = automorphism_group(path_graph(4))
        # 0-1-2-3: reversal pairs {0,3} and {1,2}.
        assert {frozenset(o) for o in group.orbits()} == {
            frozenset({0, 3}),
            frozenset({1, 2}),
        }

    @pytest.mark.parametrize("n", [4, 5, 6])
    def test_cycle_orbits_are_transitive(self, n):
        group = automorphism_group(cycle_graph(n))
        assert len(group.orbits()) == 1
        assert len(group.orbits()[0]) == n

    def test_star_orbits_split_hub_from_leaves(self):
        group = automorphism_group(star_graph(4))
        orbits = {frozenset(o) for o in group.orbits()}
        hub = frozenset({0})
        leaves = frozenset({1, 2, 3, 4})
        assert orbits == {hub, leaves}

    def test_complete_graph_is_node_transitive(self):
        group = automorphism_group(complete_graph(5))
        assert group.orbits() == ((0, 1, 2, 3, 4),)
        assert not group.is_trivial

    def test_asymmetric_graph_has_trivial_group(self):
        # Smallest asymmetric graphs have 6 nodes; this is one of them.
        g = Graph(range(6), [(0, 1), (1, 2), (2, 3), (3, 4), (1, 4), (2, 5), (3, 5)])
        group = automorphism_group(g)
        assert group.is_trivial
        assert group.order == 1

    def test_seed_automorphisms_short_circuits_recomputation(self):
        clear_automorphism_cache()
        g = cycle_graph(4)
        fake = ((0, 1, 2, 3),)  # deliberately wrong: identity only
        seed_automorphisms(g, fake)
        assert automorphism_group(g).perms == fake
        clear_automorphism_cache()
        assert automorphism_group(g).order == 8


# ---------------------------------------------------------------------------
# FrozenGraph and the family cache fast path
# ---------------------------------------------------------------------------


class TestFrozenFamilies:
    def test_frozen_graph_mutators_raise(self):
        frozen = FrozenGraph(range(3), [(0, 1), (1, 2)])
        with pytest.raises(GraphError):
            frozen.add_node(3)
        with pytest.raises(GraphError):
            frozen.add_edge(0, 2)
        with pytest.raises(GraphError):
            frozen.remove_edge(0, 1)
        with pytest.raises(GraphError):
            frozen.remove_node(0)

    def test_frozen_graph_copy_is_mutable(self):
        frozen = FrozenGraph.freeze(path_graph(3))
        thawed = frozen.copy()
        assert type(thawed) is Graph
        thawed.add_edge(0, 2)
        assert (0, 2) in {tuple(sorted(e)) for e in thawed.edges}
        assert (0, 2) not in {tuple(sorted(e)) for e in frozen.edges}

    def test_frozen_graph_pickle_roundtrip(self):
        frozen = FrozenGraph.freeze(cycle_graph(5))
        clone = pickle.loads(pickle.dumps(frozen))
        assert isinstance(clone, FrozenGraph)
        assert tuple(clone.nodes) == tuple(frozen.nodes)
        assert clone.edges == frozen.edges
        with pytest.raises(GraphError):
            clone.add_edge(0, 2)

    def test_immutable_fast_path_shares_representatives(self):
        clear_family_cache()
        first = list(all_graphs_exactly(4, mutable=False))
        second = list(all_graphs_exactly(4, mutable=False))
        assert all(a is b for a, b in zip(first, second))
        assert all(isinstance(g, FrozenGraph) for g in first)

    def test_mutable_path_returns_defensive_copies(self):
        clear_family_cache()
        first = list(all_graphs_exactly(4, mutable=True))
        second = list(all_graphs_exactly(4, mutable=True))
        assert all(a is not b for a, b in zip(first, second))
        assert all(type(g) is Graph for g in first)
        # Same content either way.
        frozen = list(all_graphs_exactly(4, mutable=False))
        assert [g.edges for g in first] == [g.edges for g in frozen]

    def test_snapshot_prime_roundtrip(self):
        clear_family_cache()
        warmed = warm_graph_families(0, 4)
        snapshot = family_cache_snapshot()
        assert warmed == len(snapshot) == 4
        assert snapshot  # something was enumerated
        clear_family_cache()
        assert family_cache_snapshot() == {}
        prime_family_cache(snapshot)
        assert family_cache_snapshot() == snapshot
        # A primed cache serves without regeneration (identity check).
        for (n, connected_only), graphs in snapshot.items():
            served = tuple(all_graphs_exactly(n, connected_only, mutable=False))
            assert all(a is b for a, b in zip(served, graphs))

    @pytest.mark.parametrize("mode", ["auto", "on", "off"])
    def test_family_stream_is_generator_independent(self, mode):
        clear_family_cache()
        with overridden(symmetry=mode):
            stream = [g.edges for g in all_graphs_exactly(5)]
        clear_family_cache()
        with overridden(symmetry="off"):
            legacy = [g.edges for g in all_graphs_exactly(5)]
        assert stream == legacy
