"""Tests for the finite Ramsey search and the Lemma 6.2 reduction."""

import pytest

from repro.certification import FunctionDecoder
from repro.errors import ViewError
from repro.graphs import path_graph
from repro.local import Instance, Labeling, extract_view, is_order_invariant_on
from repro.ramsey import (
    RamseyOrderInvariantDecoder,
    decoder_type,
    find_monochromatic_set,
    is_monochromatic,
    max_view_size,
    ramsey_order_invariant_reduction,
    ramsey_upper_bound_pairs,
    structure_catalog,
    structure_of,
    subset_colors,
    view_with_ids,
)


class TestFiniteRamsey:
    def test_pair_coloring_parity(self):
        """Color pairs by sum parity: {evens} and {odds} are the
        monochromatic sets."""
        color = lambda pair: (pair[0] + pair[1]) % 2  # noqa: E731
        mono = find_monochromatic_set(color, range(1, 20), 2, 5)
        assert mono is not None
        assert is_monochromatic(color, mono, 2)
        parities = {x % 2 for x in mono}
        assert len(parities) == 1

    def test_constant_coloring_trivial(self):
        mono = find_monochromatic_set(lambda s: 0, range(10), 3, 6)
        assert mono == (0, 1, 2, 3, 4, 5)

    def test_universe_too_small_returns_none(self):
        # Rainbow coloring on a tiny universe: no mono triple of size 4.
        color = lambda pair: pair  # every pair its own color  # noqa: E731
        assert find_monochromatic_set(color, range(4), 2, 3) is None

    def test_target_below_subset_size(self):
        assert find_monochromatic_set(lambda s: 0, range(5), 3, 2) == (0, 1)

    def test_subset_colors_table(self):
        table = subset_colors(lambda s: sum(s) % 3, [1, 2, 3], 2)
        assert len(table) == 3

    def test_upper_bound_grows(self):
        assert ramsey_upper_bound_pairs(2, 3) > ramsey_upper_bound_pairs(2, 2)
        assert ramsey_upper_bound_pairs(2, 1) == 1


class TestStructureTypes:
    def _setup(self):
        decoder = FunctionDecoder(
            lambda view: view.center_label == view.center_id % 2,
            anonymous=False,
            name="id-parity",
        )
        g = path_graph(5)
        instance = Instance.build(g, id_bound=20).with_labeling(
            Labeling({v: (v + 1) % 2 for v in g.nodes})
        )
        return decoder, instance

    def test_structure_of_normalizes(self):
        _decoder, instance = self._setup()
        view = extract_view(instance, 2, 1)
        structure = structure_of(view)
        assert set(structure.ids) == {1, 2, 3}

    def test_view_with_ids_roundtrip(self):
        _decoder, instance = self._setup()
        view = extract_view(instance, 2, 1)
        structure = structure_of(view)
        rebuilt = view_with_ids(
            structure, tuple(sorted(view.ids)), id_bound=view.id_bound
        )
        assert rebuilt == view

    def test_view_with_ids_needs_enough(self):
        _decoder, instance = self._setup()
        structure = structure_of(extract_view(instance, 2, 1))
        with pytest.raises(ViewError):
            view_with_ids(structure, (1,))

    def test_catalog_distinct(self):
        decoder, instance = self._setup()
        catalog = structure_catalog(decoder, [instance])
        assert len(catalog) == len(set(catalog))
        assert max_view_size(catalog) == 3

    def test_decoder_type_length(self):
        decoder, instance = self._setup()
        catalog = structure_catalog(decoder, [instance])
        t = decoder_type(decoder, (2, 4, 6), catalog)
        assert len(t) == len(catalog)


class TestReduction:
    def _pipeline(self):
        decoder = FunctionDecoder(
            lambda view: view.center_label == view.center_id % 2,
            anonymous=False,
            name="id-parity",
        )
        g = path_graph(5)
        instance = Instance.build(g, id_bound=24).with_labeling(
            Labeling({v: (v + 1) % 2 for v in g.nodes})
        )
        catalog = structure_catalog(decoder, [instance])
        return decoder, catalog

    def test_reduction_finds_set_and_invariance(self):
        decoder, catalog = self._pipeline()
        reduction, dprime = ramsey_order_invariant_reduction(
            decoder, catalog, tuple(range(1, 25)), target_size=6
        )
        assert reduction.succeeded
        assert dprime is not None
        probe = Instance.build(path_graph(4), id_bound=4).with_labeling(
            Labeling({v: v % 2 for v in path_graph(4).nodes})
        )
        assert not is_order_invariant_on(decoder, probe)
        assert is_order_invariant_on(dprime, probe)

    def test_dprime_agrees_on_monochromatic_ids(self):
        from repro.local import IdentifierAssignment

        decoder, catalog = self._pipeline()
        reduction, dprime = ramsey_order_invariant_reduction(
            decoder, catalog, tuple(range(1, 25)), target_size=6
        )
        chosen = sorted(reduction.monochromatic_set)
        g = path_graph(5)
        ids = IdentifierAssignment({i: chosen[i] for i in range(5)})
        # A labeling the search prover would accept under these ids.
        labeling = Labeling({i: chosen[i] % 2 for i in range(5)})
        instance = Instance.build(g, ids=ids, id_bound=24).with_labeling(labeling)
        for v in g.nodes:
            view = extract_view(instance, v, 1)
            assert dprime.decide(view) == decoder.decide(view)

    def test_dprime_view_too_large(self):
        decoder, catalog = self._pipeline()
        _reduction, dprime = ramsey_order_invariant_reduction(
            decoder, catalog, tuple(range(1, 25)), target_size=3
        )
        assert isinstance(dprime, RamseyOrderInvariantDecoder)
        big = Instance.build(path_graph(9), id_bound=9).with_labeling(
            Labeling({v: 0 for v in path_graph(9).nodes})
        )
        view = extract_view(big, 4, 2)  # 5 identifiers > |mono set| = 3
        with pytest.raises(ViewError):
            dprime.decide(view)
