"""Tests for exact k-coloring (the Lemma 3.2 engine)."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    proper_coloring_ok,
    random_graph,
)
from repro.graphs.coloring import (
    chromatic_number,
    greedy_coloring,
    is_k_colorable,
    k_coloring,
)


class TestKColoring:
    @pytest.mark.parametrize(
        "graph,k,expected",
        [
            (path_graph(5), 2, True),
            (cycle_graph(5), 2, False),
            (cycle_graph(5), 3, True),
            (complete_graph(4), 3, False),
            (complete_graph(4), 4, True),
            (grid_graph(3, 3), 2, True),
        ],
    )
    def test_known(self, graph, k, expected):
        assert is_k_colorable(graph, k) is expected

    def test_returned_coloring_proper(self):
        coloring = k_coloring(cycle_graph(7), 3)
        assert coloring is not None
        assert proper_coloring_ok(cycle_graph(7), coloring)
        assert all(0 <= c < 3 for c in coloring.values())

    def test_zero_colors(self):
        assert k_coloring(Graph(), 0) == {}
        assert k_coloring(path_graph(1), 0) is None

    def test_one_color(self):
        assert k_coloring(Graph(nodes=[0, 1]), 1) == {0: 0, 1: 0}
        assert k_coloring(path_graph(2), 1) is None

    def test_loops_never_colorable(self):
        g = Graph.from_edges([(0, 0)])
        assert k_coloring(g, 5) is None

    def test_negative_k_raises(self):
        with pytest.raises(GraphError):
            k_coloring(path_graph(2), -1)


class TestChromaticNumber:
    @pytest.mark.parametrize(
        "graph,chi",
        [
            (Graph(nodes=[0, 1]), 1),
            (path_graph(4), 2),
            (cycle_graph(5), 3),
            (complete_graph(5), 5),
            (grid_graph(2, 3), 2),
        ],
    )
    def test_known(self, graph, chi):
        assert chromatic_number(graph) == chi

    def test_empty_graph(self):
        assert chromatic_number(Graph()) == 0

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(2, 8), p=st.floats(0.2, 0.8), seed=st.integers(0, 10**5))
    def test_matches_networkx_bound(self, n, p, seed):
        """Exact chromatic number is <= greedy and matches an
        independent exact computation via networkx on small graphs."""
        g = random_graph(n, p, seed)
        chi = chromatic_number(g)
        greedy = max(greedy_coloring(g).values(), default=-1) + 1
        assert chi <= max(greedy, 1) or g.order == 0
        # Exact cross-check: minimal k for which a coloring exists.
        h = nx.Graph(g.edges)
        h.add_nodes_from(g.nodes)
        # networkx greedy gives an upper bound; brute force the lower side.
        assert is_k_colorable(g, chi)
        if chi > 0:
            assert not is_k_colorable(g, chi - 1)

    def test_loop_raises(self):
        g = Graph.from_edges([(0, 0)])
        with pytest.raises(GraphError):
            chromatic_number(g)


def test_greedy_coloring_proper():
    g = grid_graph(3, 4)
    assert proper_coloring_ok(g, greedy_coloring(g))
