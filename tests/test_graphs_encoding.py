"""Tests for canonical forms, isomorphism, and family enumeration."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    Graph,
    are_isomorphic,
    canonical_form,
    complete_graph,
    cycle_graph,
    find_isomorphism,
    graph_key,
    path_graph,
    random_graph,
    star_graph,
)
from repro.graphs.encoding import adjacency_matrix
from repro.graphs.families import (
    all_graphs_exactly,
    all_graphs_up_to,
    bipartite_graphs_up_to,
    even_cycles_up_to,
    min_degree_one_graphs_up_to,
    non_bipartite_graphs_up_to,
    shatter_graphs_up_to,
    watermelon_graphs_up_to,
)


class TestCanonicalForm:
    def test_relabeling_invariant(self):
        g = cycle_graph(5)
        h = g.relabeled({0: 3, 1: 4, 2: 0, 3: 1, 4: 2})
        assert canonical_form(g) == canonical_form(h)

    def test_distinguishes_path_from_star(self):
        assert canonical_form(path_graph(4)) != canonical_form(star_graph(3))

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(2, 6), p=st.floats(0.2, 0.8), seed=st.integers(0, 10**5),
           perm_seed=st.integers(0, 10**5))
    def test_random_relabeling_invariant(self, n, p, seed, perm_seed):
        import random

        g = random_graph(n, p, seed)
        nodes = g.nodes
        shuffled = list(nodes)
        random.Random(perm_seed).shuffle(shuffled)
        h = g.relabeled(dict(zip(nodes, shuffled)))
        assert canonical_form(g) == canonical_form(h)


class TestIsomorphism:
    def test_isomorphic_cycles(self):
        g = cycle_graph(6)
        h = g.relabeled({i: (i * 5) % 6 for i in range(6)})
        assert are_isomorphic(g, h)
        iso = find_isomorphism(g, h)
        assert iso is not None
        for a, b in g.edges:
            assert h.has_edge(iso[a], iso[b])

    def test_non_isomorphic_same_degrees(self):
        # C6 vs two triangles: same degree sequence, different graphs.
        g = cycle_graph(6)
        h = Graph.from_edges([(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
        assert not are_isomorphic(g, h)
        assert find_isomorphism(g, h) is None

    def test_matches_networkx(self):
        for seed in range(6):
            g = random_graph(6, 0.5, seed)
            h = random_graph(6, 0.5, seed + 100)
            ng = nx.Graph(g.edges)
            ng.add_nodes_from(g.nodes)
            nh = nx.Graph(h.edges)
            nh.add_nodes_from(h.nodes)
            assert are_isomorphic(g, h) == nx.is_isomorphic(ng, nh)


class TestGraphKey:
    def test_labelled_key_distinguishes(self):
        assert graph_key(path_graph(3)) != graph_key(star_graph(2).relabeled({0: 1, 1: 0, 2: 2}))

    def test_key_stable(self):
        assert graph_key(cycle_graph(4)) == graph_key(cycle_graph(4))


def test_adjacency_matrix():
    m = adjacency_matrix(path_graph(3))
    assert m == [[0, 1, 0], [1, 0, 1], [0, 1, 0]]


class TestFamilyCounts:
    """Counts cross-checked against OEIS A001349 (connected graphs)."""

    @pytest.mark.parametrize("n,count", [(1, 1), (2, 1), (3, 2), (4, 6), (5, 21)])
    def test_connected_graph_counts(self, n, count):
        assert sum(1 for _ in all_graphs_exactly(n)) == count

    def test_connected_graphs_n6(self):
        assert sum(1 for _ in all_graphs_exactly(6)) == 112

    def test_up_to_accumulates(self):
        assert sum(1 for _ in all_graphs_up_to(4)) == 1 + 1 + 2 + 6

    def test_bipartite_counts(self):
        # Connected bipartite graphs on 1..5 nodes: 1,1,1,3,5  (A005142).
        for n, count in [(1, 1), (2, 2), (3, 3), (4, 6), (5, 11)]:
            assert sum(1 for _ in bipartite_graphs_up_to(n)) == count

    def test_partition_bipartite_plus_nonbipartite(self):
        total = sum(1 for _ in all_graphs_up_to(5))
        bip = sum(1 for _ in bipartite_graphs_up_to(5))
        non = sum(1 for _ in non_bipartite_graphs_up_to(5))
        assert bip + non == total

    def test_even_cycles(self):
        cycles = list(even_cycles_up_to(8))
        assert sorted(c.order for c in cycles) == [4, 6, 8]

    def test_min_degree_one_family(self):
        for g in min_degree_one_graphs_up_to(5):
            assert g.min_degree() == 1

    def test_shatter_family_membership(self):
        from repro.graphs import has_shatter_point

        graphs = list(shatter_graphs_up_to(5))
        assert graphs
        assert all(has_shatter_point(g) for g in graphs)

    def test_watermelon_family_membership(self):
        from repro.graphs import is_watermelon

        graphs = list(watermelon_graphs_up_to(5))
        assert graphs
        assert all(is_watermelon(g) for g in graphs)
