"""Plan-equivalence properties of the unified hiding engine.

The engine's contract: every plan (backend × workers × cache tiers) that
answers the same question yields the *identical* decision — same hiding
flag, byte-identical canonical witness walk, and on conclusive
non-hiding sweeps the same complete graph and coloring — and the
verdict's provenance reports the backend that actually ran.
"""

from __future__ import annotations

import pytest

from repro.core.registry import all_lcps, make_lcp
from repro.engine import (
    BACKEND_MATERIALIZED,
    BACKEND_STREAMING,
    BACKEND_VECTORIZED,
    ExecutionPlan,
    RunContext,
    Verdict,
    available_backends,
    clear_engine_state,
    decide_hiding,
    resolve_plan,
)
from repro.graphs.properties import is_odd_closed_walk
from repro.kernel import kernel_available
from repro.perf import PerfStats, overridden
from repro.perf.config import PerfConfig

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False


@pytest.fixture(autouse=True)
def _fresh_engine_state():
    clear_engine_state()
    yield
    clear_engine_state()


def _grid_backends():
    """Backends the equivalence grid exercises: the vectorized kernel
    backend joins whenever numpy is importable (it must answer with the
    same bytes as the other two)."""
    backends = [BACKEND_MATERIALIZED, BACKEND_STREAMING]
    if kernel_available():
        backends.append(BACKEND_VECTORIZED)
    return backends


def _plan_grid(tmp_path):
    """Every (backend × workers × cache tier) combination of the
    acceptance criterion.  Disk-tier plans get a private cache dir."""
    plans = []
    for backend in _grid_backends():
        for workers in (1, 2):
            plans.append(
                (
                    f"{backend}-w{workers}-nocache",
                    ExecutionPlan(
                        backend=backend,
                        workers=workers,
                        warm_start=False,
                        memory_cache=False,
                        disk_cache=False,
                    ),
                    None,
                )
            )
            plans.append(
                (
                    f"{backend}-w{workers}-memory",
                    ExecutionPlan(
                        backend=backend,
                        workers=workers,
                        warm_start=False,
                        memory_cache=True,
                        disk_cache=False,
                    ),
                    None,
                )
            )
            plans.append(
                (
                    f"{backend}-w{workers}-memory+disk",
                    ExecutionPlan(
                        backend=backend,
                        workers=workers,
                        warm_start=False,
                        memory_cache=True,
                        disk_cache=True,
                    ),
                    str(tmp_path / f"{backend}-w{workers}"),
                )
            )
    return plans


@pytest.mark.parametrize("scheme", sorted(all_lcps()))
def test_every_plan_yields_the_identical_decision(scheme, tmp_path):
    """The acceptance criterion: for every registry scheme, every plan in
    the grid produces the same decision fingerprint — including the
    canonical witness walk — and honest backend provenance."""
    lcp = make_lcp(scheme)
    n = 4
    fingerprints = {}
    for label, plan, cache_dir in _plan_grid(tmp_path):
        clear_engine_state()
        with overridden(disk_cache_dir=cache_dir):
            verdict = decide_hiding(lcp, n, plan, ctx=RunContext.isolated())
        assert isinstance(verdict, Verdict), label
        assert verdict.provenance.backend == plan.backend, label
        assert verdict.hiding in (True, False), label
        if verdict.hiding and lcp.k == 2:
            g = verdict.ngraph
            walk = [g.index[view] for view in verdict.witness]
            assert is_odd_closed_walk(g.to_graph(), walk), label
        fingerprints[label] = verdict.decision_fingerprint()
    distinct = set(fingerprints.values())
    assert len(distinct) == 1, (
        f"{scheme}: plans disagree: "
        f"{ {label: fp[:60] for label, fp in fingerprints.items()} }"
    )


def test_every_campaign_cell_is_plan_equivalent(tmp_path):
    """The campaign-layer acceptance criterion: every cell of a small
    frontier campaign — including off-native ``k`` — answers with the
    identical decision fingerprint across backends × cache tiers."""
    from repro.campaign import CampaignSpec

    spec = CampaignSpec.sweep(
        ("degree-one", "even-cycle"), n_max=4, n_min=3, k_values=(2, 3)
    )
    for cell in spec.cells():
        lcp = make_lcp(cell.scheme)
        fingerprints = {}
        for backend in _grid_backends():
            tiers = [
                ("nocache", False, False, None),
                ("memory", True, False, None),
                ("memory+disk", True, True, str(tmp_path / backend)),
            ]
            for tier, memory_cache, disk_cache, cache_dir in tiers:
                label = f"{backend}-{tier}"
                base = ExecutionPlan(
                    backend=backend,
                    warm_start=False,
                    memory_cache=memory_cache,
                    disk_cache=disk_cache,
                )
                clear_engine_state()
                with overridden(disk_cache_dir=cache_dir):
                    verdict = decide_hiding(
                        lcp,
                        cell.n,
                        cell.plan(base),
                        k=cell.k,
                        r=cell.r,
                        ctx=RunContext.isolated(),
                    )
                assert verdict.hiding in (True, False), (cell.label(), label)
                fingerprints[label] = verdict.decision_fingerprint()
        assert len(set(fingerprints.values())) == 1, (
            f"{cell.label()}: plans disagree: "
            f"{ {label: fp[:60] for label, fp in fingerprints.items()} }"
        )


@pytest.mark.parametrize("scheme", ["degree-one", "revealing", "even-cycle"])
def test_plan_equivalence_at_n5_serial(scheme, tmp_path):
    lcp = make_lcp(scheme)
    fps = set()
    for backend in _grid_backends():
        clear_engine_state()
        plan = ExecutionPlan(
            backend=backend, workers=1, warm_start=False, disk_cache=False
        )
        fps.add(decide_hiding(lcp, 5, plan).decision_fingerprint())
    assert len(fps) == 1


@pytest.mark.skipif(not kernel_available(), reason="numpy not importable")
@pytest.mark.parametrize("scheme", sorted(all_lcps()))
@pytest.mark.parametrize("symmetry", ["off", "on"])
def test_vectorized_matches_streaming_exactly(scheme, symmetry, tmp_path):
    """The kernel backend is a drop-in for streaming: same decision
    bytes, same witness, and the same ``Provenance.instances_scanned``
    under early exit (the kernel must stop at the same instance) — with
    and without orbit pruning.  With early exit off, the materialized
    backend agrees on the count too."""
    lcp = make_lcp(scheme)
    n = 4
    for early_exit in (True, False):
        verdicts = {}
        for backend in (BACKEND_STREAMING, BACKEND_VECTORIZED):
            clear_engine_state()
            plan = ExecutionPlan(
                backend=backend,
                workers=1,
                early_exit=early_exit,
                warm_start=False,
                memory_cache=False,
                disk_cache=False,
                symmetry=symmetry,
            )
            verdicts[backend] = decide_hiding(lcp, n, plan, ctx=RunContext.isolated())
        stream, vec = verdicts[BACKEND_STREAMING], verdicts[BACKEND_VECTORIZED]
        assert vec.decision_fingerprint() == stream.decision_fingerprint()
        assert vec.witness == stream.witness
        assert (
            vec.provenance.instances_scanned == stream.provenance.instances_scanned
        )
        assert vec.provenance.kernel == "batch"
        assert stream.provenance.kernel is None
        if not early_exit:
            clear_engine_state()
            mat = decide_hiding(
                lcp,
                n,
                ExecutionPlan(
                    backend=BACKEND_MATERIALIZED,
                    workers=1,
                    memory_cache=False,
                    disk_cache=False,
                    symmetry=symmetry,
                ),
                ctx=RunContext.isolated(),
            )
            assert vec.decision_fingerprint() == mat.decision_fingerprint()
            assert (
                vec.provenance.instances_scanned == mat.provenance.instances_scanned
            )


def test_warm_started_chain_keeps_the_fingerprint():
    """Warm-started sweeps (including the witness shortcut) answer with
    the same decision bytes as cold ones, and say so in provenance."""
    lcp = make_lcp("degree-one")
    cold = {}
    for n in (3, 4, 5):
        clear_engine_state()
        cold[n] = decide_hiding(
            lcp,
            n,
            ExecutionPlan(backend="streaming", warm_start=False, disk_cache=False),
        )
    clear_engine_state()
    warm4 = None
    for n in (3, 4, 5):
        warm = decide_hiding(
            lcp,
            n,
            ExecutionPlan(backend="streaming", warm_start=True, disk_cache=False),
        )
        assert warm.decision_fingerprint() == cold[n].decision_fingerprint()
        if n == 4:
            warm4 = warm
    # degree-one hides at n = 4, so n = 5 was answered by the witness
    # shortcut without a sweep.
    assert warm4.hiding is True
    last = decide_hiding(
        lcp,
        5,
        ExecutionPlan(
            backend="streaming", warm_start=True, disk_cache=False, memory_cache=False
        ),
    )
    assert last.provenance.warm_witness_hit is True


def test_provenance_reports_the_backend_that_ran():
    lcp = make_lcp("degree-one")
    for backend in _grid_backends():
        clear_engine_state()
        verdict = decide_hiding(
            lcp, 3, ExecutionPlan(backend=backend, disk_cache=False)
        )
        assert verdict.provenance.backend == backend
        assert verdict.provenance.n == 3
        assert verdict.provenance.summary()
        expected_kernel = "batch" if backend == BACKEND_VECTORIZED else None
        assert verdict.provenance.kernel == expected_kernel


def test_auto_backend_follows_the_config():
    lcp = make_lcp("degree-one")
    with overridden(streaming=False):
        v = decide_hiding(lcp, 3, ExecutionPlan(disk_cache=False))
    assert v.provenance.backend == BACKEND_MATERIALIZED
    clear_engine_state()
    # The streaming route upgrades itself to the vectorized kernel
    # backend whenever numpy is importable.
    expected = BACKEND_VECTORIZED if kernel_available() else BACKEND_STREAMING
    with overridden(streaming=True):
        v = decide_hiding(lcp, 3, ExecutionPlan(disk_cache=False))
    assert v.provenance.backend == expected


def test_memory_tier_returns_the_identical_object():
    lcp = make_lcp("revealing")
    plan = ExecutionPlan(backend="materialized", disk_cache=False)
    first = decide_hiding(lcp, 4, plan)
    again = decide_hiding(lcp, 4, plan)
    assert again is first


def test_disk_tier_round_trip_marks_provenance(tmp_path):
    lcp = make_lcp("degree-one")
    plan = ExecutionPlan(
        backend="streaming", warm_start=False, disk_cache=True, memory_cache=False
    )
    with overridden(disk_cache_dir=str(tmp_path)):
        stats = PerfStats()
        first = decide_hiding(lcp, 4, plan, ctx=RunContext(stats=stats))
        assert stats.get("persist_writes") == 1
        assert first.provenance.disk_cache_hit is False
        stats = PerfStats()
        second = decide_hiding(lcp, 4, plan, ctx=RunContext(stats=stats))
        assert stats.get("disk_hits") == 1
    assert second.provenance.disk_cache_hit is True
    assert second.decision_fingerprint() == first.decision_fingerprint()
    assert first.ngraph.has_provenance
    assert not second.ngraph.has_provenance


def test_materialized_disk_entries_do_not_collide_with_streaming(tmp_path):
    """The two backends persist under distinct keys: a materialized run
    never serves a streaming request and vice versa."""
    lcp = make_lcp("degree-one")
    with overridden(disk_cache_dir=str(tmp_path)):
        mat = decide_hiding(
            lcp,
            4,
            ExecutionPlan(backend="materialized", disk_cache=True, memory_cache=False),
        )
        assert mat.provenance.disk_cache_hit is False
        stream = decide_hiding(
            lcp,
            4,
            ExecutionPlan(
                backend="streaming",
                warm_start=False,
                disk_cache=True,
                memory_cache=False,
            ),
        )
    assert stream.provenance.disk_cache_hit is False
    assert mat.decision_fingerprint() == stream.decision_fingerprint()


def test_decide_hiding_k_is_a_decision_input():
    """``k`` re-parameterizes the scheme instead of raising: the native
    value is a no-op, an off-native value changes the decided question
    (and its fingerprint), and nonsense values still raise."""
    lcp = make_lcp("degree-one")
    plan = ExecutionPlan(disk_cache=False)
    native = decide_hiding(lcp, 3, plan, k=lcp.k)
    assert native.k == lcp.k
    off = decide_hiding(lcp, 4, plan, k=lcp.k + 1)
    assert off.k == lcp.k + 1
    assert off.decision_fingerprint() != decide_hiding(
        lcp, 4, plan
    ).decision_fingerprint()
    with pytest.raises(ValueError):
        decide_hiding(lcp, 3, plan, k=0)
    with pytest.raises(ValueError):
        decide_hiding(lcp, 3, plan, r=0)


def test_unknown_backend_is_rejected():
    with pytest.raises(ValueError, match="unknown backend"):
        ExecutionPlan(backend="quantum").resolve()


def test_legacy_envelope_is_attached():
    lcp = make_lcp("degree-one")
    v = decide_hiding(lcp, 4, ExecutionPlan(backend="materialized", disk_cache=False))
    assert v.legacy.hiding == v.hiding
    # The legacy materialized witness keeps its historical BFS derivation
    # (the Figure 3–4 regression walk), distinct from the canonical
    # stream-order walk carried by the envelope.
    assert len(v.legacy.odd_cycle) == 8
    assert v.summary() == v.legacy.summary()


if HAVE_HYPOTHESIS:

    @given(
        streaming=st.sampled_from([None, True, False]),
        workers=st.sampled_from([None, 0, 1, 2, 7]),
        warm_start=st.sampled_from([None, True, False]),
        disk_cache=st.sampled_from([None, True, False]),
        config_streaming=st.booleans(),
        config_workers=st.sampled_from([0, 3]),
    )
    @settings(max_examples=60, deadline=None)
    def test_resolve_plan_invariants(
        streaming, workers, warm_start, disk_cache, config_streaming, config_workers
    ):
        """resolve_plan always produces a fully resolved plan honoring the
        explicit-beats-config precedence, and resolution is idempotent."""
        config = PerfConfig(streaming=config_streaming, workers=config_workers)
        plan = resolve_plan(
            streaming=streaming,
            workers=workers,
            warm_start=warm_start,
            disk_cache=disk_cache,
            config=config,
        )
        assert plan.is_resolved
        assert plan.backend in available_backends()
        streaming_route = (
            BACKEND_VECTORIZED if kernel_available() else BACKEND_STREAMING
        )
        if streaming is not None:
            # Explicit streaming= keeps its historical meaning: the
            # scalar streaming backend, never an auto-upgrade.
            assert plan.backend == (
                BACKEND_STREAMING if streaming else BACKEND_MATERIALIZED
            )
        else:
            assert plan.backend == (
                streaming_route if config_streaming else BACKEND_MATERIALIZED
            )
        assert plan.workers == (workers if workers is not None else config_workers)
        if plan.backend == BACKEND_MATERIALIZED:
            assert plan.early_exit is False
            assert plan.warm_start is False
        elif warm_start is not None:
            assert plan.warm_start == warm_start
        assert plan.resolve(config) == plan
