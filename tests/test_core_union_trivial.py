"""Tests for the union LCP (Theorem 1.1) and the revealing baseline."""

import pytest

from repro.certification import (
    ExhaustiveAdversary,
    check_completeness,
    check_strong_soundness,
)
from repro.core import (
    RevealingLCP,
    TAG_DEGREE_ONE,
    TAG_EVEN_CYCLE,
    UnionLCP,
)
from repro.errors import PromiseViolationError
from repro.graphs import (
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
    theta_graph,
)
from repro.local import Instance, Labeling
from repro.neighborhood import hiding_verdict_up_to


class TestRevealing:
    def test_round_trip(self):
        lcp = RevealingLCP()
        for g in [path_graph(5), cycle_graph(6), star_graph(4)]:
            assert lcp.certify_and_check(Instance.build(g)).unanimous

    def test_both_colorings_emitted(self):
        lcp = RevealingLCP()
        instance = Instance.build(path_graph(3))
        labelings = list(lcp.prover.all_certifications(instance))
        assert len(labelings) == 2
        assert labelings[0].of(0) != labelings[1].of(0)

    def test_rejects_non_bipartite(self):
        with pytest.raises(PromiseViolationError):
            RevealingLCP().prover.certify(Instance.build(complete_graph(3)))

    def test_strong_soundness_exhaustive(self):
        lcp = RevealingLCP()
        report = check_strong_soundness(
            lcp, [complete_graph(3), cycle_graph(5), theta_graph(2, 2, 3)],
            ExhaustiveAdversary(), port_limit=2,
        )
        assert report.passed

    def test_not_hiding(self):
        verdict = hiding_verdict_up_to(RevealingLCP(), 4)
        assert verdict.hiding is False
        assert verdict.coloring is not None

    def test_invalid_color_rejected(self):
        lcp = RevealingLCP()
        g = path_graph(2)
        result = lcp.check(Instance.build(g).with_labeling(Labeling({0: 5, 1: 0})))
        assert 0 in result.rejecting

    def test_k3_colors(self):
        lcp = RevealingLCP(k=3)
        assert lcp.certificate_alphabet(path_graph(2)) == [0, 1, 2]
        assert lcp.certificate_bits(2, 10, 10) == 2


class TestUnion:
    def test_prover_picks_matching_scheme(self):
        lcp = UnionLCP()
        deg = lcp.prover.certify(Instance.build(path_graph(4)))
        assert all(deg.of(v)[0] == TAG_DEGREE_ONE for v in range(4))
        cyc = lcp.prover.certify(Instance.build(cycle_graph(6)))
        assert all(cyc.of(v)[0] == TAG_EVEN_CYCLE for v in range(6))

    def test_promise_class(self):
        lcp = UnionLCP()
        assert lcp.promise(path_graph(4))       # H1
        assert lcp.promise(cycle_graph(6))      # H2
        assert not lcp.promise(cycle_graph(5))  # H2 holds even cycles only
        assert not lcp.promise(theta_graph(2, 2, 2))

    def test_rejects_outside_union(self):
        with pytest.raises(PromiseViolationError):
            UnionLCP().prover.certify(Instance.build(theta_graph(2, 2, 4)))

    def test_completeness_both_families(self):
        report = check_completeness(
            UnionLCP(), [path_graph(4), star_graph(3), cycle_graph(4), cycle_graph(6)],
            port_limit=4,
        )
        assert report.passed

    def test_mixed_tags_rejected(self):
        """A neighborhood mixing H1 and H2 certificates must reject —
        otherwise the two schemes' invariants cannot compose."""
        lcp = UnionLCP()
        g = cycle_graph(4)
        instance = Instance.build(g)
        cyc = lcp.prover.certify(instance)
        mixed = cyc.with_label(0, (TAG_DEGREE_ONE, 0))
        result = lcp.check(instance.with_labeling(mixed))
        assert 0 in result.rejecting
        assert 1 in result.rejecting  # the H2 neighbor sees a foreign tag

    def test_strong_soundness_exhaustive_small(self):
        report = check_strong_soundness(
            UnionLCP(), [complete_graph(3)], ExhaustiveAdversary(), port_limit=1
        )
        assert report.passed
        assert report.labelings_checked == 20**3

    def test_alphabet_is_tagged_union(self):
        lcp = UnionLCP()
        alphabet = lcp.certificate_alphabet(path_graph(2))
        assert len(alphabet) == 4 + 16
        assert all(tag in (TAG_DEGREE_ONE, TAG_EVEN_CYCLE) for tag, _ in alphabet)

    def test_untagged_certificates_rejected(self):
        lcp = UnionLCP()
        g = path_graph(2)
        result = lcp.check(Instance.build(g).with_labeling(Labeling.uniform(g, 0)))
        assert result.rejecting == {0, 1}


class TestRevealingGeneralK:
    """Lemma 3.2 at k = 3: the general-k instantiation of the framework."""

    def test_k3_round_trip(self):
        lcp = RevealingLCP(k=3)
        for g in [complete_graph(3), cycle_graph(5), path_graph(4)]:
            assert lcp.certify_and_check(Instance.build(g)).unanimous

    def test_k3_prover_enumerates_color_permutations(self):
        lcp = RevealingLCP(k=3)
        instance = Instance.build(path_graph(2))
        labelings = list(lcp.prover.all_certifications(instance))
        assert len(labelings) == 6  # 3! permutations

    def test_k3_rejects_k4(self):
        with pytest.raises(PromiseViolationError):
            RevealingLCP(k=3).prover.certify(Instance.build(complete_graph(4)))

    def test_k3_yes_no_instances(self):
        lcp = RevealingLCP(k=3)
        assert lcp.is_yes_instance(complete_graph(3))
        assert lcp.is_no_instance(complete_graph(4))
        assert not lcp.is_no_instance(cycle_graph(5))

    def test_lemma32_at_k3(self):
        """The characterization for general k: V(D, 4) for the 3-coloring
        revealing scheme is 3-colorable, and the compiled extraction
        decoder recovers a proper 3-coloring on covered instances."""
        from repro.neighborhood import (
            build_extraction_decoder,
            hiding_verdict_up_to,
            run_extraction,
        )

        lcp = RevealingLCP(k=3)
        verdict = hiding_verdict_up_to(lcp, 4, labeling_limit=5_000)
        assert verdict.hiding is False
        decoder = build_extraction_decoder(verdict.ngraph, 3)
        assert decoder is not None
        for g in [complete_graph(3), cycle_graph(4)]:
            instance = Instance.build(g, id_bound=4)
            labeling = lcp.prover.certify(instance)
            outcome = run_extraction(decoder, lcp, instance.with_labeling(labeling))
            assert outcome.proper
