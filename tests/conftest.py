"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.graphs import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
    theta_graph,
)
from repro.local import Instance


@pytest.fixture
def p4() -> object:
    return path_graph(4)


@pytest.fixture
def p8() -> object:
    return path_graph(8)


@pytest.fixture
def c6() -> object:
    return cycle_graph(6)


@pytest.fixture
def c5() -> object:
    return cycle_graph(5)


@pytest.fixture
def k3() -> object:
    return complete_graph(3)


@pytest.fixture
def theta_even() -> object:
    """Bipartite theta graph (all path lengths even): the canonical
    r-forgetful, min-degree-2, two-cycle yes-instance."""
    return theta_graph(4, 4, 6)


@pytest.fixture
def grid34() -> object:
    return grid_graph(3, 4)


@pytest.fixture
def star3() -> object:
    return star_graph(3)


@pytest.fixture
def p6_instance() -> Instance:
    return Instance.build(path_graph(6))
