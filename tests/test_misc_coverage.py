"""Coverage for the smaller corners: error hierarchy, wrappers, reprs,
and the odd defaults that the larger tests route around."""

import pytest

from repro.certification import (
    ConstantDecoder,
    FunctionDecoder,
    FunctionProver,
    LCP,
)
from repro.certification.prover import reject_promise
from repro.errors import (
    CertificationError,
    EdgeNotFoundError,
    ExperimentError,
    GraphError,
    IdentifierAssignmentError,
    LabelingError,
    NodeNotFoundError,
    PortAssignmentError,
    PromiseViolationError,
    RealizabilityError,
    ReproError,
    ViewError,
)
from repro.graphs import cycle_graph, path_graph
from repro.local import Instance, Labeling
from repro.local.messages import EdgeRecord, Message, NodeRecord


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error_cls",
        [
            GraphError,
            PortAssignmentError,
            IdentifierAssignmentError,
            LabelingError,
            ViewError,
            PromiseViolationError,
            CertificationError,
            RealizabilityError,
            ExperimentError,
        ],
    )
    def test_all_derive_from_repro_error(self, error_cls):
        assert issubclass(error_cls, ReproError)

    def test_node_not_found_payload(self):
        error = NodeNotFoundError(42)
        assert error.node == 42
        assert "42" in str(error)

    def test_edge_not_found_payload(self):
        error = EdgeNotFoundError(1, 2)
        assert error.edge == (1, 2)


class TestWrappers:
    def test_function_prover_roundtrip(self):
        prover = FunctionProver(
            lambda instance: Labeling.uniform(instance.graph, "x"), name="constant"
        )
        instance = Instance.build(path_graph(3))
        labeling = prover.certify(instance)
        assert labeling.of(0) == "x"
        assert prover.name == "constant"
        assert len(list(prover.all_certifications(instance))) == 1

    def test_function_prover_all_fn(self):
        prover = FunctionProver(
            lambda instance: Labeling.uniform(instance.graph, 0),
            all_fn=lambda instance: iter(
                [Labeling.uniform(instance.graph, i) for i in (0, 1)]
            ),
        )
        instance = Instance.build(path_graph(2))
        assert len(list(prover.all_certifications(instance))) == 2

    def test_constant_decoder(self):
        from repro.local import extract_view

        instance = Instance.build(path_graph(2), labeling=Labeling.uniform(path_graph(2), "c"))
        view = extract_view(instance, 0, 1)
        assert ConstantDecoder(True).decide(view)
        assert not ConstantDecoder(False).decide(view)
        assert "True" in ConstantDecoder(True).name

    def test_function_decoder_name(self):
        decoder = FunctionDecoder(lambda view: True, name="custom")
        assert decoder.name == "custom"

    def test_reject_promise_helper(self):
        instance = Instance.build(path_graph(2))
        error = reject_promise(instance, "test reason")
        assert isinstance(error, PromiseViolationError)
        assert "test reason" in str(error)


class TestLCPBaseBehavior:
    def _minimal_lcp(self, k: int = 2) -> LCP:
        from repro.certification import EnumerativeLCP

        lcp = EnumerativeLCP(ConstantDecoder(True), ["c"], k=k)
        return lcp

    def test_yes_no_instances_k2(self):
        lcp = self._minimal_lcp()
        assert lcp.is_yes_instance(path_graph(3))
        assert not lcp.is_yes_instance(cycle_graph(5))
        assert lcp.is_no_instance(cycle_graph(5))
        assert not lcp.is_no_instance(path_graph(3))

    def test_k3_supported(self):
        lcp = self._minimal_lcp(k=3)
        from repro.graphs import complete_graph

        assert lcp.is_yes_instance(complete_graph(3))
        assert lcp.is_no_instance(complete_graph(4))

    def test_labeling_bits_is_max(self):
        from repro.core import ShatterLCP

        lcp = ShatterLCP()
        instance = Instance.build(path_graph(6))
        labeling = lcp.prover.certify(instance)
        per_node = [
            lcp.certificate_bits(labeling.of(v), instance.n, instance.id_bound)
            for v in instance.graph.nodes
        ]
        assert lcp.labeling_bits(labeling, instance.n, instance.id_bound) == max(per_node)


class TestMessages:
    def test_edge_record_canonical(self):
        a = EdgeRecord.canonical(1, 2, 0, 1)
        b = EdgeRecord.canonical(0, 1, 1, 2)
        assert a == b

    def test_message_size_units(self):
        record = NodeRecord(uid=0, ident=1, label=None)
        message = Message(
            sender_record=record,
            sender_port=1,
            node_records=frozenset({record}),
            edge_records=frozenset(),
        )
        assert message.size_units() == 2


class TestReprs:
    def test_instance_repr(self):
        assert "unlabeled" in repr(Instance.build(path_graph(2)))
        labeled = Instance.build(path_graph(2)).with_labeling(
            Labeling.uniform(path_graph(2), 0)
        )
        assert "labeled" in repr(labeled)

    def test_view_repr(self):
        from repro.local import extract_view

        view = extract_view(Instance.build(path_graph(2)), 0, 1)
        assert "View(" in repr(view)
        anon = view.anonymized()
        assert "anon" in repr(anon)

    def test_graph_repr(self):
        assert repr(path_graph(3)) == "Graph(order=3, size=2)"

    def test_port_and_id_reprs(self):
        from repro.local import IdentifierAssignment, PortAssignment

        assert "PortAssignment" in repr(PortAssignment.canonical(path_graph(2)))
        assert "max=2" in repr(IdentifierAssignment.canonical(path_graph(2)))
