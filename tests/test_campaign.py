"""Campaign layer: spec expansion, the driver, cache identity, and the
frontier report.

The load-bearing properties:

* a **default cell** (native ``k``/``r``, full family, full alphabet)
  answers with the byte-identical decision fingerprint of a direct
  ``decide_hiding`` call, and its disk key digests to the exact
  pre-campaign content address (existing ``.repro_cache/`` entries keep
  serving);
* cell verdicts round-trip both ``VerdictStore`` tiers, including cells
  off the native parameters;
* the frontier report locates real verdict flips, survives a
  write/load round-trip, and satisfies its own validator.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.campaign import (
    CampaignSpec,
    Cell,
    FrontierReport,
    build_frontier_report,
    run_campaign,
    validate_frontier_report,
)
from repro.campaign.frontier import find_flips
from repro.core.registry import make_lcp
from repro.engine import (
    ExecutionPlan,
    RunContext,
    clear_engine_state,
    decide_hiding,
)
from repro.engine.backends import ENGINE_VERSION, disk_key
from repro.engine.stores import DiskVerdictStore, MemoryVerdictStore
from repro.perf import overridden
from repro.perf.persist import digest_for


@pytest.fixture(autouse=True)
def _fresh_engine_state():
    clear_engine_state()
    yield
    clear_engine_state()


NO_CACHE = ExecutionPlan(disk_cache=False)


# ----------------------------------------------------------------------
# Spec expansion
# ----------------------------------------------------------------------


def test_cells_resolve_native_parameters_and_dedupe():
    """``None`` k/r resolve at expansion; the explicit native value next
    to ``None`` collapses to one cell."""
    native = make_lcp("degree-one")
    spec = CampaignSpec.sweep(
        ("degree-one",), n_max=4, n_min=3, k_values=(None, native.k, 3)
    )
    cells = list(spec.cells())
    assert all(cell.k in (native.k, 3) for cell in cells)
    assert all(cell.r == native.radius for cell in cells)
    assert len(cells) == len({cell.key() for cell in cells})
    assert len(cells) == 4  # 2 n-values x 2 distinct k-values


def test_cells_order_n_innermost_ascending():
    """The stream order keeps ``n`` innermost and ascending so one sweep
    family's cells warm-start each other."""
    spec = CampaignSpec.sweep(
        ("degree-one", "even-cycle"), n_max=5, n_min=3, k_values=(2, 3)
    )
    cells = list(spec.cells())
    for before, after in zip(cells, cells[1:]):
        if before.key()[:-4] == after.key()[:-4] and before.k == after.k:
            assert after.n > before.n
    # scheme is the outermost axis
    schemes = [cell.scheme for cell in cells]
    assert schemes == sorted(schemes, key=("degree-one", "even-cycle").index)


def test_invalid_specs_are_rejected():
    assert CampaignSpec(schemes=(), n_values=(3,)).validate()
    assert CampaignSpec(schemes=("no-such-scheme",), n_values=(3,)).validate()
    assert CampaignSpec(
        schemes=("degree-one",), n_values=(3,), families=("no-such-family",)
    ).validate()
    assert CampaignSpec(schemes=("degree-one",), n_values=(0,)).validate()
    assert CampaignSpec(schemes=("degree-one",), n_values=(3,), k_values=(0,)).validate()
    with pytest.raises(ValueError, match="invalid campaign spec"):
        list(CampaignSpec(schemes=(), n_values=()).cells())
    assert not CampaignSpec.sweep(("degree-one",), n_max=4).validate()


# ----------------------------------------------------------------------
# Default cells reproduce the seed decisions byte-for-byte
# ----------------------------------------------------------------------


def test_default_cells_reproduce_direct_decisions():
    """Every native-parameter cell answers with the byte-identical
    fingerprint of a plain ``decide_hiding`` call — the campaign layer
    adds no decision semantics of its own."""
    spec = CampaignSpec.sweep(
        ("degree-one", "even-cycle"), n_max=5, n_min=3, plan=NO_CACHE
    )
    for cell in spec.cells():
        assert cell.k == make_lcp(cell.scheme).k
        clear_engine_state()
        direct = decide_hiding(
            make_lcp(cell.scheme), cell.n, NO_CACHE, ctx=RunContext.isolated()
        )
        clear_engine_state()
        via_cell = decide_hiding(
            make_lcp(cell.scheme),
            cell.n,
            cell.plan(NO_CACHE.resolve()),
            k=cell.k,
            r=cell.r,
            ctx=RunContext.isolated(),
        )
        assert (
            via_cell.decision_fingerprint() == direct.decision_fingerprint()
        ), cell.label()


# ----------------------------------------------------------------------
# Cache identity
# ----------------------------------------------------------------------


def test_default_cell_disk_key_is_the_precampaign_address():
    """The frozen pre-campaign key layout, written out literally: a
    default cell's disk key must digest to this exact content address,
    so every ``.repro_cache/`` entry from before the campaign layer
    still resolves."""
    lcp = make_lcp("degree-one")
    plan = ExecutionPlan().resolve()
    precampaign_key = {
        "engine_version": ENGINE_VERSION,
        "lcp_type": type(lcp).__name__,
        "lcp_name": lcp.name,
        "decoder": lcp.decoder.name,
        "k": lcp.k,
        "radius": lcp.radius,
        "anonymous": lcp.anonymous,
        "n": 4,
        "port_limit": plan.port_limit,
        "id_order_types": plan.id_order_types,
        "include_all_accepted_labelings": plan.include_all_accepted_labelings,
        "labeling_limit": plan.labeling_limit,
        "early_exit": plan.early_exit,
    }
    if plan.backend != "streaming":
        precampaign_key["backend"] = plan.backend
    # Orbit pruning is effective for the anonymous degree-one scheme
    # under the default config, and was already part of the pre-campaign
    # layout when effective.
    precampaign_key["symmetry"] = "on"
    cell = Cell(scheme="degree-one", family="all", n=4, k=lcp.k, r=lcp.radius)
    cell_key = disk_key(cell.lcp(), cell.n, cell.plan(plan))
    assert cell_key == precampaign_key
    assert digest_for(cell_key) == digest_for(precampaign_key)


def test_off_default_cells_get_distinct_addresses():
    """Off-native k and non-default family/alphabet axes each move the
    content address — a campaign can never poison a default entry."""
    lcp = make_lcp("degree-one")
    plan = ExecutionPlan().resolve()
    default = Cell(scheme="degree-one", family="all", n=4, k=lcp.k, r=lcp.radius)
    digests = {
        digest_for(disk_key(cell.lcp(), cell.n, cell.plan(plan)))
        for cell in (
            default,
            dataclasses.replace(default, k=3),
            dataclasses.replace(default, family="even-cycles"),
            dataclasses.replace(default, alphabet_limit=2),
        )
    }
    assert len(digests) == 4
    # and the non-default axes appear in the readable key only when set
    base_key = disk_key(lcp, 4, plan)
    assert "graph_family" not in base_key
    assert "alphabet_limit" not in base_key
    family_cell = dataclasses.replace(default, family="even-cycles")
    family_key = disk_key(family_cell.lcp(), 4, family_cell.plan(plan))
    assert family_key["graph_family"] == "even-cycles"


def test_precampaign_disk_entries_still_resolve(tmp_path):
    """An entry persisted under the pre-campaign address is served to a
    default campaign cell: write through a plain plan, read through the
    cell-scoped plan."""
    with overridden(disk_cache_dir=str(tmp_path)):
        plan = ExecutionPlan(
            backend="streaming", warm_start=False, memory_cache=False, disk_cache=True
        )
        first = decide_hiding(
            make_lcp("degree-one"), 4, plan, ctx=RunContext.isolated()
        )
        assert first.provenance.disk_cache_hit is False
        lcp = make_lcp("degree-one")
        cell = Cell(scheme="degree-one", family="all", n=4, k=lcp.k, r=lcp.radius)
        clear_engine_state()
        second = decide_hiding(
            make_lcp(cell.scheme),
            cell.n,
            cell.plan(plan.resolve()),
            k=cell.k,
            r=cell.r,
            ctx=RunContext.isolated(),
        )
    assert second.provenance.disk_cache_hit is True
    assert second.decision_fingerprint() == first.decision_fingerprint()


# ----------------------------------------------------------------------
# VerdictStore round-trips
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "cell",
    [
        Cell(scheme="degree-one", family="all", n=4, k=2, r=1),
        Cell(scheme="degree-one", family="all", n=4, k=3, r=1),
        Cell(scheme="even-cycle", family="even-cycles", n=4, k=2, r=1),
    ],
    ids=lambda cell: cell.label(),
)
def test_cell_verdicts_round_trip_both_store_tiers(cell, tmp_path):
    """A cell's verdict survives both tiers: the memory store returns
    the same envelope, the disk store reconstructs one with the same
    decision fingerprint under the cell's own key."""
    plan = cell.plan(ExecutionPlan(backend="streaming", disk_cache=False).resolve())
    verdict = decide_hiding(
        make_lcp(cell.scheme), cell.n, plan, k=cell.k, r=cell.r,
        ctx=RunContext.isolated(),
    )
    memory = MemoryVerdictStore()
    assert memory.load(cell.key()) is None
    memory.store(cell.key(), verdict)
    assert memory.load(cell.key()) is verdict

    disk = DiskVerdictStore()
    key = disk_key(cell.lcp(), cell.n, plan)
    with overridden(disk_cache_dir=str(tmp_path)):
        assert disk.load(key) is None
        assert disk.store(key, verdict)
        restored = disk.load(key)
    assert restored is not None
    assert restored.hiding == verdict.hiding
    assert restored.decision_fingerprint() == verdict.decision_fingerprint()


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------


def test_run_campaign_records_per_cell_provenance():
    spec = CampaignSpec.sweep(("degree-one",), n_max=4, n_min=3, plan=NO_CACHE)
    run = run_campaign(spec, ctx=RunContext.isolated())
    assert len(run.results) == 2
    assert not run.errors
    for result in run.results:
        assert result.hiding in (True, False)
        assert result.colorable == (not result.hiding)
        assert result.fingerprint
        assert result.provenance["backend"] == run.plan.backend
        assert result.provenance["views"] > 0
        assert result.wall_time_s >= 0.0


def test_run_campaign_survives_a_bad_cell(monkeypatch):
    """One raising cell becomes an errored result; the sweep continues."""
    import repro.campaign.driver as driver_mod

    spec = CampaignSpec.sweep(("degree-one",), n_max=4, n_min=3, plan=NO_CACHE)
    real = driver_mod.decide_hiding

    def flaky(lcp, n, plan, **kwargs):
        if n == 3:
            raise RuntimeError("boom")
        return real(lcp, n, plan, **kwargs)

    monkeypatch.setattr(driver_mod, "decide_hiding", flaky)
    run = run_campaign(spec, ctx=RunContext.isolated())
    assert len(run.results) == 2
    assert len(run.errors) == 1
    assert run.errors[0].error == "RuntimeError: boom"
    assert run.results[1].ok


# ----------------------------------------------------------------------
# Frontier report
# ----------------------------------------------------------------------


def _even_cycle_run():
    spec = CampaignSpec.sweep(
        ("even-cycle",), n_max=6, n_min=3, k_values=(2, 3), plan=NO_CACHE
    )
    return run_campaign(spec, ctx=RunContext.isolated())


def test_frontier_locates_the_even_cycle_flip():
    """The acceptance campaign: even-cycle, n <= 6, k in {2, 3} — the
    hiding verdict flips along n at 3 -> 4 for both k values."""
    run = _even_cycle_run()
    report = build_frontier_report(run)
    assert validate_frontier_report(report.payload) == []
    flips = report.payload["flips"]
    assert len(flips) >= 1
    n_flips = [flip for flip in flips if flip["axis"] == "n"]
    assert {(flip["from"]["value"], flip["to"]["value"]) for flip in n_flips} == {
        (3, 4)
    }
    for flip in n_flips:
        assert flip["from"]["hiding"] is False
        assert flip["to"]["hiding"] is True
        assert flip["from"]["colorable"] is True


def test_frontier_report_round_trips(tmp_path):
    run = _even_cycle_run()
    report = build_frontier_report(run)
    canonical = report.write(directory=tmp_path)
    assert canonical.name == f"{report.digest}.json"
    loaded = FrontierReport.load(report.digest, directory=tmp_path)
    assert loaded.payload == report.payload
    assert loaded.digest == report.digest
    assert validate_frontier_report(loaded.payload) == []
    assert "frontier report" in loaded.render()


def test_find_flips_skips_errored_and_undecided_cells():
    run = _even_cycle_run()
    flips_before = find_flips(run.results)
    broken = tuple(
        dataclasses.replace(result, hiding=None, colorable=None)
        if result.cell.n == 4
        else result
        for result in run.results
    )
    # with n=4 undecided, adjacency is 3 -> 5 (both hiding=... flips remain
    # only if the verdicts still differ across the gap)
    for flip in find_flips(broken):
        assert flip["from"]["value"] != 4
        assert flip["to"]["value"] != 4
    assert flips_before  # sanity: the unbroken run has flips


def test_validator_flags_corrupt_payloads():
    run = _even_cycle_run()
    payload = build_frontier_report(run).payload
    assert validate_frontier_report(payload) == []

    bad = dict(payload, schema="bogus/v0")
    assert any("schema" in error for error in validate_frontier_report(bad))

    bad = {key: value for key, value in payload.items() if key != "summary"}
    assert any("summary" in error for error in validate_frontier_report(bad))

    bad = dict(payload, cells=[])
    assert any("non-empty" in error for error in validate_frontier_report(bad))

    cells = [dict(record) for record in payload["cells"]]
    cells[0]["colorable"] = cells[0]["hiding"]
    bad = dict(payload, cells=cells)
    assert any("complement" in error for error in validate_frontier_report(bad))

    summary = dict(payload["summary"], cells=999)
    bad = dict(payload, summary=summary)
    assert any("summary.cells" in error for error in validate_frontier_report(bad))
