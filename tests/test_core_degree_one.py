"""Tests for the degree-one LCP (Lemma 4.1): completeness across the
promise family, exhaustive strong soundness, hiding, anonymity, and the
necessity of the common-β check."""

import pytest

from repro.certification import (
    ExhaustiveAdversary,
    check_completeness,
    check_soundness,
    check_strong_soundness,
)
from repro.core import BOT, TOP, DegreeOneLCP
from repro.errors import PromiseViolationError
from repro.graphs import (
    caterpillar_graph,
    complete_graph,
    cycle_graph,
    pan_graph,
    path_graph,
    spider_graph,
    star_graph,
)
from repro.graphs.families import bipartite_min_degree_one_graphs_up_to
from repro.local import Instance, Labeling, is_anonymous_on, IdentifierAssignment
from repro.neighborhood import hiding_verdict_up_to


@pytest.fixture(scope="module")
def lcp() -> DegreeOneLCP:
    return DegreeOneLCP()


class TestProver:
    def test_certificate_structure(self, lcp):
        instance = Instance.build(path_graph(5))
        labeling = lcp.prover.certify(instance)
        values = [labeling.of(v) for v in instance.graph.nodes]
        assert values.count(BOT) == 1
        assert values.count(TOP) == 1
        assert all(v in (0, 1, BOT, TOP) for v in values)

    def test_bot_at_degree_one_node(self, lcp):
        instance = Instance.build(caterpillar_graph(4))
        labeling = lcp.prover.certify(instance)
        g = instance.graph
        bot_nodes = [v for v in g.nodes if labeling.of(v) == BOT]
        assert len(bot_nodes) == 1
        assert g.degree(bot_nodes[0]) == 1

    def test_all_certifications_enumerate_prover_freedom(self, lcp):
        instance = Instance.build(path_graph(4))
        labelings = list(lcp.prover.all_certifications(instance))
        # 2 degree-1 nodes x 2 coloring flips.
        assert len(labelings) == 4

    def test_rejects_outside_promise(self, lcp):
        with pytest.raises(PromiseViolationError):
            lcp.prover.certify(Instance.build(cycle_graph(4)))

    def test_rejects_non_bipartite(self, lcp):
        with pytest.raises(PromiseViolationError):
            lcp.prover.certify(Instance.build(pan_graph(3, 1)))


class TestCompleteness:
    def test_promise_family_up_to_5(self, lcp):
        report = check_completeness(
            lcp, list(bipartite_min_degree_one_graphs_up_to(5)), port_limit=4
        )
        assert report.passed
        assert report.graphs_checked >= 5

    def test_p2_edge_case(self, lcp):
        """Both endpoints have degree 1; TOP has no colored neighbors."""
        result = lcp.certify_and_check(Instance.build(path_graph(2)))
        assert result.unanimous


class TestSoundnessProperties:
    def test_exhaustive_strong_soundness(self, lcp):
        report = check_strong_soundness(
            lcp,
            [complete_graph(3), cycle_graph(5), pan_graph(3, 1)],
            ExhaustiveAdversary(),
            port_limit=2,
        )
        assert report.passed
        assert report.exhaustive
        assert report.labelings_checked > 1000

    def test_exhaustive_soundness(self, lcp):
        report = check_soundness(
            lcp, [complete_graph(3), cycle_graph(5)], ExhaustiveAdversary(), port_limit=1
        )
        assert report.passed

    def test_weakened_decoder_breaks_on_pan5(self):
        """Without the common-β requirement at ⊤ nodes, a 5-cycle with a
        pendant leaf gets an accepted odd cycle — the check is
        load-bearing (see the Lemma 4.1 analysis)."""
        weak = DegreeOneLCP(require_common_beta=False)
        report = check_strong_soundness(
            weak, [pan_graph(5, 1)], ExhaustiveAdversary(), port_limit=1
        )
        assert not report.passed
        violation = report.violations[0]
        assert len(violation.witness) >= 4  # an odd closed walk

    def test_repaired_decoder_survives_pan5(self, lcp):
        report = check_strong_soundness(
            lcp, [pan_graph(5, 1)], ExhaustiveAdversary(), port_limit=1
        )
        assert report.passed


class TestDecoderCases:
    def test_bot_requires_degree_one(self, lcp):
        g = path_graph(3)
        labeling = Labeling({0: TOP, 1: BOT, 2: TOP})
        result = lcp.check(Instance.build(g).with_labeling(labeling))
        assert 1 in result.rejecting

    def test_top_requires_exactly_one_bot(self, lcp):
        g = star_graph(3)
        labeling = Labeling({0: TOP, 1: BOT, 2: BOT, 3: 0})
        result = lcp.check(Instance.build(g).with_labeling(labeling))
        assert 0 in result.rejecting

    def test_colored_rejects_two_tops(self, lcp):
        g = path_graph(3)
        labeling = Labeling({0: TOP, 1: 0, 2: TOP})
        result = lcp.check(Instance.build(g).with_labeling(labeling))
        assert 1 in result.rejecting

    def test_colored_rejects_same_color_neighbor(self, lcp):
        g = path_graph(2)
        labeling = Labeling({0: 0, 1: 0})
        result = lcp.check(Instance.build(g).with_labeling(labeling))
        assert result.rejecting == {0, 1}

    def test_unknown_symbol_rejected(self, lcp):
        g = path_graph(2)
        labeling = Labeling({0: "junk", 1: TOP})
        result = lcp.check(Instance.build(g).with_labeling(labeling))
        assert 0 in result.rejecting


class TestHidingAndAnonymity:
    def test_hiding_at_n4(self, lcp):
        verdict = hiding_verdict_up_to(lcp, 4)
        assert verdict.hiding is True
        walk = verdict.odd_cycle
        assert (len(walk) - 1) % 2 == 1

    def test_decoder_is_anonymous(self, lcp):
        g = spider_graph(3, 1)
        instance = Instance.build(g, id_bound=10)
        labeled = instance.with_labeling(lcp.prover.certify(instance))
        samples = [
            IdentifierAssignment.canonical(g),
            IdentifierAssignment.random(g, 10, seed=3),
        ]
        assert is_anonymous_on(lcp.decoder, labeled, samples)

    def test_certificate_bits_constant(self, lcp):
        assert lcp.certificate_bits(BOT, 10, 10) == 2
        assert lcp.certificate_bits(0, 1000, 1000) == 2
