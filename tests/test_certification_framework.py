"""Tests for the certification framework: LCP plumbing, checkers,
adversaries, reports, and the enumerative (search-prover) wrapper."""

import pytest

from repro.certification import (
    AcceptanceResult,
    CheckKind,
    CheckReport,
    ConstantDecoder,
    EnumerativeLCP,
    ExhaustiveAdversary,
    FunctionDecoder,
    GreedyAdversary,
    RandomAdversary,
    check_completeness,
    check_soundness,
    check_strong_soundness,
    find_strong_soundness_violation,
    harvest_certificate_pool,
    instances_for,
)
from repro.core import DegreeOneLCP, RevealingLCP
from repro.errors import PromiseViolationError
from repro.graphs import complete_graph, cycle_graph, is_bipartite, path_graph
from repro.local import Instance


class TestAcceptanceResult:
    def test_partition(self):
        result = AcceptanceResult(votes={0: True, 1: False, 2: True})
        assert not result.unanimous
        assert result.accepting == {0, 2}
        assert result.rejecting == {1}

    def test_unanimous(self):
        assert AcceptanceResult(votes={0: True}).unanimous


class TestInstancesFor:
    def test_exhaustive_ports_small(self):
        instances = list(instances_for(path_graph(3), port_limit=8, id_samples=1))
        assert len(instances) == 2  # 1!*2!*1! = 2 port assignments

    def test_sampled_ports_large(self):
        instances = list(instances_for(cycle_graph(6), port_limit=3, id_samples=1))
        assert len(instances) == 3

    def test_id_samples(self):
        instances = list(instances_for(path_graph(3), port_limit=1, id_samples=3))
        assert len(instances) == 3
        bounds = {inst.id_bound for inst in instances}
        assert bounds == {6}


class TestCheckers:
    def test_completeness_skips_non_yes(self):
        report = check_completeness(RevealingLCP(), [complete_graph(3)])
        assert report.graphs_checked == 0
        assert report.notes

    def test_soundness_catches_accept_all(self):
        lcp = EnumerativeLCP(
            ConstantDecoder(True, anonymous=True), ["c"], promise_fn=is_bipartite
        )
        report = check_soundness(
            lcp, [complete_graph(3)], ExhaustiveAdversary(), port_limit=1
        )
        assert not report.passed
        assert report.violations[0].kind is CheckKind.SOUNDNESS

    def test_strong_soundness_witness_is_odd_walk(self):
        lcp = EnumerativeLCP(
            ConstantDecoder(True, anonymous=True), ["c"], promise_fn=is_bipartite
        )
        report = check_strong_soundness(
            lcp, [complete_graph(3)], ExhaustiveAdversary(), port_limit=1
        )
        assert not report.passed
        witness = report.violations[0].witness
        assert (len(witness) - 1) % 2 == 1

    def test_find_violation_shortcut(self):
        lcp = EnumerativeLCP(
            ConstantDecoder(True, anonymous=True), ["c"], promise_fn=is_bipartite
        )
        violation = find_strong_soundness_violation(
            lcp, [cycle_graph(5)], ExhaustiveAdversary()
        )
        assert violation is not None
        assert find_strong_soundness_violation(
            DegreeOneLCP(), [cycle_graph(5)], ExhaustiveAdversary()
        ) is None

    def test_report_merge(self):
        a = CheckReport(kind=CheckKind.SOUNDNESS, lcp_name="x", graphs_checked=1)
        b = CheckReport(kind=CheckKind.SOUNDNESS, lcp_name="x", graphs_checked=2)
        merged = a.merge(b)
        assert merged.graphs_checked == 3
        with pytest.raises(ValueError):
            a.merge(CheckReport(kind=CheckKind.HIDING, lcp_name="x"))

    def test_report_summary_mentions_status(self):
        report = CheckReport(kind=CheckKind.COMPLETENESS, lcp_name="demo")
        assert "PASS" in report.summary()


class TestAdversaries:
    def test_exhaustive_requires_alphabet(self):
        from repro.core import WatermelonLCP

        adversary = ExhaustiveAdversary()
        instance = Instance.build(path_graph(3))
        with pytest.raises(ValueError):
            list(adversary.labelings(WatermelonLCP(), instance))

    def test_exhaustive_counts(self):
        adversary = ExhaustiveAdversary()
        instance = Instance.build(path_graph(3))
        labelings = list(adversary.labelings(DegreeOneLCP(), instance))
        assert len(labelings) == 4**3

    def test_exhaustive_cap(self):
        adversary = ExhaustiveAdversary(max_labelings=10)
        instance = Instance.build(path_graph(3))
        assert len(list(adversary.labelings(DegreeOneLCP(), instance))) == 10

    def test_harvest_pool_includes_prover_certificates(self):
        from repro.core import WatermelonLCP

        lcp = WatermelonLCP()
        instance = Instance.build(cycle_graph(5), id_bound=10)
        pool = harvest_certificate_pool(lcp, instance, [path_graph(5), cycle_graph(6)])
        assert pool
        kinds = {c[0] for c in pool}
        assert "end" in kinds and "path" in kinds

    def test_random_adversary_deterministic(self):
        adversary = RandomAdversary(samples=5, seed=1, pool_graphs=[path_graph(4)])
        instance = Instance.build(cycle_graph(5))
        first = [lab.as_dict() for lab in adversary.labelings(DegreeOneLCP(), instance)]
        second = [lab.as_dict() for lab in adversary.labelings(DegreeOneLCP(), instance)]
        assert first == second
        assert len(first) == 5

    def test_greedy_adversary_improves(self):
        adversary = GreedyAdversary(restarts=2, sweeps=2, seed=0,
                                    pool_graphs=[path_graph(4)])
        lcp = DegreeOneLCP()
        instance = Instance.build(cycle_graph(5))
        stream = list(adversary.labelings(lcp, instance))
        assert stream
        # Scores along each restart are non-decreasing.
        scores = [sum(lcp.check(instance.with_labeling(lab)).votes.values()) for lab in stream]
        assert max(scores) >= scores[0]


class TestEnumerativeLCP:
    def test_search_prover_finds_accepted_labeling(self):
        lcp = EnumerativeLCP(RevealingLCP().decoder, [0, 1], promise_fn=is_bipartite)
        instance = Instance.build(path_graph(4))
        labeling = lcp.prover.certify(instance)
        assert lcp.check(instance.with_labeling(labeling)).unanimous

    def test_search_prover_fails_on_odd_cycle(self):
        lcp = EnumerativeLCP(RevealingLCP().decoder, [0, 1])
        with pytest.raises(PromiseViolationError):
            lcp.prover.certify(Instance.build(cycle_graph(5)))

    def test_search_limit(self):
        lcp = EnumerativeLCP(RevealingLCP().decoder, [0, 1], search_limit=4)
        with pytest.raises(PromiseViolationError):
            lcp.prover.certify(Instance.build(path_graph(4)))

    def test_certificate_bits(self):
        lcp = EnumerativeLCP(ConstantDecoder(True), ["a", "b", "c"])
        assert lcp.certificate_bits("a", 10, 10) == 2
