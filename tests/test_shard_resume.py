"""Resumable shards: checkpoint store, kill-and-resume, and the
file-based multi-host queue.

The checkpoint store persists each finished shard's result under the
content-addressed cache directory, keyed by the sweep identity plus the
shard's ``(generation_version, depth, start, stop)``; a killed sweep
restarted against the same directory adopts every finished shard and
recomputes only the missing ones, landing on a byte-identical verdict.
The :class:`ShardQueue` layers claim/complete/lease-expiry files on a
shared directory so multiple hosts drain one sweep without a
coordinator.
"""

from __future__ import annotations

import time

import pytest

from repro.core import make_lcp
from repro.engine import (
    ExecutionPlan,
    RunContext,
    clear_engine_state,
    decide_hiding,
)
from repro.engine.backends import _enumeration_bounds, disk_key
from repro.perf import PerfStats, overridden
from repro.shard import (
    ShardCheckpointStore,
    ShardQueue,
    plan_shards,
    run_sharded_sweep,
)
from repro.shard import checkpoint as checkpoint_module
from repro.shard import executor as executor_module
from repro.symmetry import SymmetryAccount

N = 6
SCHEME = "even-cycle"

#: Account counters the engine folds the merged account into.
ACCOUNT_COUNTERS = (
    "instances_scanned",
    "symmetry_labelings_total",
    "symmetry_labelings_pruned",
    "symmetry_bases_pruned",
    "symmetry_instances_suppressed",
)


def _plan(disk_cache: bool) -> ExecutionPlan:
    return ExecutionPlan(
        backend="streaming",
        workers=0,
        early_exit=False,
        warm_start=False,
        memory_cache=False,
        disk_cache=disk_cache,
        symmetry="on",
        sharding="on",
        shard_depth=3,
    )


def _decide(disk_cache: bool):
    clear_engine_state()
    ctx = RunContext.isolated()
    verdict = decide_hiding(make_lcp(SCHEME), N, _plan(disk_cache), ctx=ctx)
    counters = {name: ctx.stats.get(name) for name in ACCOUNT_COUNTERS}
    return verdict, counters, ctx


# ----------------------------------------------------------------------
# Checkpoint store
# ----------------------------------------------------------------------


def test_checkpoint_store_roundtrip(tmp_path):
    store = ShardCheckpointStore({"scheme": SCHEME, "n": N}, directory=tmp_path)
    shard = plan_shards(N, 3, 2).shards[0]
    stats = PerfStats()
    assert store.load(shard, stats=stats) is None
    assert stats.get("shard_checkpoint_misses") == 1

    result = {
        "shard": {"index": 0},
        "sizes": {4: []},
        "stats": {},
        "spans": [{"name": "worker:shard"}],
        "pid": 1,
        "elapsed_s": 0.1,
        "global_stats": {},
    }
    assert store.store(shard, result, stats=stats)
    loaded = store.load(shard, stats=stats)
    assert loaded is not None
    assert loaded["sizes"] == {4: []}
    # Spans are stripped before persisting: a checkpoint adoption must
    # not replay another run's profile into this run's trace.
    assert loaded["spans"] == []
    assert stats.get("shard_checkpoint_hits") == 1


def test_checkpoint_store_keys_by_sweep_and_shard(tmp_path):
    shard = plan_shards(N, 3, 2).shards[0]
    other_shard = plan_shards(N, 3, 2).shards[1]
    a = ShardCheckpointStore({"scheme": "a"}, directory=tmp_path)
    b = ShardCheckpointStore({"scheme": "b"}, directory=tmp_path)
    result = {"sizes": {}, "spans": []}
    a.store(shard, result)
    assert a.load(shard) is not None
    assert a.load(other_shard) is None
    assert b.load(shard) is None


def test_corrupt_checkpoint_is_a_miss(tmp_path):
    store = ShardCheckpointStore({"scheme": SCHEME}, directory=tmp_path)
    shard = plan_shards(N, 3, 2).shards[0]
    store.store(shard, {"sizes": {}, "spans": []})
    path = next(store.directory.iterdir())
    path.write_bytes(b"not a pickle")
    stats = PerfStats()
    assert store.load(shard, stats=stats) is None
    assert stats.get("shard_checkpoint_corrupt") == 1


# ----------------------------------------------------------------------
# Kill-and-resume
# ----------------------------------------------------------------------


def test_killed_sweep_resumes_from_checkpoints(tmp_path, monkeypatch):
    reference, ref_counters, _ = _decide(disk_cache=False)

    with overridden(disk_cache_dir=str(tmp_path / "cache")):
        # Abort the sweep after two shards have been checkpointed —
        # the moral equivalent of kill -9 mid-campaign.
        original_store = checkpoint_module.ShardCheckpointStore.store
        stored = []

        def dying_store(self, shard, result, stats=None):
            ok = original_store(self, shard, result, stats=stats)
            stored.append(shard.id)
            if len(stored) == 2:
                raise RuntimeError("killed mid-sweep")
            return ok

        monkeypatch.setattr(
            checkpoint_module.ShardCheckpointStore, "store", dying_store
        )
        clear_engine_state()
        with pytest.raises(RuntimeError, match="killed mid-sweep"):
            decide_hiding(
                make_lcp(SCHEME), N, _plan(disk_cache=True),
                ctx=RunContext.isolated(),
            )
        assert len(stored) == 2
        monkeypatch.setattr(
            checkpoint_module.ShardCheckpointStore, "store", original_store
        )

        # Resume against the same cache directory: the two finished
        # shards are adopted, only the remaining ones are recomputed.
        recomputed = []
        original_run = executor_module.run_shard

        def counting_run(payload):
            recomputed.append(payload["shard"].id)
            return original_run(payload)

        monkeypatch.setattr(executor_module, "run_shard", counting_run)
        resumed, counters, ctx = _decide(disk_cache=True)

    total_shards = resumed.provenance.shard_count
    assert total_shards == len(stored) + len(recomputed)
    assert not set(stored) & set(recomputed)
    assert ctx.stats.get("shard_checkpoint_hits") == len(stored)
    assert resumed.decision_fingerprint() == reference.decision_fingerprint()
    assert resumed.hiding == reference.hiding
    assert resumed.witness == reference.witness
    assert (
        resumed.provenance.instances_scanned
        == reference.provenance.instances_scanned
    )
    assert counters == ref_counters


# ----------------------------------------------------------------------
# The file-based queue
# ----------------------------------------------------------------------


def test_queue_claim_is_exclusive_until_released(tmp_path):
    q1 = ShardQueue(tmp_path, owner="host-1")
    q2 = ShardQueue(tmp_path, owner="host-2")
    assert q1.claim("d3-000000-000001")
    assert not q2.claim("d3-000000-000001")
    assert q1.claim_record("d3-000000-000001")["owner"] == "host-1"
    q1.release("d3-000000-000001")
    assert q2.claim("d3-000000-000001")


def test_queue_complete_marks_done_for_everyone(tmp_path):
    q1 = ShardQueue(tmp_path, owner="host-1")
    q2 = ShardQueue(tmp_path, owner="host-2")
    assert q1.claim("s")
    q1.complete("s")
    assert q1.is_done("s")
    assert q2.is_done("s")
    assert q2.done_ids() == {"s"}
    assert not q2.claim("s")


def test_queue_expired_lease_is_stolen(tmp_path):
    q1 = ShardQueue(tmp_path, owner="host-1", lease_s=0.01)
    q2 = ShardQueue(tmp_path, owner="host-2", lease_s=60.0)
    assert q1.claim("s")
    assert not q2.claim("s")  # live lease
    time.sleep(0.05)
    assert q2.claim("s")  # expired: stolen
    assert q2.claim_record("s")["owner"] == "host-2"


def test_queue_manifest_first_writer_wins(tmp_path):
    q1 = ShardQueue(tmp_path, owner="host-1")
    q2 = ShardQueue(tmp_path, owner="host-2")
    manifest = {"scheme": SCHEME, "n": N, "shards": 4}
    assert q1.write_manifest(manifest) == manifest
    assert q2.write_manifest(manifest) == manifest  # same spec: fine
    with pytest.raises(ValueError):
        q2.write_manifest({"scheme": SCHEME, "n": N, "shards": 8})


def test_queue_requires_checkpoints(tmp_path):
    plan = _plan(disk_cache=False).resolve()
    with pytest.raises(ValueError, match="checkpoint"):
        run_sharded_sweep(
            make_lcp(SCHEME),
            N,
            plan,
            RunContext.isolated(),
            bounds=_enumeration_bounds(plan),
            symmetry="on",
            queue=ShardQueue(tmp_path),
        )


def _drain(tmp_path, queue):
    """One host's drain of the shared sweep directory."""
    plan = _plan(disk_cache=True).resolve()
    lcp = make_lcp(SCHEME)
    ctx = RunContext.isolated()
    account = SymmetryAccount()
    outcome = run_sharded_sweep(
        lcp,
        N,
        plan,
        ctx,
        bounds=_enumeration_bounds(plan),
        symmetry="on",
        account=account,
        sweep_key=disk_key(lcp, N, plan),
        queue=queue,
    )
    return outcome, account, ctx


def test_two_hosts_drain_one_sweep_directory(tmp_path):
    with overridden(disk_cache_dir=str(tmp_path / "cache")):
        queue_dir = tmp_path / "queue"
        # "Host 1" holds a live claim on the first shard but died: the
        # draining host computes everything else, polls the foreign
        # claim, and steals the unit once the lease expires mid-drain.
        spec = plan_shards(N, 3, 1)
        dead = ShardQueue(queue_dir, owner="dead-host", lease_s=1.0)
        assert dead.claim(spec.shards[0].id)

        live = ShardQueue(queue_dir, owner="live-host", lease_s=60.0)
        outcome, account, ctx = _drain(tmp_path, live)
        assert outcome.shard_count == len(spec.shards)
        assert ctx.stats.get("shard_lease_steals") >= 1
        assert {shard.id for shard in spec.shards} <= live.done_ids()

        # A second host arriving after the fact adopts everything from
        # the checkpoints: no shard is recomputed.
        late = ShardQueue(queue_dir, owner="late-host", lease_s=60.0)
        late_outcome, late_account, late_ctx = _drain(tmp_path, late)
        assert late_outcome.checkpoint_hits == len(spec.shards)
        assert late_ctx.stats.get("shards_completed") == 0
        assert late_account.as_tuple() == account.as_tuple()
        assert len(late_outcome.ngraph.views) == len(outcome.ngraph.views)
        assert sorted(late_outcome.ngraph.edges) == sorted(outcome.ngraph.edges)
