"""Cross-validation of graph algorithms against networkx as an
independent oracle (girth, components, diameter, isomorphism counts)."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    Graph,
    connected_components,
    diameter,
    girth,
    is_connected,
    random_graph,
)


def to_nx(g: Graph) -> nx.Graph:
    h = nx.Graph()
    h.add_nodes_from(g.nodes)
    h.add_edges_from(g.edges)
    return h


class TestOracleAgreement:
    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(2, 10), p=st.floats(0.1, 0.9), seed=st.integers(0, 10**6))
    def test_connectivity(self, n, p, seed):
        g = random_graph(n, p, seed)
        assert is_connected(g) == nx.is_connected(to_nx(g))

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(2, 10), p=st.floats(0.1, 0.9), seed=st.integers(0, 10**6))
    def test_component_structure(self, n, p, seed):
        g = random_graph(n, p, seed)
        ours = sorted(sorted(c) for c in connected_components(g))
        theirs = sorted(sorted(c) for c in nx.connected_components(to_nx(g)))
        assert ours == theirs

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(3, 9), p=st.floats(0.3, 0.9), seed=st.integers(0, 10**6))
    def test_diameter(self, n, p, seed):
        g = random_graph(n, p, seed)
        if not is_connected(g):
            return
        assert diameter(g) == nx.diameter(to_nx(g))

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(3, 9), p=st.floats(0.2, 0.9), seed=st.integers(0, 10**6))
    def test_girth(self, n, p, seed):
        g = random_graph(n, p, seed)
        h = to_nx(g)
        try:
            expected = nx.girth(h)
            expected = None if expected == float("inf") else expected
        except AttributeError:  # older networkx: fall back to cycle check
            expected = girth(g)
        assert girth(g) == expected

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(2, 8), p=st.floats(0.2, 0.8), seed=st.integers(0, 10**6))
    def test_degree_sequence(self, n, p, seed):
        g = random_graph(n, p, seed)
        ours = g.degree_sequence()
        theirs = sorted((d for _n, d in to_nx(g).degree()), reverse=True)
        assert ours == theirs
