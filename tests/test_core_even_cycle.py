"""Tests for the even-cycle LCP (Lemma 4.2): 2-edge-coloring certificates,
exhaustive strong soundness (on all graphs), and everywhere-hiding."""

import pytest

from repro.certification import (
    ExhaustiveAdversary,
    check_completeness,
    check_strong_soundness,
)
from repro.core import EvenCycleLCP
from repro.errors import PromiseViolationError
from repro.graphs import complete_graph, cycle_graph, path_graph, star_graph
from repro.local import Instance, Labeling
from repro.neighborhood import hiding_verdict_up_to


@pytest.fixture(scope="module")
def lcp() -> EvenCycleLCP:
    return EvenCycleLCP()


class TestProver:
    def test_certificates_encode_proper_edge_coloring(self, lcp):
        instance = Instance.build(cycle_graph(8))
        labeling = lcp.prover.certify(instance)
        g = instance.graph
        # Reconstruct the edge coloring from certificates and check it.
        colors = {}
        for v in g.nodes:
            entries = labeling.of(v)
            for own_port in (1, 2):
                u = instance.ports.neighbor_at(v, own_port)
                far, color = entries[own_port - 1]
                assert far == instance.ports.port(u, v)
                key = frozenset((u, v))
                assert colors.setdefault(key, color) == color
        for v in g.nodes:
            incident = [colors[frozenset((v, u))] for u in g.neighbors(v)]
            assert sorted(incident) == [0, 1]

    def test_two_certifications(self, lcp):
        instance = Instance.build(cycle_graph(4))
        assert len(list(lcp.prover.all_certifications(instance))) == 2

    @pytest.mark.parametrize("graph", [path_graph(4), cycle_graph(5), star_graph(3)])
    def test_rejects_outside_promise(self, lcp, graph):
        with pytest.raises(PromiseViolationError):
            lcp.prover.certify(Instance.build(graph))


class TestCompleteness:
    def test_even_cycles_all_ports(self, lcp):
        report = check_completeness(
            lcp, [cycle_graph(4), cycle_graph(6), cycle_graph(8)], port_limit=16
        )
        assert report.passed
        assert report.instances_checked >= 3 * 16


class TestStrongSoundness:
    def test_exhaustive_on_k3(self, lcp):
        report = check_strong_soundness(
            lcp, [complete_graph(3)], ExhaustiveAdversary(), port_limit=1
        )
        assert report.passed
        assert report.labelings_checked == 16**3

    def test_sampled_prefix_on_c5(self, lcp):
        report = check_strong_soundness(
            lcp, [cycle_graph(5)], ExhaustiveAdversary(max_labelings=40_000), port_limit=1
        )
        assert report.passed

    def test_degree_requirement(self, lcp):
        """Accepting nodes must have degree exactly 2, so odd cycles with
        chords can never be fully accepted."""
        g = cycle_graph(5)
        g.add_edge(0, 2)
        instance = Instance.build(g)
        # Whatever labeling: nodes 0 and 2 have degree 3 -> reject.
        labeling = Labeling.uniform(g, ((1, 0), (2, 1)))
        result = lcp.check(instance.with_labeling(labeling))
        assert 0 in result.rejecting and 2 in result.rejecting


class TestDecoderCases:
    def test_malformed_rejected(self, lcp):
        g = cycle_graph(4)
        labeling = Labeling.uniform(g, "nonsense")
        result = lcp.check(Instance.build(g).with_labeling(labeling))
        assert result.rejecting == set(g.nodes)

    def test_equal_colors_rejected(self, lcp):
        g = cycle_graph(4)
        labeling = Labeling.uniform(g, ((1, 0), (1, 0)))
        result = lcp.check(Instance.build(g).with_labeling(labeling))
        assert result.rejecting == set(g.nodes)

    def test_wrong_far_port_rejected(self, lcp):
        instance = Instance.build(cycle_graph(4))
        labeling = lcp.prover.certify(instance)
        v = instance.graph.nodes[0]
        (far1, c1), (far2, c2) = labeling.of(v)
        tampered = labeling.with_label(v, ((3 - far1, c1), (far2, c2)))
        result = lcp.check(instance.with_labeling(tampered))
        assert v in result.rejecting

    def test_neighbor_color_disagreement_rejected(self, lcp):
        instance = Instance.build(cycle_graph(6))
        labeling = lcp.prover.certify(instance)
        v = instance.graph.nodes[0]
        (far1, c1), (far2, c2) = labeling.of(v)
        tampered = labeling.with_label(v, ((far1, 1 - c1), (far2, 1 - c2)))
        result = lcp.check(instance.with_labeling(tampered))
        assert not result.unanimous


class TestHiding:
    def test_hiding_at_n6(self, lcp):
        verdict = hiding_verdict_up_to(lcp, 6)
        assert verdict.hiding is True

    def test_no_node_learns_its_color(self, lcp):
        """Everywhere-hiding, concretely: with rotation-symmetric ports
        all nodes of C6 hold the same view, so any decoder must give them
        all the same color — never a proper 2-coloring."""
        from repro.local import PortAssignment, extract_view

        g = cycle_graph(6)
        ports = PortAssignment({v: {(v + 1) % 6: 1, (v - 1) % 6: 2} for v in range(6)})
        instance = Instance.build(g, ports=ports)
        # Rotation-symmetric edge coloring does not exist (colors must
        # alternate), so use the prover's and check view collisions two
        # apart instead: v and v+2 share certificates and views.
        labeled = instance.with_labeling(lcp.prover.certify(instance))
        views = [extract_view(labeled, v, 1, include_ids=False) for v in range(6)]
        assert views[0] == views[2] == views[4]
        assert views[1] == views[3] == views[5]


def test_alphabet_size(lcp=None):
    lcp = EvenCycleLCP()
    alphabet = lcp.certificate_alphabet(cycle_graph(4))
    assert len(alphabet) == 16
    assert len(set(alphabet)) == 16
