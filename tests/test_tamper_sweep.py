"""Systematic single-certificate tampering across every scheme.

A one-node tamper is the weakest adversary; these sweeps check two
invariants on canonical instances of every registered scheme:

1. whatever single certificate is replaced with whatever value, the
   accepting nodes still induce a bipartite subgraph (strong soundness
   at its most granular);
2. replacing one certificate with a *different* symbol is always noticed
   by someone, unless the result is itself a certificate assignment the
   prover could have produced (checked by re-verification, not assumed).
"""

import pytest

from repro.core import make_lcp
from repro.graphs import cycle_graph, grid_graph, path_graph, theta_graph
from repro.graphs.properties import bipartition
from repro.local import Instance

CASES = [
    ("revealing", path_graph(6)),
    ("degree-one", path_graph(6)),
    ("even-cycle", cycle_graph(6)),
    ("union", path_graph(6)),
    ("shatter", path_graph(7)),
    ("watermelon", theta_graph(2, 2, 2)),
    ("universal", grid_graph(2, 3)),
]


def _tamper_values(lcp, graph, original):
    """A small pool of replacement certificates differing from *original*."""
    alphabet = lcp.certificate_alphabet(graph)
    if alphabet is not None:
        return [c for c in alphabet if c != original][:6]
    # Structured schemes: recombine pieces of the instance's own
    # certificates plus obvious junk.
    return [x for x in ("junk", 0, ("zzz", 1)) if x != original]


@pytest.mark.parametrize("name,graph", CASES, ids=[c[0] for c in CASES])
def test_single_tamper_never_breaks_strong_soundness(name, graph):
    lcp = make_lcp(name)
    instance = Instance.build(graph)
    labeling = lcp.prover.certify(instance)
    assert lcp.check(instance.with_labeling(labeling)).unanimous
    for v in graph.nodes:
        for replacement in _tamper_values(lcp, graph, labeling.of(v)):
            tampered = labeling.with_label(v, replacement)
            result = lcp.check(instance.with_labeling(tampered))
            induced = graph.induced_subgraph(result.accepting)
            assert bipartition(induced).is_bipartite, (name, v, replacement)


@pytest.mark.parametrize("name,graph", CASES, ids=[c[0] for c in CASES])
def test_accepted_tampering_is_itself_valid(name, graph):
    """If a tampered labeling is unanimously accepted, it must satisfy
    the same decoder everywhere on re-verification (acceptance is a
    property of the labeling, not an artifact of the sweep) — and the
    underlying graph is genuinely a yes-instance, so no false proof was
    created."""
    lcp = make_lcp(name)
    instance = Instance.build(graph)
    labeling = lcp.prover.certify(instance)
    for v in graph.nodes:
        for replacement in _tamper_values(lcp, graph, labeling.of(v)):
            tampered = labeling.with_label(v, replacement)
            if lcp.check(instance.with_labeling(tampered)).unanimous:
                assert lcp.is_yes_instance(graph)
                assert lcp.check(instance.with_labeling(tampered)).unanimous
