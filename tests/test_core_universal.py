"""Tests for the universal O(n²) LCP (Section 1.1's classical scheme)."""

import pytest

from repro.core import UniversalLCP, graph_map_of
from repro.errors import PromiseViolationError
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    grid_graph,
    is_tree,
    path_graph,
    star_graph,
)
from repro.local import Instance, Labeling


@pytest.fixture(scope="module")
def lcp() -> UniversalLCP:
    return UniversalLCP()


class TestCompleteness:
    @pytest.mark.parametrize(
        "graph",
        [path_graph(5), cycle_graph(6), grid_graph(2, 3), star_graph(4)],
    )
    def test_round_trip(self, lcp, graph):
        assert lcp.certify_and_check(Instance.build(graph)).unanimous

    def test_rejects_non_property_graph(self, lcp):
        with pytest.raises(PromiseViolationError):
            lcp.prover.certify(Instance.build(complete_graph(3)))

    def test_rejects_disconnected(self, lcp):
        g = Graph.from_edges([(0, 1), (2, 3)])
        with pytest.raises(PromiseViolationError):
            lcp.prover.certify(Instance.build(g))

    def test_other_property(self):
        tree_lcp = UniversalLCP(property_fn=is_tree, property_name="tree")
        assert tree_lcp.certify_and_check(Instance.build(star_graph(4))).unanimous
        result = tree_lcp.certify_and_check(
            Instance.build(cycle_graph(4))
        ) if False else None
        with pytest.raises(PromiseViolationError):
            tree_lcp.prover.certify(Instance.build(cycle_graph(4)))
        assert result is None


class TestSoundness:
    def test_honest_map_of_no_instance_rejected(self, lcp):
        instance = Instance.build(complete_graph(3))
        labeling = Labeling.uniform(instance.graph, graph_map_of(instance))
        assert not lcp.check(instance.with_labeling(labeling)).unanimous

    def test_lying_map_caught_by_row_check(self, lcp):
        """Claiming a bipartite map on K3: some node's claimed row must
        differ from its actual neighborhood."""
        instance = Instance.build(complete_graph(3))
        lie = ((1, 2, 3), ((1, 2), (2, 3)))
        labeling = Labeling.uniform(instance.graph, lie)
        assert not lcp.check(instance.with_labeling(labeling)).unanimous

    def test_disagreeing_neighbors_caught(self, lcp):
        instance = Instance.build(path_graph(3))
        honest = graph_map_of(instance)
        other = ((1, 2, 3), ((1, 2), (1, 3)))
        labeling = Labeling({0: honest, 1: honest, 2: other})
        result = lcp.check(instance.with_labeling(labeling))
        assert 1 in result.rejecting  # sees both maps

    def test_phantom_component_caught_by_connectivity(self, lcp):
        """A map with a detached phantom clique would satisfy every row
        check; the connectivity requirement rejects it."""
        instance = Instance.build(path_graph(3), id_bound=6)
        phantom = ((1, 2, 3, 4, 5, 6), ((1, 2), (2, 3), (4, 5), (4, 6), (5, 6)))
        labeling = Labeling.uniform(instance.graph, phantom)
        result = lcp.check(instance.with_labeling(labeling))
        assert result.rejecting == {0, 1, 2}

    def test_missing_own_id_rejected(self, lcp):
        instance = Instance.build(path_graph(2), id_bound=9)
        labeling = Labeling.uniform(instance.graph, ((8, 9), ((8, 9),)))
        assert not lcp.check(instance.with_labeling(labeling)).unanimous

    def test_malformed_maps_rejected(self, lcp):
        instance = Instance.build(path_graph(2))
        for junk in ["x", (1, 2, 3), (((1, 1)), ()), ((1, 2), ((2, 1),))]:
            labeling = Labeling.uniform(instance.graph, junk)
            assert not lcp.check(instance.with_labeling(labeling)).unanimous


class TestSizeAndRevealing:
    def test_quadratic_certificates(self, lcp):
        small = Instance.build(path_graph(4))
        large = Instance.build(grid_graph(4, 4))
        bits_small = lcp.labeling_bits(lcp.prover.certify(small), small.n, small.id_bound)
        bits_large = lcp.labeling_bits(lcp.prover.certify(large), large.n, large.id_bound)
        assert bits_large > 4 * bits_small  # super-linear growth

    def test_maximally_revealing(self, lcp):
        """Every node can recover a full 2-coloring from its certificate
        alone — the scheme is the anti-hiding baseline."""
        from repro.graphs.properties import bipartition, proper_coloring_ok

        instance = Instance.build(grid_graph(2, 3))
        labeling = lcp.prover.certify(instance)
        claimed_nodes, claimed_edges = labeling.of(0)
        claimed = Graph(nodes=claimed_nodes, edges=claimed_edges)
        split = bipartition(claimed)
        assert split.is_bipartite
        extracted = {
            v: split.coloring[instance.ids.id_of(v)] for v in instance.graph.nodes
        }
        assert proper_coloring_ok(instance.graph, extracted)
