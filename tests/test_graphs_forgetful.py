"""Tests for the r-forgetful property (both readings) and Lemma 2.1."""

import pytest

from repro.graphs import (
    cycle_graph,
    diameter,
    grid_graph,
    path_graph,
    star_graph,
    theta_graph,
    toroidal_grid_graph,
)
from repro.graphs.forgetful import (
    find_escape_path,
    forgetful_radius,
    forgetful_report,
    is_r_forgetful,
)


class TestEscapeMode:
    @pytest.mark.parametrize(
        "graph,r,expected",
        [
            (cycle_graph(8), 1, True),
            (cycle_graph(12), 2, True),
            (cycle_graph(10), 2, True),
            (cycle_graph(6), 2, False),
            (theta_graph(4, 4, 6), 1, True),
            (toroidal_grid_graph(6, 6), 1, True),
            (grid_graph(4, 4), 1, False),   # corners break it
            (path_graph(6), 1, False),      # leaves break it
            (star_graph(3), 1, False),
        ],
    )
    def test_catalog(self, graph, r, expected):
        assert is_r_forgetful(graph, r) is expected

    def test_grid_defects_are_at_boundary(self):
        report = forgetful_report(grid_graph(5, 5), 1)
        assert not report.is_forgetful
        boundary = {
            r * 5 + c for r in range(5) for c in range(5)
            if r in (0, 4) or c in (0, 4)
        }
        assert all(v in boundary for v, _u in report.defects)

    def test_escape_path_shape(self):
        g = cycle_graph(12)
        path = find_escape_path(g, 0, 1, 2)
        assert path is not None
        assert len(path) == 3
        assert path[0] == 0
        # The path must walk straight away from the arrival edge.
        assert path == (0, 11, 10)

    def test_escape_paths_increase_distance_to_u_and_v(self):
        g = theta_graph(4, 4, 6)
        report = forgetful_report(g, 1)
        from repro.graphs import bfs_distances

        for (v, u), path in report.escape_paths.items():
            du = bfs_distances(g, u)
            dv = bfs_distances(g, v)
            for i in range(len(path) - 1):
                assert du[path[i + 1]] > du[path[i]]
                assert dv[path[i + 1]] > dv[path[i]]


class TestStrictMode:
    def test_strict_r1_on_cycles(self):
        assert is_r_forgetful(cycle_graph(8), 1, mode="strict")
        assert not is_r_forgetful(cycle_graph(5), 1, mode="strict")

    @pytest.mark.parametrize(
        "graph",
        [cycle_graph(20), toroidal_grid_graph(8, 8), theta_graph(6, 6, 8)],
    )
    def test_strict_unsatisfiable_at_r2(self, graph):
        """The reproduction finding: the literal definition is empty for
        r >= 2, because the escape path's first node lies in N^r(u)."""
        assert not is_r_forgetful(graph, 2, mode="strict")

    def test_lemma_2_1_diameter_bound_strict(self):
        """Lemma 2.1 under the strict reading: diam >= 2r + 1."""
        for graph in [cycle_graph(8), cycle_graph(12), toroidal_grid_graph(6, 6)]:
            for r in (1, 2):
                if is_r_forgetful(graph, r, mode="strict"):
                    assert diameter(graph) >= 2 * r + 1


class TestForgetfulRadius:
    def test_monotone_scan(self):
        assert forgetful_radius(cycle_graph(12), 4) == 2
        assert forgetful_radius(cycle_graph(16), 4) == 3
        assert forgetful_radius(path_graph(5), 3) == 0

    def test_escape_mode_diameter_lower_bound(self):
        """Under the escape reading, diam >= r + 1 always holds (the
        path ends at distance r+1 from u)."""
        for graph in [cycle_graph(8), cycle_graph(12), theta_graph(4, 4, 6)]:
            r = forgetful_radius(graph, 3)
            if r >= 1:
                assert diameter(graph) >= r + 1


class TestValidation:
    def test_requires_neighbor(self):
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            find_escape_path(cycle_graph(6), 0, 2, 1)

    def test_requires_positive_radius(self):
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            find_escape_path(cycle_graph(6), 0, 1, 0)
