"""Tests for the streaming hiding engine (early-exit Lemma 3.2).

Covers the parity guarantee (streaming verdict == materialized verdict
for every registry scheme, serial and parallel), the incremental
structures underneath (union-find with parity; incremental DSATUR), the
persistent verdict cache (round trip + version invalidation), the
cross-``n`` warm start, and the witness-length regressions pinning the
paper's Figure 3–6 odd walks.
"""

from __future__ import annotations

import pytest

from repro.core.registry import all_lcps, make_lcp
from repro.core import DegreeOneLCP, EvenCycleLCP, RevealingLCP
from repro.graphs.graph import Graph
from repro.graphs.incremental import IncrementalKColoring, ParityForest
from repro.graphs.properties import is_odd_closed_walk
from repro.neighborhood import (
    build_extraction_decoder,
    hiding_verdict_up_to,
    streaming_hiding_verdict_up_to,
)
from repro.neighborhood.streaming import clear_streaming_state
from repro.perf import PerfStats, overridden
from repro.perf.persist import PersistentVerdictCache


@pytest.fixture(autouse=True)
def _fresh_streaming_state():
    clear_streaming_state()
    yield
    clear_streaming_state()


# ----------------------------------------------------------------------
# The parity property: streaming == materialized, any scheme, any workers
# ----------------------------------------------------------------------


def _assert_parity(lcp, n, workers):
    materialized = hiding_verdict_up_to(lcp, n, streaming=False)
    streamed = streaming_hiding_verdict_up_to(
        lcp, n, workers=workers, warm_start=False, disk_cache=False
    )
    assert streamed.hiding == materialized.hiding
    if streamed.hiding:
        # The witness need not be the identical walk, but it must be a
        # genuine odd closed walk of adjacent views in the streamed graph.
        if lcp.k == 2:
            assert streamed.odd_cycle is not None
            g = streamed.ngraph
            walk = [g.index[view] for view in streamed.odd_cycle]
            assert is_odd_closed_walk(g.to_graph(), walk)
        # Early exit: never scan more than the full enumeration.
        assert (
            streamed.ngraph.instances_scanned
            <= materialized.ngraph.instances_scanned
        )
    else:
        # Non-hiding sweeps must materialize the exact same V(D, n).
        assert streamed.ngraph.views == materialized.ngraph.views
        assert streamed.ngraph.edges == materialized.ngraph.edges
        assert streamed.coloring == materialized.coloring


@pytest.mark.parametrize("scheme", sorted(all_lcps()))
@pytest.mark.parametrize("n", [3, 4])
def test_streaming_matches_materialized_serial(scheme, n):
    _assert_parity(make_lcp(scheme), n, workers=None)


@pytest.mark.parametrize("scheme", sorted(all_lcps()))
def test_streaming_matches_materialized_n5_serial(scheme):
    _assert_parity(make_lcp(scheme), 5, workers=None)


@pytest.mark.parametrize("workers", [2, 4])
@pytest.mark.parametrize("scheme", sorted(all_lcps()))
def test_streaming_matches_materialized_parallel(scheme, workers):
    _assert_parity(make_lcp(scheme), 4, workers=workers)


@pytest.mark.parametrize("workers", [2, 4])
@pytest.mark.parametrize("scheme", ["degree-one", "revealing"])
def test_streaming_matches_materialized_n5_parallel(scheme, workers):
    _assert_parity(make_lcp(scheme), 5, workers=workers)


def test_non_hiding_extraction_decoders_are_equal():
    """On non-hiding sweeps the streamed graph feeds the extraction
    direction of Lemma 3.2 exactly as the materialized one does."""
    lcp = RevealingLCP()
    materialized = hiding_verdict_up_to(lcp, 4, streaming=False)
    streamed = streaming_hiding_verdict_up_to(
        lcp, 4, warm_start=False, disk_cache=False
    )
    dec_m = build_extraction_decoder(materialized.ngraph, k=2)
    dec_s = build_extraction_decoder(streamed.ngraph, k=2)
    assert dec_m._table == dec_s._table


def test_early_exit_scans_fewer_instances():
    lcp = DegreeOneLCP()
    materialized = hiding_verdict_up_to(lcp, 4, streaming=False)
    stats = PerfStats()
    streamed = streaming_hiding_verdict_up_to(
        lcp, 4, stats=stats, warm_start=False, disk_cache=False
    )
    assert streamed.hiding is True
    assert stats.get("streaming_early_exits") >= 1
    assert (
        streamed.ngraph.instances_scanned < materialized.ngraph.instances_scanned
    )


def test_hiding_verdict_up_to_streaming_route():
    """The ``streaming=`` parameter and the global config knob both route
    through the engine; the flag parity holds either way."""
    lcp = DegreeOneLCP()
    materialized = hiding_verdict_up_to(lcp, 4, streaming=False)
    routed = hiding_verdict_up_to(lcp, 4, streaming=True)
    assert routed.hiding == materialized.hiding
    with overridden(streaming=True):
        via_config = hiding_verdict_up_to(lcp, 4)
    assert via_config.hiding == materialized.hiding


# ----------------------------------------------------------------------
# Union-find with parity
# ----------------------------------------------------------------------


class TestParityForest:
    def test_triangle_yields_length_three_walk(self):
        f = ParityForest()
        assert f.add_edge(0, 1) is None
        assert f.add_edge(1, 2) is None
        walk = f.add_edge(0, 2)
        assert walk is not None
        assert walk[0] == walk[-1]
        assert (len(walk) - 1) % 2 == 1
        assert len(walk) - 1 == 3

    def test_even_cycle_stays_bipartite(self):
        f = ParityForest()
        for i in range(4):
            assert f.add_edge(i, (i + 1) % 4) is None
        coloring = f.two_coloring()
        for i in range(4):
            assert coloring[i] != coloring[(i + 1) % 4]

    def test_loop_is_a_witness(self):
        f = ParityForest()
        assert f.add_edge(5, 5) == [5, 5]

    def test_cross_component_union_keeps_parity(self):
        f = ParityForest()
        assert f.add_edge(0, 1) is None
        assert f.add_edge(2, 3) is None
        assert f.add_edge(1, 2) is None  # merge the two components
        # 0-1-2-3 is a path; closing 0-3 keeps it even (4-cycle)...
        assert f.add_edge(0, 3) is None
        # ...but chording it with 0-2 creates a triangle 0-1-2.
        walk = f.add_edge(0, 2)
        assert walk is not None
        assert (len(walk) - 1) % 2 == 1

    def test_odd_walk_is_valid_in_fed_graph(self):
        edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 4)]
        f = ParityForest()
        witness = None
        g = Graph(nodes=range(5))
        for u, v in edges:
            g.add_edge(u, v)
            witness = f.add_edge(u, v) or witness
        assert witness is not None
        assert is_odd_closed_walk(g, witness)

    def test_clone_is_independent(self):
        f = ParityForest()
        f.add_edge(0, 1)
        g = f.clone()
        assert g.add_edge(1, 2) is None
        assert 2 not in f.parent


# ----------------------------------------------------------------------
# Incremental DSATUR (general k)
# ----------------------------------------------------------------------


class TestIncrementalKColoring:
    def test_triangle_needs_three_colors(self):
        c = IncrementalKColoring(3)
        for v in range(3):
            c.add_node(v)
        c.add_edge(0, 1)
        c.add_edge(1, 2)
        c.add_edge(0, 2)
        assert not c.failed
        assert len({c.color[0], c.color[1], c.color[2]}) == 3

    def test_k4_is_not_three_colorable(self):
        c = IncrementalKColoring(3)
        for v in range(4):
            c.add_node(v)
        for u in range(4):
            for v in range(u + 1, 4):
                c.add_edge(u, v)
        assert c.failed

    def test_restart_recovers_from_greedy_dead_end(self):
        # A 6-cycle plus chords that force repairs/restarts but remains
        # 2-degenerate, hence 3-colorable.
        c = IncrementalKColoring(3)
        for v in range(6):
            c.add_node(v)
        edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 2), (3, 5)]
        for u, v in edges:
            c.add_edge(u, v)
        assert not c.failed
        for u, v in edges:
            assert c.color[u] != c.color[v]

    def test_loop_fails_any_k(self):
        c = IncrementalKColoring(3)
        c.add_node(0)
        c.add_edge(0, 0)
        assert c.failed


# ----------------------------------------------------------------------
# Persistent cache
# ----------------------------------------------------------------------


class TestPersistentCache:
    def test_round_trip(self, tmp_path):
        cache = PersistentVerdictCache(tmp_path)
        key = {"lcp_name": "x", "n": 4}
        body = {"hiding": True, "views": [1, 2], "edges": [[0, 1]]}
        assert cache.store(key, body)
        assert cache.load(key) == body
        assert cache.load({"lcp_name": "x", "n": 5}) is None

    def test_version_bump_invalidates(self, tmp_path, monkeypatch):
        from repro.perf import persist

        cache = PersistentVerdictCache(tmp_path)
        key = {"lcp_name": "x", "n": 4}
        assert cache.store(key, {"hiding": False, "views": [], "edges": []})
        assert cache.load(key) is not None
        monkeypatch.setattr(persist, "CACHE_VERSION", persist.CACHE_VERSION + 1)
        # Same digest input would now differ too, but even a forced read
        # of the old file must reject the stale version header.
        assert cache.load(key) is None

    def test_unserializable_labels_are_skipped(self, tmp_path):
        cache = PersistentVerdictCache(tmp_path)
        stats = PerfStats()
        assert not cache.store({"n": 1}, {"views": [object()]}, stats=stats)
        assert stats.get("persist_skips") == 1

    def test_stats_and_clear(self, tmp_path):
        cache = PersistentVerdictCache(tmp_path)
        cache.store({"n": 1}, {"views": [], "edges": []})
        cache.store({"n": 2}, {"views": [], "edges": []})
        summary = cache.stats_summary()
        assert summary["entries"] == 2
        assert summary["stale_entries"] == 0
        assert cache.clear() == 2
        assert cache.stats_summary()["entries"] == 0

    def test_streaming_disk_round_trip_preserves_verdict(self, tmp_path):
        lcp = DegreeOneLCP()
        with overridden(disk_cache_dir=str(tmp_path)):
            stats = PerfStats()
            first = streaming_hiding_verdict_up_to(
                lcp, 4, stats=stats, warm_start=False, disk_cache=True
            )
            assert stats.get("persist_writes") == 1
            clear_streaming_state()
            stats = PerfStats()
            second = streaming_hiding_verdict_up_to(
                lcp, 4, stats=stats, warm_start=False, disk_cache=True
            )
            assert stats.get("disk_hits") == 1
        assert second.hiding == first.hiding
        assert second.ngraph.views == first.ngraph.views
        assert second.ngraph.edges == first.ngraph.edges
        assert second.odd_cycle == first.odd_cycle
        assert first.ngraph.has_provenance
        assert not second.ngraph.has_provenance


# ----------------------------------------------------------------------
# Warm start
# ----------------------------------------------------------------------


class TestWarmStart:
    def test_chain_matches_cold_runs(self):
        lcp = RevealingLCP()
        cold = {}
        for n in (3, 4, 5):
            clear_streaming_state()
            cold[n] = streaming_hiding_verdict_up_to(
                lcp, n, warm_start=False, disk_cache=False
            )
        clear_streaming_state()
        stats = PerfStats()
        for n in (3, 4, 5):
            warm = streaming_hiding_verdict_up_to(
                lcp, n, stats=stats, warm_start=True, disk_cache=False
            )
            assert warm.hiding == cold[n].hiding
            assert warm.ngraph.views == cold[n].ngraph.views
            assert warm.ngraph.edges == cold[n].ngraph.edges
        assert stats.get("warm_starts") == 2

    def test_witness_short_circuits_larger_n(self):
        lcp = DegreeOneLCP()
        streaming_hiding_verdict_up_to(lcp, 4, disk_cache=False)
        stats = PerfStats()
        v5 = streaming_hiding_verdict_up_to(lcp, 5, stats=stats, disk_cache=False)
        assert v5.hiding is True
        assert stats.get("warm_witness_hits") == 1
        # No new instances were scanned for n = 5.
        assert stats.get("instances_scanned") == 0

    def test_warm_state_not_mutated_by_resume(self):
        lcp = RevealingLCP()
        v3 = streaming_hiding_verdict_up_to(lcp, 3, disk_cache=False)
        views_before = list(v3.ngraph.views)
        streaming_hiding_verdict_up_to(lcp, 4, disk_cache=False)
        assert v3.ngraph.views == views_before


# ----------------------------------------------------------------------
# Witness-length regressions (the paper's Figure 3–6 odd walks)
# ----------------------------------------------------------------------


class TestWitnessRegressions:
    def test_degree_one_n4_walk_length(self):
        verdict = hiding_verdict_up_to(DegreeOneLCP(), 4, streaming=False)
        assert verdict.hiding is True
        # Closed walk [v0, ..., v6, v0]: 8 entries, 7 views, 7 edges.
        assert len(verdict.odd_cycle) == 8
        assert verdict.odd_cycle[0] == verdict.odd_cycle[-1]
        assert (len(verdict.odd_cycle) - 1) % 2 == 1
        assert "odd closed walk of 7 views" in verdict.summary()

    def test_even_cycle_n6_loop_witness(self):
        verdict = hiding_verdict_up_to(EvenCycleLCP(), 6, streaming=False)
        assert verdict.hiding is True
        # The 2-labeled-cycles witness collapses to a self-loop: a view
        # adjacent to itself is an odd closed walk of length 1.
        assert len(verdict.odd_cycle) == 2
        assert verdict.odd_cycle[0] == verdict.odd_cycle[-1]
        assert "odd closed walk of 1 views" in verdict.summary()

    def test_summary_counts_edges_not_entries(self):
        """``len(odd_cycle) - 1`` is the number of edges of the closed
        walk, which equals the number of distinct view *slots* traversed
        — the convention `summary()` reports.  (Checked against
        `find_odd_cycle`'s ``[v0, ..., vk, v0]`` shape.)"""
        verdict = hiding_verdict_up_to(DegreeOneLCP(), 4, streaming=False)
        walk = [verdict.ngraph.index[v] for v in verdict.odd_cycle]
        edge_count = len(walk) - 1
        assert is_odd_closed_walk(verdict.ngraph.to_graph(), walk)
        assert f"odd closed walk of {edge_count} views" in verdict.summary()
