"""Property suite: orbit-pruned sweeps match the brute-force oracle.

The symmetry layer is only allowed to change *how fast* a verdict is
reached, never *what* is reached.  For every registry scheme and both
engine backends this suite runs the full sweep (no early exit, no cache
tiers) with symmetry off and on and demands byte-identical verdicts:
same hiding decision, same canonical witness walk, same
``decision_fingerprint``, and the same effective instance/view/edge
counts (suppressed instances folded back into ``instances_scanned``).

A second group pins the two pruning mechanisms individually —
labeling-orbit minima inside a base, and automorphic-duplicate bases —
against fresh brute-force enumerations of the same space.
"""

from __future__ import annotations

import pytest

from repro.certification.enumeration import unanimously_accepted_labelings
from repro.core import make_lcp
from repro.core.registry import all_lcps
from repro.engine import ExecutionPlan, clear_engine_state, decide_hiding
from repro.graphs.generators import cycle_graph, path_graph
from repro.local.instance import Instance
from repro.local.labeling import labeling_key, node_sort_order
from repro.neighborhood import yes_instances_up_to
from repro.neighborhood.aviews import symmetry_pruning_effective
from repro.symmetry import (
    SymmetryAccount,
    automorphism_group,
    instance_stabilizer,
)

SCHEMES = sorted(all_lcps())
BACKENDS = ["materialized", "streaming"]

#: Full-sweep ceiling per scheme; the two workhorse schemes get n = 5.
DEPTH = {name: 4 for name in SCHEMES}
DEPTH["degree-one"] = 5
DEPTH["even-cycle"] = 5


def _full_sweep_plan(backend: str, symmetry: str) -> ExecutionPlan:
    """A deterministic cold sweep: serial, no early exit, no cache tiers."""
    return ExecutionPlan(
        backend=backend,
        workers=0,
        early_exit=False,
        warm_start=False,
        memory_cache=False,
        disk_cache=False,
        symmetry=symmetry,
    )


def _sweep(scheme: str, backend: str, symmetry: str):
    clear_engine_state()
    lcp = make_lcp(scheme)
    return lcp, decide_hiding(lcp, DEPTH[scheme], _full_sweep_plan(backend, symmetry))


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("scheme", SCHEMES)
def test_pruned_sweep_matches_brute_force(scheme, backend):
    lcp, off = _sweep(scheme, backend, "off")
    _, on = _sweep(scheme, backend, "on")

    assert on.hiding == off.hiding
    assert on.witness == off.witness
    assert on.decision_fingerprint() == off.decision_fingerprint()
    # Effective counts: suppression is folded back, so the provenance
    # numbers of a full sweep are regime-independent.
    assert on.provenance.instances_scanned == off.provenance.instances_scanned
    assert on.provenance.views == off.provenance.views
    assert on.provenance.edges == off.provenance.edges
    assert on.provenance.symmetry_pruned
    assert not off.provenance.symmetry_pruned


@pytest.mark.parametrize("scheme", SCHEMES)
def test_auto_mode_prunes_exactly_the_anonymous_schemes(scheme):
    lcp, auto = _sweep(scheme, "streaming", "auto")
    _, off = _sweep(scheme, "streaming", "off")
    assert auto.provenance.symmetry_pruned == lcp.anonymous
    assert auto.provenance.symmetry_pruned == symmetry_pruning_effective(lcp, "auto")
    assert auto.decision_fingerprint() == off.decision_fingerprint()
    assert auto.provenance.instances_scanned == off.provenance.instances_scanned


@pytest.mark.parametrize("scheme", SCHEMES)
def test_instance_stream_is_a_counted_subsequence(scheme):
    """The pruned instance stream is a subsequence of the brute stream
    and the suppressed tally accounts for every skipped instance."""
    lcp = make_lcp(scheme)
    n = 4
    brute = [
        (tuple(i.graph.edges), labeling_key(i.labeling, node_sort_order(i.graph)))
        for i in yes_instances_up_to(
            lcp, n, include_all_accepted_labelings=True, symmetry="off"
        )
    ]
    account = SymmetryAccount()
    pruned = [
        (tuple(i.graph.edges), labeling_key(i.labeling, node_sort_order(i.graph)))
        for i in yes_instances_up_to(
            lcp, n, include_all_accepted_labelings=True, symmetry="on", account=account
        )
    ]
    assert len(brute) == len(pruned) + account.instances_suppressed
    it = iter(brute)
    assert all(item in it for item in pruned)  # subsequence, order preserved


class TestOrbitPruningMechanics:
    """The two pruning mechanisms against fresh brute-force loops."""

    def _base(self, graph):
        lcp = make_lcp("degree-one")  # anonymous, 4-symbol alphabet
        instance = Instance.build(graph)
        alphabet = lcp.certificate_alphabet(graph)
        return lcp, instance, alphabet

    @pytest.mark.parametrize("graph", [cycle_graph(4), cycle_graph(6), path_graph(4)])
    def test_labeling_orbit_pruning_is_exact(self, graph):
        lcp, instance, alphabet = self._base(graph)
        group = automorphism_group(graph)
        stabilizer = instance_stabilizer(
            group, graph, instance.ports, instance.ids, include_ids=False
        )
        assert stabilizer[0] == tuple(range(graph.order))  # identity first

        brute = list(
            unanimously_accepted_labelings(
                lcp.decoder, instance, alphabet, lcp.radius, include_ids=False
            )
        )
        account = SymmetryAccount()
        pruned = list(
            unanimously_accepted_labelings(
                lcp.decoder,
                instance,
                alphabet,
                lcp.radius,
                include_ids=False,
                stabilizer=stabilizer,
                account=account,
            )
        )
        # Exact accounting: reps + suppressed mates = brute total.
        assert len(brute) == len(pruned) + account.instances_suppressed
        assert account.labelings_total == len(alphabet) ** graph.order
        if len(stabilizer) > 1:
            # A nontrivial port-preserving symmetry must actually prune.
            assert account.labelings_pruned > 0
        else:
            assert account.labelings_pruned == 0
            assert account.instances_suppressed == 0

        # Soundness: every brute labeling is a stabilizer-image of a rep.
        order = node_sort_order(graph)
        nodes = tuple(graph.nodes)
        rep_keys = {labeling_key(lab, order) for lab in pruned}
        brute_keys = {labeling_key(lab, order) for lab in brute}
        assert rep_keys <= brute_keys
        orbit_closure = set()
        for lab in pruned:
            values = [lab.of(v) for v in nodes]
            for sigma in stabilizer:
                mapped = {nodes[sigma[i]]: values[i] for i in range(len(nodes))}
                orbit_closure.add(
                    tuple(mapped[v] for v in order)
                )
        assert brute_keys <= orbit_closure

    def test_c4_canonical_base_has_nontrivial_stabilizer(self):
        # Guarantees the orbit-pruned branch above is actually exercised:
        # C4 keeps a port-preserving reflection under canonical ports.
        graph = cycle_graph(4)
        instance = Instance.build(graph)
        group = automorphism_group(graph)
        stabilizer = instance_stabilizer(
            group, graph, instance.ports, instance.ids, include_ids=False
        )
        assert len(stabilizer) > 1

    def test_trivial_stabilizer_changes_nothing(self):
        # An identity-only stabilizer must fall back to the brute loop.
        graph = path_graph(3)
        lcp, instance, alphabet = self._base(graph)
        identity = (tuple(range(graph.order)),)
        brute = [
            labeling_key(lab, node_sort_order(graph))
            for lab in unanimously_accepted_labelings(
                lcp.decoder, instance, alphabet, lcp.radius, include_ids=False
            )
        ]
        account = SymmetryAccount()
        same = [
            labeling_key(lab, node_sort_order(graph))
            for lab in unanimously_accepted_labelings(
                lcp.decoder,
                instance,
                alphabet,
                lcp.radius,
                include_ids=False,
                stabilizer=identity,
                account=account,
            )
        ]
        assert same == brute
        assert account.instances_suppressed == 0
        assert account.labelings_pruned == 0

    def test_base_signature_pruning_collapses_automorphic_bases(self):
        """On a symmetric graph, distinct id orders that are automorphic
        images of each other collapse to one scanned base."""
        lcp = make_lcp("degree-one")
        account = SymmetryAccount()
        pruned = list(
            yes_instances_up_to(
                lcp, 3, id_order_types=True, symmetry="on", account=account
            )
        )
        brute = list(yes_instances_up_to(lcp, 3, id_order_types=True, symmetry="off"))
        assert account.bases_total > 0
        assert account.bases_pruned > 0  # e.g. the two id orders of K2
        assert len(brute) == len(pruned) + account.instances_suppressed
