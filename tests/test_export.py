"""Metrics exposition: Prometheus text format round-trip and the flat
JSON document.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.obs import (
    MetricsRegistry,
    metric_name,
    parse_prometheus,
    to_flat_json,
    to_prometheus,
)


def _populated() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.incr("instances_scanned", 1234)
    registry.incr("disk_hits")
    registry.set_gauge("views_at_exit", 42)
    registry.set_gauge("load_factor", 0.625)
    registry.observe("decide_seconds", 0.0004, buckets=(0.001, 0.01, 0.1))
    registry.observe("decide_seconds", 0.05)
    registry.observe("decide_seconds", 3.0)
    return registry


# ----------------------------------------------------------------------
# Name sanitization
# ----------------------------------------------------------------------


def test_metric_name_prefix_and_sanitize():
    assert metric_name("instances_scanned") == "repro_instances_scanned"
    assert metric_name("decide.seconds/best") == "repro_decide_seconds_best"
    assert metric_name("x", prefix="") == "x"
    # A name that starts with a digit gets a leading underscore.
    assert metric_name("9lives", prefix="")[0] == "_"


# ----------------------------------------------------------------------
# Prometheus text format
# ----------------------------------------------------------------------


def test_prometheus_structure():
    text = to_prometheus(_populated())
    lines = text.splitlines()
    assert "# TYPE repro_disk_hits counter" in lines
    assert "repro_disk_hits 1" in lines
    assert "# TYPE repro_views_at_exit gauge" in lines
    assert "repro_views_at_exit 42" in lines
    assert "# TYPE repro_decide_seconds histogram" in lines
    # Cumulative buckets, closed by +Inf, then sum and count.
    assert 'repro_decide_seconds_bucket{le="0.001"} 1' in lines
    assert 'repro_decide_seconds_bucket{le="0.1"} 2' in lines
    assert 'repro_decide_seconds_bucket{le="+Inf"}' in "\n".join(lines)
    assert "repro_decide_seconds_count 3" in lines
    assert text.endswith("\n")


def test_prometheus_bucket_series_is_cumulative_and_closed():
    registry = MetricsRegistry()
    for value in (0.5, 1.5, 1.5, 99.0):
        registry.observe("lat", value, buckets=(1.0, 2.0))
    parsed = parse_prometheus(to_prometheus(registry))
    buckets = {
        labels["le"]: value
        for name, labels, value in parsed["samples"]
        if name == "repro_lat_bucket"
    }
    assert buckets == {"1": 1, "2": 3, "+Inf": 4}
    counts = [v for n, _l, v in parsed["samples"] if n == "repro_lat_count"]
    assert counts == [4]


def test_unset_gauges_are_skipped():
    registry = MetricsRegistry()
    registry.gauge("never_set")
    assert to_prometheus(registry) == ""


def test_empty_registry_renders_empty():
    assert to_prometheus(MetricsRegistry()) == ""
    assert to_flat_json(MetricsRegistry()) == {}


def test_prometheus_output_is_deterministic():
    assert to_prometheus(_populated()) == to_prometheus(_populated())


# ----------------------------------------------------------------------
# Round trip (the acceptance check: exposition parses)
# ----------------------------------------------------------------------


def test_round_trip_types_and_values():
    registry = _populated()
    parsed = parse_prometheus(to_prometheus(registry))
    assert parsed["types"]["repro_instances_scanned"] == "counter"
    assert parsed["types"]["repro_views_at_exit"] == "gauge"
    assert parsed["types"]["repro_decide_seconds"] == "histogram"
    flat = {
        name: value for name, labels, value in parsed["samples"] if not labels
    }
    assert flat["repro_instances_scanned"] == 1234
    assert flat["repro_load_factor"] == pytest.approx(0.625)
    assert flat["repro_decide_seconds_count"] == 3
    assert flat["repro_decide_seconds_sum"] == pytest.approx(0.0004 + 0.05 + 3.0)


def test_round_trip_special_values():
    registry = MetricsRegistry()
    registry.set_gauge("inf_gauge", float("inf"))
    registry.set_gauge("nan_gauge", float("nan"))
    parsed = parse_prometheus(to_prometheus(registry))
    values = {name: value for name, _labels, value in parsed["samples"]}
    assert values["repro_inf_gauge"] == float("inf")
    assert math.isnan(values["repro_nan_gauge"])


def test_parse_rejects_garbage():
    with pytest.raises(ValueError):
        parse_prometheus("this is { not an exposition line\n")


# ----------------------------------------------------------------------
# Flat JSON
# ----------------------------------------------------------------------


def test_flat_json_is_serializable_and_flat():
    doc = to_flat_json(_populated())
    json.dumps(doc)  # must be a plain JSON document
    assert doc["repro_instances_scanned"] == 1234
    assert doc["repro_decide_seconds_bucket_le_0.001"] == 1
    assert doc["repro_decide_seconds_bucket_le_Inf"] == 3
    assert doc["repro_decide_seconds_count"] == 3
    assert list(doc) == sorted(doc)  # deterministic key order
