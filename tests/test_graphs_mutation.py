"""Tests for graph mutations and the runner/report utilities."""

import pytest

from repro.errors import GraphError
from repro.graphs import cycle_graph, grid_graph, is_bipartite, path_graph
from repro.graphs.mutation import (
    odd_cycle_neighbors,
    parity_attack_targets,
    random_edge_swap,
    subdivide_edge,
    with_edge_added,
    with_edge_removed,
)


class TestBasicMutations:
    def test_with_edge_added_copies(self):
        g = path_graph(3)
        h = with_edge_added(g, 0, 2)
        assert h.has_edge(0, 2)
        assert not g.has_edge(0, 2)

    def test_with_edge_removed(self):
        g = cycle_graph(4)
        h = with_edge_removed(g, 0, 1)
        assert not h.has_edge(0, 1)
        assert g.has_edge(0, 1)

    def test_subdivision_flips_cycle_parity(self):
        g = cycle_graph(4)
        assert is_bipartite(g)
        h = subdivide_edge(g, 0, 1, "mid")
        assert not is_bipartite(h)
        assert h.order == 5

    def test_subdivision_missing_edge(self):
        with pytest.raises(GraphError):
            subdivide_edge(path_graph(3), 0, 2, "mid")

    def test_subdivision_existing_node(self):
        with pytest.raises(GraphError):
            subdivide_edge(path_graph(3), 0, 1, 2)


class TestOddCycleNeighbors:
    def test_all_non_bipartite(self):
        for candidate in odd_cycle_neighbors(grid_graph(2, 3)):
            assert not is_bipartite(candidate)

    def test_limit_respected(self):
        out = list(odd_cycle_neighbors(grid_graph(3, 3), limit=3))
        assert len(out) == 3

    def test_even_cycle_has_neighbors(self):
        assert list(odd_cycle_neighbors(cycle_graph(6), limit=1))


class TestEdgeSwap:
    def test_degree_sequence_preserved(self):
        g = grid_graph(3, 3)
        h = random_edge_swap(g, seed=5)
        assert h.degree_sequence() == g.degree_sequence()

    def test_tiny_graph_unchanged(self):
        g = path_graph(2)
        assert random_edge_swap(g, seed=0) == g


class TestParityTargets:
    def test_targets_are_no_instances(self):
        targets = parity_attack_targets(cycle_graph(6), limit=4)
        assert targets
        assert all(not is_bipartite(t) for t in targets)


class TestRunnerUtilities:
    def test_format_table(self):
        from repro._util import format_table

        text = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_bits_needed(self):
        from repro._util import bits_needed

        assert bits_needed(0) == 1
        assert bits_needed(1) == 1
        assert bits_needed(8) == 4
        with pytest.raises(ValueError):
            bits_needed(-1)

    def test_pairwise_and_is_sorted(self):
        from repro._util import is_sorted, pairwise

        assert list(pairwise([1, 2, 3])) == [(1, 2), (2, 3)]
        assert is_sorted([1, 1, 2])
        assert not is_sorted([2, 1])

    def test_argmin(self):
        from repro._util import argmin

        assert argmin([3, 1, 2], key=lambda x: x) == 1
        with pytest.raises(ValueError):
            argmin([], key=lambda x: x)

    def test_run_all_and_save(self, tmp_path, monkeypatch):
        """The runner writes a report; patched to two fast experiments."""
        from repro.experiments import registry as reg
        from repro.experiments import runner

        fast = [reg.get_experiment("fig2"), reg.get_experiment("fig7")]
        monkeypatch.setattr(runner, "all_experiments", lambda: fast)
        target = tmp_path / "report.txt"
        ok = runner.run_all_and_save(target, verbose=False)
        assert ok
        text = target.read_text()
        assert "fig2" in text and "summary" in text
