"""Edge-case tests for the composition machinery and neighborhood-graph
bookkeeping that the happy-path tests route around."""

import pytest

from repro.certification import ConstantDecoder, EnumerativeLCP
from repro.errors import RealizabilityError
from repro.graphs import is_bipartite, path_graph, theta_graph
from repro.local import Instance, extract_view
from repro.neighborhood import build_neighborhood_graph, labeled_yes_instances
from repro.neighborhood.ngraph import NeighborhoodGraph
from repro.realizability.surgery import ComposedWalk, compose_with_escape_walks


class TestComposedWalk:
    def test_segments_must_chain(self):
        instance = Instance.build(path_graph(4), id_bound=4)
        walk = ComposedWalk(radius=1, include_ids=True)
        walk.segments.append((instance, [0, 1]))
        walk.segments.append((instance, [3, 2]))  # does not start at view(1)
        with pytest.raises(RealizabilityError):
            walk.views()

    def test_chaining_segments_flatten(self):
        instance = Instance.build(path_graph(4), id_bound=4)
        walk = ComposedWalk(radius=1, include_ids=True)
        walk.segments.append((instance, [0, 1, 2]))
        walk.segments.append((instance, [2, 3]))
        views = walk.views()
        assert len(views) == 4
        assert walk.length() == 3
        assert not walk.is_closed()

    def test_empty_walk(self):
        walk = ComposedWalk(radius=1, include_ids=True)
        assert walk.views() == []
        assert walk.length() == 0


class TestComposeErrors:
    def test_missing_edge_witness_detected(self):
        lcp = EnumerativeLCP(
            ConstantDecoder(True, anonymous=True), ["c"],
            promise_fn=is_bipartite, name="accept-all",
        )
        theta = theta_graph(4, 4, 6)
        labeled = list(
            labeled_yes_instances(lcp, [theta], port_limit=1, id_bound=theta.order)
        )
        ngraph = build_neighborhood_graph(lcp, labeled)
        odd = ngraph.find_odd_cycle()
        assert odd is not None
        # Corrupt the witness table: composition must notice.
        ngraph.edge_witness.clear()
        with pytest.raises(RealizabilityError):
            compose_with_escape_walks(lcp, ngraph, odd)


class TestNeighborhoodBookkeeping:
    def test_add_view_idempotent(self):
        instance = Instance.build(path_graph(3), id_bound=3)
        view = extract_view(instance, 1, 1)
        ngraph = NeighborhoodGraph(radius=1, include_ids=True)
        first = ngraph.add_view(view, instance, 1)
        second = ngraph.add_view(view, instance, 1)
        assert first == second
        assert ngraph.order == 1

    def test_add_edge_normalizes_orientation(self):
        instance = Instance.build(path_graph(3), id_bound=3)
        v0 = extract_view(instance, 0, 1)
        v1 = extract_view(instance, 1, 1)
        ngraph = NeighborhoodGraph(radius=1, include_ids=True)
        i = ngraph.add_view(v0, instance, 0)
        j = ngraph.add_view(v1, instance, 1)
        ngraph.add_edge(j, i, instance, (1, 0))
        ngraph.add_edge(i, j, instance, (0, 1))
        assert ngraph.size == 1

    def test_empty_graph_is_trivially_bipartite(self):
        ngraph = NeighborhoodGraph(radius=1, include_ids=True)
        assert ngraph.find_odd_cycle() is None
        assert ngraph.is_k_colorable(2)
