"""Cross-validation of the direct watermelon family constructor."""

from repro.graphs.encoding import are_isomorphic
from repro.graphs.families import watermelon_family_up_to, watermelon_graphs_up_to
from repro.graphs.watermelon import is_watermelon


def test_direct_family_matches_filtered_enumeration():
    direct = list(watermelon_family_up_to(6))
    filtered = list(watermelon_graphs_up_to(6))
    assert len(direct) == len(filtered)
    for g in direct:
        assert any(are_isomorphic(g, h) for h in filtered)


def test_direct_family_members_are_watermelons():
    graphs = list(watermelon_family_up_to(8))
    assert graphs
    assert all(is_watermelon(g) for g in graphs)
    # No isomorphic duplicates.
    for i, g in enumerate(graphs):
        assert not any(are_isomorphic(g, h) for h in graphs[i + 1 :])
