"""Unit + property tests for bipartiteness, cycles, girth, and shape
predicates — cross-checked against networkx."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    Graph,
    bipartition,
    complete_bipartite_graph,
    complete_graph,
    cycle_count_lower_bound,
    cycle_graph,
    find_odd_cycle,
    girth,
    grid_graph,
    has_at_least_two_cycles,
    is_bipartite,
    is_cycle_graph,
    is_even_cycle,
    is_path_graph,
    is_tree,
    pan_graph,
    path_graph,
    proper_coloring_ok,
    random_graph,
    star_graph,
    theta_graph,
)


class TestBipartition:
    @pytest.mark.parametrize(
        "graph,expected",
        [
            (path_graph(7), True),
            (cycle_graph(6), True),
            (cycle_graph(7), False),
            (complete_graph(3), False),
            (complete_bipartite_graph(2, 3), True),
            (grid_graph(3, 4), True),
            (theta_graph(2, 2, 3), False),
            (theta_graph(2, 2, 4), True),
        ],
    )
    def test_known_graphs(self, graph, expected):
        assert is_bipartite(graph) is expected

    def test_coloring_is_proper(self):
        result = bipartition(grid_graph(4, 4))
        assert result.is_bipartite
        assert proper_coloring_ok(grid_graph(4, 4), result.coloring)

    def test_odd_cycle_witness_is_odd_closed_walk(self):
        result = bipartition(theta_graph(2, 3, 4))
        assert not result.is_bipartite
        cycle = result.odd_cycle
        assert cycle[0] == cycle[-1]
        assert (len(cycle) - 1) % 2 == 1
        g = theta_graph(2, 3, 4)
        for a, b in zip(cycle, cycle[1:]):
            assert g.has_edge(a, b)

    def test_loop_is_odd_cycle(self):
        g = Graph.from_edges([(0, 0), (0, 1)])
        result = bipartition(g)
        assert not result.is_bipartite
        assert result.odd_cycle == [0, 0]

    def test_disconnected_graph(self):
        g = Graph.from_edges([(0, 1), (2, 3), (3, 4), (4, 2)])
        assert not is_bipartite(g)

    @settings(max_examples=60, deadline=None)
    @given(n=st.integers(2, 9), p=st.floats(0.1, 0.9), seed=st.integers(0, 10**6))
    def test_matches_networkx(self, n, p, seed):
        g = random_graph(n, p, seed)
        h = nx.Graph()
        h.add_nodes_from(g.nodes)
        h.add_edges_from(g.edges)
        assert is_bipartite(g) == nx.is_bipartite(h)

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(3, 9), p=st.floats(0.2, 0.9), seed=st.integers(0, 10**6))
    def test_odd_cycle_or_coloring_always_valid(self, n, p, seed):
        g = random_graph(n, p, seed)
        result = bipartition(g)
        if result.is_bipartite:
            assert proper_coloring_ok(g, result.coloring)
        else:
            cycle = result.odd_cycle
            assert (len(cycle) - 1) % 2 == 1
            for a, b in zip(cycle, cycle[1:]):
                assert g.has_edge(a, b)


class TestFindOddCycle:
    def test_none_on_bipartite(self):
        assert find_odd_cycle(grid_graph(3, 3)) is None

    def test_found_on_k3(self):
        assert find_odd_cycle(complete_graph(3)) is not None


class TestShapePredicates:
    def test_cycle_recognition(self):
        assert is_cycle_graph(cycle_graph(5))
        assert not is_cycle_graph(path_graph(5))
        assert not is_cycle_graph(pan_graph(4, 1))

    def test_even_cycle(self):
        assert is_even_cycle(cycle_graph(8))
        assert not is_even_cycle(cycle_graph(7))
        assert not is_even_cycle(path_graph(4))

    def test_path_recognition(self):
        assert is_path_graph(path_graph(1))
        assert is_path_graph(path_graph(6))
        assert not is_path_graph(cycle_graph(4))
        assert not is_path_graph(star_graph(3))

    def test_tree_recognition(self):
        assert is_tree(star_graph(5))
        assert is_tree(path_graph(4))
        assert not is_tree(cycle_graph(4))


class TestGirth:
    @pytest.mark.parametrize(
        "graph,expected",
        [
            (path_graph(5), None),
            (cycle_graph(5), 5),
            (complete_graph(4), 3),
            (grid_graph(3, 3), 4),
            (theta_graph(2, 3, 4), 5),
        ],
    )
    def test_known(self, graph, expected):
        assert girth(graph) == expected

    def test_loop_girth(self):
        g = Graph.from_edges([(0, 0)])
        assert girth(g) == 1


class TestCycleCounting:
    def test_tree_has_no_cycles(self):
        assert cycle_count_lower_bound(star_graph(4)) == 0
        assert not has_at_least_two_cycles(path_graph(5))

    def test_single_cycle(self):
        assert cycle_count_lower_bound(cycle_graph(6)) == 1
        assert not has_at_least_two_cycles(cycle_graph(6))

    def test_theta_has_two(self):
        assert cycle_count_lower_bound(theta_graph(2, 2, 2)) == 2
        assert has_at_least_two_cycles(theta_graph(2, 2, 2))


class TestProperColoring:
    def test_accepts_valid(self):
        g = path_graph(4)
        assert proper_coloring_ok(g, {0: 0, 1: 1, 2: 0, 3: 1})

    def test_rejects_conflict(self):
        g = path_graph(3)
        assert not proper_coloring_ok(g, {0: 0, 1: 0, 2: 1})

    def test_rejects_partial(self):
        g = path_graph(3)
        assert not proper_coloring_ok(g, {0: 0, 1: 1})
