"""Parallel neighborhood-graph builder: exact parity with the serial one.

The acceptance bar of the perf subsystem is determinism: for any worker
count, `build_neighborhood_graph_parallel` must produce the *same object
content* as the serial builder — same view list in the same order, same
edge set, and same downstream verdicts (2-colorability, odd cycles).
"""

from __future__ import annotations

import pytest

from repro.core import DegreeOneLCP, EvenCycleLCP
from repro.neighborhood import (
    build_neighborhood_graph,
    build_neighborhood_graph_auto,
    yes_instances_up_to,
)
from repro.perf import PerfStats, overridden
from repro.perf.parallel import build_neighborhood_graph_parallel


def _serial(lcp, n):
    return build_neighborhood_graph(lcp, yes_instances_up_to(lcp, n))


def _assert_identical(parallel, serial):
    assert parallel.views == serial.views
    assert parallel.edges == serial.edges
    assert parallel.index == serial.index
    assert parallel.instances_scanned == serial.instances_scanned
    assert parallel.is_k_colorable(2) == serial.is_k_colorable(2)
    s_cycle = serial.find_odd_cycle()
    p_cycle = parallel.find_odd_cycle()
    assert (p_cycle is None) == (s_cycle is None)
    if s_cycle is not None:
        assert p_cycle == s_cycle


@pytest.mark.parametrize("workers", [1, 2, 4])
@pytest.mark.parametrize("lcp_cls,n", [(DegreeOneLCP, 4), (DegreeOneLCP, 5), (EvenCycleLCP, 5)])
def test_parallel_matches_serial(workers, lcp_cls, n):
    lcp = lcp_cls()
    serial = _serial(lcp, n)
    parallel = build_neighborhood_graph_parallel(
        lcp, yes_instances_up_to(lcp, n), workers=workers
    )
    _assert_identical(parallel, serial)


def test_parallel_parity_across_chunk_sizes():
    lcp = DegreeOneLCP()
    serial = _serial(lcp, 4)
    for chunk_size in (1, 3, 7, 1000):
        parallel = build_neighborhood_graph_parallel(
            lcp, yes_instances_up_to(lcp, 4), workers=2, chunk_size=chunk_size
        )
        _assert_identical(parallel, serial)


def test_parallel_witnesses_point_at_parent_instances():
    lcp = DegreeOneLCP()
    instances = list(yes_instances_up_to(lcp, 4))
    parallel = build_neighborhood_graph_parallel(lcp, iter(instances), workers=2)
    pool = set(map(id, instances))
    for instance, _node in parallel.view_witness.values():
        assert id(instance) in pool
    for instance, _edge in parallel.edge_witness.values():
        assert id(instance) in pool


def test_tiny_input_falls_back_to_serial():
    lcp = EvenCycleLCP()
    # The n=5 even-cycle sweep contains only C4: few instances, below the
    # parallel threshold — must still return the correct graph.
    stats = PerfStats()
    parallel = build_neighborhood_graph_parallel(
        lcp, yes_instances_up_to(lcp, 5), workers=4, stats=stats
    )
    _assert_identical(parallel, _serial(lcp, 5))


def test_unpicklable_lcp_falls_back_to_serial():
    lcp = DegreeOneLCP()
    lcp._poison = lambda: None  # lambdas don't pickle
    stats = PerfStats()
    result = build_neighborhood_graph_parallel(
        lcp, yes_instances_up_to(lcp, 4), workers=2, stats=stats
    )
    assert stats.get("parallel_fallbacks") == 1
    _assert_identical(result, _serial(DegreeOneLCP(), 4))


def test_auto_dispatches_on_config_workers():
    lcp = DegreeOneLCP()
    serial = _serial(lcp, 4)
    with overridden(workers=2):
        auto = build_neighborhood_graph_auto(lcp, yes_instances_up_to(lcp, 4))
    _assert_identical(auto, serial)


def test_parallel_with_caches_disabled_still_matches():
    lcp = DegreeOneLCP()
    with overridden(layout_cache=False, decision_memo=False):
        serial = _serial(lcp, 4)
        parallel = build_neighborhood_graph_parallel(
            lcp, yes_instances_up_to(lcp, 4), workers=2
        )
    _assert_identical(parallel, serial)
