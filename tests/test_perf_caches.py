"""The perf layer: LRU store, layout cache, decision memo, stats, config.

Every cache here must be *semantics-preserving*: the tests check each
one against the uncached computation it replaces, plus the isolation
properties (per-decoder memos, copy-on-yield family cache) that keep the
hiding experiments sound.
"""

from __future__ import annotations

import pytest

from repro.core import DegreeOneLCP
from repro.graphs import cycle_graph, path_graph
from repro.graphs.encoding import canonical_form, clear_canonical_cache
from repro.graphs.families import (
    all_graphs_exactly,
    clear_family_cache,
    enumerate_graphs_exactly_reference,
)
from repro.graphs.encoding import are_isomorphic
from repro.local import Labeling, labeling_key, node_sort_order
from repro.local.instance import Instance
from repro.local.views import extract_all_views, extract_view_layouts, relabel_view
from repro.neighborhood import build_neighborhood_graph, yes_instances_up_to
from repro.perf import (
    CONFIG,
    PerfStats,
    configure,
    overridden,
)
from repro.perf.cache import (
    DecisionMemo,
    LRUCache,
    ViewLayoutCache,
    memoized_decide,
    shared_decision_memo,
)


# ----------------------------------------------------------------------
# LRUCache
# ----------------------------------------------------------------------


class TestLRUCache:
    def test_get_put_and_counters(self):
        lru = LRUCache(4)
        assert lru.get("a") is None
        lru.put("a", 1)
        assert lru.get("a") == 1
        assert (lru.hits, lru.misses) == (1, 1)

    def test_eviction_is_least_recently_used(self):
        lru = LRUCache(2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.get("a")  # refresh a; b becomes LRU
        lru.put("c", 3)
        assert "a" in lru and "c" in lru and "b" not in lru

    def test_get_or_compute_computes_once(self):
        lru = LRUCache(2)
        calls = []
        for _ in range(3):
            value = lru.get_or_compute("k", lambda: calls.append(1) or 42)
        assert value == 42
        assert len(calls) == 1

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            LRUCache(0)


# ----------------------------------------------------------------------
# ViewLayoutCache
# ----------------------------------------------------------------------


class TestViewLayoutCache:
    def _labeled_instance(self, graph, tag):
        base = Instance.build(graph)
        return base.with_labeling(Labeling({v: (tag, v) for v in graph.nodes}))

    def test_labeled_views_match_fresh_extraction(self):
        cache = ViewLayoutCache(16)
        instance = self._labeled_instance(path_graph(4), "x")
        for radius in (1, 2):
            cached = cache.labeled_views(instance, radius, include_ids=True)
            fresh = extract_all_views(instance, radius, include_ids=True)
            assert cached == fresh

    def test_second_labeling_hits_the_cache(self):
        cache = ViewLayoutCache(16)
        stats = PerfStats()
        base = Instance.build(cycle_graph(4))
        first = base.with_labeling(Labeling.uniform(base.graph, "a"))
        second = base.with_labeling(Labeling.uniform(base.graph, "b"))
        cache.labeled_views(first, 1, include_ids=True, stats=stats)
        assert stats.get("layout_misses") == 1
        cached = cache.labeled_views(second, 1, include_ids=True, stats=stats)
        assert stats.get("layout_hits") == 1
        assert cached == extract_all_views(second, 1, include_ids=True)

    def test_distinct_bases_do_not_collide(self):
        cache = ViewLayoutCache(16)
        a = self._labeled_instance(path_graph(3), "a")
        b = self._labeled_instance(cycle_graph(3), "b")
        assert cache.labeled_views(a, 1, True) == extract_all_views(a, 1, True)
        assert cache.labeled_views(b, 1, True) == extract_all_views(b, 1, True)
        assert len(cache) == 2


# ----------------------------------------------------------------------
# DecisionMemo
# ----------------------------------------------------------------------


class TestDecisionMemo:
    def _views(self, n=4):
        lcp = DegreeOneLCP()
        instance = Instance.build(path_graph(n))
        labeled = instance.with_labeling(lcp.prover.certify(instance))
        return lcp, extract_all_views(labeled, lcp.radius, include_ids=True)

    def test_memo_agrees_with_decoder_and_counts(self):
        lcp, views = self._views()
        memo = DecisionMemo(lcp.decoder, 64)
        stats = PerfStats()
        for view in views.values():
            assert memo.decide(view, stats) == lcp.decoder.decide(view)
        repeat_hits_before = stats.get("memo_hits")
        for view in views.values():
            memo.decide(view, stats)
        assert stats.get("memo_hits") == repeat_hits_before + len(views)

    def test_shared_memos_are_per_decoder_object(self):
        d1 = DegreeOneLCP().decoder
        d2 = DegreeOneLCP().decoder
        assert shared_decision_memo(d1) is shared_decision_memo(d1)
        assert shared_decision_memo(d1) is not shared_decision_memo(d2)

    def test_memoized_decide_raw_when_disabled(self):
        decoder = DegreeOneLCP().decoder
        with overridden(decision_memo=False):
            assert memoized_decide(decoder) == decoder.decide

    def test_memoized_decide_mixed_certificate_alphabet(self):
        """Views whose labels mix ints, strings, and tuples memoize by
        view identity — no cross-type comparison or key collision (the
        batch kernel builds its acceptance tables through this path)."""
        from itertools import product

        lcp = DegreeOneLCP()
        graph = path_graph(3)
        base = Instance.build(graph)
        layouts = extract_view_layouts(base, lcp.radius, include_ids=True)
        stats = PerfStats()
        decide = memoized_decide(lcp.decoder, stats)
        alphabet = [0, "far", ("d1", 1)]
        views = []
        for combo in product(alphabet, repeat=graph.order):
            labeling = Labeling(dict(zip(graph.nodes, combo)))
            for template, order in layouts.values():
                view = relabel_view(template, order, labeling)
                views.append(view)
                assert decide(view) == lcp.decoder.decide(view)
        # The replay must be answered entirely from the memo.
        misses = stats.get("memo_misses")
        for view in views:
            decide(view)
        assert stats.get("memo_misses") == misses
        assert stats.get("memo_hits") >= len(views)


# ----------------------------------------------------------------------
# Layout templates / relabel_view
# ----------------------------------------------------------------------


def test_relabel_view_equals_full_extraction_for_every_labeling():
    graph = path_graph(4)
    base = Instance.build(graph)
    layouts = extract_view_layouts(base, radius=1, include_ids=True)
    for tag in ("p", "q"):
        labeling = Labeling({v: (tag, v) for v in graph.nodes})
        labeled = base.with_labeling(labeling)
        fresh = extract_all_views(labeled, 1, include_ids=True)
        for v, (template, order) in layouts.items():
            assert relabel_view(template, order, labeling) == fresh[v]


# ----------------------------------------------------------------------
# labeling_key
# ----------------------------------------------------------------------


class TestLabelingKey:
    def test_equal_labelings_equal_keys(self):
        g = path_graph(3)
        a = Labeling({v: "c" for v in g.nodes})
        b = Labeling({v: "c" for v in reversed(g.nodes)})
        assert labeling_key(a) == labeling_key(b)

    def test_different_labelings_differ(self):
        g = path_graph(3)
        a = Labeling.uniform(g, "x")
        b = a.with_label(g.nodes[0], "y")
        assert labeling_key(a) != labeling_key(b)

    def test_node_order_fast_path_consistent(self):
        g = cycle_graph(4)
        order = node_sort_order(g)
        a = Labeling({v: ("t", v) for v in g.nodes})
        b = Labeling({v: ("t", v) for v in g.nodes})
        assert labeling_key(a, order) == labeling_key(b, order)
        c = a.with_label(g.nodes[1], ("other",))
        assert labeling_key(a, order) != labeling_key(c, order)


# ----------------------------------------------------------------------
# Family cache + bitset enumeration
# ----------------------------------------------------------------------


class TestFamilyEnumeration:
    def test_cache_yields_independent_copies(self):
        clear_family_cache()
        first = list(all_graphs_exactly(3))
        mutated = first[0]
        mutated.add_node("extra")
        second = list(all_graphs_exactly(3))
        assert all(g.order == 3 for g in second)

    def test_bitset_enumeration_matches_reference(self):
        # Differential test: the bitset fast path against the object-based
        # oracle, for both connectivity regimes.
        for n in range(1, 5):
            for connected_only in (True, False):
                clear_family_cache()
                fast = list(all_graphs_exactly(n, connected_only=connected_only))
                slow = list(
                    enumerate_graphs_exactly_reference(n, connected_only=connected_only)
                )
                assert len(fast) == len(slow)
                for g in fast:
                    assert sum(1 for h in slow if are_isomorphic(g, h)) == 1

    def test_connected_counts(self):
        clear_family_cache()
        counts = [len(list(all_graphs_exactly(n))) for n in range(1, 7)]
        assert counts == [1, 1, 2, 6, 21, 112]


# ----------------------------------------------------------------------
# Canonical-form cache
# ----------------------------------------------------------------------


def test_canonical_cache_transparent():
    clear_canonical_cache()
    g = cycle_graph(5)
    with overridden(canonical_cache=False):
        uncached = canonical_form(g)
    cold = canonical_form(g)
    warm = canonical_form(g)
    assert uncached == cold == warm


# ----------------------------------------------------------------------
# Stats / config
# ----------------------------------------------------------------------


class TestStatsAndConfig:
    def test_hit_rate_and_render(self):
        stats = PerfStats()
        stats.incr("memo_hits", 3)
        stats.incr("memo_misses", 1)
        assert stats.hit_rate("memo") == pytest.approx(0.75)
        with stats.time_stage("neighborhood_build"):
            pass
        text = stats.render()
        assert "memo" in text and "neighborhood_build" in text

    def test_merge_accepts_dicts(self):
        stats = PerfStats()
        stats.incr("x", 1)
        other = PerfStats()
        other.incr("x", 2)
        stats.merge(other.as_dict())
        assert stats.get("x") == 3

    def test_configure_rejects_unknown_field(self):
        with pytest.raises(TypeError):
            configure(not_a_real_knob=1)

    def test_overridden_restores(self):
        before = CONFIG.workers
        with overridden(workers=7):
            assert CONFIG.workers == 7
        assert CONFIG.workers == before

    def test_overridden_none_leaves_knob_alone(self):
        """None means "don't touch" — call sites forward optional CLI
        arguments unfiltered, so None must neither set nor restore."""
        before_workers, before_block = CONFIG.workers, CONFIG.kernel_block_size
        with overridden(workers=None, kernel_block_size=512):
            assert CONFIG.workers == before_workers
            assert CONFIG.kernel_block_size == 512
            # A mutation made inside the scope to an un-overridden knob
            # survives the exit (nothing was saved for it).
            CONFIG.workers = before_workers + 1
        assert CONFIG.workers == before_workers + 1
        assert CONFIG.kernel_block_size == before_block
        CONFIG.workers = before_workers

    def test_overridden_scopes_nest_and_restore_on_error(self):
        before = CONFIG.kernel_block_size
        with overridden(kernel_block_size=64):
            with overridden(kernel_block_size=8):
                assert CONFIG.kernel_block_size == 8
            assert CONFIG.kernel_block_size == 64
            with pytest.raises(RuntimeError):
                with overridden(kernel_block_size=16):
                    raise RuntimeError("boom")
            assert CONFIG.kernel_block_size == 64
        assert CONFIG.kernel_block_size == before


# ----------------------------------------------------------------------
# neighbors_of via adjacency lists
# ----------------------------------------------------------------------


def test_neighbors_of_matches_edge_scan():
    lcp = DegreeOneLCP()
    ngraph = build_neighborhood_graph(lcp, yes_instances_up_to(lcp, 4))
    for view in ngraph.views:
        idx = ngraph.index[view]
        expected = sorted(
            j for i, j in ngraph.edges if i == idx
        ) + sorted(i for i, j in ngraph.edges if j == idx and i != idx)
        got = sorted(ngraph.index[w] for w in ngraph.neighbors_of(view))
        assert got == sorted(expected)
