"""Hypothesis property tests over the core model invariants.

These are the cross-cutting laws that hold for every scheme, instance,
and labeling — the skeleton the theorem experiments stand on:

* strong soundness implies soundness (Section 2.3's observation);
* the simulator always reproduces the model views;
* prover outputs are always unanimously accepted (completeness);
* accepting sets of the paper's schemes always induce bipartite graphs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DegreeOneLCP, EvenCycleLCP, RevealingLCP, UnionLCP
from repro.graphs import Graph, is_bipartite, random_graph
from repro.graphs.properties import bipartition
from repro.graphs.traversal import is_connected
from repro.local import (
    Instance,
    Labeling,
    PortAssignment,
    extract_all_views,
    simulate_views,
)


def connected_graphs(min_n=2, max_n=8):
    """Strategy: connected random graphs."""

    @st.composite
    def build(draw):
        n = draw(st.integers(min_n, max_n))
        p = draw(st.floats(0.25, 0.9))
        seed = draw(st.integers(0, 10**6))
        g = random_graph(n, p, seed)
        if not is_connected(g):
            # densify deterministically: chain the nodes.
            nodes = g.nodes
            for a, b in zip(nodes, nodes[1:]):
                g.add_edge(a, b)
        return g

    return build()


SCHEMES = [DegreeOneLCP(), EvenCycleLCP(), RevealingLCP(), UnionLCP()]


class TestUniversalInvariants:
    @settings(max_examples=30, deadline=None)
    @given(graph=connected_graphs(), seed=st.integers(0, 10**6))
    def test_simulator_matches_views_under_random_ports(self, graph, seed):
        ports = PortAssignment.random(graph, seed)
        instance = Instance.build(graph, ports=ports)
        for radius in (1, 2):
            simulated, _ = simulate_views(instance, radius)
            assert simulated == extract_all_views(instance, radius)

    @settings(max_examples=30, deadline=None)
    @given(graph=connected_graphs(), data=st.data())
    def test_accepting_sets_always_bipartite(self, graph, data):
        """Strong soundness, fuzzed: random labelings over each scheme's
        alphabet never make the accepting set induce an odd cycle."""
        for lcp in SCHEMES:
            alphabet = lcp.certificate_alphabet(graph)
            labels = {
                v: data.draw(st.sampled_from(alphabet), label=f"{lcp.name}:{v!r}")
                for v in graph.nodes
            }
            instance = Instance.build(graph).with_labeling(Labeling(labels))
            accepting = lcp.check(instance).accepting
            assert bipartition(graph.induced_subgraph(accepting)).is_bipartite

    @settings(max_examples=25, deadline=None)
    @given(graph=connected_graphs(), seed=st.integers(0, 10**6))
    def test_prover_certificates_unanimous(self, graph, seed):
        """Completeness, fuzzed over random ports: on yes-instances of
        each scheme's promise class, prover output is always accepted."""
        ports = PortAssignment.random(graph, seed)
        instance = Instance.build(graph, ports=ports)
        for lcp in SCHEMES:
            if not (lcp.promise(graph) and is_bipartite(graph)):
                continue
            for labeling in lcp.prover.all_certifications(instance):
                assert lcp.check(instance.with_labeling(labeling)).unanimous

    @settings(max_examples=20, deadline=None)
    @given(graph=connected_graphs(min_n=3))
    def test_strong_soundness_implies_soundness(self, graph):
        """Section 2.3: if the accepting set always induces a
        yes-instance, then no-instances are never unanimously accepted.
        Checked concretely: on non-bipartite graphs, full acceptance
        would contradict the bipartite-accepting-set invariant."""
        if is_bipartite(graph):
            return
        for lcp in SCHEMES:
            alphabet = lcp.certificate_alphabet(graph)
            labeling = Labeling({v: alphabet[0] for v in graph.nodes})
            instance = Instance.build(graph).with_labeling(labeling)
            result = lcp.check(instance)
            assert not result.unanimous


class TestViewInvariants:
    @settings(max_examples=30, deadline=None)
    @given(graph=connected_graphs(), radius=st.integers(1, 3))
    def test_view_graph_is_subgraph(self, graph, radius):
        instance = Instance.build(graph)
        views = extract_all_views(instance, radius)
        for v, view in views.items():
            # Every view edge maps back to a graph edge via identifiers.
            id_to_node = {instance.ids.id_of(u): u for u in graph.nodes}
            for a, b in view.edges:
                assert graph.has_edge(id_to_node[view.ids[a]], id_to_node[view.ids[b]])

    @settings(max_examples=30, deadline=None)
    @given(graph=connected_graphs(), radius=st.integers(1, 2))
    def test_center_degree_exact(self, graph, radius):
        instance = Instance.build(graph)
        for v, view in extract_all_views(instance, radius).items():
            assert view.center_degree == graph.degree(v)

    @settings(max_examples=20, deadline=None)
    @given(graph=connected_graphs())
    def test_anonymization_forgets_exactly_ids(self, graph):
        instance = Instance.build(graph)
        with_ids = extract_all_views(instance, 1, include_ids=True)
        without = extract_all_views(instance, 1, include_ids=False)
        for v in graph.nodes:
            assert with_ids[v].anonymized() == without[v]
