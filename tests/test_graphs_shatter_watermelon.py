"""Tests for shatter points (Section 7.1) and watermelon recognition
(Section 7.2), including the Lemma 7.1 characterization."""

import pytest

from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    grid_graph,
    has_shatter_point,
    is_bipartite,
    is_shatter_point,
    is_watermelon,
    lemma_7_1_conditions,
    path_graph,
    random_graph,
    shatter_decomposition,
    shatter_points,
    spider_graph,
    star_graph,
    theta_graph,
    watermelon_decomposition,
    watermelon_graph,
)
from hypothesis import given, settings
from hypothesis import strategies as st


class TestShatterPoints:
    def test_path_middle_is_shatter_point(self):
        g = path_graph(5)
        assert is_shatter_point(g, 2)
        assert not is_shatter_point(g, 0)

    def test_cycle_has_none(self):
        assert shatter_points(cycle_graph(8)) == []
        assert not has_shatter_point(complete_graph(4))

    def test_spider_center(self):
        g = spider_graph(3, 2)
        assert is_shatter_point(g, 0)

    def test_decomposition_components(self):
        g = path_graph(7)
        decomp = shatter_decomposition(g, 3)
        assert decomp.component_count == 2
        assert {frozenset(c) for c in decomp.components} == {
            frozenset({0, 1}),
            frozenset({5, 6}),
        }
        assert decomp.component_number(0) == decomp.component_number(1)
        assert decomp.component_number(0) != decomp.component_number(6)

    def test_component_number_missing_node(self):
        from repro.errors import GraphError

        decomp = shatter_decomposition(path_graph(7), 3)
        with pytest.raises(GraphError):
            decomp.component_number(3)


class TestLemma71:
    @settings(max_examples=50, deadline=None)
    @given(n=st.integers(5, 9), p=st.floats(0.15, 0.6), seed=st.integers(0, 10**6))
    def test_characterization_matches_bipartiteness(self, n, p, seed):
        """Lemma 7.1: at a shatter point of a *connected* graph, the three
        conditions hold iff the graph is bipartite."""
        from repro.graphs import is_connected

        g = random_graph(n, p, seed)
        if not is_connected(g):
            return
        for v in shatter_points(g):
            holds, _reason = lemma_7_1_conditions(g, v)
            assert holds == is_bipartite(g)

    def test_violation_reasons(self):
        # Triangle hanging off a shatter point: component not bipartite.
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 2), (0, 5), (5, 6)])
        assert is_shatter_point(g, 0)
        holds, reason = lemma_7_1_conditions(g, 0)
        assert not holds
        assert "not bipartite" in reason

    def test_two_sided_touch_detected(self):
        # N(v)'s neighbors touch both sides of one component: odd cycle
        # through v.  v=0, N(v)={1,2}; component path 3-4; 1-3 and 2-4.
        g = Graph.from_edges([(0, 1), (0, 2), (1, 3), (3, 4), (4, 2), (0, 5), (5, 6)])
        # Ensure 0 shatters: components {3,4} ... and {6}? N[0]={0,1,2,5}.
        holds, reason = lemma_7_1_conditions(g, 0)
        assert not holds
        assert "both sides" in reason or "independent" in reason


class TestWatermelonRecognition:
    @pytest.mark.parametrize(
        "graph,expected",
        [
            (watermelon_graph([2, 3, 4]), True),
            (watermelon_graph([2, 2]), True),
            (path_graph(3), True),   # single-path watermelon
            (path_graph(2), False),  # paths must have length >= 2
            (cycle_graph(4), True),  # two-path watermelon
            (cycle_graph(3), False), # an arc would have length 1
            (star_graph(3), False),
            (grid_graph(2, 3), False),
            (complete_graph(4), False),
            (theta_graph(2, 2, 2), True),
        ],
    )
    def test_recognition(self, graph, expected):
        assert is_watermelon(graph) is expected

    def test_decomposition_structure(self):
        g = watermelon_graph([2, 3, 5])
        decomp = watermelon_decomposition(g)
        assert decomp is not None
        assert decomp.endpoints == (0, 1)
        assert sorted(decomp.path_lengths()) == [2, 3, 5]
        for path in decomp.paths:
            assert path[0] == 0 and path[-1] == 1
            for a, b in zip(path, path[1:]):
                assert g.has_edge(a, b)

    def test_direct_edge_disallowed(self):
        g = watermelon_graph([2, 2])
        g.add_edge(0, 1)  # a length-1 "path"
        assert not is_watermelon(g)

    def test_path_number_of(self):
        decomp = watermelon_decomposition(watermelon_graph([2, 3]))
        internal = decomp.paths[0][1]
        assert decomp.path_number_of(internal) == 1

    def test_cycle_decomposition_has_two_arcs(self):
        decomp = watermelon_decomposition(cycle_graph(6))
        assert decomp is not None
        assert decomp.path_count == 2
        assert sorted(decomp.path_lengths()) == [3, 3]
