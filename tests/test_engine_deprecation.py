"""Deprecation shims: the legacy keyword surfaces still work, still give
correct verdicts, and warn exactly once per process per surface."""

from __future__ import annotations

import warnings

import pytest

from repro.core import DegreeOneLCP
from repro.engine import ExecutionPlan, clear_engine_state, decide_hiding
from repro.neighborhood import hiding_verdict_up_to, streaming_hiding_verdict_up_to
from repro.neighborhood.hiding import HidingVerdict, _reset_deprecation_guards
from repro.perf import overridden
from repro.perf.persist import default_verdict_cache


@pytest.fixture(autouse=True)
def _fresh_state():
    clear_engine_state()
    _reset_deprecation_guards()
    yield
    clear_engine_state()
    _reset_deprecation_guards()


def test_streaming_keyword_warns_exactly_once():
    lcp = DegreeOneLCP()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        hiding_verdict_up_to(lcp, 3, streaming=False)
        hiding_verdict_up_to(lcp, 4, streaming=False)
        hiding_verdict_up_to(lcp, 3, streaming=True)
    deprecations = [w for w in caught if w.category is DeprecationWarning]
    assert len(deprecations) == 1
    assert "ExecutionPlan" in str(deprecations[0].message)


def test_plain_call_does_not_warn():
    lcp = DegreeOneLCP()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        hiding_verdict_up_to(lcp, 3)
    assert [w for w in caught if w.category is DeprecationWarning] == []


def test_streaming_front_warns_exactly_once():
    lcp = DegreeOneLCP()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        streaming_hiding_verdict_up_to(lcp, 3, warm_start=False, disk_cache=False)
        streaming_hiding_verdict_up_to(lcp, 4, warm_start=False, disk_cache=False)
    deprecations = [w for w in caught if w.category is DeprecationWarning]
    assert len(deprecations) == 1


def test_both_shims_warn_once_each_in_one_process():
    """The two shims guard independently: interleaving them in one
    process yields exactly one warning per shim (two total), and every
    repeat after that stays silent."""
    lcp = DegreeOneLCP()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        hiding_verdict_up_to(lcp, 3, streaming=False)
        streaming_hiding_verdict_up_to(lcp, 3, warm_start=False, disk_cache=False)
        hiding_verdict_up_to(lcp, 4, streaming=True)
        streaming_hiding_verdict_up_to(lcp, 4, warm_start=False, disk_cache=False)
    deprecations = [w for w in caught if w.category is DeprecationWarning]
    assert len(deprecations) == 2
    messages = sorted(str(w.message) for w in deprecations)
    assert messages[0] != messages[1]
    with warnings.catch_warnings(record=True) as repeat:
        warnings.simplefilter("always")
        hiding_verdict_up_to(lcp, 3, streaming=False)
        streaming_hiding_verdict_up_to(lcp, 3, warm_start=False, disk_cache=False)
    assert [w for w in repeat if w.category is DeprecationWarning] == []


def test_shimmed_verdicts_match_the_engine():
    lcp = DegreeOneLCP()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy_mat = hiding_verdict_up_to(lcp, 4, streaming=False)
        legacy_stream = streaming_hiding_verdict_up_to(
            lcp, 4, warm_start=False, disk_cache=False
        )
    assert isinstance(legacy_mat, HidingVerdict)
    assert isinstance(legacy_stream, HidingVerdict)
    engine_mat = decide_hiding(
        lcp, 4, ExecutionPlan(backend="materialized", disk_cache=False)
    )
    engine_stream = decide_hiding(
        lcp,
        4,
        ExecutionPlan(backend="streaming", warm_start=False, disk_cache=False),
    )
    # The shim returns the engine verdict's legacy envelope — and the
    # memo tier makes repeated asks hand back the very same object.
    assert legacy_mat is engine_mat.legacy
    assert legacy_stream is engine_stream.legacy
    assert legacy_mat.hiding is True
    assert len(legacy_mat.odd_cycle) == 8  # historical BFS walk


def test_shim_routing_is_the_engines():
    """The config knob routes the plain call exactly like a plan left on
    auto — no routing logic hides in the shim."""
    lcp = DegreeOneLCP()
    with overridden(streaming=True):
        via_shim = hiding_verdict_up_to(lcp, 4)
        via_engine = decide_hiding(lcp, 4)
    assert via_shim is via_engine.legacy


def test_pre_engine_disk_entries_still_load(tmp_path):
    """A ``.repro_cache/`` body written by the pre-engine streaming
    driver (no ``witness`` key) still loads: key layout and body format
    are byte-compatible."""
    from repro.engine.backends import disk_key
    from repro.engine.stores import _body_from_verdict

    lcp = DegreeOneLCP()
    plan = ExecutionPlan(
        backend="streaming", warm_start=False, disk_cache=True, memory_cache=False
    ).resolve()
    with overridden(disk_cache_dir=str(tmp_path)):
        fresh = decide_hiding(lcp, 4, plan)
        key = disk_key(lcp, 4, plan)
        body = _body_from_verdict(fresh)
        # Streaming bodies must not carry the engine-only witness field,
        # and the key must keep the exact pre-engine vocabulary.
        assert "witness" not in body
        assert "backend" not in key
        assert key["engine_version"] == 1
        # Simulate a pre-engine entry: rewrite the body minus any
        # engine-era extras, then reload through the engine.
        cache = default_verdict_cache()
        assert cache.store(key, body)
        clear_engine_state()
        reloaded = decide_hiding(lcp, 4, plan)
    assert reloaded.provenance.disk_cache_hit is True
    assert reloaded.decision_fingerprint() == fresh.decision_fingerprint()
    assert reloaded.legacy.odd_cycle == fresh.legacy.odd_cycle
