"""End-to-end integration tests crossing all layers: prover →
message-passing verification → neighborhood graph → hiding/extraction →
realizability, mirroring the examples."""

from repro.certification import ConstantDecoder, EnumerativeLCP
from repro.core import DegreeOneLCP, RevealingLCP, UnionLCP, all_lcps, make_lcp, scheme_names
from repro.graphs import cycle_graph, grid_graph, is_bipartite, path_graph, theta_graph
from repro.local import Instance, run_algorithm_distributed
from repro.neighborhood import (
    build_extraction_decoder,
    build_neighborhood_graph,
    hiding_verdict_up_to,
    labeled_yes_instances,
    run_extraction,
)
from repro.realizability import candidates_from_witnesses, realize_views


def test_registry_round_trip_all_schemes():
    """Every registered scheme certifies and verifies its canonical
    instance through the distributed (message-passing) pipeline."""
    canonical = {
        "revealing": path_graph(6),
        "degree-one": path_graph(6),
        "even-cycle": cycle_graph(6),
        "union": path_graph(6),
        "shatter": path_graph(8),
        "watermelon": theta_graph(2, 2, 2),
        "universal": grid_graph(2, 4),
    }
    assert set(canonical) == set(scheme_names())
    for name, graph in canonical.items():
        lcp = make_lcp(name)
        instance = Instance.build(graph)
        labeled = instance.with_labeling(lcp.prover.certify(instance))
        votes, stats = run_algorithm_distributed(lcp.decoder, labeled)
        assert all(votes.values()), name
        assert stats.total_messages == 2 * graph.size


def test_all_lcps_factory():
    schemes = all_lcps()
    assert len(schemes) == 7
    assert {lcp.k for lcp in schemes.values()} == {2}
    assert all(lcp.radius == 1 for lcp in schemes.values())


def test_hiding_landscape():
    """The paper's headline landscape in one assertion block: the
    revealing baseline is extractable, the paper's schemes are not."""
    revealed = hiding_verdict_up_to(RevealingLCP(), 4)
    hidden = hiding_verdict_up_to(DegreeOneLCP(), 4)
    assert revealed.hiding is False
    assert hidden.hiding is True

    decoder = build_extraction_decoder(revealed.ngraph, 2)
    lcp = RevealingLCP()
    instance = Instance.build(cycle_graph(4), id_bound=4)
    labeled = instance.with_labeling(lcp.prover.certify(instance))
    assert run_extraction(decoder, lcp, labeled).proper

    assert build_extraction_decoder(hidden.ngraph, 2) is None


def test_union_inherits_both_hiding_families():
    """Theorem 1.1's union is hiding via either witness family."""
    from repro.experiments.theorems import _retag_union
    from repro.experiments.figures import (
        degree_one_witness_instances,
        even_cycle_witness_instances,
    )
    from repro.neighborhood import hiding_verdict_from_instances

    for witnesses, tag in [
        (degree_one_witness_instances(), "H1"),
        (even_cycle_witness_instances(), "H2"),
    ]:
        verdict = hiding_verdict_from_instances(UnionLCP(), _retag_union(witnesses, tag))
        assert verdict.hiding is True


def test_lemma51_realization_closes_the_loop():
    """Build V(D, n) for an identifier-aware accept-all decoder from one
    instance, realize all its views via the Lemma 5.1 merge, and confirm
    G_bad reproduces the instance with every center accepted."""
    lcp = EnumerativeLCP(
        ConstantDecoder(True, anonymous=False), ["c"],
        promise_fn=is_bipartite, name="accept-all-ids",
    )
    graph = theta_graph(2, 2, 4)
    labeled = list(labeled_yes_instances(lcp, [graph], port_limit=1, id_bound=graph.order))
    ngraph = build_neighborhood_graph(lcp, labeled)
    views = list(ngraph.views)
    candidates = candidates_from_witnesses(
        views, list(ngraph.view_witness.values()), lcp.radius
    )
    result = realize_views(lcp, views, candidates, id_bound=graph.order)
    assert result.realized
    assert result.all_centers_accepted
    assert result.instance.graph.order == graph.order
    assert sorted(result.instance.graph.degree_sequence()) == sorted(
        graph.degree_sequence()
    )


def test_cert_size_ordering():
    """The implicit results table's ordering: constant-size schemes sit
    strictly below the log-n schemes at moderate n."""
    n = 32
    sizes = {}
    for name, graph in [
        ("revealing", path_graph(n)),
        ("degree-one", path_graph(n)),
        ("even-cycle", cycle_graph(n)),
        ("union", path_graph(n)),
        ("shatter", path_graph(n)),
        ("watermelon", path_graph(n)),
    ]:
        lcp = make_lcp(name)
        instance = Instance.build(graph)
        labeling = lcp.prover.certify(instance)
        sizes[name] = lcp.labeling_bits(labeling, instance.n, instance.id_bound)
    assert sizes["revealing"] < sizes["degree-one"] < sizes["even-cycle"]
    assert sizes["union"] < sizes["shatter"] < sizes["watermelon"]
