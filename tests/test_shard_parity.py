"""Property suite: sharded sweeps are indistinguishable from serial ones.

Sharding splits the canonical-augmentation tree at a fixed prefix depth
into independent subtree work units and merges their emission blocks
back into the exact serial order.  Like the symmetry layer, it is only
allowed to change *how fast* a verdict is reached, never *what* is
reached: for every registry scheme this suite runs the full sweep with
``sharding="on"`` (in-process execution — the deterministic route) and
``sharding="off"`` and demands byte-identical verdicts — same hiding
decision, same canonical witness, same ``decision_fingerprint``, same
effective instance/view/edge counts, and the same folded
``SymmetryAccount`` totals.

A second group pins the shard plumbing itself: the merged shard
emission stream against the serial orderly walk, the work-unit
partition properties of :func:`plan_shards`, the plan-resolution rules
of the ``sharding`` knob, and the ``sharding_effective`` engagement
predicate.
"""

from __future__ import annotations

import pytest

from repro.core import make_lcp
from repro.core.registry import all_lcps
from repro.engine import (
    ExecutionPlan,
    RunContext,
    clear_engine_state,
    decide_hiding,
)
from repro.perf.config import FORCE_WORKERS_ENV, forced_workers
from repro.shard import plan_shards, sharding_effective
from repro.symmetry.orderly import build_level, emit_entries, level_entries

SCHEMES = sorted(all_lcps())

#: Full-sweep ceiling per scheme; the two workhorse schemes get n = 5
#: (every scheme's ceiling exceeds the depth-3 prefix, so the shard
#: stage genuinely runs).
DEPTH = {name: 4 for name in SCHEMES}
DEPTH["degree-one"] = 5
DEPTH["even-cycle"] = 5

#: Account counters the engine folds the merged ``SymmetryAccount``
#: into — a sharded sweep must reproduce them exactly.
ACCOUNT_COUNTERS = (
    "instances_scanned",
    "symmetry_labelings_total",
    "symmetry_labelings_pruned",
    "symmetry_bases_pruned",
    "symmetry_instances_suppressed",
)


def _full_sweep_plan(backend: str, sharding: str, **kwargs) -> ExecutionPlan:
    """A deterministic cold sweep: serial, no early exit, no cache tiers."""
    fields = {
        "backend": backend,
        "workers": 0,
        "early_exit": False,
        "warm_start": False,
        "memory_cache": False,
        "disk_cache": False,
        "symmetry": "on",
        "sharding": sharding,
        "shard_depth": 3,
    }
    fields.update(kwargs)
    return ExecutionPlan(**fields)


def _sweep(scheme: str, backend: str, sharding: str, n: int | None = None, **kwargs):
    clear_engine_state()
    ctx = RunContext.isolated()
    lcp = make_lcp(scheme)
    verdict = decide_hiding(
        lcp,
        n if n is not None else DEPTH[scheme],
        _full_sweep_plan(backend, sharding, **kwargs),
        ctx=ctx,
    )
    counters = {name: ctx.stats.get(name) for name in ACCOUNT_COUNTERS}
    return verdict, counters


@pytest.mark.parametrize("scheme", SCHEMES)
def test_sharded_sweep_matches_serial(scheme):
    serial, serial_counters = _sweep(scheme, "streaming", "off")
    sharded, sharded_counters = _sweep(scheme, "streaming", "on")

    assert sharded.hiding == serial.hiding
    assert sharded.witness == serial.witness
    assert sharded.decision_fingerprint() == serial.decision_fingerprint()
    assert (
        sharded.provenance.instances_scanned
        == serial.provenance.instances_scanned
    )
    assert sharded.provenance.views == serial.provenance.views
    assert sharded.provenance.edges == serial.provenance.edges
    assert sharded_counters == serial_counters
    # Provenance reports the shard stage only when it actually ran.
    assert sharded.provenance.shard_count
    assert serial.provenance.shard_count is None


@pytest.mark.parametrize("scheme", ["degree-one", "even-cycle"])
def test_sharded_materialized_backend_matches_serial(scheme):
    serial, serial_counters = _sweep(scheme, "materialized", "off")
    sharded, sharded_counters = _sweep(scheme, "materialized", "on")
    assert sharded.decision_fingerprint() == serial.decision_fingerprint()
    assert (
        sharded.provenance.instances_scanned
        == serial.provenance.instances_scanned
    )
    assert sharded_counters == serial_counters


@pytest.mark.parametrize("scheme", ["degree-one", "even-cycle"])
def test_sharded_early_exit_matches_serial(scheme):
    serial, _ = _sweep(scheme, "streaming", "off", early_exit=True)
    sharded, _ = _sweep(scheme, "streaming", "on", early_exit=True)
    assert sharded.hiding == serial.hiding
    assert sharded.witness == serial.witness
    assert sharded.decision_fingerprint() == serial.decision_fingerprint()
    assert (
        sharded.provenance.instances_scanned
        == serial.provenance.instances_scanned
    )


# ----------------------------------------------------------------------
# Emission parity: merged shard blocks == the serial orderly walk
# ----------------------------------------------------------------------


def _encode(stream):
    return [(mask, tuple(sorted(graph.edges))) for mask, graph in stream]


@pytest.mark.parametrize("depth", [2, 3, 4])
def test_merged_shard_emission_is_byte_identical(depth):
    n = 6
    spec = plan_shards(n, depth, workers=4)
    roots = level_entries(depth)
    assert spec.total_roots == len(roots)
    for size in range(depth + 1, n + 1):
        serial = _encode(emit_entries(level_entries(size), size))
        merged = []
        for shard in spec.shards:
            entries = roots[shard.start : shard.stop]
            for level in range(depth + 1, size + 1):
                entries = build_level(level, entries)
            merged.extend(_encode(emit_entries(entries, size)))
        merged.sort(key=lambda pair: pair[0])
        assert merged == serial


# ----------------------------------------------------------------------
# plan_shards partition properties
# ----------------------------------------------------------------------


def test_plan_shards_partitions_the_root_level():
    for workers in (0, 1, 2, 4, 16):
        spec = plan_shards(6, 3, workers)
        assert len(spec) == len(spec.shards)
        # Contiguous, ordered, nonempty ranges covering [0, total_roots).
        cursor = 0
        for index, shard in enumerate(spec.shards):
            assert shard.index == index
            assert shard.start == cursor
            assert shard.stop > shard.start
            cursor = shard.stop
        assert cursor == spec.total_roots
        assert len(spec.shards) <= max(1, workers) * 4 or len(spec.shards) == 1


def test_plan_shards_is_deterministic():
    assert plan_shards(7, 3, 4) == plan_shards(7, 3, 4)


def test_plan_shards_rejects_empty_subtrees():
    with pytest.raises(ValueError):
        plan_shards(3, 3, 2)
    with pytest.raises(ValueError):
        plan_shards(2, 4, 2)


def test_shard_key_fields_pin_the_generation_version():
    spec = plan_shards(6, 3, 2)
    for shard in spec.shards:
        fields = shard.key_fields()
        assert fields["generation_version"] == 1
        assert fields["depth"] == 3
        assert (fields["start"], fields["stop"]) == (shard.start, shard.stop)
        assert shard.id == f"d3-{shard.start:06d}-{shard.stop:06d}"


# ----------------------------------------------------------------------
# Plan resolution and engagement rules
# ----------------------------------------------------------------------


def test_sharding_on_with_symmetry_off_is_rejected():
    plan = ExecutionPlan(backend="streaming", symmetry="off", sharding="on")
    with pytest.raises(ValueError):
        plan.resolve()


def test_sharding_auto_with_symmetry_off_degrades_to_off():
    plan = ExecutionPlan(backend="streaming", symmetry="off", sharding="auto")
    assert plan.resolve().sharding == "off"


def test_invalid_sharding_mode_and_depth_are_rejected():
    with pytest.raises(ValueError):
        ExecutionPlan(backend="streaming", sharding="sometimes").resolve()
    with pytest.raises(ValueError):
        ExecutionPlan(backend="streaming", shard_depth=0).resolve()


def test_forced_workers_env_applies_only_when_unset(monkeypatch):
    monkeypatch.setenv(FORCE_WORKERS_ENV, "3")
    assert forced_workers() == 3
    assert ExecutionPlan(backend="streaming").resolve().workers == 3
    assert ExecutionPlan(backend="streaming", workers=1).resolve().workers == 1
    monkeypatch.setenv(FORCE_WORKERS_ENV, "not-a-number")
    assert forced_workers() is None
    monkeypatch.delenv(FORCE_WORKERS_ENV)
    assert forced_workers() is None


def test_sharding_effective_rules():
    lcp = make_lcp("even-cycle")

    def resolved(**kwargs):
        return ExecutionPlan(backend="streaming", **kwargs).resolve()

    on = resolved(sharding="on", shard_depth=3, symmetry="on", workers=0)
    assert sharding_effective(lcp, on, 6)
    assert not sharding_effective(lcp, on, 3)  # n <= depth: nothing to split
    off = resolved(sharding="off", shard_depth=3, symmetry="on", workers=4)
    assert not sharding_effective(lcp, off, 6)
    # "auto" engages only where the pool can pay for itself.
    auto = resolved(
        sharding="auto", shard_depth=3, symmetry="on", workers=4,
        early_exit=False,
    )
    assert sharding_effective(lcp, auto, 6)
    assert not sharding_effective(
        lcp,
        resolved(
            sharding="auto", shard_depth=3, symmetry="on", workers=0,
            early_exit=False,
        ),
        6,
    )
    assert not sharding_effective(
        lcp,
        resolved(
            sharding="auto", shard_depth=3, symmetry="on", workers=4,
            early_exit=True,
        ),
        6,
    )
    # The legacy edge-subset walk has no augmentation tree to shard.
    assert not sharding_effective(
        lcp, resolved(sharding="auto", shard_depth=3, symmetry="off", workers=4), 6
    )


def test_describe_mentions_sharding_only_when_engaged():
    plan = ExecutionPlan(backend="streaming", sharding="on", shard_depth=3)
    assert "sharding=on" in plan.resolve().describe()
    assert "shard_depth=3" in plan.resolve().describe()
    plain = ExecutionPlan(backend="streaming", sharding="off")
    assert "sharding" not in plain.resolve().describe()
