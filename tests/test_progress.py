"""The progress event bus and its engine/campaign wiring.

Pins the live-telemetry contract: bus semantics (in-line fan-out in
subscription order, raising subscribers counted but never fatal), the
`instances_scanned` delta wrapper, the TTY renderer's EMA-based ETA,
the JSONL sink's joinability via ``trace_id``, event ordering under the
process-pool builder, and — the acceptance invariant — byte-identical
decision fingerprints whether anyone is watching or not.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.campaign import CampaignSpec, run_campaign
from repro.core import DegreeOneLCP, EvenCycleLCP
from repro.engine import (
    ExecutionPlan,
    RunContext,
    clear_engine_state,
    decide_hiding,
)
from repro.obs import (
    EVENT_KINDS,
    GLOBAL_PROGRESS,
    NULL_PROGRESS,
    JSONLSink,
    ProgressBus,
    TTYRenderer,
    counting_instances,
    progress_enabled,
)
from repro.obs.progress import _format_eta


@pytest.fixture(autouse=True)
def _fresh_engine_state():
    clear_engine_state()
    yield
    clear_engine_state()


def _plan(**overrides) -> ExecutionPlan:
    base = dict(
        backend="streaming", warm_start=False, disk_cache=False, memory_cache=False
    )
    base.update(overrides)
    return ExecutionPlan(**base)


# ----------------------------------------------------------------------
# Bus semantics
# ----------------------------------------------------------------------


def test_emit_without_subscribers_is_inert():
    bus = ProgressBus()
    assert not bus.active
    bus.emit("cell_started", label="x")  # must not raise or allocate state
    assert bus.errors == 0


def test_subscribers_see_events_in_subscription_order():
    bus = ProgressBus()
    seen: list[tuple[str, str]] = []
    bus.subscribe(lambda record: seen.append(("a", record["event"])))
    bus.subscribe(lambda record: seen.append(("b", record["event"])))
    assert bus.active
    bus.emit("cell_started", label="x")
    bus.emit("cell_finished", label="x")
    assert seen == [
        ("a", "cell_started"),
        ("b", "cell_started"),
        ("a", "cell_finished"),
        ("b", "cell_finished"),
    ]


def test_event_record_carries_kind_ts_and_payload():
    bus = ProgressBus()
    records: list[dict] = []
    bus.subscribe(records.append)
    bus.emit("instances_scanned", delta=7, total=7, scheme="even-cycle")
    (record,) = records
    assert record["event"] == "instances_scanned"
    assert isinstance(record["ts"], float)
    assert record["delta"] == 7
    assert record["scheme"] == "even-cycle"


def test_raising_subscriber_is_counted_not_fatal():
    bus = ProgressBus()
    seen = []

    def bad(record):
        raise RuntimeError("boom")

    bus.subscribe(bad)
    bus.subscribe(seen.append)
    bus.emit("cell_started")
    bus.emit("cell_finished")
    # Later subscribers still saw every event; failures were tallied.
    assert [r["event"] for r in seen] == ["cell_started", "cell_finished"]
    assert bus.errors == 2


def test_unsubscribe_is_idempotent():
    bus = ProgressBus()
    sub = bus.subscribe(lambda record: None)
    bus.unsubscribe(sub)
    bus.unsubscribe(sub)
    assert not bus.active


def test_null_progress_refuses_subscribers():
    assert not NULL_PROGRESS.active
    NULL_PROGRESS.emit("cell_started")  # no-op
    with pytest.raises(RuntimeError):
        NULL_PROGRESS.subscribe(lambda record: None)


def test_isolated_context_gets_private_bus():
    ctx = RunContext()
    assert ctx.progress is GLOBAL_PROGRESS
    iso = ctx.isolated()
    assert iso.progress is not GLOBAL_PROGRESS
    assert isinstance(iso.progress, ProgressBus)


def test_event_kinds_vocabulary_is_stable():
    assert "instances_scanned" in EVENT_KINDS
    assert "campaign_started" in EVENT_KINDS
    assert "generation_level" in EVENT_KINDS


# ----------------------------------------------------------------------
# counting_instances
# ----------------------------------------------------------------------


def test_counting_instances_yields_stream_unchanged():
    bus = ProgressBus()
    records = []
    bus.subscribe(records.append)
    out = list(counting_instances(iter(range(10)), bus, every=4, scheme="s"))
    assert out == list(range(10))
    deltas = [r["delta"] for r in records]
    assert deltas == [4, 4, 2]  # two full blocks plus the final flush
    assert [r["total"] for r in records] == [4, 8, 10]
    assert all(r["event"] == "instances_scanned" for r in records)
    assert all(r["scheme"] == "s" for r in records)


def test_counting_instances_empty_stream_emits_nothing():
    bus = ProgressBus()
    records = []
    bus.subscribe(records.append)
    assert list(counting_instances(iter(()), bus, every=4)) == []
    assert records == []


# ----------------------------------------------------------------------
# progress_enabled
# ----------------------------------------------------------------------


def test_progress_enabled_requires_tty(monkeypatch):
    monkeypatch.delenv("REPRO_NO_PROGRESS", raising=False)
    assert not progress_enabled(io.StringIO())  # StringIO.isatty() is False

    class FakeTTY(io.StringIO):
        def isatty(self):
            return True

    assert progress_enabled(FakeTTY())
    monkeypatch.setenv("REPRO_NO_PROGRESS", "1")
    assert not progress_enabled(FakeTTY())


# ----------------------------------------------------------------------
# TTYRenderer
# ----------------------------------------------------------------------


class _FakeTTY(io.StringIO):
    def isatty(self):
        return True


def test_renderer_tracks_campaign_and_eta():
    stream = _FakeTTY()
    renderer = TTYRenderer(stream=stream, min_interval=0.0)
    renderer({"event": "campaign_started", "total_cells": 4})
    assert renderer.eta_seconds() is None  # no cell has finished yet
    renderer({"event": "cell_started", "label": "even-cycle n<=5"})
    renderer({"event": "cell_finished", "label": "even-cycle n<=5", "wall_time_s": 2.0})
    # First sample seeds the EMA directly.
    assert renderer.ema_cell_s == pytest.approx(2.0)
    assert renderer.eta_seconds() == pytest.approx(3 * 2.0)
    renderer({"event": "cell_finished", "wall_time_s": 4.0})
    # EMA with alpha=0.3: 2.0 + 0.3 * (4.0 - 2.0) = 2.6
    assert renderer.ema_cell_s == pytest.approx(2.6)
    assert renderer.eta_seconds() == pytest.approx(2 * 2.6)
    out = stream.getvalue()
    assert "\r" in out
    assert "[2/4]" in out
    assert "ETA" in out


def test_renderer_campaign_finished_clears_line():
    stream = _FakeTTY()
    renderer = TTYRenderer(stream=stream, min_interval=0.0)
    renderer({"event": "campaign_started", "total_cells": 1})
    renderer({"event": "cell_started", "label": "x"})
    renderer({"event": "campaign_finished"})
    # The final write blanks the status line and returns the cursor.
    assert stream.getvalue().endswith("\r")
    assert renderer._line_len == 0


def test_renderer_instances_counter_resets_per_cell():
    stream = _FakeTTY()
    renderer = TTYRenderer(stream=stream, min_interval=0.0)
    renderer({"event": "cell_started", "label": "a"})
    renderer({"event": "instances_scanned", "delta": 256, "total": 256})
    assert renderer._instances == 256
    renderer({"event": "cell_started", "label": "b"})
    assert renderer._instances == 0


def test_format_eta_buckets():
    assert _format_eta(42) == "0:42"
    assert _format_eta(61) == "1:01"
    assert _format_eta(3723) == "1:02:03"


# ----------------------------------------------------------------------
# JSONLSink
# ----------------------------------------------------------------------


def test_jsonl_sink_appends_one_line_per_event(tmp_path):
    target = tmp_path / "events" / "stream.jsonl"
    sink = JSONLSink(target)
    bus = ProgressBus()
    bus.subscribe(sink)
    bus.emit("cell_started", label="x", trace_id="abc123")
    bus.emit("cell_finished", label="x", hiding=True)
    sink.close()
    lines = target.read_text().splitlines()
    assert len(lines) == 2
    first, second = (json.loads(line) for line in lines)
    assert first["event"] == "cell_started"
    assert first["trace_id"] == "abc123"
    assert second["hiding"] is True


def test_jsonl_sink_accepts_open_stream():
    buffer = io.StringIO()
    sink = JSONLSink(buffer)
    sink({"event": "decision_started", "ts": 0.0})
    sink.close()  # must not close a caller-owned stream
    assert json.loads(buffer.getvalue()) == {"event": "decision_started", "ts": 0.0}


# ----------------------------------------------------------------------
# Engine wiring: decision events + ordering
# ----------------------------------------------------------------------


def _decide_with_recorder(plan: ExecutionPlan, n: int = 6):
    ctx = RunContext.observed()
    records: list[dict] = []
    ctx.progress.subscribe(records.append)
    verdict = decide_hiding(EvenCycleLCP(), n=n, plan=plan, ctx=ctx)
    return verdict, records


def test_decision_emits_started_and_finished():
    verdict, records = _decide_with_recorder(_plan())
    kinds = [r["event"] for r in records]
    assert kinds[0] == "decision_started"
    assert kinds[-1] == "decision_finished"
    done = records[-1]
    assert done["hiding"] == verdict.hiding
    assert done["wall_time_s"] > 0
    assert done["trace_id"] is not None


def test_instance_deltas_sum_to_provenance_count():
    # symmetry off: provenance counts physically scanned instances only
    # (with pruning on it would multiply suppressed orbit mates back in).
    verdict, records = _decide_with_recorder(
        _plan(backend="materialized", symmetry="off"), n=6
    )
    scanned = [r for r in records if r["event"] == "instances_scanned"]
    assert sum(r["delta"] for r in scanned) == verdict.provenance.instances_scanned
    totals = [r["total"] for r in scanned]
    assert totals == sorted(totals)  # monotone running totals


def test_event_ordering_under_process_pool_builder():
    """With the process-pool builder (workers=2) the instance stream is
    still consumed — and its deltas emitted — in the parent process, so
    subscribers observe a well-ordered stream: started, deltas with
    monotone totals, finished."""
    verdict, records = _decide_with_recorder(
        _plan(backend="materialized", workers=2, symmetry="off"), n=6
    )
    kinds = [r["event"] for r in records]
    assert kinds[0] == "decision_started"
    assert kinds[-1] == "decision_finished"
    assert all(kind == "instances_scanned" for kind in kinds[1:-1])
    totals = [r["total"] for r in records if r["event"] == "instances_scanned"]
    assert totals == sorted(totals)
    assert sum(
        r["delta"] for r in records if r["event"] == "instances_scanned"
    ) == verdict.provenance.instances_scanned


def test_unobserved_run_skips_instance_wrapper():
    ctx = RunContext.observed()
    # No subscribers: the backend must not pay for the counting wrapper,
    # and emission must leave no trace on the bus.
    verdict = decide_hiding(EvenCycleLCP(), n=5, plan=_plan(), ctx=ctx)
    assert verdict.provenance.instances_scanned > 0
    assert ctx.progress.errors == 0


# ----------------------------------------------------------------------
# The acceptance invariant: observation never changes the decision
# ----------------------------------------------------------------------


def test_fingerprints_identical_with_and_without_observers(monkeypatch):
    def run(observed: bool) -> bytes:
        clear_engine_state()
        ctx = RunContext.observed()
        if observed:
            monkeypatch.delenv("REPRO_NO_PROGRESS", raising=False)
            ctx.progress.subscribe(lambda record: None)
        else:
            monkeypatch.setenv("REPRO_NO_PROGRESS", "1")
        verdict = decide_hiding(DegreeOneLCP(), n=6, plan=_plan(), ctx=ctx)
        return verdict.decision_fingerprint()

    assert run(observed=True) == run(observed=False)


# ----------------------------------------------------------------------
# Campaign wiring
# ----------------------------------------------------------------------


def test_campaign_emits_cell_lifecycle_events():
    spec = CampaignSpec(schemes=("even-cycle",), n_values=(4, 5, 6), k_values=(2,))
    ctx = RunContext.observed()
    records: list[dict] = []
    ctx.progress.subscribe(records.append)
    run = run_campaign(spec, ctx=ctx)
    kinds = [r["event"] for r in records]
    assert kinds[0] == "campaign_started"
    assert kinds[-1] == "campaign_finished"
    assert records[0]["total_cells"] == len(run.results)
    starts = [r for r in records if r["event"] == "cell_started"]
    finishes = [r for r in records if r["event"] == "cell_finished"]
    assert len(starts) == len(finishes) == len(run.results)
    # Every finish carries the wall time the renderer's EMA feeds on,
    # and the trace id that joins it to the run report.
    for record in finishes:
        assert record["wall_time_s"] >= 0
        assert "trace_id" in record
    done = records[-1]
    assert done["cells"] == len(run.results)
    assert done["errors"] == 0


def test_campaign_cell_results_carry_trace_id():
    spec = CampaignSpec(schemes=("even-cycle",), n_values=(4, 5), k_values=(2,))
    ctx = RunContext.observed()
    run = run_campaign(spec, ctx=ctx)
    for cell in run.results:
        assert cell.trace_id == ctx.tracer.trace_id
        assert cell.as_dict()["trace_id"] == ctx.tracer.trace_id
