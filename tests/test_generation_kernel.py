"""Property suite: the generation kernel is byte-identical to the scalar path.

The batched canonicalization and orderly-generation kernels of
:mod:`repro.kernel.generate` are pure accelerations: for every
isomorphism class up to ``n = 7`` the vectorized canonical key, the
minimizing-assignment order (hence the automorphism tuples), the level
build, and the emission stream must match the scalar
``colex_canonical`` / ``min_edge_mask`` / ``_build_level`` reference
bit for bit.  OEIS A000088 / A001349 pin the class counts so a parity
bug that drops or duplicates classes on *both* routes cannot hide.

The suite also covers the capability seams: the
``REPRO_DISABLE_NUMPY`` fallback, the ``generation_kernel`` plan knob,
the raised ``kernel_labeling_limit`` admission (content parity with a
plainly raised limit, normalization on non-vectorized plans), and the
satellite guarantee that ``src/repro`` itself no longer calls the
deprecation shims.
"""

from __future__ import annotations

import ast
from itertools import permutations
from pathlib import Path

import pytest

from repro.core.even_cycle import EvenCycleLCP
from repro.engine import (
    ExecutionPlan,
    clear_engine_state,
    decide_hiding,
    resolve_plan,
)
from repro.kernel import DISABLE_ENV, kernel_available, numpy_or_none
from repro.kernel.generate import (
    MAX_GENERATION_NODES,
    batch_colex_canonical,
    batch_min_edge_mask,
    generation_supported,
    orbit_minimal_subsets,
    subset_bit_matrix,
)
from repro.symmetry.canon import (
    automorphisms_from_perms,
    colex_canonical,
    min_edge_mask,
)
from repro.symmetry.groups import (
    AutomorphismGroup,
    automorphism_group,
    clear_automorphism_cache,
)
from repro.symmetry.orderly import (
    _build_level,
    _build_level_batched,
    _level,
    clear_orderly_cache,
    count_classes,
    orderly_graphs_exactly,
)

HAVE_NUMPY = kernel_available()
needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not importable")

#: Isomorphism classes on exactly n nodes, n = 1..7 (OEIS A000088).
ALL_COUNTS = [1, 2, 4, 11, 34, 156, 1044]
#: Connected classes on exactly n nodes, n = 1..7 (OEIS A001349).
CONNECTED_COUNTS = [1, 1, 2, 6, 21, 112, 853]


@pytest.fixture(autouse=True)
def _fresh_generation_caches():
    """The kernel-vs-scalar comparisons below rebuild the memoized
    levels under different routes; never let one leak into other tests."""
    clear_orderly_cache()
    clear_automorphism_cache()
    clear_engine_state()
    yield
    clear_orderly_cache()
    clear_automorphism_cache()
    clear_engine_state()


def _scalar_levels(n: int):
    """Levels 1..n built strictly by the scalar reference path."""
    levels = {1: (((0,), ((0,),)),)}
    for k in range(2, n + 1):
        levels[k] = _build_level(k, levels[k - 1])
    return levels


def _class_matrices(n: int, np):
    """Adjacency-row matrices for every class on *n* nodes plus a few
    deterministic relabelings — canonical and non-canonical inputs."""
    perms = list(permutations(range(n)))
    perms = perms[:: max(1, len(perms) // 5)]
    rows_out = []
    for rows, _ in _scalar_levels(n)[n]:
        for sigma in perms:
            rows_out.append(
                [
                    sum(
                        (rows[sigma[u]] >> sigma[v] & 1) << v
                        for v in range(n)
                    )
                    for u in range(n)
                ]
            )
    return np.array(rows_out, dtype=np.int64)


@needs_numpy
class TestBatchCanonicalization:
    @pytest.mark.parametrize("n", range(1, 7))
    def test_colex_matches_scalar_including_perm_order(self, n):
        np = numpy_or_none()
        matrix = _class_matrices(n, np)
        perms, gid = batch_colex_canonical(matrix, n, np)
        bounds = np.searchsorted(gid, np.arange(len(matrix) + 1))
        for g, adj in enumerate(matrix.tolist()):
            _, scalar_perms = colex_canonical(adj, n)
            lo, hi = int(bounds[g]), int(bounds[g + 1])
            batched = tuple(tuple(p) for p in perms[lo:hi].tolist())
            # Same minimizing assignments in the same DFS order — the
            # automorphism tuples derived from them inherit the parity.
            assert batched == scalar_perms
            assert automorphisms_from_perms(batched, n) == (
                automorphisms_from_perms(scalar_perms, n)
            )

    @pytest.mark.parametrize("n", range(1, 7))
    def test_min_edge_mask_matches_scalar(self, n):
        np = numpy_or_none()
        matrix = _class_matrices(n, np)
        firsts = []
        for adj in matrix.tolist():
            _, cperms = colex_canonical(adj, n)
            group = AutomorphismGroup(
                nodes=tuple(range(n)),
                perms=automorphisms_from_perms(cperms, n),
            )
            firsts.append(group.orbit_representatives())
        masks, final = batch_min_edge_mask(matrix, n, firsts, np)
        for g, adj in enumerate(matrix.tolist()):
            mask, perm = min_edge_mask(adj, n, first_candidates=firsts[g])
            assert int(masks[g]) == mask
            # Scalar keeps the *last* minimizing assignment; so must we.
            assert tuple(final[g].tolist()) == perm

    def test_orbit_minimal_subsets_matches_scalar_filter(self):
        np = numpy_or_none()
        for m in range(0, 6):
            bits = subset_bit_matrix(m, np)
            for sigma_tuple in (
                (),
                (tuple(range(m))[::-1],) if m else (),
                tuple(permutations(range(m)))[:3] if m else (),
            ):
                sigma = (
                    np.array(sigma_tuple, dtype=np.int64)
                    if sigma_tuple
                    else np.zeros((0, m), dtype=np.int64)
                )
                keep = orbit_minimal_subsets(bits, sigma, np)
                for s in range(1 << m):
                    minimal = all(
                        sum(
                            ((s >> i) & 1) << sig[i] for i in range(m)
                        )
                        >= s
                        for sig in sigma_tuple
                    )
                    assert bool(keep[s]) == minimal


@needs_numpy
class TestLevelBuildParity:
    def test_batched_levels_identical_to_scalar(self):
        np = numpy_or_none()
        scalar = _scalar_levels(7)
        for k in range(2, 8):
            assert _build_level_batched(k, scalar[k - 1], np) == scalar[k]

    def test_generation_supported_bounds(self):
        assert generation_supported(1)
        assert generation_supported(MAX_GENERATION_NODES)
        assert not generation_supported(MAX_GENERATION_NODES + 1)


def _emission_stream(n: int, connected_only: bool, generation_kernel: str):
    """(edges, seeded automorphisms) per emitted graph, in stream order."""
    from repro.perf.config import CONFIG  # noqa: PLC0415

    clear_orderly_cache()
    clear_automorphism_cache()
    with CONFIG.overridden(generation_kernel=generation_kernel):
        return [
            (tuple(g.edges), automorphism_group(g).perms)
            for g in orderly_graphs_exactly(n, connected_only=connected_only)
        ]


class TestEmissionParity:
    @needs_numpy
    @pytest.mark.parametrize("connected_only", [False, True])
    def test_stream_byte_identical_to_scalar_up_to_7(self, connected_only):
        counts = CONNECTED_COUNTS if connected_only else ALL_COUNTS
        for n in range(1, 8):
            scalar = _emission_stream(n, connected_only, "off")
            batched = _emission_stream(n, connected_only, "auto")
            assert batched == scalar
            assert len(batched) == counts[n - 1]

    @needs_numpy
    def test_oeis_counts_on_kernel_route(self):
        from repro.perf.config import CONFIG  # noqa: PLC0415

        with CONFIG.overridden(generation_kernel="auto"):
            for n in range(1, 8):
                assert count_classes(n) == ALL_COUNTS[n - 1]
                assert (
                    count_classes(n, connected_only=True)
                    == CONNECTED_COUNTS[n - 1]
                )

    def test_disabled_numpy_falls_back_to_scalar(self, monkeypatch):
        monkeypatch.setenv(DISABLE_ENV, "1")
        assert numpy_or_none() is None
        for n in range(1, 7):
            stream = _emission_stream(n, True, "auto")
            assert len(stream) == CONNECTED_COUNTS[n - 1]

    @needs_numpy
    def test_levels_memoized_identically_across_routes(self, monkeypatch):
        # A level built by the kernel then read under the fallback (or
        # vice versa) must be indistinguishable: same memoized tuples.
        batched = {k: _level(k) for k in range(1, 7)}
        clear_orderly_cache()
        monkeypatch.setenv(DISABLE_ENV, "1")
        for k in range(1, 7):
            assert _level(k) == batched[k]


class TestKernelLabelingLimit:
    @needs_numpy
    def test_raised_limit_content_parity(self):
        # 16^4 = 65,536 > the 20,000 scalar cap: only the raised limit
        # admits the exhaustive unanimity pass.  Admitting it through
        # kernel_labeling_limit must decide exactly what a plainly
        # raised labeling_limit decides.
        def sweep(**kwargs):
            clear_engine_state()
            plan = ExecutionPlan(
                backend="vectorized",
                workers=0,
                early_exit=False,
                warm_start=False,
                memory_cache=False,
                disk_cache=False,
                **kwargs,
            )
            return decide_hiding(EvenCycleLCP(), 4, plan)

        raised = sweep(labeling_limit=20_000, kernel_labeling_limit=70_000)
        plain = sweep(labeling_limit=70_000)
        assert raised.decision_fingerprint() == plain.decision_fingerprint()
        assert raised.provenance.kernel == "batch"

    @needs_numpy
    def test_normalized_away_on_non_vectorized_plans(self):
        streaming = resolve_plan(backend="streaming", kernel_labeling_limit=70_000)
        assert streaming.kernel_labeling_limit is None
        vectorized = resolve_plan(backend="vectorized", kernel_labeling_limit=70_000)
        assert vectorized.kernel_labeling_limit == 70_000
        assert "kernel_labeling_limit=70000" in vectorized.describe()
        # A raise that is not actually a raise is normalized away too.
        lowered = resolve_plan(backend="vectorized", kernel_labeling_limit=10)
        assert lowered.kernel_labeling_limit is None

    def test_invalid_raised_limit_rejected(self):
        with pytest.raises(ValueError, match="kernel_labeling_limit"):
            resolve_plan(kernel_labeling_limit=0)

    def test_generation_kernel_on_requires_numpy(self, monkeypatch):
        monkeypatch.setenv(DISABLE_ENV, "1")
        with pytest.raises(ValueError, match="generation_kernel"):
            resolve_plan(generation_kernel="on")
        assert resolve_plan(generation_kernel="auto").generation_kernel == "auto"

    def test_invalid_generation_kernel_rejected(self):
        with pytest.raises(ValueError, match="generation_kernel"):
            resolve_plan(generation_kernel="sometimes")


SHIM_NAMES = {"hiding_verdict_up_to", "streaming_hiding_verdict_up_to"}


def test_src_repro_never_calls_the_deprecation_shims():
    """Satellite guarantee: the library itself is shim-free — every
    internal decision goes through ``repro.engine.decide_hiding``.  The
    shims stay importable for external consumers only."""
    src = Path(__file__).resolve().parent.parent / "src" / "repro"
    offenders = []
    for path in sorted(src.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = getattr(func, "id", None) or getattr(func, "attr", None)
            if name in SHIM_NAMES:
                offenders.append(f"{path.relative_to(src)}:{node.lineno}")
    assert not offenders, f"deprecation-shim call sites in src/repro: {offenders}"
