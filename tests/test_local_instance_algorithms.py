"""Tests for Instance assembly and the local-algorithm layer
(anonymity, order-invariance, lifts)."""

import pytest

from repro.certification import FunctionDecoder
from repro.errors import CertificationError, IdentifierAssignmentError
from repro.graphs import cycle_graph, path_graph
from repro.local import (
    FunctionAlgorithm,
    IdentifierAssignment,
    Instance,
    Labeling,
    OrderInvariantLift,
    is_anonymous_on,
    is_order_invariant_on,
)


class TestInstance:
    def test_build_defaults(self):
        instance = Instance.build(path_graph(4))
        assert instance.n == 4
        assert instance.id_bound == 4
        assert instance.labeling is None
        instance.validate()

    def test_with_labeling(self):
        instance = Instance.build(path_graph(2))
        labeled = instance.with_labeling(Labeling({0: "a", 1: "b"}))
        assert labeled.labeling is not None
        assert instance.labeling is None  # original untouched

    def test_require_labeling(self):
        instance = Instance.build(path_graph(2))
        with pytest.raises(CertificationError):
            instance.require_labeling()

    def test_with_ids_bound_grows(self):
        instance = Instance.build(path_graph(2))
        bigger = instance.with_ids(IdentifierAssignment({0: 7, 1: 9}))
        assert bigger.id_bound >= 9

    def test_id_bound_enforced(self):
        with pytest.raises(IdentifierAssignmentError):
            Instance.build(
                path_graph(2), ids=IdentifierAssignment({0: 1, 1: 99}), id_bound=10
            )

    def test_relabeled_nodes(self):
        instance = Instance.build(path_graph(2), labeling=Labeling({0: "a", 1: "b"}))
        moved = instance.relabeled_nodes({0: "x", 1: "y"})
        assert moved.graph.has_edge("x", "y")
        assert moved.labeling.of("x") == "a"
        assert moved.ids.id_of("x") == 1


class TestAlgorithms:
    def test_function_algorithm_runs_everywhere(self):
        alg = FunctionAlgorithm(lambda view: view.center_degree, radius=1)
        outputs = alg.run_on(Instance.build(path_graph(4)))
        assert outputs == {0: 1, 1: 2, 2: 2, 3: 1}

    def test_anonymous_check(self):
        g = path_graph(3)
        instance = Instance.build(g)
        samples = [
            IdentifierAssignment({0: 1, 1: 2, 2: 3}),
            IdentifierAssignment({0: 3, 1: 1, 2: 2}),
        ]
        degree_alg = FunctionAlgorithm(lambda view: view.center_degree, radius=1)
        id_alg = FunctionAlgorithm(lambda view: view.center_id, radius=1)
        assert is_anonymous_on(degree_alg, instance, samples)
        assert not is_anonymous_on(id_alg, instance, samples)

    def test_order_invariance_check(self):
        instance = Instance.build(path_graph(3))
        rank_alg = FunctionAlgorithm(
            lambda view: view.center_id == min(view.ids), radius=1
        )
        value_alg = FunctionAlgorithm(lambda view: view.center_id % 2, radius=1)
        assert is_order_invariant_on(rank_alg, instance)
        assert not is_order_invariant_on(value_alg, instance)

    def test_order_invariant_lift(self):
        instance = Instance.build(cycle_graph(4))
        value_alg = FunctionDecoder(lambda view: view.center_id % 2 == 0, radius=1)
        lifted = OrderInvariantLift(value_alg)
        assert is_order_invariant_on(lifted, instance)
        assert "OrderInvariant" in lifted.name

    def test_view_of_respects_anonymity(self):
        instance = Instance.build(path_graph(3))
        anon = FunctionAlgorithm(lambda view: 0, radius=1, anonymous=True)
        assert anon.view_of(instance, 1).is_anonymous
        named = FunctionAlgorithm(lambda view: 0, radius=1, anonymous=False)
        assert not named.view_of(instance, 1).is_anonymous
