"""Tests for the watermelon LCP (Theorem 1.4)."""

import pytest

from repro.certification import GreedyAdversary, check_completeness, check_strong_soundness
from repro.core import WatermelonLCP, endpoint_certificate, path_certificate
from repro.errors import PromiseViolationError
from repro.experiments.theorems import watermelon_hiding_witnesses
from repro.graphs import (
    complete_graph,
    cycle_graph,
    is_bipartite,
    pan_graph,
    path_graph,
    theta_graph,
    watermelon_graph,
)
from repro.graphs.families import watermelon_family_up_to
from repro.local import Instance, Labeling, extract_view
from repro.neighborhood import hiding_verdict_from_instances


@pytest.fixture(scope="module")
def lcp() -> WatermelonLCP:
    return WatermelonLCP()


class TestProver:
    @pytest.mark.parametrize(
        "graph",
        [
            path_graph(5),
            cycle_graph(6),
            watermelon_graph([2, 2]),
            watermelon_graph([2, 4, 4]),
            watermelon_graph([3, 3, 3]),
            theta_graph(2, 2, 2),
        ],
    )
    def test_round_trip(self, lcp, graph):
        assert lcp.certify_and_check(Instance.build(graph)).unanimous

    def test_endpoint_and_path_certificates(self, lcp):
        g = watermelon_graph([2, 3])
        # Mixed parity -> not bipartite; use same parity instead.
        g = watermelon_graph([2, 4])
        instance = Instance.build(g)
        labeling = lcp.prover.certify(instance)
        kinds = [labeling.of(v)[0] for v in g.nodes]
        assert kinds.count("end") == 2
        assert kinds.count("path") == g.order - 2

    def test_path_numbers_distinct(self, lcp):
        g = watermelon_graph([2, 2, 2])
        instance = Instance.build(g)
        labeling = lcp.prover.certify(instance)
        numbers = {labeling.of(v)[3] for v in g.nodes if labeling.of(v)[0] == "path"}
        assert numbers == {1, 2, 3}

    def test_rejects_odd_even_mix(self, lcp):
        g = watermelon_graph([2, 3])
        assert not is_bipartite(g)
        with pytest.raises(PromiseViolationError):
            lcp.prover.certify(Instance.build(g))

    def test_rejects_non_watermelon(self, lcp):
        with pytest.raises(PromiseViolationError):
            lcp.prover.certify(Instance.build(complete_graph(4)))


class TestCompleteness:
    def test_family_up_to_7(self, lcp):
        graphs = [g for g in watermelon_family_up_to(7) if is_bipartite(g)]
        report = check_completeness(lcp, graphs, port_limit=2, id_samples=2)
        assert report.passed
        assert report.graphs_checked >= 5


class TestStrongSoundness:
    def test_greedy_adversary(self, lcp):
        report = check_strong_soundness(
            lcp,
            [complete_graph(3), cycle_graph(5), theta_graph(2, 2, 3), pan_graph(3, 2)],
            GreedyAdversary(restarts=4, sweeps=2, seed=5,
                            pool_graphs=[path_graph(8), watermelon_graph([2, 2])]),
            port_limit=1,
        )
        assert report.passed

    def test_odd_cycle_cannot_be_all_path_nodes(self, lcp):
        """A pure type-2 odd cycle would need a proper 2-edge-coloring of
        an odd cycle — every consistent attempt must fail locally."""
        g = cycle_graph(5)
        instance = Instance.build(g)
        labels = {}
        for i, v in enumerate(g.nodes):
            nxt = (i + 1) % 5
            prev = (i - 1) % 5
            e_next = i % 2
            e_prev = (i - 1) % 2
            port_next = instance.ports.port(v, nxt)
            entries = [None, None]
            entries[port_next - 1] = (instance.ports.port(nxt, v), e_next)
            entries[2 - port_next] = (instance.ports.port(prev, v), e_prev)
            labels[v] = ("path", 1, 9, 1, entries[0], entries[1])
        from dataclasses import replace

        inst = replace(instance, id_bound=9).with_labeling(Labeling(labels))
        result = lcp.check(inst)
        assert not result.unanimous


class TestDecoderConditions:
    def test_endpoint_id_check(self, lcp):
        g = path_graph(3)
        instance = Instance.build(g)
        labeling = lcp.prover.certify(instance)
        # Tamper the id pair everywhere: endpoints' real ids no longer match.
        tampered = Labeling({
            v: (lambda c: (c[0], 7, 8, *c[3:]) if c[0] == "path" else (c[0], 7, 8))(labeling.of(v))
            for v in g.nodes
        })
        from dataclasses import replace

        inst = replace(instance, id_bound=9).with_labeling(tampered)
        result = lcp.check(inst)
        assert 0 in result.rejecting  # endpoint: Id(u) not in {7, 8}

    def test_path_number_mismatch_rejected(self, lcp):
        g = path_graph(4)
        instance = Instance.build(g)
        labeling = lcp.prover.certify(instance)
        cert = labeling.of(1)
        tampered = labeling.with_label(1, (cert[0], cert[1], cert[2], 5, cert[4], cert[5]))
        result = lcp.check(instance.with_labeling(tampered))
        assert 2 in result.rejecting  # type-2 neighbor sees a different #

    def test_color_flip_rejected(self, lcp):
        g = cycle_graph(6)
        instance = Instance.build(g)
        labeling = lcp.prover.certify(instance)
        v = next(v for v in g.nodes if labeling.of(v)[0] == "path")
        kind, id1, id2, num, (p1, c1), (p2, c2) = labeling.of(v)
        tampered = labeling.with_label(v, (kind, id1, id2, num, (p1, 1 - c1), (p2, c2)))
        result = lcp.check(instance.with_labeling(tampered))
        assert not result.unanimous

    def test_malformed_rejected(self, lcp):
        g = path_graph(3)
        result = lcp.check(Instance.build(g).with_labeling(Labeling.uniform(g, "x")))
        assert result.rejecting == {0, 1, 2}

    def test_equal_entry_colors_malformed(self, lcp):
        assert lcp.decoder.decide.__self__ is lcp.decoder  # sanity
        from repro.core.watermelon import _parse

        assert _parse(("path", 1, 2, 1, (1, 0), (2, 0))) is None  # c1 == c2
        assert _parse(("end", 2, 1)) is None  # ids not increasing
        assert _parse(("path", 1, 2, 1, (1, 0), (2, 1))) is not None


class TestHiding:
    def test_id1_id2_witnesses(self, lcp):
        inst1, inst2 = watermelon_hiding_witnesses()
        assert lcp.check(inst1).unanimous
        assert lcp.check(inst2).unanimous
        # The reflection gluing: u1 views equal; u4@I1 == u5@I2.
        assert extract_view(inst1, 0, 1) == extract_view(inst2, 0, 1)
        assert extract_view(inst1, 3, 1) == extract_view(inst2, 4, 1)
        verdict = hiding_verdict_from_instances(lcp, [inst1, inst2])
        assert verdict.hiding is True
        assert (len(verdict.odd_cycle) - 1) % 2 == 1

    def test_certificate_bits_logarithmic(self, lcp):
        cert = path_certificate(1, 2, 1, (1, 0), (2, 1))
        assert lcp.certificate_bits(cert, 1 << 10, 1 << 10) < 200
        end = endpoint_certificate(1, 2)
        assert lcp.certificate_bits(end, 64, 64) >= 2 * 7 - 2
