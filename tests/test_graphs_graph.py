"""Unit tests for the core Graph type."""

import pytest

from repro.errors import EdgeNotFoundError, GraphError, NodeNotFoundError
from repro.graphs import Graph, edge_key


class TestConstruction:
    def test_empty(self):
        g = Graph()
        assert g.order == 0
        assert g.size == 0
        assert g.nodes == []
        assert g.edges == []

    def test_from_edges_infers_nodes(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        assert set(g.nodes) == {0, 1, 2}
        assert g.size == 2

    def test_add_node_idempotent(self):
        g = Graph()
        g.add_node(5)
        g.add_node(5)
        assert g.order == 1

    def test_add_edge_adds_endpoints(self):
        g = Graph()
        g.add_edge("a", "b")
        assert g.has_node("a") and g.has_node("b")
        assert g.has_edge("a", "b")
        assert g.has_edge("b", "a")

    def test_duplicate_edge_kept_once(self):
        g = Graph.from_edges([(0, 1), (1, 0), (0, 1)])
        assert g.size == 1

    def test_loop_allowed(self):
        g = Graph.from_edges([(0, 0)])
        assert g.has_loop()
        assert g.has_edge(0, 0)
        assert g.size == 1


class TestQueries:
    def test_neighbors_fresh_set(self):
        g = Graph.from_edges([(0, 1)])
        nbrs = g.neighbors(0)
        nbrs.add(99)
        assert g.neighbors(0) == {1}

    def test_neighbors_missing_node(self):
        g = Graph()
        with pytest.raises(NodeNotFoundError):
            g.neighbors(0)

    def test_degree_and_extremes(self):
        g = Graph.from_edges([(0, 1), (0, 2), (0, 3)])
        assert g.degree(0) == 3
        assert g.degree(1) == 1
        assert g.min_degree() == 1
        assert g.max_degree() == 3

    def test_degree_sequence_sorted(self):
        g = Graph.from_edges([(0, 1), (0, 2)])
        assert g.degree_sequence() == [2, 1, 1]

    def test_min_degree_empty_graph_raises(self):
        with pytest.raises(GraphError):
            Graph().min_degree()

    def test_closed_neighborhood(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        assert g.closed_neighborhood(1) == {0, 1, 2}

    def test_contains_len_iter(self):
        g = Graph.from_edges([(0, 1)])
        assert 0 in g
        assert 2 not in g
        assert len(g) == 2
        assert sorted(g) == [0, 1]


class TestMutation:
    def test_remove_edge(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        g.remove_edge(0, 1)
        assert not g.has_edge(0, 1)
        assert g.has_node(0)

    def test_remove_missing_edge_raises(self):
        g = Graph.from_edges([(0, 1)])
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge(0, 2)

    def test_remove_node_cleans_incident_edges(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        g.remove_node(1)
        assert not g.has_node(1)
        assert g.neighbors(0) == set()
        assert g.size == 0

    def test_remove_missing_node_raises(self):
        with pytest.raises(NodeNotFoundError):
            Graph().remove_node(3)


class TestDerivedGraphs:
    def test_copy_is_independent(self):
        g = Graph.from_edges([(0, 1)])
        h = g.copy()
        h.add_edge(1, 2)
        assert not g.has_node(2)

    def test_induced_subgraph(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 0), (2, 3)])
        h = g.induced_subgraph({0, 1, 2})
        assert h.order == 3
        assert h.size == 3
        assert not h.has_node(3)

    def test_induced_subgraph_missing_node_raises(self):
        g = Graph.from_edges([(0, 1)])
        with pytest.raises(NodeNotFoundError):
            g.induced_subgraph({0, 9})

    def test_subtract_closed_neighborhood(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 4)])
        h = g.subtract_closed_neighborhood(2)
        assert set(h.nodes) == {0, 4}
        assert h.size == 0

    def test_disjoint_union(self):
        g = Graph.from_edges([(0, 1)])
        h = Graph.from_edges([(0, 1)])
        u = g.disjoint_union(h)
        assert u.order == 4
        assert u.size == 2
        assert u.has_edge((0, 0), (0, 1))
        assert u.has_edge((1, 0), (1, 1))

    def test_relabeled(self):
        g = Graph.from_edges([(0, 1)])
        h = g.relabeled({0: "x", 1: "y"})
        assert h.has_edge("x", "y")

    def test_relabeled_requires_injective(self):
        g = Graph.from_edges([(0, 1)])
        with pytest.raises(GraphError):
            g.relabeled({0: "x", 1: "x"})

    def test_relabeled_requires_total(self):
        g = Graph.from_edges([(0, 1)])
        with pytest.raises(GraphError):
            g.relabeled({0: "x"})

    def test_to_integer_nodes(self):
        g = Graph.from_edges([("a", "b"), ("b", "c")])
        h, mapping = g.to_integer_nodes()
        assert set(h.nodes) == {0, 1, 2}
        assert h.size == 2
        assert mapping["a"] == 0


class TestEquality:
    def test_equal_graphs(self):
        assert Graph.from_edges([(0, 1)]) == Graph.from_edges([(1, 0)])

    def test_unequal_graphs(self):
        assert Graph.from_edges([(0, 1)]) != Graph.from_edges([(0, 2)])

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Graph())


def test_edge_key_canonical():
    assert edge_key(3, 1) == (1, 3)
    assert edge_key(1, 3) == (1, 3)
    assert edge_key("b", "a") == ("a", "b")
