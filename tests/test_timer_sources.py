"""Timer-source discipline: every duration, rate, and EMA in the tree
derives from ``time.perf_counter()``; ``time.time()`` is reserved for
wall-clock *metadata* (creation stamps, event timestamps, file ages).

A wall-clock read in duration math is a latent bug — NTP steps and
suspend/resume corrupt measured intervals — so this test enumerates the
``time.time()`` call sites and pins them to an explicit allowlist of
metadata-only locations.  Adding a new ``time.time()`` call means either
using ``perf_counter`` (if you are measuring) or extending the allowlist
here (if you are stamping).
"""

from __future__ import annotations

import re
from pathlib import Path

import repro

SRC_ROOT = Path(repro.__file__).resolve().parent

#: file (relative to the repro package) -> substrings that must appear
#: on every allowed ``time.time()`` line in that file.  All are metadata
#: stamps, never interval endpoints.
ALLOWED_WALL_CLOCK = {
    "obs/report.py": ("created",),
    "obs/trace.py": ("start_time",),
    "obs/progress.py": ("ts",),
    "obs/sentinel.py": ("created",),
    "campaign/frontier.py": ("created",),
    "cli.py": ("now",),  # report-list age display, compared to mtimes
    # Shard-queue lease stamps are read by *other hosts*: wall clock is
    # the only shared clock, so claims stamp and age-check with it.
    "shard/queue.py": ("ts",),
}

_CALL = re.compile(r"\btime\.time\(\)")


def _code_lines(path: Path):
    """(lineno, line) pairs with comments and docstring prose excluded
    well enough for this audit: we only flag lines that literally call
    ``time.time()`` outside a comment."""
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        stripped = line.split("#", 1)[0]
        if _CALL.search(stripped):
            yield lineno, line.strip()


def test_wall_clock_only_at_metadata_sites():
    offenders = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        rel = path.relative_to(SRC_ROOT).as_posix()
        allowed = ALLOWED_WALL_CLOCK.get(rel)
        for lineno, line in _code_lines(path):
            # Prose mentions inside docstrings that do not execute are
            # still matched by the regex; only flag actual assignments /
            # expressions (heuristic: the call plus surrounding code).
            if "``" in line:
                continue
            if allowed is None or not any(marker in line for marker in allowed):
                offenders.append(f"{rel}:{lineno}: {line}")
    assert not offenders, (
        "time.time() used outside the metadata allowlist "
        "(use time.perf_counter() for durations):\n" + "\n".join(offenders)
    )


def test_durations_use_perf_counter():
    """The measuring modules must reference perf_counter — a rename or
    refactor that silently drops monotonic timing fails loudly here."""
    for rel in ("engine/core.py", "obs/trace.py", "obs/progress.py",
                "campaign/driver.py", "experiments/runner.py"):
        text = (SRC_ROOT / rel).read_text(encoding="utf-8")
        assert "perf_counter" in text, f"{rel} lost its monotonic clock"
