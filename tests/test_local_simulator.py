"""Tests for the message-passing simulator: exact equivalence with direct
view extraction, message accounting, and fault injection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EvenCycleLCP, RevealingLCP
from repro.graphs import (
    cycle_graph,
    grid_graph,
    path_graph,
    random_graph,
    spider_graph,
    star_graph,
)
from repro.graphs.traversal import is_connected
from repro.local import (
    ERASED,
    Instance,
    Labeling,
    SyncSimulator,
    extract_all_views,
    run_algorithm_distributed,
    simulate_views,
)


class TestEquivalence:
    @pytest.mark.parametrize("radius", [1, 2, 3])
    @pytest.mark.parametrize(
        "graph_fn",
        [lambda: path_graph(7), lambda: cycle_graph(9), lambda: grid_graph(3, 3),
         lambda: spider_graph(3, 2), lambda: star_graph(4)],
    )
    def test_simulated_views_equal_direct(self, graph_fn, radius):
        instance = Instance.build(graph_fn())
        simulated, _stats = simulate_views(instance, radius)
        assert simulated == extract_all_views(instance, radius)

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(3, 8), p=st.floats(0.3, 0.8), seed=st.integers(0, 10**5),
           radius=st.integers(1, 3))
    def test_equivalence_random_graphs(self, n, p, seed, radius):
        g = random_graph(n, p, seed)
        if not is_connected(g):
            return
        instance = Instance.build(g)
        simulated, _ = simulate_views(instance, radius)
        assert simulated == extract_all_views(instance, radius)

    def test_labeled_instance(self):
        g = path_graph(5)
        instance = Instance.build(g, labeling=Labeling({v: f"L{v}" for v in g.nodes}))
        simulated, _ = simulate_views(instance, 2)
        assert simulated == extract_all_views(instance, 2)

    def test_anonymous_views(self):
        instance = Instance.build(cycle_graph(6))
        simulated, _ = simulate_views(instance, 1, include_ids=False)
        assert simulated == extract_all_views(instance, 1, include_ids=False)
        assert all(view.is_anonymous for view in simulated.values())

    def test_invisible_far_edge_in_simulation(self):
        """An edge between two distance-r nodes needs r+1 rounds to reach
        the center — the simulator must NOT show it at round r."""
        instance = Instance.build(cycle_graph(5))
        simulated, _ = simulate_views(instance, 2)
        assert len(simulated[0].edges) == 4


class TestAccounting:
    def test_messages_per_round(self):
        g = cycle_graph(8)
        instance = Instance.build(g)
        _views, stats = simulate_views(instance, 3)
        assert len(stats.rounds) == 3
        # Every round sends one message per directed edge.
        for round_stats in stats.rounds:
            assert round_stats.messages == 2 * g.size

    def test_knowledge_grows(self):
        instance = Instance.build(path_graph(8))
        _views, stats = simulate_views(instance, 3)
        units = [r.record_units for r in stats.rounds]
        assert units[0] < units[1] < units[2]


class TestFaultInjection:
    def test_erased_label_visible_to_neighbors(self):
        lcp = RevealingLCP()
        g = path_graph(5)
        instance = Instance.build(g)
        labeled = instance.with_labeling(lcp.prover.certify(instance))
        views, _ = simulate_views(labeled, 1, include_ids=False, erased_nodes={2})
        assert views[2].center_label == ERASED
        assert ERASED in [
            views[1].label_of(w) for w in views[1].neighbors_in_view(0)
        ]

    def test_erasure_trips_decoder(self):
        lcp = EvenCycleLCP()
        g = cycle_graph(6)
        instance = Instance.build(g)
        labeled = instance.with_labeling(lcp.prover.certify(instance))
        views, _ = simulate_views(labeled, 1, include_ids=False, erased_nodes={0})
        votes = {v: lcp.decoder.decide(view) for v, view in views.items()}
        assert not votes[0]
        assert not votes[1] and not votes[5]  # neighbors see the erasure
        assert votes[3]  # far nodes unaffected


class TestRunDistributed:
    def test_matches_direct_run(self):
        lcp = EvenCycleLCP()
        g = cycle_graph(8)
        instance = Instance.build(g)
        labeled = instance.with_labeling(lcp.prover.certify(instance))
        distributed, stats = run_algorithm_distributed(lcp.decoder, labeled)
        assert distributed == lcp.decoder.run_on(labeled)
        assert stats.total_messages == 2 * g.size  # one round

    def test_simulator_object_reusable(self):
        instance = Instance.build(path_graph(6))
        sim = SyncSimulator(instance)
        sim.run(2)
        v1 = sim.reconstruct_view(3, 1)
        v2 = sim.reconstruct_view(3, 2)
        assert v1.size < v2.size
