"""The benchmark-regression sentinel: history persistence, trailing-
median comparison, threshold and min-sample guards, and the CLI exit
contract of ``repro bench check``.
"""

from __future__ import annotations

import json

import pytest

import repro.cli as cli
from repro.obs import (
    DEFAULT_MIN_SAMPLES,
    DEFAULT_THRESHOLD,
    SENTINEL_SCHEMA,
    append_history,
    check_regressions,
    extract_rows,
    history_path,
    load_history,
    render_verdicts,
    verdict_block,
)


@pytest.fixture()
def runs_dir(tmp_path, monkeypatch):
    target = tmp_path / "runs"
    monkeypatch.setenv("REPRO_RUNS_DIR", str(target))
    return target


def _payload(**overrides) -> dict:
    base = {
        "benchmark": "hiding-sweep",
        "cpu_count": 4,
        "rows": [
            {"regime": "cold", "scheme": "even-cycle", "n": 6, "seconds_best": 0.5,
             "seconds_mean": 0.6},
            {"regime": "warm", "scheme": "even-cycle", "n": 6, "seconds_best": 0.01},
        ],
        "kernel": {
            "rows": [
                {"regime": "batch", "scheme": "even-cycle", "n": 6,
                 "seconds_best": 0.2},
            ],
            "note": "named section",
        },
        "summary": {"not_rows": True},
    }
    base.update(overrides)
    return base


def _history_rows(seconds: list[float], **key) -> list[dict]:
    base_key = dict(
        benchmark="hiding-sweep", section="main", regime="cold",
        scheme="even-cycle", n=6, cpu_count=4,
    )
    base_key.update(key)
    return [dict(base_key, seconds_best=s, schema=SENTINEL_SCHEMA) for s in seconds]


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------


def test_extract_rows_flattens_sections_and_keys():
    rows = extract_rows(_payload(), created=123.0)
    assert len(rows) == 3  # two main rows + one kernel row; summary skipped
    sections = sorted({row["section"] for row in rows})
    assert sections == ["kernel", "main"]
    for row in rows:
        assert row["schema"] == SENTINEL_SCHEMA
        assert row["created"] == 123.0
        assert row["cpu_count"] == 4
        assert isinstance(row["seconds_best"], float)


def test_extract_rows_skips_non_timing_rows():
    payload = _payload(rows=[{"regime": "parity", "match": True}])
    rows = extract_rows(payload)
    assert all(row["section"] != "main" for row in rows)


# ----------------------------------------------------------------------
# History file
# ----------------------------------------------------------------------


def test_history_roundtrip_and_append(runs_dir):
    assert load_history() == []
    first = extract_rows(_payload(), created=1.0)
    file = append_history(first)
    assert file == history_path() == runs_dir / "bench_history.jsonl"
    append_history(extract_rows(_payload(), created=2.0))
    records = load_history()
    assert len(records) == 6
    assert [r["created"] for r in records[:3]] == [1.0, 1.0, 1.0]


def test_load_history_skips_torn_lines(runs_dir):
    file = history_path()
    file.parent.mkdir(parents=True)
    good = json.dumps({"seconds_best": 0.5, "benchmark": "b"})
    file.write_text(good + "\n" + '{"torn": tr' + "\n" + "\n" + good + "\n")
    assert len(load_history()) == 2


def test_history_path_override(tmp_path):
    override = tmp_path / "elsewhere.jsonl"
    assert history_path(override) == override


# ----------------------------------------------------------------------
# check_regressions
# ----------------------------------------------------------------------


def test_artificially_slowed_row_is_flagged():
    history = _history_rows([0.50, 0.52, 0.48, 0.51])
    fresh = _history_rows([0.50 * 2.0])  # injected 2x slowdown
    (verdict,) = check_regressions(fresh, history)
    assert verdict["status"] == "regression"
    assert verdict["ratio"] > DEFAULT_THRESHOLD
    assert verdict["samples"] == 4
    assert verdict["baseline_median"] == pytest.approx(0.505, abs=1e-6)


def test_steady_trajectory_passes():
    history = _history_rows([0.50, 0.52, 0.48, 0.51])
    fresh = _history_rows([0.53])  # within noise, below 1.4x
    (verdict,) = check_regressions(fresh, history)
    assert verdict["status"] == "ok"


def test_speedup_is_not_a_regression():
    history = _history_rows([0.50, 0.52, 0.48])
    (verdict,) = check_regressions(_history_rows([0.1]), history)
    assert verdict["status"] == "ok"


def test_new_and_insufficient_history_statuses():
    fresh = _history_rows([0.5])
    (verdict,) = check_regressions(fresh, [])
    assert verdict["status"] == "new"
    history = _history_rows([0.5] * (DEFAULT_MIN_SAMPLES - 1))
    (verdict,) = check_regressions(fresh, history)
    assert verdict["status"] == "insufficient_history"


def test_trailing_window_ages_out_old_baseline():
    # Nine recent fast samples push the single ancient slow one out of
    # the trailing window entirely.
    history = _history_rows([5.0] + [0.5] * 9)
    (verdict,) = check_regressions(_history_rows([0.55]), history)
    assert verdict["status"] == "ok"
    assert verdict["baseline_median"] == pytest.approx(0.5)


def test_different_cpu_count_is_a_different_series():
    history = _history_rows([0.5, 0.5, 0.5], cpu_count=16)
    (verdict,) = check_regressions(_history_rows([5.0], cpu_count=2), history)
    assert verdict["status"] == "new"  # no shared baseline across machines


def test_zero_baseline_guard():
    history = _history_rows([0.0, 0.0, 0.0])
    (verdict,) = check_regressions(_history_rows([0.1]), history)
    assert verdict["status"] == "regression"
    assert verdict["ratio"] == float("inf")


# ----------------------------------------------------------------------
# Verdict block + rendering
# ----------------------------------------------------------------------


def test_verdict_block_shape_and_status():
    history = _history_rows([0.5, 0.5, 0.5])
    block = verdict_block(_history_rows([2.0]), history)
    assert block["schema"] == SENTINEL_SCHEMA
    assert block["threshold"] == DEFAULT_THRESHOLD
    assert block["status"] == "regression"
    assert block["counts"] == {"regression": 1}
    json.dumps(block)  # embeddable in a BENCH payload

    healthy = verdict_block(_history_rows([0.5]), history)
    assert healthy["status"] == "ok"
    assert healthy["counts"] == {"ok": 1}


def test_render_verdicts_hides_healthy_unless_verbose():
    history = _history_rows([0.5, 0.5, 0.5])
    verdicts = check_regressions(_history_rows([0.5]), history)
    short = render_verdicts(verdicts)
    assert short.startswith("bench sentinel: 1 rows checked")
    assert "ok" in short and "\n" not in short
    verbose = render_verdicts(verdicts, verbose=True)
    assert "even-cycle" in verbose
    assert render_verdicts([]) == "bench sentinel: no timing rows to check"


# ----------------------------------------------------------------------
# CLI: repro bench check
# ----------------------------------------------------------------------


def _write_payload(path, payload):
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


def test_bench_check_flags_injected_slowdown(tmp_path, runs_dir, capsys):
    append_history(extract_rows(_payload(), created=1.0))
    append_history(extract_rows(_payload(), created=2.0))
    append_history(extract_rows(_payload(), created=3.0))
    slowed = _payload()
    slowed["rows"][0]["seconds_best"] = 0.5 * 3  # inject the slowdown
    bench = _write_payload(tmp_path / "BENCH_hiding.json", slowed)
    rc = cli.main(["bench", "check", str(bench)])
    out = capsys.readouterr().out
    assert rc == 1
    assert "regression" in out


def test_bench_check_passes_real_trajectory(tmp_path, runs_dir, capsys):
    for created in (1.0, 2.0, 3.0):
        append_history(extract_rows(_payload(), created=created))
    bench = _write_payload(tmp_path / "BENCH_hiding.json", _payload())
    rc = cli.main(["bench", "check", str(bench)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "ok=3" in out


def test_bench_check_advisory_never_fails(tmp_path, runs_dir, capsys):
    append_history(extract_rows(_payload(), created=1.0))
    append_history(extract_rows(_payload(), created=2.0))
    append_history(extract_rows(_payload(), created=3.0))
    slowed = _payload()
    slowed["rows"][0]["seconds_best"] = 50.0
    bench = _write_payload(tmp_path / "BENCH_hiding.json", slowed)
    rc = cli.main(["bench", "check", "--advisory", str(bench)])
    assert rc == 0
    assert "advisory" in capsys.readouterr().err


def test_bench_check_custom_history_and_threshold(tmp_path, capsys):
    history = tmp_path / "history.jsonl"
    append_history(extract_rows(_payload(), created=1.0), path=history)
    append_history(extract_rows(_payload(), created=2.0), path=history)
    append_history(extract_rows(_payload(), created=3.0), path=history)
    slowed = _payload()
    slowed["rows"][0]["seconds_best"] = 0.5 * 1.2  # below default 1.4x
    bench = _write_payload(tmp_path / "BENCH_hiding.json", slowed)
    assert cli.main(
        ["bench", "check", str(bench), "--history", str(history)]
    ) == 0
    capsys.readouterr()
    assert cli.main(
        ["bench", "check", str(bench), "--history", str(history),
         "--threshold", "1.1"]
    ) == 1


def test_bench_check_requires_a_payload(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)  # no BENCH_*.json anywhere
    with pytest.raises(SystemExit):
        cli.main(["bench", "check"])
