"""The observability layer: tracer, metrics, run reports, logging, and
their wiring through the hiding-decision engine.

The span-tree integrity tests under ``workers > 1`` pin the process-pool
merge contract: every worker span ends up with a parent in the merged
tree, and the traced parallel decision is byte-identical to the serial
one.
"""

from __future__ import annotations

import json
import logging

import pytest

from repro.core import DegreeOneLCP
from repro.engine import ExecutionPlan, RunContext, clear_engine_state, decide_hiding
from repro.engine.verdict import Provenance
from repro.obs import (
    NULL_TRACER,
    SPAN_FIELDS,
    MetricsRegistry,
    RunReport,
    Tracer,
    diff_reports,
    format_seconds,
    render_diff,
    render_span_tree,
    setup_logging,
    span_tree,
    tree_coverage,
    validate_report,
    worker_span,
)
from repro.perf import PerfStats


@pytest.fixture(autouse=True)
def _fresh_engine_state():
    clear_engine_state()
    yield
    clear_engine_state()


@pytest.fixture()
def runs_dir(tmp_path, monkeypatch):
    target = tmp_path / "runs"
    monkeypatch.setenv("REPRO_RUNS_DIR", str(target))
    return target


def _plan(**overrides) -> ExecutionPlan:
    base = dict(
        backend="streaming", warm_start=False, disk_cache=False, memory_cache=False
    )
    base.update(overrides)
    return ExecutionPlan(**base)


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------


def test_spans_nest_and_record_attributes():
    tracer = Tracer()
    with tracer.span("root", kind="test") as root:
        with tracer.span("child") as child:
            child.set_attribute("x", 1)
        root.set_attributes(y=2)
    records = tracer.finished_spans()
    assert [r["name"] for r in records] == ["child", "root"]
    by_name = {r["name"]: r for r in records}
    assert by_name["child"]["parent_id"] == by_name["root"]["span_id"]
    assert by_name["root"]["parent_id"] is None
    assert by_name["root"]["attributes"] == {"kind": "test", "y": 2}
    assert by_name["child"]["attributes"] == {"x": 1}
    assert all(r["trace_id"] == tracer.trace_id for r in records)
    assert all(set(SPAN_FIELDS) <= set(r) for r in records)


def test_span_error_status_propagates():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("boom"):
            raise RuntimeError("x")
    (record,) = tracer.finished_spans()
    assert record["status"] == "error"
    assert record["duration_s"] >= 0.0


def test_span_tree_and_coverage():
    tracer = Tracer()
    with tracer.span("root"):
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
    roots = span_tree(tracer.finished_spans())
    assert len(roots) == 1
    assert [c["name"] for c in roots[0]["children"]] == ["a", "b"]
    assert 0.0 <= tree_coverage(tracer.finished_spans()) <= 1.0
    rendered = render_span_tree(tracer.finished_spans())
    assert "root" in rendered and "  a" in rendered


def test_jsonl_export_round_trips(tmp_path):
    tracer = Tracer()
    with tracer.span("root", n=3):
        pass
    path = tracer.export_jsonl(tmp_path / "spans.jsonl")
    lines = path.read_text().splitlines()
    assert len(lines) == 1
    record = json.loads(lines[0])
    assert record["name"] == "root"
    assert record["attributes"] == {"n": 3}


def test_null_tracer_records_nothing():
    assert NULL_TRACER.active is False
    with NULL_TRACER.span("anything", x=1) as span:
        span.set_attribute("y", 2)
        span.set_attributes(z=3)
    NULL_TRACER.adopt([{"span_id": "x", "parent_id": None}])
    assert NULL_TRACER.finished_spans() == []
    assert NULL_TRACER.trace_id is None


def test_adopt_reparents_worker_records():
    tracer = Tracer()
    records: list = []
    with worker_span("worker:scan-chunk", records, worker_pid=123, chunk_index=0):
        pass
    with tracer.span("build") as build:
        tracer.adopt(records, parent=build)
    spans = tracer.finished_spans()
    by_name = {r["name"]: r for r in spans}
    worker = by_name["worker:scan-chunk"]
    assert worker["parent_id"] == by_name["build"]["span_id"]
    assert worker["trace_id"] == tracer.trace_id
    assert worker["attributes"]["worker_pid"] == 123


def test_worker_span_none_records_is_a_noop():
    with worker_span("w", None, x=1) as span:
        span.set_attribute("y", 2)  # NULL_SPAN: silently dropped


# ----------------------------------------------------------------------
# Metrics + the PerfStats bridge
# ----------------------------------------------------------------------


def test_metrics_registry_instruments():
    registry = MetricsRegistry()
    registry.incr("hits")
    registry.incr("hits", 4)
    registry.set_gauge("views", 17)
    registry.observe("latency_seconds", 0.004)
    registry.observe("latency_seconds", 0.004)
    dump = registry.as_dict()
    assert dump["counters"] == {"hits": 5}
    assert dump["gauges"] == {"views": 17}
    hist = dump["histograms"]["latency_seconds"]
    assert hist["count"] == 2
    assert hist["sum"] == pytest.approx(0.008)
    assert sum(hist["counts"]) == 2


def test_metrics_merge_accumulates():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.incr("x", 2)
    b.incr("x", 3)
    b.set_gauge("g", 9)
    b.observe("h", 0.01)
    a.merge(b)
    dump = a.as_dict()
    assert dump["counters"]["x"] == 5
    assert dump["gauges"]["g"] == 9
    assert dump["histograms"]["h"]["count"] == 1


def test_metrics_merge_same_buckets_adds_positionally():
    a, b = MetricsRegistry(), MetricsRegistry()
    buckets = (0.01, 0.1, 1.0)
    for value in (0.005, 0.05):
        a.observe("h", value, buckets=buckets)
    for value in (0.05, 5.0):
        b.observe("h", value, buckets=buckets)
    a.merge(b)
    hist = a.as_dict()["histograms"]["h"]
    # Per-bucket counts add positionally: [<=0.01, <=0.1, <=1.0, overflow]
    assert hist["counts"] == [1, 2, 0, 1]
    assert hist["count"] == 4 == sum(hist["counts"])
    assert hist["sum"] == pytest.approx(0.005 + 0.05 + 0.05 + 5.0)


def test_metrics_merge_mismatched_buckets_replays_mean():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.observe("h", 0.05, buckets=(0.01, 0.1, 1.0))
    b.observe("h", 0.2, buckets=(0.5,))  # different boundaries
    b.observe("h", 0.4)
    a.merge(b)
    hist = a.as_dict()["histograms"]["h"]
    # Foreign observations are replayed at their mean (0.3), NOT added
    # positionally — boundaries differ, so position has no meaning.
    assert hist["buckets"] == [0.01, 0.1, 1.0]  # mine win
    assert hist["count"] == 3
    assert hist["counts"] == [0, 1, 2, 0]  # 0.05 then 0.3 twice
    # sum reflects the replayed mean, preserving the total exactly.
    assert hist["sum"] == pytest.approx(0.05 + 0.2 + 0.4)
    assert sum(hist["counts"]) == hist["count"]


def test_metrics_merge_empty_mismatched_histogram_is_noop():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.observe("h", 0.05, buckets=(0.01, 0.1))
    b.histogram("h", buckets=(9.9,))  # created but never observed
    a.merge(b)
    hist = a.as_dict()["histograms"]["h"]
    assert hist["count"] == 1
    assert hist["buckets"] == [0.01, 0.1]


def test_perfstats_bind_metrics_mirrors_counters_and_timers():
    registry = MetricsRegistry()
    stats = PerfStats().bind_metrics(registry)
    stats.incr("instances_scanned", 7)
    with stats.time_stage("sweep"):
        pass
    assert registry.as_dict()["counters"]["instances_scanned"] == 7
    assert registry.as_dict()["histograms"]["sweep_seconds"]["count"] == 1
    # merge() goes through incr/add_time, so worker-local dicts mirror too
    stats.merge({"counters": {"instances_scanned": 3}, "timers": {"sweep": 0.1}})
    assert stats.get("instances_scanned") == 10
    assert registry.as_dict()["counters"]["instances_scanned"] == 10
    assert registry.as_dict()["histograms"]["sweep_seconds"]["count"] == 2


# ----------------------------------------------------------------------
# Honest wall-time formatting
# ----------------------------------------------------------------------


def test_format_seconds_across_magnitudes():
    assert format_seconds(2.5) == "2.50 s"
    assert format_seconds(0.0123) == "12.3 ms"
    assert format_seconds(0.0005) == "500 µs"
    assert format_seconds(0.0) == "0 s"


def test_provenance_summary_never_says_zero_point_zero_ms():
    base = dict(
        backend="streaming",
        n=4,
        workers=0,
        early_exit=True,
        instances_scanned=0,
        views=0,
        edges=0,
    )
    instant = Provenance(**base, warm_witness_hit=True, wall_time_s=0.0)
    assert "0.0 ms" not in instant.summary()
    assert "0 s" in instant.summary()
    sub_ms = Provenance(**base, wall_time_s=0.0004)
    assert "0.0 ms" not in sub_ms.summary()
    assert "µs" in sub_ms.summary()


def test_provenance_summary_includes_trace_id():
    p = Provenance(
        backend="streaming",
        n=4,
        workers=0,
        early_exit=True,
        instances_scanned=1,
        views=1,
        edges=0,
        wall_time_s=0.01,
        trace_id="abc123",
    )
    assert "trace abc123" in p.summary()


# ----------------------------------------------------------------------
# Engine wiring: trace_id stamping and span trees
# ----------------------------------------------------------------------


def test_untraced_decision_has_no_trace_id():
    verdict = decide_hiding(DegreeOneLCP(), 3, _plan(), ctx=RunContext.isolated())
    assert verdict.provenance.trace_id is None


def test_traced_decision_is_stamped_and_covered():
    tracer = Tracer()
    ctx = RunContext.observed(tracer)
    verdict = decide_hiding(DegreeOneLCP(), 4, _plan(), ctx=ctx)
    assert verdict.provenance.trace_id == tracer.trace_id
    records = tracer.finished_spans()
    roots = span_tree(records)
    assert len(roots) == 1
    assert roots[0]["name"] == "decide_hiding"
    assert roots[0]["attributes"]["served_by"] == "sweep"
    child_names = {c["name"] for c in roots[0]["children"]}
    assert "backend:streaming" in child_names
    assert tree_coverage(records) >= 0.95
    # the decision landed in the metrics too
    dump = ctx.metrics.as_dict()
    assert dump["counters"]["decisions_total"] == 1
    assert dump["histograms"]["decision_latency_seconds"]["count"] == 1


def test_memo_hit_keeps_original_trace_id():
    tracer = Tracer()
    ctx = RunContext.observed(tracer)
    plan = _plan(memory_cache=True)
    first = decide_hiding(DegreeOneLCP(), 4, plan, ctx=ctx)
    again = decide_hiding(DegreeOneLCP(), 4, plan, ctx=ctx)
    assert again is first  # identity semantics of the memo tier
    assert again.provenance.trace_id == tracer.trace_id


def test_parallel_span_tree_integrity_and_parity():
    """workers=2: every worker span has a parent in the merged tree, and
    the traced parallel decision matches the serial one exactly."""
    lcp = DegreeOneLCP()
    serial = decide_hiding(lcp, 5, _plan(workers=1), ctx=RunContext.isolated())

    tracer = Tracer()
    ctx = RunContext.observed(tracer)
    parallel = decide_hiding(lcp, 5, _plan(workers=2), ctx=ctx)

    assert parallel.decision_fingerprint() == serial.decision_fingerprint()
    assert parallel.witness == serial.witness

    records = tracer.finished_spans()
    ids = {r["span_id"] for r in records}
    workers = [r for r in records if r["name"] == "worker:scan-chunk"]
    assert workers, "parallel sweep recorded no worker spans"
    for record in workers:
        assert record["parent_id"] in ids, "worker span left dangling"
        assert record["trace_id"] == tracer.trace_id
        assert record["attributes"]["worker_pid"]
    replays = [r for r in records if r["name"] == "chunk-replay"]
    assert replays
    # chunks replay in submission order
    indices = sorted(r["attributes"]["chunk_index"] for r in replays)
    assert indices == list(range(len(replays)))
    # the whole tree remains single-rooted and valid per the report gate
    assert len(span_tree(records)) == 1
    report = RunReport.from_run(
        tracer=tracer, metrics=ctx.metrics, stats=ctx.stats,
        verdict=parallel, plan=_plan(workers=2), scheme=lcp.name, n=5,
    )
    assert validate_report(report.payload) == []


# ----------------------------------------------------------------------
# Run reports
# ----------------------------------------------------------------------


def _traced_run(n: int = 4, **plan_overrides):
    tracer = Tracer()
    ctx = RunContext.observed(tracer)
    plan = _plan(**plan_overrides)
    verdict = decide_hiding(DegreeOneLCP(), n, plan, ctx=ctx)
    return RunReport.from_run(
        tracer=tracer,
        metrics=ctx.metrics,
        stats=ctx.stats,
        verdict=verdict,
        plan=plan,
        scheme="DegreeOneLCP",
        n=n,
    )


def test_run_report_validates_and_is_consistent():
    report = _traced_run()
    assert validate_report(report.payload) == []
    assert report.payload["span_coverage"] >= 0.95
    consistency = report.payload["consistency"]
    assert consistency["ok"] is True
    # the metrics counters match provenance exactly on a fresh sweep
    checks = consistency["checks"]
    assert checks["instances_scanned"]["metric"] == checks["instances_scanned"]["provenance"]
    assert checks["views"]["metric"] == checks["views"]["provenance"]
    assert checks["edges"]["metric"] == checks["edges"]["provenance"]
    assert "run report" in report.render()


def test_run_report_write_load_round_trip(runs_dir):
    report = _traced_run()
    canonical = report.write()
    assert canonical.parent == runs_dir
    assert canonical.name == f"{report.digest}.json"
    loaded = RunReport.load(report.digest)
    assert loaded.payload == report.payload
    by_path = RunReport.load(canonical)
    assert by_path.payload == report.payload


def test_identical_plan_runs_diff_clean():
    a = _traced_run()
    clear_engine_state()
    b = _traced_run()
    diff = diff_reports(a, b)
    assert diff["decision_drift"] is False
    assert diff["drift"] == []
    assert "no decision drift" in render_diff(diff)


def test_diff_flags_decision_drift():
    a = _traced_run(n=3)
    b = _traced_run(n=4)
    diff = diff_reports(a, b)
    assert diff["decision_drift"] is True
    assert any("n:" in item for item in diff["drift"])
    assert "DECISION DRIFT" in render_diff(diff)


def test_validate_report_rejects_broken_payloads():
    assert validate_report([]) == ["report payload must be a JSON object"]
    errors = validate_report({"schema": "nope"})
    assert any("schema" in e for e in errors)
    assert any("missing required key" in e for e in errors)
    report = _traced_run()
    payload = json.loads(json.dumps(report.payload))
    payload["spans"][0]["parent_id"] = "bogus"
    assert any("dangling parent" in e for e in validate_report(payload))


# ----------------------------------------------------------------------
# CLI surfacing
# ----------------------------------------------------------------------


def test_cli_hiding_trace_out_end_to_end(tmp_path, runs_dir, capsys):
    from repro.cli import main

    out = tmp_path / "run.json"
    code = main(
        [
            "hiding",
            "--scheme",
            "degree-one",
            "--n",
            "4",
            "--cache-dir",
            str(tmp_path / "cache"),
            "--trace-out",
            str(out),
        ]
    )
    assert code == 0
    printed = capsys.readouterr().out
    assert "report:" in printed and "trace " in printed
    payload = json.loads(out.read_text())
    assert validate_report(payload) == []
    assert payload["span_coverage"] >= 0.95
    assert payload["consistency"]["ok"] is True
    # metrics counters match provenance exactly
    counters = payload["metrics"]["counters"]
    provenance = payload["provenance"]
    assert counters["instances_scanned"] == provenance["instances_scanned"]
    assert counters["stream_views"] == provenance["views"]
    assert counters["stream_edges"] == provenance["edges"]


def test_cli_positional_and_option_scheme_conflict(tmp_path):
    from repro.cli import main

    with pytest.raises(SystemExit):
        main(
            [
                "hiding",
                "degree-one",
                "--scheme",
                "even-cycle",
                "--n",
                "3",
                "--cache-dir",
                str(tmp_path / "cache"),
            ]
        )


def test_cli_report_show_and_diff(tmp_path, runs_dir, capsys):
    from repro.cli import main

    a, b = tmp_path / "a.json", tmp_path / "b.json"
    for out in (a, b):
        clear_engine_state()
        assert (
            main(
                [
                    "hiding",
                    "degree-one",
                    "--n",
                    "4",
                    "--no-disk-cache",
                    "--trace-out",
                    str(out),
                ]
            )
            == 0
        )
    capsys.readouterr()
    assert main(["report", "show", str(a)]) == 0
    assert "run report" in capsys.readouterr().out
    assert main(["report", "validate", str(a)]) == 0
    capsys.readouterr()
    assert main(["report", "diff", str(a), str(b)]) == 0
    assert "no decision drift" in capsys.readouterr().out


def test_cli_report_validate_rejects_garbage(tmp_path, capsys):
    from repro.cli import main

    bad = tmp_path / "bad.json"
    bad.write_text('{"schema": "wrong"}')
    assert main(["report", "validate", str(bad)]) == 1
    assert "INVALID" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Logging
# ----------------------------------------------------------------------


def test_setup_logging_is_idempotent():
    root = setup_logging("info")
    handlers_after_first = list(root.handlers)
    root_again = setup_logging("debug")
    assert root_again is root
    assert list(root.handlers) == handlers_after_first
    assert root.level == logging.DEBUG
    child = logging.getLogger("repro.engine")
    assert child.getEffectiveLevel() == logging.DEBUG
    setup_logging("warning")


def test_get_logger_namespaces_under_repro():
    from repro.obs.logs import get_logger

    assert get_logger("engine").name == "repro.engine"
    assert get_logger("repro.engine").name == "repro.engine"
    assert get_logger("").name == "repro"
