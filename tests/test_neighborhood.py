"""Tests for the accepting neighborhood graph (Section 3) and both
directions of the Lemma 3.2 characterization."""

import pytest

from repro.core import DegreeOneLCP, EvenCycleLCP, RevealingLCP
from repro.graphs import cycle_graph, path_graph, star_graph
from repro.local import Instance
from repro.neighborhood import (
    UNKNOWN_VIEW,
    build_extraction_decoder,
    build_neighborhood_graph,
    hiding_verdict_from_instances,
    hiding_verdict_up_to,
    labeled_yes_instances,
    run_extraction,
    yes_instances_up_to,
)


class TestAViewsEnumeration:
    def test_prover_labelings_enumerated(self):
        lcp = DegreeOneLCP()
        labeled = list(
            labeled_yes_instances(lcp, [path_graph(4)], port_limit=1, id_bound=4)
        )
        # one port assignment kept, 4 prover labelings.
        assert len(labeled) == 4
        assert all(inst.labeling is not None for inst in labeled)

    def test_all_accepted_expands_the_set(self):
        lcp = DegreeOneLCP()
        prover_only = list(
            labeled_yes_instances(lcp, [path_graph(3)], port_limit=1, id_bound=3)
        )
        everything = list(
            labeled_yes_instances(
                lcp, [path_graph(3)], port_limit=1, id_bound=3,
                include_all_accepted_labelings=True,
            )
        )
        assert len(everything) > len(prover_only)
        for inst in everything:
            assert lcp.check(inst).unanimous

    def test_yes_instances_up_to_filters_promise(self):
        lcp = EvenCycleLCP()
        labeled = list(yes_instances_up_to(lcp, 5, port_limit=2))
        assert labeled
        from repro.graphs import is_even_cycle

        assert all(is_even_cycle(inst.graph) for inst in labeled)

    def test_non_yes_graphs_skipped(self):
        lcp = DegreeOneLCP()
        labeled = list(
            labeled_yes_instances(lcp, [cycle_graph(5)], port_limit=1, id_bound=5)
        )
        assert labeled == []


class TestNeighborhoodGraph:
    def test_views_and_edges_recorded(self):
        lcp = DegreeOneLCP()
        labeled = list(
            labeled_yes_instances(lcp, [path_graph(4)], port_limit=1, id_bound=4)
        )
        ngraph = build_neighborhood_graph(lcp, labeled)
        assert ngraph.order > 0
        assert ngraph.size > 0
        assert ngraph.instances_scanned == len(labeled)
        # Provenance: every view has a witness; every edge has one.
        assert set(ngraph.view_witness) == set(range(ngraph.order))
        assert set(ngraph.edge_witness) == ngraph.edges

    def test_anonymous_views_for_anonymous_lcp(self):
        lcp = DegreeOneLCP()
        labeled = list(
            labeled_yes_instances(lcp, [path_graph(3)], port_limit=1, id_bound=3)
        )
        ngraph = build_neighborhood_graph(lcp, labeled)
        assert not ngraph.include_ids
        assert all(view.is_anonymous for view in ngraph.views)

    def test_to_graph_roundtrip(self):
        lcp = RevealingLCP()
        labeled = list(
            labeled_yes_instances(lcp, [path_graph(3)], port_limit=1, id_bound=3)
        )
        ngraph = build_neighborhood_graph(lcp, labeled)
        g = ngraph.to_graph()
        assert g.order == ngraph.order
        assert g.size == ngraph.size

    def test_neighbors_of(self):
        lcp = RevealingLCP()
        labeled = list(
            labeled_yes_instances(lcp, [path_graph(3)], port_limit=1, id_bound=3)
        )
        ngraph = build_neighborhood_graph(lcp, labeled)
        some_view = ngraph.views[0]
        for nbr in ngraph.neighbors_of(some_view):
            assert nbr in ngraph.index


class TestHidingVerdicts:
    def test_hiding_lcp_positive(self):
        verdict = hiding_verdict_up_to(DegreeOneLCP(), 4)
        assert verdict.hiding is True
        assert verdict.odd_cycle is not None
        assert "YES" in verdict.summary()

    def test_non_hiding_exhaustive_negative(self):
        verdict = hiding_verdict_up_to(RevealingLCP(), 4)
        assert verdict.hiding is False
        assert verdict.coloring is not None
        assert "NO" in verdict.summary()

    def test_partial_scan_inconclusive(self):
        lcp = RevealingLCP()
        labeled = list(
            labeled_yes_instances(lcp, [path_graph(3)], port_limit=1, id_bound=3)
        )
        verdict = hiding_verdict_from_instances(lcp, labeled, exhaustive=False)
        assert verdict.hiding is None
        assert "inconclusive" in verdict.summary()

    def test_odd_cycle_views_are_adjacent(self):
        verdict = hiding_verdict_up_to(EvenCycleLCP(), 4)
        assert verdict.hiding is True
        walk = verdict.odd_cycle
        ngraph = verdict.ngraph
        for a, b in zip(walk, walk[1:]):
            i, j = ngraph.index[a], ngraph.index[b]
            key = (i, j) if i <= j else (j, i)
            assert key in ngraph.edges


class TestExtraction:
    @pytest.fixture(scope="class")
    def revealing_setup(self):
        lcp = RevealingLCP()
        verdict = hiding_verdict_up_to(lcp, 4)
        decoder = build_extraction_decoder(verdict.ngraph, 2)
        return lcp, decoder

    def test_extraction_proper_on_covered_instances(self, revealing_setup):
        lcp, decoder = revealing_setup
        assert decoder is not None
        for graph in [path_graph(4), cycle_graph(4), star_graph(3), path_graph(2)]:
            instance = Instance.build(graph, id_bound=4)
            labeling = lcp.prover.certify(instance)
            outcome = run_extraction(decoder, lcp, instance.with_labeling(labeling))
            assert outcome.proper
            assert outcome.correct_fraction == 1.0

    def test_extraction_unknown_view_marker(self, revealing_setup):
        lcp, decoder = revealing_setup
        # A degree-5 center cannot occur in the n<=4 sweep, so its view is
        # unknown to the compiled table.  (Path views, by contrast, are
        # all covered: radius-1 anonymous path views recur in P4/C4.)
        instance = Instance.build(star_graph(5), id_bound=6)
        labeling = lcp.prover.certify(instance)
        outputs = decoder.run_on(instance.with_labeling(labeling))
        assert outputs[0] == UNKNOWN_VIEW

    def test_extraction_requires_accepted_instance(self, revealing_setup):
        lcp, decoder = revealing_setup
        from repro.local import Labeling

        g = path_graph(2)
        bad = Instance.build(g, id_bound=4).with_labeling(Labeling({0: 0, 1: 0}))
        with pytest.raises(ValueError):
            run_extraction(decoder, lcp, bad)

    def test_no_extraction_decoder_for_hiding_lcp(self):
        verdict = hiding_verdict_up_to(DegreeOneLCP(), 4)
        assert build_extraction_decoder(verdict.ngraph, 2) is None

    def test_table_size(self, revealing_setup):
        _lcp, decoder = revealing_setup
        assert decoder.table_size == decoder._table.__len__() > 0


def test_sweep_cache_distinguishes_weakened_decoders():
    """The Lemma 3.1 sweep memo must never conflate a scheme with its
    deliberately weakened variants (their decoder names differ)."""
    from repro.core import DegreeOneLCP

    strict = hiding_verdict_up_to(DegreeOneLCP(), 3)
    weak = hiding_verdict_up_to(DegreeOneLCP(require_common_beta=False), 3)
    assert strict is not weak
    again = hiding_verdict_up_to(DegreeOneLCP(), 3)
    assert again is strict  # memo hit for identical parameters
