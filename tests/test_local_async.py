"""Tests for the asynchronous engine: the synchronizer must make every
delay schedule indistinguishable from the synchronous execution."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EvenCycleLCP
from repro.graphs import cycle_graph, grid_graph, path_graph, random_graph, spider_graph
from repro.graphs.traversal import is_connected
from repro.local import ERASED, Instance, extract_all_views
from repro.local.async_simulator import (
    AsyncSimulationError,
    AsyncSimulator,
    AsyncStats,
    DelaySchedule,
    simulate_views_async,
)


class TestEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("radius", [1, 2, 3])
    def test_matches_sync_on_grid(self, radius, seed):
        instance = Instance.build(grid_graph(3, 3))
        views, _stats = simulate_views_async(instance, radius, seed=seed)
        assert views == extract_all_views(instance, radius)

    @pytest.mark.parametrize("fifo", [False, True])
    def test_fifo_and_non_fifo(self, fifo):
        instance = Instance.build(cycle_graph(9))
        views, _ = simulate_views_async(instance, 2, seed=11, fifo=fifo)
        assert views == extract_all_views(instance, 2)

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(3, 8),
        p=st.floats(0.3, 0.8),
        graph_seed=st.integers(0, 10**5),
        delay_seed=st.integers(0, 10**5),
        radius=st.integers(1, 3),
    )
    def test_any_delay_schedule(self, n, p, graph_seed, delay_seed, radius):
        g = random_graph(n, p, graph_seed)
        if not is_connected(g):
            return
        instance = Instance.build(g)
        views, _ = simulate_views_async(instance, radius, seed=delay_seed)
        assert views == extract_all_views(instance, radius)

    def test_anonymous_run(self):
        instance = Instance.build(spider_graph(3, 2))
        views, _ = simulate_views_async(instance, 2, seed=5, include_ids=False)
        assert views == extract_all_views(instance, 2, include_ids=False)
        assert all(v.is_anonymous for v in views.values())

    def test_decoder_over_async_network(self):
        lcp = EvenCycleLCP()
        instance = Instance.build(cycle_graph(8))
        labeled = instance.with_labeling(lcp.prover.certify(instance))
        views, _ = simulate_views_async(labeled, 1, seed=3, include_ids=False)
        assert all(lcp.decoder.decide(view) for view in views.values())


class TestSynchronizer:
    def test_stats_accounting(self):
        instance = Instance.build(cycle_graph(6))
        _views, stats = simulate_views_async(instance, 3, seed=9)
        assert isinstance(stats, AsyncStats)
        assert stats.messages_sent == 3 * 2 * 6
        assert stats.events_processed == stats.messages_sent
        assert stats.virtual_time_span > 0

    def test_round_skew_observed(self):
        """With wild delays, some node runs ahead of a neighbor — the
        synchronizer's buffering is actually exercised."""
        instance = Instance.build(path_graph(10))
        _views, stats = simulate_views_async(instance, 3, seed=1)
        assert stats.max_round_skew >= 1

    def test_duplicate_delivery_detected(self):
        instance = Instance.build(path_graph(2))
        simulator = AsyncSimulator(instance, DelaySchedule(seed=0))
        simulator.run(1)
        from repro.local.async_simulator import _Event
        from repro.local.messages import NodeRecord

        rogue = _Event(
            time=99.0,
            sequence=999,
            target=1,
            arrival_port=1,
            sender_port=1,
            round_index=1,
            sender_record=NodeRecord(uid=0, ident=1, label=None),
            node_records=frozenset(),
            edge_records=frozenset(),
        )
        with pytest.raises(AsyncSimulationError):
            simulator._deliver(rogue, 1, [])

    def test_zero_rounds_noop(self):
        instance = Instance.build(path_graph(3))
        simulator = AsyncSimulator(instance, DelaySchedule(seed=0))
        simulator.run(0)
        assert simulator.stats.messages_sent == 0


class TestFaults:
    def test_erasure_visible_async(self):
        lcp = EvenCycleLCP()
        instance = Instance.build(cycle_graph(6))
        labeled = instance.with_labeling(lcp.prover.certify(instance))
        views, _ = simulate_views_async(
            labeled, 1, seed=2, include_ids=False, erased_nodes={0}
        )
        assert views[0].center_label == ERASED
        votes = {v: lcp.decoder.decide(view) for v, view in views.items()}
        assert not votes[0] and not votes[1] and not votes[5]


class TestDelaySchedule:
    def test_deterministic_per_seed(self):
        a = DelaySchedule(seed=5)
        b = DelaySchedule(seed=5)
        assert a.delay(0, 1, 0.0) == b.delay(0, 1, 0.0)

    def test_fifo_monotone_per_link(self):
        schedule = DelaySchedule(seed=2, fifo=True)
        arrivals = [schedule.delay(0, 1, now=float(t)) for t in range(20)]
        assert arrivals == sorted(arrivals)

    def test_non_fifo_can_reorder(self):
        schedule = DelaySchedule(seed=3, fifo=False, low=0.1, high=50.0)
        arrivals = [schedule.delay(0, 1, now=float(t)) for t in range(50)]
        assert arrivals != sorted(arrivals)
