"""Benchmarks for the extension experiments: χ(V(D, n)) computation, the
exhaustive decoder sub-universe, the universal O(n²) scheme, and the
asynchronous engine."""

from repro.core import UniversalLCP
from repro.experiments import run_experiment
from repro.graphs import grid_graph, cycle_graph
from repro.graphs.coloring import chromatic_number
from repro.local import Instance
from repro.local.async_simulator import simulate_views_async
from repro.neighborhood import hiding_verdict_up_to


def test_ext_chromatic_experiment(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("ext_chromatic"), rounds=1, iterations=1
    )
    assert result.ok


def test_ext_decoder_universe_experiment(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("ext_decoder_universe"), rounds=1, iterations=1
    )
    assert result.ok


def test_chromatic_number_of_neighborhood_graph(benchmark):
    from repro.core import DegreeOneLCP

    verdict = hiding_verdict_up_to(DegreeOneLCP(), 4)
    graph = verdict.ngraph.to_graph()
    chi = benchmark(lambda: chromatic_number(graph, max_k=6))
    assert chi == 3


def test_universal_prover_grid(benchmark):
    lcp = UniversalLCP()
    instance = Instance.build(grid_graph(4, 6))
    labeling = benchmark(lambda: lcp.prover.certify(instance))
    assert len(labeling.nodes()) == 24


def test_universal_verification_grid(benchmark):
    lcp = UniversalLCP()
    instance = Instance.build(grid_graph(4, 6))
    labeled = instance.with_labeling(lcp.prover.certify(instance))
    result = benchmark(lambda: lcp.check(labeled))
    assert result.unanimous


def test_async_flooding_radius2(benchmark):
    instance = Instance.build(cycle_graph(24))

    def run():
        return simulate_views_async(instance, 2, seed=5)

    views, stats = benchmark(run)
    assert len(views) == 24
    assert stats.events_processed == stats.messages_sent
