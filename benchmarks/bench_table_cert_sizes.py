"""Benchmark for the certificate-size table (Section 1.3's implicit
results table): prover throughput and measured bits across the n-sweep."""

from repro.core import all_lcps
from repro.experiments import run_experiment
from repro.graphs import cycle_graph, path_graph, spider_graph
from repro.local import Instance


def test_tbl_cert_experiment(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("tbl_cert"), rounds=1, iterations=1)
    assert result.ok


def test_certificate_sizes_full_sweep(benchmark):
    """Certify every scheme on its canonical instance and collect the
    per-scheme maximum certificate size — the table's data row."""
    schemes = all_lcps()

    def sweep():
        rows = {}
        for name, lcp in schemes.items():
            graph = cycle_graph(16) if name == "even-cycle" else path_graph(16)
            instance = Instance.build(graph)
            labeling = lcp.prover.certify(instance)
            rows[name] = lcp.labeling_bits(labeling, instance.n, instance.id_bound)
        return rows

    rows = benchmark(sweep)
    assert rows["revealing"] == 1
    assert rows["degree-one"] == 2
    assert rows["even-cycle"] == 4
    assert rows["union"] == 5
    assert rows["watermelon"] > rows["union"]


def test_shatter_certificate_sizes_delta_sweep(benchmark):
    """The Δ² component term of Theorem 1.3's bound."""
    lcp = all_lcps()["shatter"]

    def sweep():
        out = []
        for legs in (3, 6, 9):
            instance = Instance.build(spider_graph(legs, 2))
            labeling = lcp.prover.certify(instance)
            out.append(lcp.labeling_bits(labeling, instance.n, instance.id_bound))
        return out

    bits = benchmark(sweep)
    assert bits[0] < bits[-1]
