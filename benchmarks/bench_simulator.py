"""Benchmark for the model-validation table: flooding simulation vs
direct view extraction, and message-complexity scaling."""

from repro.core import EvenCycleLCP
from repro.experiments import run_experiment
from repro.graphs import cycle_graph, grid_graph
from repro.local import Instance, run_algorithm_distributed, simulate_views


def test_tbl_sim_experiment(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("tbl_sim"), rounds=1, iterations=1)
    assert result.ok


def test_flooding_radius1_grid(benchmark):
    instance = Instance.build(grid_graph(6, 6))
    views, stats = benchmark(lambda: simulate_views(instance, 1))
    assert len(views) == 36
    assert stats.total_messages == 2 * instance.graph.size


def test_flooding_radius3_cycle(benchmark):
    instance = Instance.build(cycle_graph(40))
    views, stats = benchmark(lambda: simulate_views(instance, 3))
    assert len(views) == 40
    assert stats.total_messages == 3 * 2 * 40


def test_distributed_verification_end_to_end(benchmark):
    lcp = EvenCycleLCP()
    instance = Instance.build(cycle_graph(48))
    labeled = instance.with_labeling(lcp.prover.certify(instance))

    def run():
        votes, stats = run_algorithm_distributed(lcp.decoder, labeled)
        return votes

    votes = benchmark(run)
    assert all(votes.values())


def test_tbl_hiding_fraction_experiment(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("tbl_hiding_fraction"), rounds=1, iterations=1
    )
    assert result.ok


def test_tbl_resilience_experiment(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("tbl_resilience"), rounds=1, iterations=1
    )
    assert result.ok


def test_lem62_experiment(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("lem62"), rounds=1, iterations=1)
    assert result.ok
