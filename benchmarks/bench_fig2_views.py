"""Benchmark for Fig. 2: view extraction, canonicalization, and the
invisible-boundary-edge semantics, across radii and graph sizes."""

from repro.experiments import run_experiment
from repro.graphs import cycle_graph, grid_graph
from repro.local import Instance, extract_all_views, extract_view


def test_fig2_experiment(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("fig2"), rounds=1, iterations=1)
    assert result.ok


def test_single_view_extraction_radius2(benchmark):
    instance = Instance.build(grid_graph(6, 6))
    view = benchmark(lambda: extract_view(instance, 14, 2))
    assert view.dist[0] == 0
    assert view.size == 13  # interior diamond of the grid


def test_all_views_radius1_grid(benchmark):
    instance = Instance.build(grid_graph(6, 6))
    views = benchmark(lambda: extract_all_views(instance, 1))
    assert len(views) == 36


def test_all_views_radius3_cycle(benchmark):
    instance = Instance.build(cycle_graph(48))
    views = benchmark(lambda: extract_all_views(instance, 3))
    assert all(view.size == 7 for view in views.values())


def test_view_hashing_throughput(benchmark):
    instance = Instance.build(grid_graph(5, 5))
    views = list(extract_all_views(instance, 2).values())

    def hash_all():
        return len({hash(v) for v in views})

    distinct = benchmark(hash_all)
    assert distinct == 25
