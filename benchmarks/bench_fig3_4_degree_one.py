"""Benchmark for Figs. 3–4 (Lemma 4.1): building the degree-one LCP's
accepting neighborhood graph and finding the odd cycle."""

from repro.core import DegreeOneLCP
from repro.experiments import run_experiment
from repro.experiments.figures import degree_one_witness_instances
from repro.neighborhood import (
    build_neighborhood_graph,
    hiding_verdict_from_instances,
    hiding_verdict_up_to,
)


def test_fig3_4_experiment(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("fig3_4"), rounds=1, iterations=1)
    assert result.ok


def test_witness_neighborhood_graph(benchmark):
    lcp = DegreeOneLCP()
    witnesses = degree_one_witness_instances()

    def build():
        return build_neighborhood_graph(lcp, witnesses)

    ngraph = benchmark(build)
    assert ngraph.order > 20


def test_odd_cycle_detection(benchmark):
    lcp = DegreeOneLCP()
    ngraph = build_neighborhood_graph(lcp, degree_one_witness_instances())
    walk = benchmark(ngraph.find_odd_cycle)
    assert walk is not None
    assert (len(walk) - 1) % 2 == 1


def test_full_lemma31_sweep_n4(benchmark):
    verdict = benchmark.pedantic(
        lambda: hiding_verdict_up_to(DegreeOneLCP(), 4), rounds=1, iterations=1
    )
    assert verdict.hiding is True


def test_witness_verdict(benchmark):
    lcp = DegreeOneLCP()
    witnesses = degree_one_witness_instances()
    verdict = benchmark(lambda: hiding_verdict_from_instances(lcp, witnesses))
    assert verdict.hiding is True
