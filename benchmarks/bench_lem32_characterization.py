"""Benchmark for Lemma 3.2: both directions of the characterization —
odd-cycle witnesses for the hiding schemes, and extraction-decoder
compilation + execution for the revealing baseline."""

from repro.core import RevealingLCP
from repro.experiments import run_experiment
from repro.graphs import cycle_graph, path_graph
from repro.local import Instance
from repro.neighborhood import (
    build_extraction_decoder,
    hiding_verdict_up_to,
    run_extraction,
)


def test_lem32_experiment(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("lem32"), rounds=1, iterations=1)
    assert result.ok


def test_revealing_sweep_and_compile(benchmark):
    def compile_decoder():
        verdict = hiding_verdict_up_to(RevealingLCP(), 4)
        return build_extraction_decoder(verdict.ngraph, 2)

    decoder = benchmark.pedantic(compile_decoder, rounds=1, iterations=1)
    assert decoder is not None


def test_extraction_execution(benchmark):
    lcp = RevealingLCP()
    verdict = hiding_verdict_up_to(lcp, 4)
    decoder = build_extraction_decoder(verdict.ngraph, 2)
    instance = Instance.build(cycle_graph(4), id_bound=4)
    labeled = instance.with_labeling(lcp.prover.certify(instance))
    outcome = benchmark(lambda: run_extraction(decoder, lcp, labeled))
    assert outcome.proper


def test_extraction_table_lookup_throughput(benchmark):
    lcp = RevealingLCP()
    verdict = hiding_verdict_up_to(lcp, 4)
    decoder = build_extraction_decoder(verdict.ngraph, 2)
    instance = Instance.build(path_graph(4), id_bound=4)
    labeled = instance.with_labeling(lcp.prover.certify(instance))
    outputs = benchmark(lambda: decoder.run_on(labeled))
    assert len(outputs) == 4
