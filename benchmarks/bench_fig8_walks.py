"""Benchmark for Fig. 8 (Lemmas 5.4/5.5): escape walks, surgery, and the
odd-walk composition."""

from repro.experiments import run_experiment
from repro.graphs import cycle_graph, theta_graph
from repro.local import Instance
from repro.realizability import (
    debacktrack_odd_cycle,
    escape_walk,
    is_non_backtracking,
    walk_length,
)


def test_fig8_experiment(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("fig8"), rounds=1, iterations=1)
    assert result.ok


def test_escape_walk_cycle(benchmark):
    instance = Instance.build(cycle_graph(40))
    walk = benchmark(lambda: escape_walk(instance, 0, 1, 1))
    assert walk_length(walk) % 2 == 0


def test_escape_walk_theta(benchmark):
    instance = Instance.build(theta_graph(6, 6, 8))
    walk = benchmark(lambda: escape_walk(instance, 0, 2, 1))
    assert walk_length(walk) % 2 == 0


def test_debacktrack_surgery(benchmark):
    instance = Instance.build(theta_graph(4, 4, 6))
    bad = [3, 2, 0, 2, 3]

    def surgery():
        return debacktrack_odd_cycle(instance, list(bad))

    fixed = benchmark(surgery)
    assert is_non_backtracking(fixed)
