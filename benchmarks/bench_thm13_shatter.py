"""Benchmark for Theorem 1.3: the shatter-point scheme end to end."""

from repro.core import ShatterLCP
from repro.experiments import run_experiment
from repro.experiments.theorems import (
    _check_rogue_type1_counterexample,
    shatter_hiding_witnesses,
)
from repro.graphs import grid_graph, path_graph, spider_graph
from repro.local import Instance
from repro.neighborhood import hiding_verdict_from_instances


def test_thm13_experiment(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("thm13"), rounds=1, iterations=1)
    assert result.ok


def test_shatter_prover_long_path(benchmark):
    lcp = ShatterLCP()
    instance = Instance.build(path_graph(40))
    labeling = benchmark(lambda: lcp.prover.certify(instance))
    assert len(labeling.nodes()) == 40


def test_shatter_prover_many_components(benchmark):
    lcp = ShatterLCP()
    instance = Instance.build(spider_graph(6, 2))
    labeling = benchmark(lambda: lcp.prover.certify(instance))
    kinds = {labeling.of(v)[0] for v in instance.graph.nodes}
    assert kinds == {"shatter", "nbr", "comp"}


def test_shatter_verification_grid(benchmark):
    lcp = ShatterLCP()
    instance = Instance.build(grid_graph(3, 8))
    labeled = instance.with_labeling(lcp.prover.certify(instance))
    result = benchmark(lambda: lcp.check(labeled))
    assert result.unanimous


def test_hiding_via_p1_p2(benchmark):
    lcp = ShatterLCP()
    inst1, inst2 = shatter_hiding_witnesses()
    verdict = benchmark(lambda: hiding_verdict_from_instances(lcp, [inst1, inst2]))
    assert verdict.hiding is True


def test_rogue_attack_rejected(benchmark):
    lcp = ShatterLCP()
    broken = benchmark(lambda: _check_rogue_type1_counterexample(lcp))
    assert not broken
