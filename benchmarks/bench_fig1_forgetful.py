"""Benchmark for the Fig. 1 / Lemma 2.1 experiment: r-forgetful checks.

Times the full family sweep (both modes, r in {1, 2}) plus the raw
escape-path search on the largest catalog graphs, asserting the paper's
shape: large cycles pass the escape reading, grids/trees fail at
boundaries, and the literal reading is empty at r = 2.
"""

from repro.experiments import run_experiment
from repro.graphs import cycle_graph, grid_graph, toroidal_grid_graph
from repro.graphs.forgetful import forgetful_report, is_r_forgetful


def test_fig1_experiment(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig1"), rounds=1, iterations=1
    )
    assert result.ok


def test_escape_path_search_cycle(benchmark):
    graph = cycle_graph(40)
    report = benchmark(lambda: forgetful_report(graph, 2))
    assert report.is_forgetful


def test_escape_path_search_torus(benchmark):
    graph = toroidal_grid_graph(6, 6)
    report = benchmark(lambda: forgetful_report(graph, 1))
    assert report.is_forgetful


def test_grid_defect_detection(benchmark):
    graph = grid_graph(6, 6)
    report = benchmark(lambda: forgetful_report(graph, 1))
    assert not report.is_forgetful
    assert report.defect_count > 0


def test_strict_mode_r2_emptiness(benchmark):
    graph = cycle_graph(24)
    verdict = benchmark(lambda: is_r_forgetful(graph, 2, mode="strict"))
    assert verdict is False
