"""Benchmark for Theorems 1.2/6.3: the impossibility dichotomy probe and
its ingredients (adversarial refutation, hiding witness search)."""

from repro.certification import (
    ConstantDecoder,
    EnumerativeLCP,
    ExhaustiveAdversary,
    check_strong_soundness,
)
from repro.experiments import run_experiment
from repro.graphs import complete_graph, cycle_graph, is_bipartite, theta_graph
from repro.neighborhood import build_neighborhood_graph, labeled_yes_instances


def test_thm12_experiment(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("thm12"), rounds=1, iterations=1)
    assert result.ok


def _accept_all():
    return EnumerativeLCP(
        ConstantDecoder(True, anonymous=True), ["c"],
        promise_fn=is_bipartite, name="accept-all",
    )


def test_refute_accept_all(benchmark):
    """The adversarial half of the dichotomy: accept-all is hiding but
    a single odd cycle refutes its strong soundness."""
    lcp = _accept_all()

    def refute():
        return check_strong_soundness(
            lcp, [cycle_graph(5), complete_graph(3)], ExhaustiveAdversary(), port_limit=1
        )

    report = benchmark(refute)
    assert not report.passed


def test_hiding_witness_search_on_theta(benchmark):
    lcp = _accept_all()
    theta = theta_graph(4, 4, 6)
    labeled = list(labeled_yes_instances(lcp, [theta], port_limit=1, id_bound=theta.order))

    def search():
        ngraph = build_neighborhood_graph(lcp, labeled)
        return ngraph.find_odd_cycle()

    walk = benchmark(search)
    assert walk is not None
