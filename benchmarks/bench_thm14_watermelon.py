"""Benchmark for Theorem 1.4: the watermelon scheme end to end."""

from repro.core import WatermelonLCP
from repro.experiments import run_experiment
from repro.experiments.theorems import watermelon_hiding_witnesses
from repro.graphs import watermelon_decomposition, watermelon_graph
from repro.local import Instance
from repro.neighborhood import hiding_verdict_from_instances


def test_thm14_experiment(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("thm14"), rounds=1, iterations=1)
    assert result.ok


def test_watermelon_recognition(benchmark):
    graph = watermelon_graph([4] * 10)
    decomp = benchmark(lambda: watermelon_decomposition(graph))
    assert decomp is not None
    assert decomp.path_count == 10


def test_watermelon_prover(benchmark):
    lcp = WatermelonLCP()
    instance = Instance.build(watermelon_graph([4] * 8))
    labeling = benchmark(lambda: lcp.prover.certify(instance))
    assert len(labeling.nodes()) == instance.n


def test_watermelon_verification(benchmark):
    lcp = WatermelonLCP()
    instance = Instance.build(watermelon_graph([6] * 6))
    labeled = instance.with_labeling(lcp.prover.certify(instance))
    result = benchmark(lambda: lcp.check(labeled))
    assert result.unanimous


def test_hiding_via_reflected_ids(benchmark):
    lcp = WatermelonLCP()
    inst1, inst2 = watermelon_hiding_witnesses()
    verdict = benchmark(lambda: hiding_verdict_from_instances(lcp, [inst1, inst2]))
    assert verdict.hiding is True
    assert (len(verdict.odd_cycle) - 1) % 2 == 1  # the Section 7.2 walk is length 7
