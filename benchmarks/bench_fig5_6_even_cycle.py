"""Benchmark for Figs. 5–6 (Lemma 4.2): the even-cycle LCP's edge-colored
witnesses and the odd closed walk in V(D, 6)."""

from repro.core import EvenCycleLCP
from repro.experiments import run_experiment
from repro.experiments.figures import even_cycle_witness_instances
from repro.graphs import cycle_graph
from repro.local import Instance
from repro.neighborhood import build_neighborhood_graph, hiding_verdict_up_to


def test_fig5_6_experiment(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("fig5_6"), rounds=1, iterations=1)
    assert result.ok


def test_edge_coloring_prover(benchmark):
    lcp = EvenCycleLCP()
    instance = Instance.build(cycle_graph(64))
    labeling = benchmark(lambda: lcp.prover.certify(instance))
    assert len(labeling.nodes()) == 64


def test_verification_on_long_cycle(benchmark):
    lcp = EvenCycleLCP()
    instance = Instance.build(cycle_graph(128))
    labeled = instance.with_labeling(lcp.prover.certify(instance))
    result = benchmark(lambda: lcp.check(labeled))
    assert result.unanimous


def test_witness_neighborhood_graph(benchmark):
    lcp = EvenCycleLCP()
    witnesses = even_cycle_witness_instances()
    ngraph = benchmark.pedantic(
        lambda: build_neighborhood_graph(lcp, witnesses), rounds=1, iterations=1
    )
    assert ngraph.find_odd_cycle() is not None


def test_full_lemma31_sweep_n6(benchmark):
    verdict = benchmark.pedantic(
        lambda: hiding_verdict_up_to(EvenCycleLCP(), 6), rounds=1, iterations=1
    )
    assert verdict.hiding is True
