"""Neighborhood-pipeline and hiding-engine benchmarks.

Writes two JSON reports:

* ``BENCH_neighborhood.json`` — the full Lemma 3.1 sweep
  (``yes_instances_up_to`` feeding ``build_neighborhood_graph``) for
  ``DegreeOneLCP`` at ``n = 4, 5`` in four regimes:

  - **baseline** — every perf cache disabled *and* graph families
    enumerated with the pre-optimization object-based algorithm; this is
    the seed-equivalent cost.
  - **serial_cold** — the optimized pipeline with all process-wide
    caches cleared first (what a fresh process pays).
  - **serial_warm** — the optimized pipeline again, caches populated
    (what every subsequent sweep in the same process pays).
  - **parallel_N** — the process-pool builder at 2 and 4 workers.
    On a single-core host these rows are *skipped* (recorded with a
    note): they would measure pure pool overhead, not parallelism.

  A **kernel** section compares the scalar streaming sweep with the
  vectorized batch kernel (:mod:`repro.kernel`) on cold full sweeps,
  symmetry off and on: ``degree-one`` at ``n = 5, 6`` (decode-bound —
  the unanimity scan dominates, the kernel engages) and ``even-cycle``
  at ``n = 6, 7`` (generation-bound — the 16^n labeling space exceeds
  ``labeling_limit``, so there is no labeling pass to vectorize; those
  rows honestly record ``kernel_batches = 0`` with a note).  The scalar
  reference numbers are the symmetry section's own rows (same sweep,
  same repeats); every vectorized row records ``kernel``,
  ``numpy_version``, its speedup, and a view/edge/count parity check.
  Without numpy the vectorized rows are recorded as *skipped* with a
  note (mirroring the single-core ``parallel_N`` convention).

  A **generation** section targets the generation-bound path: the same
  cold symmetry-on sweeps for ``even-cycle`` at ``n = 6, 7`` with the
  batched canonicalization kernel off (scalar ``_build_level`` /
  ``min_edge_mask`` reference) and on, parity-checked down to the exact
  ``SymmetryAccount`` totals; plus a ``kernel_labeling_limit`` pair at
  ``n = 4`` showing the raised admission cap evaluating the 16^4
  labeling space the scalar route must refuse (same decision
  fingerprint; the row records kernel labelings evaluated and the
  ``labelings_per_sec`` gauge).  Without numpy the kernel rows are
  recorded as *skipped* with a note.

  A **sharding** section measures the sharded orderly sweep: per case a
  ``serial`` reference row, a ``sharded_serial`` row (subtree work units
  executed in-process — the pure shard-stage overhead), and
  ``sharded_parallel_N`` rows on the work-stealing process pool.
  Parallel rows run only on multi-core hosts (or under
  ``REPRO_FORCE_WORKERS``, with an honest note); on a single-core host
  they are recorded as *skipped* with a ``skip_reason``.  Every executed
  sharded row is parity-checked against the serial reference and records
  the ``shard_count`` / ``steal_count`` / ``shards_per_sec`` gauges.

  A **symmetry** section compares the legacy edge-subset enumerator with
  the symmetry-reduced sweep (orderly generation + automorphism-orbit
  pruning) on cold full sweeps: ``degree-one`` at ``n = 5, 6``,
  ``even-cycle`` at ``n = 6, 7`` in both regimes, and ``even-cycle`` at
  ``n = 8`` symmetry-on only — the legacy enumerator cannot reach
  ``n = 8``, so that row is measured against the *old* ``n = 7`` cost.
  Every row carries ``orbit_pruning_ratio``
  (``labelings_pruned / labelings_total``); regime pairs are
  parity-checked view-for-view, edge-for-edge, and count-for-count
  (suppressed orbit mates multiplied back in).

* ``BENCH_hiding.json`` — the hiding decision itself (early-exit vs
  full build) for ``DegreeOneLCP`` at ``n = 4, 5``:

  - **materialized_full** — build all of ``V(D, n)``, then color it
    (the classic ``hiding_verdict_from_instances`` pipeline).
  - **streaming_cold** — the streaming engine, no warm start, no disk:
    the sweep exits at the first odd-walk witness.
  - **vectorized_cold** — the same early-exit decision through the
    vectorized kernel backend (skipped with a note when numpy is
    missing); records ``kernel`` and ``numpy_version``.
  - **streaming_warm_disk** — the streaming engine reading a populated
    ``.repro_cache/`` entry (what a re-run of the same experiment pays).

  Every streaming row is parity-checked against the materialized
  verdict (same hiding flag; the witness must be a genuine odd closed
  walk of adjacent views) before its numbers are recorded.

Every regime row records ``workers_effective`` — the worker count the
builder can actually use (``min(workers, cpu_count)``) — so single-core
results are interpretable.

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py [output.json]
        [--hiding-output BENCH_hiding.json] [--early-exit]

``--early-exit`` is the CI smoke mode: a quick streaming-vs-materialized
parity sweep over several registry schemes (serial and 2-worker); the
exit status is nonzero on any parity failure.  ``--symmetry-smoke`` is
its symmetry sibling: orbit-pruned vs brute-force sweeps at ``n = 4``
for both Theorem 1.1 schemes.  ``--kernel-smoke`` checks the vectorized
backend against streaming (identical decision fingerprints and instance
counts) across every registry scheme; it exits zero with a note when
numpy is unavailable.  ``--generation-kernel-smoke`` pins the orderly
generator's emission stream: kernel vs scalar up to ``n = 7`` and both
against the legacy edge-subset walk up to ``n = 6``; it fails the job
on any divergence and checks the scalar fallback when numpy is absent.
``--shard-smoke`` gates the sharded sweep: merged shard emission must be
byte-identical to the serial orderly walk, and sharded decisions must
reproduce the serial fingerprints, instance counts, and
``SymmetryAccount`` totals for every registry scheme; with
``REPRO_FORCE_WORKERS`` set it also exercises the process-pool path.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from pathlib import Path

from repro.core import DegreeOneLCP
from repro.core.even_cycle import EvenCycleLCP
from repro.core.registry import all_lcps, make_lcp
from repro.engine import ExecutionPlan, RunContext, clear_engine_state, decide_hiding
from repro.graphs.encoding import clear_canonical_cache
from repro.graphs.families import (
    _enumerate_graphs_exactly,
    clear_family_cache,
    enumerate_graphs_exactly_reference,
)
from repro.graphs.properties import is_odd_closed_walk
from repro.kernel import clear_kernel_tables, kernel_available, numpy_version
from repro.neighborhood import build_neighborhood_graph, labeled_yes_instances
from repro.neighborhood.aviews import yes_instances_up_to
from repro.neighborhood.hiding import hiding_verdict_from_instances
from repro.obs import RunReport, Tracer, sentinel, validate_report
from repro.perf import GLOBAL_STATS, PerfStats, clear_shared_caches, overridden
from repro.perf.parallel import build_neighborhood_graph_parallel
from repro.symmetry import (
    SymmetryAccount,
    automorphism_group,
    clear_automorphism_cache,
    clear_orderly_cache,
    orderly_graphs_exactly,
)

REPEATS = 5

#: Repeats for the symmetry-regime comparison (cold full sweeps at
#: n = 6..8 are expensive; two repeats bound the noise well enough for
#: order-of-magnitude speedups).
SYMMETRY_REPEATS = 2

#: (scheme, n, modes) for the symmetry comparison.  Degree-one stops at
#: n = 6 — its n = 7 symmetry-off sweep enumerates hundreds of millions
#: of labelings and is not benchmarkable.  Even-cycle's n = 8 runs
#: symmetry-on only: the legacy enumerator at n = 8 scans 2^28 edge
#: subsets (hours); the orderly generator finishes in seconds, which is
#: the point of the ("even-cycle", 8) row.
SYMMETRY_CASES = [
    ("degree-one", 5, ("off", "on")),
    ("degree-one", 6, ("off", "on")),
    ("even-cycle", 6, ("off", "on")),
    ("even-cycle", 7, ("off", "on")),
    ("even-cycle", 8, ("on",)),
]

#: Repeats for the vectorized-kernel rows (cold sweeps, same protocol as
#: the symmetry section whose rows serve as the scalar reference).
KERNEL_REPEATS = SYMMETRY_REPEATS

#: (scheme, n, modes) for the kernel comparison.  Each case must also
#: appear (same scheme, n, modes) in :data:`SYMMETRY_CASES` — the
#: symmetry rows are the scalar side of the comparison.  ``degree-one``
#: is the decode-bound workload where the unanimity scan dominates and
#: the kernel engages; ``even-cycle`` is generation-bound — its 16^n
#: labeling space exceeds ``labeling_limit``, so the Lemma 3.1 sweep has
#: no exhaustive labeling pass to vectorize and the kernel rows honestly
#: show ``kernel_batches = 0`` and ~1x (noted per row).
KERNEL_CASES = [
    ("degree-one", 5, ("off", "on")),
    ("degree-one", 6, ("off", "on")),
    ("even-cycle", 6, ("off", "on")),
    ("even-cycle", 7, ("off", "on")),
]

#: Repeats for the generation-kernel rows (same cold-sweep protocol).
GENERATION_REPEATS = SYMMETRY_REPEATS

#: (scheme, n) for the generation-kernel comparison.  Even-cycle is the
#: generation-bound workload: its 16^n labeling spaces exceed
#: ``labeling_limit``, so the cold sweep's wall time is dominated by
#: orderly generation and emission canonicalization — exactly what the
#: batched canonicalization kernel accelerates.
GENERATION_CASES = [
    ("even-cycle", 6),
    ("even-cycle", 7),
]

#: Raised labeling admission for the kernel_labeling_limit row: 16^4 =
#: 65,536 even-cycle labelings, 3.3x over the scalar 20,000 cap.
RAISED_LABELING_LIMIT = 70_000

#: Streaming plans for the timed regimes: the in-process memo tier is off
#: so every repeat pays the honest sweep/reload cost, not a dict lookup.
STREAM_COLD = ExecutionPlan(
    backend="streaming", warm_start=False, disk_cache=False, memory_cache=False
)
STREAM_DISK = ExecutionPlan(
    backend="streaming", warm_start=False, disk_cache=True, memory_cache=False
)
MAT_PLAN = ExecutionPlan(
    backend="materialized", disk_cache=False, memory_cache=False
)


def _clear_everything() -> None:
    clear_shared_caches()
    clear_family_cache()
    clear_canonical_cache()
    clear_automorphism_cache()
    clear_orderly_cache()
    clear_engine_state()
    GLOBAL_STATS.reset()


def _reference_graphs_up_to(n: int):
    for k in range(1, n + 1):
        yield from enumerate_graphs_exactly_reference(k, connected_only=True)


def _timed(fn):
    """Best-of-REPEATS wall time plus the last run's result."""
    times = []
    result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return min(times), statistics.mean(times), result


def _account_into_stats(stats: PerfStats, account: SymmetryAccount) -> None:
    """Mirror the engine's bookkeeping: fold suppressed instances and the
    pruning tallies into the row's stats so ``_record`` can report the
    orbit-pruning ratio of every regime."""
    if account.labelings_total:
        stats.incr("symmetry_labelings_total", account.labelings_total)
    if account.labelings_pruned:
        stats.incr("symmetry_labelings_pruned", account.labelings_pruned)
    if account.bases_pruned:
        stats.incr("symmetry_bases_pruned", account.bases_pruned)
    if account.instances_suppressed:
        stats.incr("instances_scanned", account.instances_suppressed)
        stats.incr("symmetry_instances_suppressed", account.instances_suppressed)


def _sweep_serial(lcp, n, stats, tracer=None):
    account = SymmetryAccount()
    graph = build_neighborhood_graph(
        lcp,
        yes_instances_up_to(lcp, n, account=account),
        stats=stats,
        tracer=tracer,
    )
    _account_into_stats(stats, account)
    return graph


def _sweep_baseline(lcp, n, stats, tracer=None):
    # Seed-equivalent: reference family enumeration, no perf caches.
    account = SymmetryAccount()
    instances = labeled_yes_instances(
        lcp, _reference_graphs_up_to(n), id_bound=n, account=account
    )
    graph = build_neighborhood_graph(lcp, instances, stats=stats, tracer=tracer)
    _account_into_stats(stats, account)
    return graph


def _sweep_symmetry(lcp, n, mode, stats, tracer=None, kernel=None):
    """One cold full Lemma 3.1 sweep in the given symmetry regime.

    Suppressed orbit mates are folded back into ``instances_scanned``
    (exactly as the engine backends do), so regime rows are directly
    comparable instance-for-instance.  With ``kernel="batch"`` the
    unanimity scan runs through the vectorized kernel instead of the
    scalar loops — same stream, same accounts."""
    account = SymmetryAccount()
    with overridden(symmetry=mode):
        graph = build_neighborhood_graph(
            lcp,
            yes_instances_up_to(
                lcp,
                n,
                include_all_accepted_labelings=True,
                symmetry=mode,
                account=account,
                kernel=kernel,
                stats=stats,
            ),
            stats=stats,
            tracer=tracer,
        )
    graph.instances_scanned += account.instances_suppressed
    _account_into_stats(stats, account)
    return graph


def _traced_sweep_report(regime: str, n: int, build_fn) -> str:
    """One extra traced (untimed) run of a regime's build; returns the
    run-report path attached to that regime's benchmark row."""
    tracer = Tracer()
    stats = PerfStats()
    with tracer.span("benchmark", benchmark="neighborhood_pipeline",
                     regime=regime, n=n):
        graph = build_fn(stats, tracer)
    report = RunReport.from_run(
        tracer=tracer,
        stats=stats,
        n=n,
        meta={
            "kind": "benchmark",
            "benchmark": "neighborhood_pipeline",
            "regime": regime,
            "views": graph.order,
            "edges": graph.size,
            "instances_scanned": graph.instances_scanned,
        },
    )
    return str(report.write())


def _traced_hiding_report(lcp, n, plan, regime: str) -> str:
    """One extra traced (untimed) hiding decision; returns the report path."""
    tracer = Tracer()
    ctx = RunContext.observed(tracer)
    verdict = decide_hiding(lcp, n, plan, ctx=ctx)
    report = RunReport.from_run(
        tracer=tracer,
        metrics=ctx.metrics,
        stats=ctx.stats,
        verdict=verdict,
        plan=plan,
        scheme=lcp.name,
        n=n,
        meta={"kind": "benchmark", "benchmark": "hiding_engine", "regime": regime},
    )
    return str(report.write())


def _pruning_ratio(stats: PerfStats) -> float:
    """``labelings_pruned / labelings_total`` for this row (0.0 when the
    regime enumerated no labelings or pruned nothing)."""
    total = stats.get("symmetry_labelings_total")
    if not total:
        return 0.0
    return round(stats.get("symmetry_labelings_pruned") / total, 4)


def _record(name, n, best, mean, graph, stats, reference=None, workers=None):
    cpus = os.cpu_count() or 1
    entry = {
        "regime": name,
        "n": n,
        "seconds_best": round(best, 6),
        "seconds_mean": round(mean, 6),
        "workers_effective": min(workers, cpus) if workers else 1,
        "views": len(graph.views),
        "edges": len(graph.edges),
        "instances_scanned": graph.instances_scanned,
        "views_per_sec": round(graph.instances_scanned / best, 1) if best else None,
        "memo_hit_rate": round(stats.hit_rate("memo") or 0.0, 4),
        "layout_hit_rate": round(stats.hit_rate("layout") or 0.0, 4),
        "orbit_pruning_ratio": _pruning_ratio(stats),
    }
    if reference is not None:
        entry["parity_with_baseline"] = (
            graph.views == reference.views and graph.edges == reference.edges
        )
    return entry


def run(n: int) -> list[dict]:
    lcp = DegreeOneLCP()
    rows = []

    # Baseline and cold repeats are interleaved so slow drift in machine
    # load hits both regimes equally instead of skewing the ratio.
    baseline_times: list[float] = []
    cold_times: list[float] = []
    baseline = cold_graph = None
    baseline_stats = PerfStats()
    cold_stats = PerfStats()
    for _ in range(REPEATS):
        with overridden(
            layout_cache=False,
            decision_memo=False,
            family_cache=False,
            canonical_cache=False,
        ):
            _clear_everything()
            baseline_stats.reset()
            start = time.perf_counter()
            baseline = _sweep_baseline(lcp, n, baseline_stats)
            baseline_times.append(time.perf_counter() - start)
        # Cold: clear before every repeat so each run pays full cost.
        _clear_everything()
        cold_stats.reset()
        start = time.perf_counter()
        cold_graph = _sweep_serial(lcp, n, cold_stats)
        cold_times.append(time.perf_counter() - start)
    rows.append(
        _record(
            "baseline",
            n,
            min(baseline_times),
            statistics.mean(baseline_times),
            baseline,
            baseline_stats,
        )
    )
    with overridden(
        layout_cache=False,
        decision_memo=False,
        family_cache=False,
        canonical_cache=False,
    ):
        _clear_everything()
        rows[-1]["report"] = _traced_sweep_report(
            "baseline", n, lambda stats, tracer: _sweep_baseline(lcp, n, stats, tracer)
        )
    rows.append(
        _record(
            "serial_cold",
            n,
            min(cold_times),
            statistics.mean(cold_times),
            cold_graph,
            cold_stats,
            reference=baseline,
        )
    )
    _clear_everything()
    rows[-1]["report"] = _traced_sweep_report(
        "serial_cold", n, lambda stats, tracer: _sweep_serial(lcp, n, stats, tracer)
    )

    warm_stats = PerfStats()
    best, mean, warm_graph = _timed(lambda: _sweep_serial(lcp, n, warm_stats))
    rows.append(
        _record("serial_warm", n, best, mean, warm_graph, warm_stats, reference=baseline)
    )
    rows[-1]["report"] = _traced_sweep_report(
        "serial_warm", n, lambda stats, tracer: _sweep_serial(lcp, n, stats, tracer)
    )

    cpus = os.cpu_count() or 1
    for workers in (2, 4):
        if cpus <= 1:
            rows.append(
                {
                    "regime": f"parallel_{workers}",
                    "n": n,
                    "skipped": True,
                    "skip_reason": "single_core_host",
                    "cpu_count": cpus,
                    "note": (
                        "single-core host: a process pool can only measure "
                        "pool overhead here, not parallelism"
                    ),
                    "workers_effective": 1,
                }
            )
            continue
        par_stats = PerfStats()
        best, mean, par_graph = _timed(
            lambda: build_neighborhood_graph_parallel(
                lcp, yes_instances_up_to(lcp, n), workers=workers, stats=par_stats
            )
        )
        rows.append(
            _record(
                f"parallel_{workers}",
                n,
                best,
                mean,
                par_graph,
                par_stats,
                reference=baseline,
                workers=workers,
            )
        )
        rows[-1]["report"] = _traced_sweep_report(
            f"parallel_{workers}",
            n,
            lambda stats, tracer: build_neighborhood_graph_parallel(
                lcp,
                yes_instances_up_to(lcp, n),
                workers=workers,
                stats=stats,
                tracer=tracer,
            ),
        )
    return rows


# ----------------------------------------------------------------------
# The symmetry benchmark: orderly generation + orbit pruning vs legacy
# ----------------------------------------------------------------------


def run_symmetry(graph_sink: dict | None = None) -> dict:
    """Cold full sweeps per :data:`SYMMETRY_CASES`, symmetry-off vs -on.

    Parity between the regimes of one (scheme, n) case means: identical
    view list, identical edge set, and identical effective
    ``instances_scanned`` (suppressed orbit mates multiplied back in).
    The ``("even-cycle", 8)`` symmetry-on row has no off-regime partner —
    the legacy enumerator cannot reach n = 8 — and is instead compared
    against the *old* n = 7 cost (the headline of the orderly generator).

    With *graph_sink*, the final graph of every regime is stashed under
    ``(scheme, n, mode)`` so the kernel section can parity-check its
    vectorized sweeps against these scalar ones without re-running them.
    """
    rows = []
    for scheme, n, modes in SYMMETRY_CASES:
        lcp = make_lcp(scheme)
        graphs = {}
        for mode in modes:
            times = []
            graph = None
            stats = PerfStats()
            for _ in range(SYMMETRY_REPEATS):
                _clear_everything()
                stats.reset()
                start = time.perf_counter()
                graph = _sweep_symmetry(lcp, n, mode, stats)
                times.append(time.perf_counter() - start)
            graphs[mode] = graph
            if graph_sink is not None:
                graph_sink[(scheme, n, mode)] = graph
            print(
                f"  symmetry {scheme} n={n} {mode}: {min(times):.2f}s",
                file=sys.stderr,
            )
            row = _record(f"symmetry_{mode}", n, min(times),
                          statistics.mean(times), graph, stats)
            row["scheme"] = scheme
            rows.append(row)
        if "off" in graphs and "on" in graphs:
            off, on = graphs["off"], graphs["on"]
            parity = (
                off.views == on.views
                and off.edges == on.edges
                and off.instances_scanned == on.instances_scanned
            )
            off_row = next(
                r for r in rows
                if r["scheme"] == scheme and r["n"] == n
                and r["regime"] == "symmetry_off"
            )
            on_row = rows[-1]
            on_row["parity_with_off"] = parity
            on_row["speedup_vs_off"] = round(
                off_row["seconds_best"] / on_row["seconds_best"], 3
            )
    by_key = {(r["scheme"], r["n"], r["regime"]): r for r in rows}
    n7_off = by_key.get(("even-cycle", 7, "symmetry_off"))
    n8_on = by_key.get(("even-cycle", 8, "symmetry_on"))
    return {
        "repeats": SYMMETRY_REPEATS,
        "rows": rows,
        "parity_ok": all(r.get("parity_with_off", True) for r in rows),
        "speedup_n6": {
            scheme: by_key[(scheme, 6, "symmetry_on")]["speedup_vs_off"]
            for scheme in ("degree-one", "even-cycle")
            if (scheme, 6, "symmetry_on") in by_key
        },
        "n8_on_seconds": n8_on["seconds_best"] if n8_on else None,
        "old_n7_off_seconds": n7_off["seconds_best"] if n7_off else None,
        "n8_on_under_old_n7": (
            n8_on["seconds_best"] < n7_off["seconds_best"]
            if n8_on and n7_off
            else None
        ),
    }


def smoke_symmetry() -> int:
    """CI smoke: orbit-pruned vs brute-force sweeps must agree exactly
    (views, edges, effective instance counts) for both Theorem 1.1
    schemes at n = 4; nonzero exit on any divergence."""
    failures = 0
    for scheme in ("degree-one", "even-cycle"):
        lcp = make_lcp(scheme)
        graphs = {}
        for mode in ("off", "on"):
            _clear_everything()
            graphs[mode] = _sweep_symmetry(lcp, 4, mode, PerfStats())
        off, on = graphs["off"], graphs["on"]
        checks = {
            "views": off.views == on.views,
            "edges": off.edges == on.edges,
            "instances_scanned": off.instances_scanned == on.instances_scanned,
        }
        if all(checks.values()):
            print(f"symmetry smoke: {scheme} n=4 parity OK", file=sys.stderr)
        else:
            failures += 1
            bad = [name for name, ok in checks.items() if not ok]
            print(
                f"SYMMETRY PARITY FAILURE: {scheme} n=4: {', '.join(bad)} differ",
                file=sys.stderr,
            )
    if failures:
        return 1
    print("symmetry smoke: all parity checks passed", file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
# The kernel benchmark: vectorized batch sweep vs the scalar loops
# ----------------------------------------------------------------------


def run_kernel(symmetry: dict, symmetry_graphs: dict) -> dict:
    """Vectorized-kernel sweeps per :data:`KERNEL_CASES`.

    Each vectorized row is the *same* cold sweep as the symmetry
    section's ``symmetry_{mode}`` row for that (scheme, n) — only the
    inner unanimity scan runs through :mod:`repro.kernel` — so the
    symmetry rows double as the scalar reference: ``speedup_vs_streaming``
    divides their ``seconds_best``, and parity compares views, edges,
    and effective instance counts against the stashed scalar graphs.
    Rows whose sweep never reaches the labeling pass (generation-bound
    cases) are kept with ``kernel_batches = 0`` and an explanatory note.
    Without numpy every row is recorded as skipped with a note.
    """
    rows = []
    have_numpy = kernel_available()
    for scheme, n, modes in KERNEL_CASES:
        lcp = make_lcp(scheme)
        for mode in modes:
            if not have_numpy:
                rows.append(
                    {
                        "regime": f"vectorized_{mode}",
                        "scheme": scheme,
                        "n": n,
                        "skipped": True,
                        "skip_reason": "numpy_unavailable",
                        "cpu_count": os.cpu_count() or 1,
                        "note": (
                            "numpy not importable: the vectorized kernel "
                            "is unavailable (install it via "
                            "`pip install -e .[fast]`)"
                        ),
                        "workers_effective": 1,
                    }
                )
                continue
            ref_row = next(
                r
                for r in symmetry["rows"]
                if r["scheme"] == scheme
                and r["n"] == n
                and r["regime"] == f"symmetry_{mode}"
            )
            times = []
            graph = None
            stats = PerfStats()
            for _ in range(KERNEL_REPEATS):
                _clear_everything()
                clear_kernel_tables()
                stats.reset()
                start = time.perf_counter()
                graph = _sweep_symmetry(lcp, n, mode, stats, kernel="batch")
                times.append(time.perf_counter() - start)
            print(
                f"  kernel {scheme} n={n} {mode}: {min(times):.2f}s "
                f"(scalar {ref_row['seconds_best']:.2f}s)",
                file=sys.stderr,
            )
            row = _record(
                f"vectorized_{mode}", n, min(times), statistics.mean(times),
                graph, stats,
            )
            row["scheme"] = scheme
            row["kernel"] = "batch"
            row["numpy_version"] = numpy_version()
            row["kernel_batches"] = stats.get("kernel_batches")
            row["kernel_labelings"] = stats.get("kernel_labelings")
            if not row["kernel_batches"]:
                row["note"] = (
                    "kernel never engaged: this sweep is generation-bound "
                    "(the labeling space exceeds labeling_limit, so there "
                    "is no exhaustive labeling pass to vectorize)"
                )
            reference = symmetry_graphs[(scheme, n, mode)]
            row["parity_with_scalar"] = (
                graph.views == reference.views
                and graph.edges == reference.edges
                and graph.instances_scanned == reference.instances_scanned
            )
            row["speedup_vs_streaming"] = round(
                ref_row["seconds_best"] / min(times), 3
            )
            rows.append(row)
    by_key = {(r["scheme"], r["n"], r["regime"]): r for r in rows}

    def _speedup(scheme, n, mode):
        row = by_key.get((scheme, n, f"vectorized_{mode}"))
        return row.get("speedup_vs_streaming") if row else None

    return {
        "repeats": KERNEL_REPEATS,
        "numpy_version": numpy_version(),
        "scalar_reference": "symmetry section rows (same sweep, same repeats)",
        "rows": rows,
        "parity_ok": all(r.get("parity_with_scalar", True) for r in rows),
        "kernel_engaged_rows": sum(
            1 for r in rows if r.get("kernel_batches")
        ),
        "speedup_degree_one_n6_off": _speedup("degree-one", 6, "off"),
        "speedup_degree_one_n6_on": _speedup("degree-one", 6, "on"),
        "speedup_even_cycle_n6_off": _speedup("even-cycle", 6, "off"),
        "speedup_even_cycle_n7_off": _speedup("even-cycle", 7, "off"),
    }


def smoke_kernel() -> int:
    """CI smoke: the vectorized backend must match scalar streaming —
    identical decision fingerprints and effective instance counts — for
    every registry scheme at n = 3, 4.  When numpy is unavailable there
    is nothing to vectorize: print a note and exit zero (the fallback
    path is covered by the tier-1 suite)."""
    if not kernel_available():
        print(
            "kernel smoke: numpy not importable; vectorized backend "
            "unavailable, nothing to check",
            file=sys.stderr,
        )
        return 0
    failures = 0
    checks = 0
    for name, lcp in all_lcps().items():
        for n in (3, 4):
            results = {}
            for backend in ("streaming", "vectorized"):
                _clear_everything()
                clear_kernel_tables()
                plan = ExecutionPlan(
                    backend=backend,
                    warm_start=False,
                    disk_cache=False,
                    memory_cache=False,
                )
                verdict = decide_hiding(lcp, n, plan)
                results[backend] = (
                    verdict.decision_fingerprint(),
                    verdict.ngraph.instances_scanned,
                    verdict.provenance.backend,
                )
            checks += 1
            stream_fp, stream_count, _ = results["streaming"]
            vec_fp, vec_count, vec_backend = results["vectorized"]
            if (stream_fp, stream_count) != (vec_fp, vec_count):
                failures += 1
                print(
                    f"KERNEL PARITY FAILURE: {name} n={n}: "
                    f"instances streaming={stream_count} "
                    f"vectorized={vec_count}, fingerprints "
                    f"{'agree' if stream_fp == vec_fp else 'differ'}",
                    file=sys.stderr,
                )
            elif vec_backend != "vectorized":
                failures += 1
                print(
                    f"KERNEL PROVENANCE FAILURE: {name} n={n}: "
                    f"provenance names {vec_backend!r}",
                    file=sys.stderr,
                )
    if failures:
        print(f"{failures} kernel parity failure(s)", file=sys.stderr)
        return 1
    print(
        f"kernel smoke: {checks} vectorized-vs-streaming checks passed "
        f"(numpy {numpy_version()})",
        file=sys.stderr,
    )
    return 0


#: SymmetryAccount counters _account_into_stats mirrors into row stats;
#: generation-kernel regime pairs must reconcile all of them exactly.
_ACCOUNT_COUNTERS = (
    "symmetry_labelings_total",
    "symmetry_labelings_pruned",
    "symmetry_bases_pruned",
    "symmetry_instances_suppressed",
)


def run_generation() -> dict:
    """Generation-kernel sweeps per :data:`GENERATION_CASES`.

    Each (scheme, n) runs the same cold symmetry-on full sweep twice —
    ``generation_off`` forces the scalar ``_build_level`` /
    ``min_edge_mask`` reference, ``generation_on`` routes orderly
    generation and emission through the batched canonicalization kernel
    (:mod:`repro.kernel.generate`).  Parity demands identical views,
    edges, effective instance counts, *and* identical
    :class:`SymmetryAccount` totals (labelings total/pruned, bases
    pruned, instances suppressed) — the kernel may only change wall
    time.  Each row records the sweep's canonicalization count and
    throughput (the ``canonicalizations_per_sec`` gauge of the run).

    A final pair of rows demonstrates the raised admission cap: the
    even-cycle n = 4 decision with the default 20,000 ``labeling_limit``
    (the exhaustive unanimity pass refuses the 16^4 = 65,536 space)
    against ``kernel_labeling_limit = 70,000`` (the batch kernel affords
    it); the raised row records the kernel labelings actually evaluated
    and must reach the same decision fingerprint.  Without numpy the
    kernel rows are recorded as skipped with a note.
    """
    rows = []
    have_numpy = kernel_available()
    account_parity = True
    for scheme, n in GENERATION_CASES:
        lcp = make_lcp(scheme)
        results = {}
        for mode in ("off", "on"):
            if mode == "on" and not have_numpy:
                rows.append(
                    {
                        "regime": "generation_on",
                        "scheme": scheme,
                        "n": n,
                        "skipped": True,
                        "skip_reason": "numpy_unavailable",
                        "cpu_count": os.cpu_count() or 1,
                        "note": (
                            "numpy not importable: the generation kernel "
                            "is unavailable (install it via "
                            "`pip install -e .[fast]`)"
                        ),
                        "workers_effective": 1,
                    }
                )
                continue
            times = []
            graph = None
            stats = PerfStats()
            for _ in range(GENERATION_REPEATS):
                _clear_everything()
                clear_kernel_tables()
                stats.reset()
                start = time.perf_counter()
                with overridden(
                    generation_kernel="off" if mode == "off" else "auto"
                ):
                    graph = _sweep_symmetry(lcp, n, "on", stats)
                times.append(time.perf_counter() - start)
            best = min(times)
            canon = GLOBAL_STATS.get("canonicalizations")
            print(
                f"  generation {scheme} n={n} {mode}: {best:.2f}s "
                f"({canon} canonicalizations)",
                file=sys.stderr,
            )
            row = _record(
                f"generation_{mode}", n, best, statistics.mean(times),
                graph, stats,
            )
            row["scheme"] = scheme
            row["canonicalizations"] = canon
            row["canonicalizations_per_sec"] = (
                round(canon / best, 1) if best and canon else None
            )
            row["orderly_levels_vectorized"] = GLOBAL_STATS.get(
                "orderly_levels_vectorized"
            )
            if mode == "on":
                row["numpy_version"] = numpy_version()
            results[mode] = (graph, row, stats)
            rows.append(row)
        if len(results) == 2:
            off_graph, off_row, off_stats = results["off"]
            on_graph, on_row, on_stats = results["on"]
            accounts_equal = all(
                off_stats.get(c) == on_stats.get(c) for c in _ACCOUNT_COUNTERS
            )
            account_parity = account_parity and accounts_equal
            on_row["parity_with_scalar"] = (
                on_graph.views == off_graph.views
                and on_graph.edges == off_graph.edges
                and on_graph.instances_scanned == off_graph.instances_scanned
                and accounts_equal
            )
            on_row["account_reconciled"] = accounts_equal
            on_row["speedup_vs_scalar"] = round(
                off_row["seconds_best"] / on_row["seconds_best"], 3
            )

    # The raised-admission demonstration: same question, same decision,
    # but only the kernel_labeling_limit row pays (and can afford) the
    # exhaustive 16^4 unanimity pass.
    raised_fp = {}
    for regime, raised in (
        ("labeling_default_cap", None),
        ("labeling_kernel_raised", RAISED_LABELING_LIMIT),
    ):
        if not have_numpy:
            rows.append(
                {
                    "regime": regime,
                    "scheme": "even-cycle",
                    "n": 4,
                    "skipped": True,
                    "skip_reason": "numpy_unavailable",
                    "cpu_count": os.cpu_count() or 1,
                    "note": (
                        "numpy not importable: the vectorized backend is "
                        "unavailable, and kernel_labeling_limit only "
                        "raises the cap where the batch kernel actually "
                        "evaluates the space"
                    ),
                    "workers_effective": 1,
                }
            )
            continue
        _clear_everything()
        clear_kernel_tables()
        stats = PerfStats()
        plan = ExecutionPlan(
            backend="vectorized",
            workers=0,
            early_exit=False,
            warm_start=False,
            memory_cache=False,
            disk_cache=False,
            kernel_labeling_limit=raised,
        )
        start = time.perf_counter()
        verdict = decide_hiding(
            EvenCycleLCP(), 4, plan, ctx=RunContext(stats=stats)
        )
        elapsed = time.perf_counter() - start
        row = {
            "regime": regime,
            "scheme": "even-cycle",
            "n": 4,
            "seconds_best": round(elapsed, 6),
            "workers_effective": 1,
            "views": verdict.ngraph.order,
            "edges": verdict.ngraph.size,
            "instances_scanned": verdict.provenance.instances_scanned,
            "kernel_labeling_limit": raised,
            "kernel_labelings": stats.get("kernel_labelings"),
            "labelings_per_sec": verdict.provenance.labelings_per_sec,
        }
        raised_fp[regime] = verdict.decision_fingerprint()
        rows.append(row)
        print(
            f"  generation even-cycle n=4 {regime}: {elapsed:.3f}s "
            f"({row['kernel_labelings']} kernel labelings)",
            file=sys.stderr,
        )
    if len(raised_fp) == 2:
        for row in rows:
            if row["regime"] == "labeling_kernel_raised":
                row["parity_with_scalar"] = (
                    raised_fp["labeling_kernel_raised"]
                    == raised_fp["labeling_default_cap"]
                )

    by_key = {(r["scheme"], r["n"], r["regime"]): r for r in rows}

    def _speedup(scheme, n):
        row = by_key.get((scheme, n, "generation_on"))
        return row.get("speedup_vs_scalar") if row else None

    raised_row = by_key.get(("even-cycle", 4, "labeling_kernel_raised"), {})
    return {
        "repeats": GENERATION_REPEATS,
        "numpy_version": numpy_version(),
        "rows": rows,
        "parity_ok": all(r.get("parity_with_scalar", True) for r in rows),
        "account_reconciled": account_parity,
        "speedup_even_cycle_n6": _speedup("even-cycle", 6),
        "speedup_even_cycle_n7": _speedup("even-cycle", 7),
        "raised_limit_kernel_labelings": raised_row.get("kernel_labelings"),
    }


def smoke_generation() -> int:
    """CI smoke for ``--generation-kernel-smoke``: the orderly
    generator's emission stream — edges *and* seeded automorphism groups
    — must be byte-identical between the generation kernel and the
    scalar reference up to n = 7, and both must match the legacy
    edge-subset walk up to n = 6.  Exits nonzero on any divergence.
    Without numpy the kernel route degrades to the scalar one; the
    legacy-walk comparison still runs (with a note), so the no-numpy CI
    leg checks the fallback honestly."""
    have_numpy = kernel_available()
    if not have_numpy:
        print(
            "generation smoke: numpy not importable; kernel route falls "
            "back to scalar — checking the fallback against the legacy "
            "walk only",
            file=sys.stderr,
        )

    def stream(n: int, mode: str, connected_only: bool):
        clear_orderly_cache()
        clear_automorphism_cache()
        with overridden(generation_kernel=mode):
            return [
                (tuple(g.edges), automorphism_group(g).perms)
                for g in orderly_graphs_exactly(n, connected_only=connected_only)
            ]

    failures = 0
    checks = 0
    for connected_only in (False, True):
        for n in range(1, 8):
            scalar = stream(n, "off", connected_only)
            batched = stream(n, "auto", connected_only)
            checks += 1
            if batched != scalar:
                failures += 1
                print(
                    f"GENERATION PARITY FAILURE: n={n} "
                    f"connected_only={connected_only}: kernel emission "
                    f"diverges from scalar ({len(batched)} vs "
                    f"{len(scalar)} classes)",
                    file=sys.stderr,
                )
                continue
            if n <= 6:
                legacy = [
                    tuple(g.edges)
                    for g in _enumerate_graphs_exactly(n, connected_only)
                ]
                checks += 1
                if [edges for edges, _ in batched] != legacy:
                    failures += 1
                    print(
                        f"GENERATION PARITY FAILURE: n={n} "
                        f"connected_only={connected_only}: emission "
                        f"diverges from the legacy edge-subset walk",
                        file=sys.stderr,
                    )
    clear_orderly_cache()
    clear_automorphism_cache()
    if failures:
        print(f"{failures} generation parity failure(s)", file=sys.stderr)
        return 1
    print(
        f"generation smoke: {checks} emission parity checks passed "
        + (f"(numpy {numpy_version()})" if have_numpy else "(scalar fallback)"),
        file=sys.stderr,
    )
    return 0


# ----------------------------------------------------------------------
# The hiding benchmark: early exit vs full build, plus the disk cache
# ----------------------------------------------------------------------


def _hiding_parity(streamed, materialized, backend: str = "streaming") -> bool:
    """Streamed engine verdict must agree with the materialized one; a
    hiding witness must be a genuine odd closed walk in the streamed
    graph, and the provenance must name the backend that was asked for."""
    if streamed.provenance.backend != backend:
        return False
    if streamed.hiding != materialized.hiding:
        return False
    if streamed.hiding and streamed.witness is not None:
        g = streamed.ngraph
        walk = [g.index[view] for view in streamed.witness]
        return is_odd_closed_walk(g.to_graph(), walk)
    return True


def run_hiding(n: int) -> list[dict]:
    lcp = DegreeOneLCP()
    rows = []

    def materialized():
        # include_all_accepted_labelings=True matches the streaming
        # engine's (and hiding_verdict_up_to's) default enumeration.
        instances = yes_instances_up_to(lcp, n, include_all_accepted_labelings=True)
        return hiding_verdict_from_instances(lcp, instances, exhaustive=True)

    mat_times = []
    mat = None
    for _ in range(REPEATS):
        _clear_everything()
        start = time.perf_counter()
        mat = materialized()
        mat_times.append(time.perf_counter() - start)
    rows.append(
        {
            "regime": "materialized_full",
            "n": n,
            "seconds_best": round(min(mat_times), 6),
            "seconds_mean": round(statistics.mean(mat_times), 6),
            "workers_effective": 1,
            "hiding": mat.hiding,
            "views": len(mat.ngraph.views),
            "edges": len(mat.ngraph.edges),
            "instances_scanned": mat.ngraph.instances_scanned,
        }
    )
    _clear_everything()
    rows[-1]["report"] = _traced_hiding_report(lcp, n, MAT_PLAN, "materialized_full")

    cold_times = []
    streamed = None
    stats = PerfStats()
    for _ in range(REPEATS):
        _clear_everything()
        stats.reset()
        start = time.perf_counter()
        streamed = decide_hiding(lcp, n, STREAM_COLD, ctx=RunContext(stats=stats))
        cold_times.append(time.perf_counter() - start)
    rows.append(
        {
            "regime": "streaming_cold",
            "n": n,
            "seconds_best": round(min(cold_times), 6),
            "seconds_mean": round(statistics.mean(cold_times), 6),
            "workers_effective": 1,
            "hiding": streamed.hiding,
            "views": len(streamed.ngraph.views),
            "edges": len(streamed.ngraph.edges),
            "instances_scanned": streamed.ngraph.instances_scanned,
            "early_exits": stats.get("streaming_early_exits"),
            "orbit_pruning_ratio": _pruning_ratio(stats),
            "symmetry_pruned": streamed.provenance.symmetry_pruned,
            "parity_with_materialized": _hiding_parity(streamed, mat),
            "early_exit_speedup": round(min(mat_times) / min(cold_times), 3),
        }
    )
    _clear_everything()
    rows[-1]["report"] = _traced_hiding_report(lcp, n, STREAM_COLD, "streaming_cold")

    if not kernel_available():
        rows.append(
            {
                "regime": "vectorized_cold",
                "n": n,
                "skipped": True,
                "skip_reason": "numpy_unavailable",
                "cpu_count": os.cpu_count() or 1,
                "note": (
                    "numpy not importable: the vectorized backend is "
                    "unavailable (install it via `pip install -e .[fast]`)"
                ),
                "workers_effective": 1,
            }
        )
    else:
        vec_plan = ExecutionPlan(
            backend="vectorized",
            warm_start=False,
            disk_cache=False,
            memory_cache=False,
        )
        vec_times = []
        vec = None
        vec_stats = PerfStats()
        for _ in range(REPEATS):
            _clear_everything()
            clear_kernel_tables()
            vec_stats.reset()
            start = time.perf_counter()
            vec = decide_hiding(lcp, n, vec_plan, ctx=RunContext(stats=vec_stats))
            vec_times.append(time.perf_counter() - start)
        rows.append(
            {
                "regime": "vectorized_cold",
                "n": n,
                "seconds_best": round(min(vec_times), 6),
                "seconds_mean": round(statistics.mean(vec_times), 6),
                "workers_effective": 1,
                "hiding": vec.hiding,
                "views": len(vec.ngraph.views),
                "edges": len(vec.ngraph.edges),
                "instances_scanned": vec.ngraph.instances_scanned,
                "early_exits": vec_stats.get("streaming_early_exits"),
                "kernel": "batch",
                "numpy_version": numpy_version(),
                "kernel_batches": vec_stats.get("kernel_batches"),
                "parity_with_materialized": _hiding_parity(
                    vec, mat, backend="vectorized"
                ),
                "speedup_vs_streaming_cold": round(
                    min(cold_times) / min(vec_times), 3
                ),
            }
        )
        _clear_everything()
        rows[-1]["report"] = _traced_hiding_report(
            lcp, n, vec_plan, "vectorized_cold"
        )

    # Populate the disk entry once (untimed), then measure pure reloads
    # (the plan's memory tier is off, so every repeat reads the disk).
    _clear_everything()
    decide_hiding(lcp, n, STREAM_DISK)
    warm_times = []
    warm = None
    warm_stats = PerfStats()
    for _ in range(REPEATS):
        warm_stats.reset()
        start = time.perf_counter()
        warm = decide_hiding(lcp, n, STREAM_DISK, ctx=RunContext(stats=warm_stats))
        warm_times.append(time.perf_counter() - start)
    rows.append(
        {
            "regime": "streaming_warm_disk",
            "n": n,
            "seconds_best": round(min(warm_times), 6),
            "seconds_mean": round(statistics.mean(warm_times), 6),
            "workers_effective": 1,
            "hiding": warm.hiding,
            "views": len(warm.ngraph.views),
            "edges": len(warm.ngraph.edges),
            "disk_hits": warm_stats.get("disk_hits"),
            "parity_with_materialized": _hiding_parity(warm, mat),
            "disk_speedup_vs_cold": round(min(cold_times) / min(warm_times), 3),
        }
    )
    rows[-1]["report"] = _traced_hiding_report(
        lcp, n, STREAM_DISK, "streaming_warm_disk"
    )
    return rows


def smoke_early_exit(trace_out: str | None = None) -> int:
    """CI smoke: streaming parity across registry schemes, serial and
    2-worker; returns a nonzero exit status on any mismatch.

    With *trace_out*, the whole smoke runs traced and emits a validated
    run report (one ``decide_hiding`` span subtree per check) — CI
    uploads it as an artifact and schema-checks it on the spot."""
    tracer = Tracer() if trace_out is not None else None
    ctx = RunContext.observed(tracer) if tracer is not None else RunContext.default()
    failures = []
    checks = 0

    def sweep() -> None:
        nonlocal checks
        for name, lcp in all_lcps().items():
            for n in (3, 4):
                _clear_everything()
                mat = hiding_verdict_from_instances(
                    lcp,
                    yes_instances_up_to(lcp, n, include_all_accepted_labelings=True),
                    exhaustive=True,
                )
                for workers in (1, 2):
                    plan = ExecutionPlan(
                        backend="streaming",
                        workers=workers,
                        warm_start=False,
                        disk_cache=False,
                        memory_cache=False,
                    )
                    streamed = decide_hiding(lcp, n, plan, ctx=ctx)
                    checks += 1
                    if not _hiding_parity(streamed, mat):
                        failures.append((name, n, workers))
                        print(
                            f"PARITY FAILURE: {name} n={n} workers={workers}: "
                            f"streaming={streamed.hiding} "
                            f"materialized={mat.hiding}",
                            file=sys.stderr,
                        )

    if tracer is not None:
        with tracer.span("early-exit-smoke"):
            sweep()
        report = RunReport.from_run(
            tracer=tracer,
            metrics=ctx.metrics,
            stats=ctx.stats,
            meta={
                "kind": "smoke",
                "checks": checks,
                "failures": [list(f) for f in failures],
            },
        )
        errors = validate_report(report.payload)
        path = report.write(path=trace_out)
        print(f"smoke run report written to {trace_out} ({path})", file=sys.stderr)
        if errors:
            for error in errors:
                print(f"INVALID REPORT: {error}", file=sys.stderr)
            return 1
    else:
        sweep()
    if failures:
        print(f"{len(failures)} parity failure(s)", file=sys.stderr)
        return 1
    print("early-exit smoke: all parity checks passed", file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
# Parameter frontier (campaign layer)
# ----------------------------------------------------------------------

#: The tracked frontier campaign: both Theorem 1.1 schemes, the k axis
#: next to the native k=2, n small enough for sub-second cells.
FRONTIER_SCHEMES = ("degree-one", "even-cycle")
FRONTIER_N_MAX = 5
FRONTIER_K_VALUES = (2, 3)


def _frontier_spec(backend: str = "auto"):
    from repro.campaign import CampaignSpec  # noqa: PLC0415

    return CampaignSpec.sweep(
        FRONTIER_SCHEMES,
        n_max=FRONTIER_N_MAX,
        n_min=3,
        k_values=FRONTIER_K_VALUES,
        plan=ExecutionPlan(backend=backend, disk_cache=False),
    )


def run_frontier() -> dict:
    """Benchmark the campaign explorer: one cold pass (every cell swept)
    and one warm pass (every cell memo-served) over the tracked frontier
    campaign, so the explorer's cells/sec throughput becomes a tracked
    ``BENCH_*.json`` trajectory.  The emitted frontier report is
    schema-validated in-process; ``valid`` folds into the payload's
    ``parity_ok`` gate."""
    from repro.campaign import (  # noqa: PLC0415
        build_frontier_report,
        run_campaign,
        validate_frontier_report,
    )

    spec = _frontier_spec()
    _clear_everything()
    cold = run_campaign(spec)
    warm = run_campaign(spec)
    report = build_frontier_report(cold)
    errors = validate_frontier_report(report.payload)
    summary = report.payload["summary"]
    rows = [
        {
            "regime": "frontier_cold",
            "cells": len(cold.results),
            "errors": len(cold.errors),
            "seconds": round(cold.wall_time_s, 6),
            "cells_per_sec": (
                None if cold.cells_per_sec is None else round(cold.cells_per_sec, 3)
            ),
        },
        {
            "regime": "frontier_warm",
            "cells": len(warm.results),
            "errors": len(warm.errors),
            "seconds": round(warm.wall_time_s, 6),
            "cells_per_sec": (
                None if warm.cells_per_sec is None else round(warm.cells_per_sec, 3)
            ),
        },
    ]
    return {
        "schemes": list(FRONTIER_SCHEMES),
        "n_max": FRONTIER_N_MAX,
        "k_values": list(FRONTIER_K_VALUES),
        "rows": rows,
        "flips": summary["flips"],
        "flips_by_axis": summary["flips_by_axis"],
        "report_digest": report.digest,
        "valid": not errors,
        "validation_errors": errors,
    }


def smoke_frontier() -> int:
    """CI smoke for ``--frontier-smoke``: run the tiny tracked campaign
    (2 schemes × n ≤ 5 × 2 values of k), schema-validate the frontier
    report, and require at least one verdict flip.  Runs identically in
    the numpy and no-numpy legs — the auto backend degrades to the
    scalar streaming route without numpy, and verdicts are backend-
    independent."""
    from repro.campaign import (  # noqa: PLC0415
        build_frontier_report,
        run_campaign,
        validate_frontier_report,
    )

    _clear_everything()
    run = run_campaign(_frontier_spec())
    report = build_frontier_report(run)
    errors = validate_frontier_report(report.payload)
    summary = report.payload["summary"]
    print(
        f"frontier smoke: {summary['cells']} cells, "
        f"{summary['errors']} errors, {summary['flips']} flips "
        f"{summary['flips_by_axis']}",
        file=sys.stderr,
    )
    if errors:
        for error in errors:
            print(f"INVALID FRONTIER REPORT: {error}", file=sys.stderr)
        return 1
    if run.errors:
        for result in run.errors:
            print(
                f"CELL ERROR: {result.cell.label()}: {result.error}",
                file=sys.stderr,
            )
        return 1
    if summary["flips"] == 0:
        print(
            "FRONTIER SMOKE FAILURE: no verdict flip located (the "
            "campaign spans a known n-flip for both schemes)",
            file=sys.stderr,
        )
        return 1
    print("frontier smoke: report schema-valid, flips located", file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
# Sharded orderly generation (subtree work units + work-stealing pool)
# ----------------------------------------------------------------------

#: Repeats for the sharding rows (cold full sweeps, same protocol as the
#: symmetry section).
SHARDING_REPEATS = SYMMETRY_REPEATS

#: (scheme, n) for the sharding comparison.  Even-cycle at n = 6 is the
#: generation-bound workload where the shard stage dominates wall time;
#: degree-one at n = 5 is decode-bound, showing the knob's overhead on a
#: sweep the shard stage does *not* dominate.
SHARDING_CASES = [
    ("even-cycle", 6),
    ("degree-one", 5),
]

#: Prefix depth for the bench rows: the canonical-augmentation tree is
#: split at size 3 (4 connected roots), giving enough subtrees for a
#: 4-worker pool to balance.
SHARDING_BENCH_DEPTH = 3

#: Worker counts for the parallel sharding regimes.
SHARDING_WORKER_COUNTS = (2, 4)


def _sharding_plan(*, sharding: str, workers: int) -> ExecutionPlan:
    return ExecutionPlan(
        backend="streaming",
        workers=workers,
        early_exit=False,
        warm_start=False,
        memory_cache=False,
        disk_cache=False,
        symmetry="on",
        sharding=sharding,
        shard_depth=SHARDING_BENCH_DEPTH,
    )


def _timed_sharded_decision(lcp, n, plan, repeats=SHARDING_REPEATS):
    """Best-of-*repeats* cold decision under *plan*; returns
    ``(best, mean, verdict)`` of the last run."""
    times = []
    verdict = None
    for _ in range(repeats):
        _clear_everything()
        start = time.perf_counter()
        verdict = decide_hiding(lcp, n, plan)
        times.append(time.perf_counter() - start)
    return min(times), statistics.mean(times), verdict


def run_sharding() -> dict:
    """Sharded-sweep regimes per :data:`SHARDING_CASES`.

    Per case: a ``serial`` reference row (``sharding="off"``), a
    ``sharded_serial`` row (``sharding="on"``, in-process execution —
    the pure shard-stage overhead), and ``sharded_parallel_N`` rows on
    the work-stealing process pool.  Parallel rows run only when the
    host can actually parallelize (``cpu_count > 1``) or when
    ``REPRO_FORCE_WORKERS`` forces the pool; otherwise they are recorded
    as *skipped* with ``skip_reason`` (the single-core convention of the
    ``parallel_N`` pipeline rows).  Every executed sharded row is
    parity-checked against the serial reference — identical decision
    fingerprint and effective instance count — and records the
    ``shard_count`` / ``steal_count`` / ``shards_per_sec`` provenance
    gauges the sentinel tracks per ``(regime, …, cpu_count)`` key.
    """
    from repro.perf.config import forced_workers  # noqa: PLC0415

    cpus = os.cpu_count() or 1
    forced = forced_workers()
    rows = []
    for scheme, n in SHARDING_CASES:
        lcp = make_lcp(scheme)
        best, mean, reference = _timed_sharded_decision(
            lcp, n, _sharding_plan(sharding="off", workers=0)
        )
        print(f"  sharding {scheme} n={n} serial: {best:.2f}s", file=sys.stderr)
        serial_best = best
        rows.append(
            {
                "regime": "serial",
                "scheme": scheme,
                "n": n,
                "seconds_best": round(best, 6),
                "seconds_mean": round(mean, 6),
                "workers_effective": 1,
                "cpu_count": cpus,
                "instances_scanned": reference.provenance.instances_scanned,
            }
        )

        def _sharded_row(regime, workers, workers_effective):
            best, mean, verdict = _timed_sharded_decision(
                lcp, n, _sharding_plan(sharding="on", workers=workers)
            )
            print(
                f"  sharding {scheme} n={n} {regime}: {best:.2f}s "
                f"(serial {serial_best:.2f}s)",
                file=sys.stderr,
            )
            return {
                "regime": regime,
                "scheme": scheme,
                "n": n,
                "seconds_best": round(best, 6),
                "seconds_mean": round(mean, 6),
                "workers_effective": workers_effective,
                "cpu_count": cpus,
                "instances_scanned": verdict.provenance.instances_scanned,
                "shard_count": verdict.provenance.shard_count,
                "steal_count": verdict.provenance.steal_count,
                "shards_per_sec": verdict.provenance.shards_per_sec,
                "shard_depth": SHARDING_BENCH_DEPTH,
                "speedup_vs_serial": round(serial_best / best, 3) if best else None,
                "parity_with_serial": (
                    verdict.decision_fingerprint()
                    == reference.decision_fingerprint()
                    and verdict.provenance.instances_scanned
                    == reference.provenance.instances_scanned
                ),
            }

        rows.append(_sharded_row("sharded_serial", 0, 1))
        for workers in SHARDING_WORKER_COUNTS:
            if cpus <= 1 and forced is None:
                rows.append(
                    {
                        "regime": f"sharded_parallel_{workers}",
                        "scheme": scheme,
                        "n": n,
                        "skipped": True,
                        "skip_reason": "single_core_host",
                        "cpu_count": cpus,
                        "note": (
                            "single-core host: a process pool would measure "
                            "pure IPC overhead, not parallel speedup (set "
                            "REPRO_FORCE_WORKERS to force the pool anyway)"
                        ),
                        "workers_effective": 1,
                    }
                )
                continue
            effective = workers if forced is not None else min(workers, cpus)
            row = _sharded_row(f"sharded_parallel_{workers}", workers, effective)
            if forced is not None and cpus < workers:
                row["note"] = (
                    f"REPRO_FORCE_WORKERS={forced}: pool forced on a "
                    f"{cpus}-core host — the row demonstrates the pool "
                    "path, not real parallel speedup"
                )
            rows.append(row)
    return {
        "repeats": SHARDING_REPEATS,
        "shard_depth": SHARDING_BENCH_DEPTH,
        "cpu_count": cpus,
        "forced_workers": forced,
        "rows": rows,
        "parity_ok": all(r.get("parity_with_serial", True) for r in rows),
    }


def _shard_emission_parity(n: int, depth: int) -> bool:
    """Merged shard emission must be byte-identical to the serial walk.

    The serial side is :func:`emit_entries` over the memoized level; the
    sharded side rebuilds every level from the depth-``depth`` prefix
    roots, one independent subtree range at a time, then merges the
    shard-local (already sorted) blocks by canonical mask — exactly the
    executor's merge discipline."""
    from repro.shard import plan_shards  # noqa: PLC0415
    from repro.symmetry.orderly import (  # noqa: PLC0415
        build_level,
        emit_entries,
        level_entries,
    )

    def encode(stream):
        return [
            (mask, tuple(sorted(graph.edges))) for mask, graph in stream
        ]

    spec = plan_shards(n, depth, workers=4)
    roots = level_entries(depth)
    for size in range(depth + 1, n + 1):
        serial = encode(emit_entries(level_entries(size), size))
        merged = []
        for shard in spec.shards:
            entries = roots[shard.start : shard.stop]
            for level in range(depth + 1, size + 1):
                entries = build_level(level, entries)
            merged.extend(encode(emit_entries(entries, size)))
        merged.sort(key=lambda pair: pair[0])
        if merged != serial:
            return False
    return True


#: Account counters a sharded sweep must reproduce exactly (the engine
#: folds the merged ``SymmetryAccount`` into these stats names).
_SHARD_ACCOUNT_COUNTERS = (
    "instances_scanned",
    "symmetry_labelings_total",
    "symmetry_labelings_pruned",
    "symmetry_bases_pruned",
    "symmetry_instances_suppressed",
)


def smoke_shard() -> int:
    """CI smoke for ``--shard-smoke``: the sharded sweep must be
    indistinguishable from the serial walk.

    Three gates: (1) merged shard emission byte-identical to the serial
    orderly stream at n = 6; (2) per-scheme decision parity — identical
    fingerprint, instance count, and folded ``SymmetryAccount`` counters
    — for every registry scheme at n = 5 plus both Theorem 1.1 schemes
    at n = 6, sharding on (in-process) vs off; (3) when the host has
    multiple cores or ``REPRO_FORCE_WORKERS`` is set, one pool-path
    check per Theorem scheme (workers = 2) against the same reference.
    Nonzero exit on any divergence."""
    from repro.perf.config import forced_workers  # noqa: PLC0415

    failures = 0
    _clear_everything()
    if _shard_emission_parity(6, depth=3):
        print("shard smoke: emission parity OK (n=6, depth=3)", file=sys.stderr)
    else:
        failures += 1
        print(
            "SHARD EMISSION PARITY FAILURE: merged shard stream diverges "
            "from the serial orderly walk at n=6",
            file=sys.stderr,
        )

    def decide(scheme, n, plan):
        _clear_everything()
        ctx = RunContext.isolated()
        verdict = decide_hiding(make_lcp(scheme), n, plan, ctx=ctx)
        counters = {
            name: ctx.stats.get(name) for name in _SHARD_ACCOUNT_COUNTERS
        }
        return verdict, counters

    cases = [(scheme, 5) for scheme in sorted(all_lcps())]
    cases += [("degree-one", 6), ("even-cycle", 6)]
    pool_capable = (os.cpu_count() or 1) > 1 or forced_workers() is not None
    for scheme, n in cases:
        reference, ref_counters = decide(
            scheme, n, _sharding_plan(sharding="off", workers=0)
        )
        sharded, counters = decide(
            scheme, n, _sharding_plan(sharding="on", workers=0)
        )
        checks = {
            "fingerprint": sharded.decision_fingerprint()
            == reference.decision_fingerprint(),
            "instances_scanned": sharded.provenance.instances_scanned
            == reference.provenance.instances_scanned,
            "account": counters == ref_counters,
        }
        legs = ["in-process"]
        if pool_capable and scheme in ("degree-one", "even-cycle"):
            pooled, pooled_counters = decide(
                scheme, n, _sharding_plan(sharding="on", workers=2)
            )
            checks["pool_fingerprint"] = (
                pooled.decision_fingerprint() == reference.decision_fingerprint()
            )
            checks["pool_account"] = pooled_counters == ref_counters
            legs.append("pool(2)")
        if all(checks.values()):
            print(
                f"shard smoke: {scheme} n={n} parity OK ({', '.join(legs)})",
                file=sys.stderr,
            )
        else:
            failures += 1
            bad = [name for name, ok in checks.items() if not ok]
            print(
                f"SHARD PARITY FAILURE: {scheme} n={n}: {', '.join(bad)} differ",
                file=sys.stderr,
            )
    if not pool_capable:
        print(
            "shard smoke: pool leg skipped (single-core host, "
            "REPRO_FORCE_WORKERS unset)",
            file=sys.stderr,
        )
    if failures:
        return 1
    print("shard smoke: all parity checks passed", file=sys.stderr)
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "output", nargs="?", default="BENCH_neighborhood.json", help="pipeline report"
    )
    parser.add_argument(
        "--hiding-output",
        default="BENCH_hiding.json",
        metavar="PATH",
        help="hiding-engine report path",
    )
    parser.add_argument(
        "--early-exit",
        action="store_true",
        help="CI smoke mode: parity checks only, no timing reports",
    )
    parser.add_argument(
        "--symmetry-smoke",
        action="store_true",
        help="CI smoke mode: orbit-pruned vs brute-force parity at n=4 "
        "for both Theorem 1.1 schemes, no timing reports",
    )
    parser.add_argument(
        "--kernel-smoke",
        action="store_true",
        help="CI smoke mode: vectorized-vs-streaming decision parity "
        "across all registry schemes; exits 0 with a note when numpy "
        "is unavailable",
    )
    parser.add_argument(
        "--generation-kernel-smoke",
        action="store_true",
        help="CI smoke mode: vectorized orderly emission must be "
        "byte-identical to the scalar reference (n <= 7) and to the "
        "legacy edge-subset walk (n <= 6); without numpy the scalar "
        "fallback is checked against the legacy walk",
    )
    parser.add_argument(
        "--frontier-smoke",
        action="store_true",
        help="CI smoke mode: run the tiny tracked campaign (2 schemes x "
        "n<=5 x 2 values of k), schema-validate the frontier report, "
        "and require a located verdict flip; backend-independent, so it "
        "runs in both the numpy and no-numpy legs",
    )
    parser.add_argument(
        "--shard-smoke",
        action="store_true",
        help="CI smoke mode: sharded sweeps (subtree work units) must be "
        "indistinguishable from the serial walk — merged emission bytes, "
        "decision fingerprints, instance counts, and SymmetryAccount "
        "totals; set REPRO_FORCE_WORKERS to also exercise the process-"
        "pool path on a single-core runner",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="with --early-exit: write a validated run report to FILE",
    )
    args = parser.parse_args()
    if args.early_exit:
        return smoke_early_exit(trace_out=args.trace_out)
    if args.symmetry_smoke:
        return smoke_symmetry()
    if args.kernel_smoke:
        return smoke_kernel()
    if args.generation_kernel_smoke:
        return smoke_generation()
    if args.frontier_smoke:
        return smoke_frontier()
    if args.shard_smoke:
        return smoke_shard()

    target = Path(args.output)
    rows = []
    for n in (4, 5):
        print(f"benchmarking n={n} ...", file=sys.stderr)
        rows.extend(run(n))
    print("benchmarking symmetry regimes ...", file=sys.stderr)
    symmetry_graphs: dict = {}
    symmetry = run_symmetry(graph_sink=symmetry_graphs)
    print("benchmarking vectorized kernel ...", file=sys.stderr)
    kernel = run_kernel(symmetry, symmetry_graphs)
    print("benchmarking generation kernel ...", file=sys.stderr)
    generation = run_generation()
    print("benchmarking parameter frontier ...", file=sys.stderr)
    frontier = run_frontier()
    print("benchmarking sharded sweeps ...", file=sys.stderr)
    sharding = run_sharding()

    by_key = {(r["regime"], r["n"]): r for r in rows}
    cold_speedup = (
        by_key[("baseline", 5)]["seconds_best"]
        / by_key[("serial_cold", 5)]["seconds_best"]
    )
    warm_speedup = (
        by_key[("baseline", 5)]["seconds_best"]
        / by_key[("serial_warm", 5)]["seconds_best"]
    )
    payload = {
        "benchmark": "neighborhood_pipeline",
        "lcp": "DegreeOneLCP",
        "repeats": REPEATS,
        "cpu_count": os.cpu_count(),
        "serial_speedup_vs_baseline_n5": round(cold_speedup, 3),
        "serial_warm_speedup_vs_baseline_n5": round(warm_speedup, 3),
        "parity_ok": (
            all(r.get("parity_with_baseline", True) for r in rows)
            and symmetry["parity_ok"]
            and kernel["parity_ok"]
            and generation["parity_ok"]
            and frontier["valid"]
            and sharding["parity_ok"]
        ),
        "rows": rows,
        "symmetry": symmetry,
        "kernel": kernel,
        "generation": generation,
        "frontier": frontier,
        "sharding": sharding,
    }
    # Regression sentinel: judge this run's rows against the recorded
    # trajectory and embed the machine-readable verdict block before the
    # payload hits disk; the rows themselves are appended to the history
    # only after both payloads are judged (a run never competes with
    # itself as baseline).
    history = sentinel.load_history()
    sentinel_rows = sentinel.extract_rows(payload)
    payload["sentinel"] = sentinel.verdict_block(sentinel_rows, history)
    print(
        sentinel.render_verdicts(payload["sentinel"]["verdicts"]), file=sys.stderr
    )
    target.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(payload, indent=2))
    print(f"written to {target}", file=sys.stderr)

    hiding_rows = []
    for n in (4, 5):
        print(f"benchmarking hiding n={n} ...", file=sys.stderr)
        hiding_rows.extend(run_hiding(n))
    by_key = {(r["regime"], r["n"]): r for r in hiding_rows}
    hiding_payload = {
        "benchmark": "hiding_engine",
        "lcp": "DegreeOneLCP",
        "repeats": REPEATS,
        "cpu_count": os.cpu_count(),
        "early_exit_speedup_n5": by_key[("streaming_cold", 5)]["early_exit_speedup"],
        "disk_speedup_vs_cold_n5": by_key[("streaming_warm_disk", 5)][
            "disk_speedup_vs_cold"
        ],
        "numpy_version": numpy_version(),
        "vectorized_speedup_vs_streaming_n5": by_key.get(
            ("vectorized_cold", 5), {}
        ).get("speedup_vs_streaming_cold"),
        "parity_ok": all(
            r.get("parity_with_materialized", True) for r in hiding_rows
        ),
        "rows": hiding_rows,
    }
    hiding_sentinel_rows = sentinel.extract_rows(hiding_payload)
    hiding_payload["sentinel"] = sentinel.verdict_block(hiding_sentinel_rows, history)
    print(
        sentinel.render_verdicts(hiding_payload["sentinel"]["verdicts"]),
        file=sys.stderr,
    )
    Path(args.hiding_output).write_text(
        json.dumps(hiding_payload, indent=2) + "\n", encoding="utf-8"
    )
    print(json.dumps(hiding_payload, indent=2))
    print(f"written to {args.hiding_output}", file=sys.stderr)
    history_file = sentinel.append_history(sentinel_rows + hiding_sentinel_rows)
    print(f"timing history appended to {history_file}", file=sys.stderr)
    return 0 if payload["parity_ok"] and hiding_payload["parity_ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
