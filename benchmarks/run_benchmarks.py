"""Neighborhood-pipeline benchmark: writes ``BENCH_neighborhood.json``.

Measures the full Lemma 3.1 sweep (``yes_instances_up_to`` feeding
``build_neighborhood_graph``) for ``DegreeOneLCP`` at ``n = 4, 5`` in
four regimes:

* **baseline** — every perf cache disabled *and* graph families
  enumerated with the pre-optimization object-based algorithm; this is
  the seed-equivalent cost.
* **serial_cold** — the optimized pipeline with all process-wide caches
  cleared first (what a fresh process pays).
* **serial_warm** — the optimized pipeline again, caches populated
  (what every subsequent sweep in the same process pays).
* **parallel_N** — the process-pool builder at 2 and 4 workers.

Every regime's resulting graph is checked for exact parity (views and
edges) against the baseline before its numbers are recorded.  The JSON
also records instance counts, views/sec, cache hit rates, and
``cpu_count`` — on a single-core host the parallel rows measure pure
pool overhead and are expected to *lose* to serial.

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py [output.json]
"""

from __future__ import annotations

import json
import os
import statistics
import sys
import time
from pathlib import Path

from repro.core import DegreeOneLCP
from repro.graphs.encoding import clear_canonical_cache
from repro.graphs.families import (
    clear_family_cache,
    enumerate_graphs_exactly_reference,
)
from repro.neighborhood import build_neighborhood_graph, labeled_yes_instances
from repro.neighborhood.aviews import yes_instances_up_to
from repro.perf import GLOBAL_STATS, PerfStats, clear_shared_caches, overridden
from repro.perf.parallel import build_neighborhood_graph_parallel

REPEATS = 5


def _clear_everything() -> None:
    clear_shared_caches()
    clear_family_cache()
    clear_canonical_cache()
    GLOBAL_STATS.reset()


def _reference_graphs_up_to(n: int):
    for k in range(1, n + 1):
        yield from enumerate_graphs_exactly_reference(k, connected_only=True)


def _timed(fn):
    """Best-of-REPEATS wall time plus the last run's result."""
    times = []
    result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return min(times), statistics.mean(times), result


def _sweep_serial(lcp, n, stats):
    return build_neighborhood_graph(lcp, yes_instances_up_to(lcp, n), stats=stats)


def _sweep_baseline(lcp, n, stats):
    # Seed-equivalent: reference family enumeration, no perf caches.
    instances = labeled_yes_instances(lcp, _reference_graphs_up_to(n), id_bound=n)
    return build_neighborhood_graph(lcp, instances, stats=stats)


def _record(name, n, best, mean, graph, stats, reference=None):
    entry = {
        "regime": name,
        "n": n,
        "seconds_best": round(best, 6),
        "seconds_mean": round(mean, 6),
        "views": len(graph.views),
        "edges": len(graph.edges),
        "instances_scanned": graph.instances_scanned,
        "views_per_sec": round(graph.instances_scanned / best, 1) if best else None,
        "memo_hit_rate": round(stats.hit_rate("memo") or 0.0, 4),
        "layout_hit_rate": round(stats.hit_rate("layout") or 0.0, 4),
    }
    if reference is not None:
        entry["parity_with_baseline"] = (
            graph.views == reference.views and graph.edges == reference.edges
        )
    return entry


def run(n: int) -> list[dict]:
    lcp = DegreeOneLCP()
    rows = []

    # Baseline and cold repeats are interleaved so slow drift in machine
    # load hits both regimes equally instead of skewing the ratio.
    baseline_times: list[float] = []
    cold_times: list[float] = []
    baseline = cold_graph = None
    baseline_stats = PerfStats()
    cold_stats = PerfStats()
    for _ in range(REPEATS):
        with overridden(
            layout_cache=False,
            decision_memo=False,
            family_cache=False,
            canonical_cache=False,
        ):
            _clear_everything()
            baseline_stats.reset()
            start = time.perf_counter()
            baseline = _sweep_baseline(lcp, n, baseline_stats)
            baseline_times.append(time.perf_counter() - start)
        # Cold: clear before every repeat so each run pays full cost.
        _clear_everything()
        cold_stats.reset()
        start = time.perf_counter()
        cold_graph = _sweep_serial(lcp, n, cold_stats)
        cold_times.append(time.perf_counter() - start)
    rows.append(
        _record(
            "baseline",
            n,
            min(baseline_times),
            statistics.mean(baseline_times),
            baseline,
            baseline_stats,
        )
    )
    rows.append(
        _record(
            "serial_cold",
            n,
            min(cold_times),
            statistics.mean(cold_times),
            cold_graph,
            cold_stats,
            reference=baseline,
        )
    )

    warm_stats = PerfStats()
    best, mean, warm_graph = _timed(lambda: _sweep_serial(lcp, n, warm_stats))
    rows.append(
        _record("serial_warm", n, best, mean, warm_graph, warm_stats, reference=baseline)
    )

    for workers in (2, 4):
        par_stats = PerfStats()
        best, mean, par_graph = _timed(
            lambda: build_neighborhood_graph_parallel(
                lcp, yes_instances_up_to(lcp, n), workers=workers, stats=par_stats
            )
        )
        rows.append(
            _record(
                f"parallel_{workers}",
                n,
                best,
                mean,
                par_graph,
                par_stats,
                reference=baseline,
            )
        )
    return rows


def main() -> int:
    target = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("BENCH_neighborhood.json")
    rows = []
    for n in (4, 5):
        print(f"benchmarking n={n} ...", file=sys.stderr)
        rows.extend(run(n))

    by_key = {(r["regime"], r["n"]): r for r in rows}
    cold_speedup = (
        by_key[("baseline", 5)]["seconds_best"]
        / by_key[("serial_cold", 5)]["seconds_best"]
    )
    warm_speedup = (
        by_key[("baseline", 5)]["seconds_best"]
        / by_key[("serial_warm", 5)]["seconds_best"]
    )
    payload = {
        "benchmark": "neighborhood_pipeline",
        "lcp": "DegreeOneLCP",
        "repeats": REPEATS,
        "cpu_count": os.cpu_count(),
        "serial_speedup_vs_baseline_n5": round(cold_speedup, 3),
        "serial_warm_speedup_vs_baseline_n5": round(warm_speedup, 3),
        "parity_ok": all(r.get("parity_with_baseline", True) for r in rows),
        "rows": rows,
    }
    target.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(payload, indent=2))
    print(f"written to {target}", file=sys.stderr)
    return 0 if payload["parity_ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
