"""Benchmark for Fig. 7 (Section 5.1): view-compatibility checks."""

from repro.experiments import run_experiment
from repro.graphs import grid_graph, path_graph
from repro.local import Instance, extract_view
from repro.realizability import node_compatible_with
from repro.realizability.compatibility import identifiers_in, occurrences_of_identifier


def test_fig7_experiment(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("fig7"), rounds=1, iterations=1)
    assert result.ok


def test_compatibility_check_paths(benchmark):
    inst_a = Instance.build(path_graph(5), id_bound=9)
    inst_b = Instance.build(path_graph(7), id_bound=9)
    view_a = extract_view(inst_a, 2, 2)
    view_b = extract_view(inst_b, 3, 2)
    u_local = view_a.ids.index(4)
    verdict = benchmark(lambda: node_compatible_with(view_a, u_local, view_b))
    assert verdict


def test_all_pairs_compatibility_grid(benchmark):
    """Compatibility of every identifier occurrence across two views of
    one grid instance — the inner loop of realizability checking."""
    instance = Instance.build(grid_graph(3, 4), id_bound=12)
    va = extract_view(instance, 5, 2)
    vb = extract_view(instance, 6, 2)
    shared = sorted(identifiers_in(va) & identifiers_in(vb))

    def check_all():
        count = 0
        for ident in shared:
            target = extract_view(instance, instance.ids.node_of(ident), 2)
            for u_local in occurrences_of_identifier(va, ident):
                if node_compatible_with(va, u_local, target):
                    count += 1
        return count

    compatible = benchmark(check_all)
    assert compatible == len(shared)
