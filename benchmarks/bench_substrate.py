"""Substrate micro-benchmarks: the primitives everything else pays for.

Not tied to one paper artifact; these quantify the costs that determine
how far the neighborhood-graph enumerations and adversarial sweeps scale
(canonicalization, exhaustive relabeling, coloring, family enumeration).
"""

from repro.certification import ExhaustiveAdversary, FastVerifier, check_strong_soundness
from repro.core import DegreeOneLCP
from repro.graphs import complete_graph, cycle_graph, grid_graph, random_graph
from repro.graphs.coloring import k_coloring
from repro.graphs.encoding import canonical_form, find_isomorphism
from repro.graphs.families import all_graphs_exactly
from repro.local import Instance, Labeling
from repro.local.views import extract_view_layouts, relabel_view


def test_canonical_form_grid(benchmark):
    graph = grid_graph(3, 3)
    key = benchmark(lambda: canonical_form(graph))
    assert key[0] == 9


def test_find_isomorphism_cycles(benchmark):
    g = cycle_graph(12)
    h = g.relabeled({i: (i * 5) % 12 for i in range(12)})
    iso = benchmark(lambda: find_isomorphism(g, h))
    assert iso is not None


def test_family_enumeration_n5(benchmark):
    count = benchmark(lambda: sum(1 for _ in all_graphs_exactly(5)))
    assert count == 21


def test_k_coloring_hard_instance(benchmark):
    graph = random_graph(14, 0.5, seed=7)
    coloring = benchmark(lambda: k_coloring(graph, 4))
    if coloring is not None:
        from repro.graphs import proper_coloring_ok

        assert proper_coloring_ok(graph, coloring)


def test_fast_verifier_throughput(benchmark):
    """Labelings verified per second — the adversarial sweep's unit cost."""
    lcp = DegreeOneLCP()
    instance = Instance.build(cycle_graph(7))
    verifier = FastVerifier(lcp, instance)
    labeling = Labeling.uniform(instance.graph, 0)

    def verify_batch():
        total = 0
        for _ in range(100):
            total += sum(verifier.votes(labeling).values())
        return total

    benchmark(verify_batch)


def test_relabel_view_fast_path(benchmark):
    instance = Instance.build(grid_graph(3, 3))
    layouts = extract_view_layouts(instance, 2)
    labeling = Labeling.uniform(instance.graph, "c")

    def relabel_all():
        return [
            relabel_view(template, order, labeling)
            for template, order in layouts.values()
        ]

    views = benchmark(relabel_all)
    assert len(views) == 9


def test_exhaustive_sweep_k3(benchmark):
    """The end-to-end adversarial unit: 64 labelings on K3, all ports."""
    lcp = DegreeOneLCP()

    def sweep():
        return check_strong_soundness(
            lcp, [complete_graph(3)], ExhaustiveAdversary(), port_limit=2
        )

    report = benchmark(sweep)
    assert report.passed
