"""Benchmark for Theorem 1.1: the union scheme's three properties.

The headline reproduction measurement: the full machine check of
completeness + exhaustive strong soundness + hiding for H1 ∪ H2.
"""

from repro.certification import ExhaustiveAdversary, check_strong_soundness
from repro.core import UnionLCP
from repro.experiments import run_experiment
from repro.graphs import complete_graph, cycle_graph, path_graph
from repro.local import Instance


def test_thm11_experiment(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("thm11"), rounds=1, iterations=1)
    assert result.ok


def test_union_prover_path(benchmark):
    lcp = UnionLCP()
    instance = Instance.build(path_graph(32))
    labeling = benchmark(lambda: lcp.prover.certify(instance))
    assert len(labeling.nodes()) == 32


def test_union_verification(benchmark):
    lcp = UnionLCP()
    instance = Instance.build(cycle_graph(64))
    labeled = instance.with_labeling(lcp.prover.certify(instance))
    result = benchmark(lambda: lcp.check(labeled))
    assert result.unanimous


def test_exhaustive_strong_soundness_k3(benchmark):
    """8000 labelings over the 20-symbol union alphabet on K3."""
    lcp = UnionLCP()

    def sweep():
        return check_strong_soundness(
            lcp, [complete_graph(3)], ExhaustiveAdversary(), port_limit=1
        )

    report = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert report.passed
    assert report.labelings_checked == 20**3
