"""Benchmark-suite configuration.

Every benchmark regenerates one paper artifact (figure/table/theorem) and
asserts the reproduced shape before/while timing it, so `pytest
benchmarks/ --benchmark-only` doubles as a full reproduction run.
"""
