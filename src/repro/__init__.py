"""repro — Strong and Hiding Distributed Certification of k-Coloring.

An executable model of the LCP (locally checkable proof) framework and a
full reproduction of the constructions in Modanese, Montealegre &
Rios-Wilson, *Brief Announcement: Strong and Hiding Distributed
Certification of k-Coloring*, PODC 2025.

Quickstart::

    from repro import Instance, graphs
    from repro.core import DegreeOneLCP

    g = graphs.path_graph(6)
    lcp = DegreeOneLCP()
    instance = Instance.build(g)
    labeling = lcp.prover.certify(instance)
    verdict = lcp.check(instance.with_labeling(labeling))
    assert verdict.unanimous

See ``examples/`` for runnable scenarios and ``DESIGN.md`` for the system
inventory.
"""

from . import graphs, local
from .errors import ReproError
from .graphs import Graph
from .local import (
    IdentifierAssignment,
    Instance,
    Labeling,
    PortAssignment,
    View,
    extract_view,
)

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "IdentifierAssignment",
    "Instance",
    "Labeling",
    "PortAssignment",
    "ReproError",
    "View",
    "__version__",
    "extract_view",
    "graphs",
    "local",
]
