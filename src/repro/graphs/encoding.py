"""Canonical encodings and isomorphism tools for small graphs.

The family-enumeration machinery (Lemma 3.1 needs "all labeled
yes-instances on at most n nodes") deduplicates graphs up to isomorphism.
For the small orders we enumerate (n <= 8) a brute-force canonical form —
the lexicographically smallest adjacency bitstring over all node
permutations, computed with pruning — is fast enough and has no false
merges, unlike hash-based invariants.
"""

from __future__ import annotations

from itertools import permutations

from ..perf.cache import LRUCache
from ..perf.config import CONFIG
from ..perf.stats import GLOBAL_STATS
from .graph import Graph, Node

#: Canonical forms memoized by labelled graph key.  Family enumeration and
#: the isomorphism tests recompute canonical forms of the same labelled
#: graphs across sweeps; the cache turns repeat calls into dict lookups.
_CANONICAL_CACHE = LRUCache(CONFIG.canonical_cache_size)


def clear_canonical_cache() -> None:
    """Drop all memoized canonical forms (benchmarks measuring cold paths)."""
    _CANONICAL_CACHE.clear()


def adjacency_matrix(graph: Graph, order: list[Node] | None = None) -> list[list[int]]:
    """Dense adjacency matrix in the given node *order* (default: insertion)."""
    nodes = order if order is not None else graph.nodes
    index = {v: i for i, v in enumerate(nodes)}
    n = len(nodes)
    matrix = [[0] * n for _ in range(n)]
    for u, v in graph.edges:
        matrix[index[u]][index[v]] = 1
        matrix[index[v]][index[u]] = 1
    return matrix


def graph_key(graph: Graph) -> tuple[int, ...]:
    """A hashable *labelled* key: (n, sorted edge index pairs).

    Two graphs get the same key iff they are identical as labelled graphs
    after mapping nodes to their insertion-order indices.
    """
    nodes = graph.nodes
    index = {v: i for i, v in enumerate(nodes)}
    edges = sorted((min(index[u], index[v]), max(index[u], index[v])) for u, v in graph.edges)
    return (len(nodes), *[i * len(nodes) + j for i, j in edges])


def canonical_form(graph: Graph) -> tuple[int, ...]:
    """Canonical isomorphism-invariant key for a small graph.

    The key is ``(n, *edge_codes)`` minimized over all node permutations.
    Degree-sequence pre-partitioning prunes the permutation search: only
    permutations mapping nodes to same-degree positions can win.

    Results are memoized by labelled graph key (equal labelled graphs have
    equal canonical forms); disable via ``perf.CONFIG.canonical_cache``.
    """
    if not CONFIG.canonical_cache:
        return _canonical_form_uncached(graph)
    key = graph_key(graph)
    cached = _CANONICAL_CACHE.get(key)
    if cached is not None:
        GLOBAL_STATS.incr("canonical_hits")
        return cached
    GLOBAL_STATS.incr("canonical_misses")
    form = _canonical_form_uncached(graph)
    _CANONICAL_CACHE.put(key, form)
    return form


def _canonical_form_uncached(graph: Graph) -> tuple[int, ...]:
    """The permutation search behind :func:`canonical_form`."""
    nodes = graph.nodes
    n = len(nodes)
    if n == 0:
        return (0,)
    # Group nodes by degree; permutations must respect degree classes.
    by_degree: dict[int, list[Node]] = {}
    for v in nodes:
        by_degree.setdefault(graph.degree(v), []).append(v)
    degrees_sorted = sorted(by_degree)
    # Target positions: nodes sorted by degree get contiguous index blocks.
    blocks = [by_degree[d] for d in degrees_sorted]

    best: tuple[int, ...] | None = None
    for ordering in _block_permutations(blocks):
        index = {v: i for i, v in enumerate(ordering)}
        codes = sorted(
            min(index[u], index[v]) * n + max(index[u], index[v]) for u, v in graph.edges
        )
        key = tuple(codes)
        if best is None or key < best:
            best = key
    assert best is not None
    return (n, *best)


def _block_permutations(blocks: list[list[Node]]):
    """All orderings that permute nodes only within their degree block."""
    if not blocks:
        yield []
        return
    head, *rest = blocks
    for head_perm in permutations(head):
        for tail in _block_permutations(rest):
            yield list(head_perm) + tail


def are_isomorphic(g1: Graph, g2: Graph) -> bool:
    """Exact isomorphism test for small graphs (via canonical forms)."""
    if g1.order != g2.order or g1.size != g2.size:
        return False
    if g1.degree_sequence() != g2.degree_sequence():
        return False
    return canonical_form(g1) == canonical_form(g2)


def find_isomorphism(g1: Graph, g2: Graph) -> dict[Node, Node] | None:
    """An explicit isomorphism ``g1 -> g2`` for small graphs, or ``None``."""
    if g1.order != g2.order or g1.size != g2.size:
        return None
    if g1.degree_sequence() != g2.degree_sequence():
        return None
    nodes2 = g2.nodes
    deg2 = {v: g2.degree(v) for v in nodes2}
    nodes1 = sorted(g1.nodes, key=lambda v: (-g1.degree(v), repr(v)))

    def backtrack(assigned: dict[Node, Node], used: set[Node]) -> dict[Node, Node] | None:
        if len(assigned) == g1.order:
            return dict(assigned)
        v = nodes1[len(assigned)]
        for w in nodes2:
            if w in used or deg2[w] != g1.degree(v):
                continue
            ok = True
            for prev_v, prev_w in assigned.items():
                if g1.has_edge(v, prev_v) != g2.has_edge(w, prev_w):
                    ok = False
                    break
            if not ok:
                continue
            assigned[v] = w
            used.add(w)
            result = backtrack(assigned, used)
            if result is not None:
                return result
            del assigned[v]
            used.remove(w)
        return None

    return backtrack({}, set())
