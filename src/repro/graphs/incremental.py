"""Incremental non-``k``-colorability detectors for streamed edge feeds.

The streaming hiding engine (:mod:`repro.neighborhood.streaming`) fuses
the construction of ``V(D, n)`` with the Lemma 3.2 colorability decision:
instead of materializing the graph and then coloring it, edges are fed
one at a time into the structures here, which either absorb the edge or
report a non-``k``-colorability witness the moment one exists.

* :class:`ParityForest` — union-find with parity for ``k = 2``.  Each
  union stores the tree edge, so when a same-parity edge closes an odd
  cycle the actual closed walk is recovered from the forest (the witness
  the Figures 3–6 experiments display), not just a yes/no bit.
* :class:`IncrementalKColoring` — a DSATUR-maintained proper coloring
  for general ``k``.  Conflicting edges trigger a local repair (recolor
  one endpoint) and, when that fails, a conflict-driven restart: an exact
  re-solve of the accumulated subgraph via :func:`~repro.graphs.coloring.
  k_coloring`.  ``failed`` becomes ``True`` exactly when the accumulated
  subgraph is not ``k``-colorable — a sound early-exit signal, since a
  non-``k``-colorable subgraph keeps any supergraph non-``k``-colorable.

Both structures support :meth:`clone`, which the cross-``n`` warm start
uses to extend a finished sweep's state without mutating it.
"""

from __future__ import annotations

from collections import deque

from .graph import Graph


class ParityForest:
    """Union-find with parity plus the spanning forest for walk recovery.

    Nodes are dense integer indices (the view indices of the neighborhood
    graph).  :meth:`add_edge` returns ``None`` while the accumulated graph
    stays bipartite, and an odd closed walk ``[v0, ..., vk, v0]`` (the
    :func:`repro.graphs.properties.find_odd_cycle` convention) the moment
    an edge closes an odd cycle.
    """

    __slots__ = ("parent", "parity", "rank", "tree_adj", "unions")

    def __init__(self) -> None:
        self.parent: list[int] = []
        self.parity: list[int] = []
        self.rank: list[int] = []
        #: Adjacency over *forest* edges only — the unique tree path
        #: between same-component nodes is the walk skeleton.
        self.tree_adj: dict[int, list[int]] = {}
        self.unions = 0

    def ensure(self, idx: int) -> None:
        """Register nodes ``0..idx`` (no-op for known indices)."""
        while len(self.parent) <= idx:
            i = len(self.parent)
            self.parent.append(i)
            self.parity.append(0)
            self.rank.append(0)

    def find(self, x: int) -> tuple[int, int]:
        """``(root, parity_to_root)`` with iterative path compression."""
        parent, parity = self.parent, self.parity
        root, p = x, 0
        while parent[root] != root:
            p ^= parity[root]
            root = parent[root]
        # Second pass: point the chain at the root with adjusted parities.
        node, p_node = x, p
        while parent[node] != root:
            nxt = parent[node]
            nxt_parity = p_node ^ parity[node]
            parent[node] = root
            parity[node] = p_node
            node, p_node = nxt, nxt_parity
        return root, p

    def add_edge(self, i: int, j: int) -> list[int] | None:
        """Feed one edge; returns an odd closed walk iff it creates one."""
        self.ensure(max(i, j))
        if i == j:
            # A loop is an odd closed walk of length 1.
            return [i, i]
        root_i, parity_i = self.find(i)
        root_j, parity_j = self.find(j)
        if root_i != root_j:
            # Union by rank; the edge itself joins the forest.
            if self.rank[root_i] < self.rank[root_j]:
                root_i, root_j = root_j, root_i
                parity_i, parity_j = parity_j, parity_i
            self.parent[root_j] = root_i
            self.parity[root_j] = parity_i ^ parity_j ^ 1
            if self.rank[root_i] == self.rank[root_j]:
                self.rank[root_i] += 1
            self.tree_adj.setdefault(i, []).append(j)
            self.tree_adj.setdefault(j, []).append(i)
            self.unions += 1
            return None
        if parity_i != parity_j:
            return None  # closes an even cycle: still bipartite
        # Same component, same parity: the tree path i -> j is even, so
        # path + this edge is an odd closed walk.
        return self._tree_path(i, j) + [i]

    def _tree_path(self, src: int, dst: int) -> list[int]:
        """The unique forest path ``[src, ..., dst]`` (BFS; runs once)."""
        prev: dict[int, int] = {src: src}
        queue: deque[int] = deque([src])
        while queue:
            u = queue.popleft()
            if u == dst:
                break
            for w in self.tree_adj.get(u, ()):
                if w not in prev:
                    prev[w] = u
                    queue.append(w)
        path = [dst]
        while path[-1] != src:
            path.append(prev[path[-1]])
        path.reverse()
        return path

    def two_coloring(self) -> dict[int, int]:
        """Parity-to-root colors — a proper 2-coloring while no odd cycle
        has been reported."""
        return {i: self.find(i)[1] for i in range(len(self.parent))}

    def clone(self) -> "ParityForest":
        other = ParityForest()
        other.parent = list(self.parent)
        other.parity = list(self.parity)
        other.rank = list(self.rank)
        other.tree_adj = {k: list(v) for k, v in self.tree_adj.items()}
        other.unions = self.unions
        return other

    def __len__(self) -> int:
        return len(self.parent)


class IncrementalKColoring:
    """A proper ``k``-coloring maintained under edge insertions.

    The invariant between calls: ``color`` is a proper coloring of every
    edge fed so far, unless ``failed`` is set, in which case the
    accumulated subgraph has been *proved* non-``k``-colorable by the
    exact solver.  Conflicts are resolved DSATUR-style: first a local
    repair (recolor one endpoint to a color unused by its neighbors),
    then a conflict-driven restart (exact re-solve of the whole
    accumulated subgraph).
    """

    __slots__ = ("k", "adj", "color", "failed", "restarts", "repairs")

    def __init__(self, k: int) -> None:
        self.k = k
        self.adj: dict[int, list[int]] = {}
        self.color: dict[int, int] = {}
        self.failed = False
        self.restarts = 0
        self.repairs = 0

    def add_node(self, i: int) -> None:
        if i in self.color or self.failed:
            if self.k == 0 and i not in self.color:
                self.failed = True
            return
        if self.k == 0:
            self.failed = True
            return
        self.adj.setdefault(i, [])
        self.color[i] = 0

    def add_edge(self, i: int, j: int) -> None:
        if self.failed:
            return
        self.add_node(i)
        self.add_node(j)
        if self.failed:
            return
        if i == j:
            self.failed = True  # loops are never properly colorable
            return
        self.adj[i].append(j)
        self.adj[j].append(i)
        if self.color[i] != self.color[j]:
            return
        if self._repair(j) or self._repair(i):
            self.repairs += 1
            return
        self._restart()

    def _repair(self, v: int) -> bool:
        used = {self.color[u] for u in self.adj[v]}
        for c in range(self.k):
            if c not in used:
                self.color[v] = c
                return True
        return False

    def _restart(self) -> None:
        from .coloring import k_coloring  # noqa: PLC0415

        self.restarts += 1
        g = Graph(nodes=self.color)
        for v, nbrs in self.adj.items():
            for u in nbrs:
                if v <= u:
                    g.add_edge(v, u)
        solution = k_coloring(g, self.k)
        if solution is None:
            self.failed = True
        else:
            self.color = dict(solution)

    def clone(self) -> "IncrementalKColoring":
        other = IncrementalKColoring(self.k)
        other.adj = {k: list(v) for k, v in self.adj.items()}
        other.color = dict(self.color)
        other.failed = self.failed
        other.restarts = self.restarts
        other.repairs = self.repairs
        return other

    def __len__(self) -> int:
        return len(self.color)
