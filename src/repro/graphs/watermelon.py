"""Watermelon graph recognition (paper Section 7.2).

A *watermelon graph* is defined by two endpoint nodes ``v1, v2`` and a
collection of internally disjoint paths of length at least 2 between them.
Theorem 1.4 gives a strong and hiding one-round LCP with ``O(log n)``-bit
certificates for this class; the prover needs the decomposition produced
here (endpoints, and each path as an ordered node sequence).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import GraphError
from .graph import Graph, Node
from .traversal import is_connected


@dataclass(frozen=True)
class WatermelonDecomposition:
    """Endpoints and the ordered internal paths of a watermelon graph.

    Each path is the full node sequence ``(v1, ..., v2)`` including both
    endpoints; paths are sorted by their internal node lists for
    determinism.
    """

    endpoints: tuple[Node, Node]
    paths: tuple[tuple[Node, ...], ...]

    @property
    def path_count(self) -> int:
        return len(self.paths)

    def path_lengths(self) -> list[int]:
        """Edge counts of the paths."""
        return [len(p) - 1 for p in self.paths]

    def path_number_of(self, node: Node) -> int:
        """1-based path index of an internal *node*."""
        for index, path in enumerate(self.paths, start=1):
            if node in path[1:-1]:
                return index
        raise GraphError(f"node {node!r} is not internal to any watermelon path")


def watermelon_decomposition(graph: Graph) -> WatermelonDecomposition | None:
    """Decompose *graph* as a watermelon, or return ``None``.

    Recognition logic: in a watermelon with ``k >= 3`` paths the endpoints
    are exactly the nodes of degree ``k >= 3`` and all internal nodes have
    degree 2.  With ``k <= 2`` paths the graph is a path or an (even or
    odd) cycle, where the endpoint choice is ambiguous; we pick the
    deterministic choice described inline.  Single-path watermelons are
    exactly simple paths with at least 2 edges; two-path watermelons are
    exactly cycles of length >= 4 (each arc must have length >= 2).
    """
    n = graph.order
    if n < 3 or not is_connected(graph) or graph.has_loop():
        return None

    degrees = {v: graph.degree(v) for v in graph.nodes}
    high = sorted((v for v, d in degrees.items() if d >= 3), key=repr)
    deg2 = [v for v, d in degrees.items() if d == 2]
    deg1 = sorted((v for v, d in degrees.items() if d == 1), key=repr)

    if len(high) > 2 or (high and deg1):
        return None

    if len(high) == 2:
        v1, v2 = high
        if len(deg2) != n - 2:
            return None
        return _trace_paths(graph, v1, v2)
    if len(high) == 1:
        # A single high-degree node cannot be both endpoints (paths have
        # length >= 2, so v1 != v2 and both ends have the same degree).
        return None
    if len(deg1) == 2 and len(deg2) == n - 2:
        # A simple path: one-path watermelon, endpoints are the leaves.
        if n - 1 < 2:
            return None
        return _trace_paths(graph, deg1[0], deg1[1])
    if not deg1 and len(deg2) == n:
        # A cycle: two-path watermelon. Pick the deterministic endpoints:
        # the smallest node and the node opposite it (both arcs length>=2).
        if n < 4:
            return None
        nodes_sorted = sorted(graph.nodes, key=repr)
        v1 = nodes_sorted[0]
        order = _cycle_order(graph, v1)
        v2 = order[len(order) // 2]
        return _trace_paths(graph, v1, v2)
    return None


def is_watermelon(graph: Graph) -> bool:
    """True iff *graph* is a watermelon graph."""
    return watermelon_decomposition(graph) is not None


def _cycle_order(graph: Graph, start: Node) -> list[Node]:
    """Nodes of a cycle graph in traversal order starting at *start*."""
    order = [start]
    prev: Node | None = None
    current = start
    while True:
        nxt = sorted((w for w in graph.neighbors(current) if w != prev), key=repr)[0]
        if nxt == start:
            return order
        order.append(nxt)
        prev, current = current, nxt


def _trace_paths(graph: Graph, v1: Node, v2: Node) -> WatermelonDecomposition | None:
    """Follow degree-2 chains from *v1* and validate the watermelon shape."""
    paths: list[tuple[Node, ...]] = []
    seen_internal: set[Node] = set()
    for first in sorted(graph.neighbors(v1), key=repr):
        if first == v2:
            return None  # a direct edge is a length-1 path, disallowed
        if first in seen_internal:
            continue
        path = [v1, first]
        prev: Node = v1
        current: Node = first
        while current != v2:
            if graph.degree(current) != 2 or current == v1:
                return None
            (nxt,) = [w for w in graph.neighbors(current) if w != prev]
            path.append(nxt)
            prev, current = current, nxt
        internal = set(path[1:-1])
        if internal & seen_internal:
            return None
        seen_internal |= internal
        paths.append(tuple(path))
    # Every node must be used: endpoints plus the internal nodes.
    if len(seen_internal) + 2 != graph.order:
        return None
    if any(len(p) - 1 < 2 for p in paths):
        return None
    paths.sort(key=lambda p: [repr(x) for x in p])
    return WatermelonDecomposition(endpoints=(v1, v2), paths=tuple(paths))
