"""Shatter points (paper Section 7.1).

A node ``v`` is a *shatter point* of ``G`` if ``G - N[v]`` is disconnected
(has at least two connected components).  Theorem 1.3 gives a strong and
hiding LCP for 2-coloring on the class of graphs admitting a shatter point;
the certificates are built around the component structure of ``G - N[v]``,
which is what :func:`shatter_decomposition` computes.

Lemma 7.1 characterizes bipartiteness around a shatter point; it is
implemented here as :func:`lemma_7_1_conditions` and machine-checked in the
test suite against plain bipartiteness.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import GraphError
from .graph import Graph, Node
from .properties import bipartition
from .traversal import connected_components


@dataclass(frozen=True)
class ShatterDecomposition:
    """The structure around a shatter point ``v``.

    *components* lists the connected components of ``G - N[v]`` in a
    deterministic order; component numbering (1-based, as in the paper's
    certificates) follows this order.
    """

    point: Node
    neighbors: frozenset[Node]
    components: tuple[frozenset[Node], ...]

    @property
    def component_count(self) -> int:
        return len(self.components)

    def component_number(self, node: Node) -> int:
        """1-based index of the component containing *node*."""
        for index, comp in enumerate(self.components, start=1):
            if node in comp:
                return index
        raise GraphError(f"node {node!r} is not in any component of G - N[v]")


def shatter_decomposition(graph: Graph, v: Node) -> ShatterDecomposition:
    """Decompose *graph* around candidate shatter point *v*.

    The result is valid regardless of whether *v* actually shatters the
    graph; check :attr:`ShatterDecomposition.component_count` >= 2.
    """
    rest = graph.subtract_closed_neighborhood(v)
    comps = connected_components(rest)
    comps_sorted = tuple(
        frozenset(c) for c in sorted(comps, key=lambda c: sorted(map(repr, c)))
    )
    return ShatterDecomposition(
        point=v, neighbors=frozenset(graph.neighbors(v)), components=comps_sorted
    )


def is_shatter_point(graph: Graph, v: Node) -> bool:
    """True iff ``G - N[v]`` has at least two connected components."""
    return shatter_decomposition(graph, v).component_count >= 2


def shatter_points(graph: Graph) -> list[Node]:
    """All shatter points of *graph*, in node order."""
    return [v for v in graph.nodes if is_shatter_point(graph, v)]


def has_shatter_point(graph: Graph) -> bool:
    """True iff *graph* admits a shatter point (the class H of Thm 1.3)."""
    return any(is_shatter_point(graph, v) for v in graph.nodes)


def lemma_7_1_conditions(graph: Graph, v: Node) -> tuple[bool, str]:
    """Evaluate the three conditions of Lemma 7.1 at node *v*.

    Returns ``(holds, reason)`` where *reason* names the first violated
    condition (or is empty).  Lemma 7.1: ``G`` is bipartite iff

    1. ``N(v)`` is independent;
    2. every component ``C_i`` of ``G - N[v]`` is bipartite;
    3. the nodes of ``N^2(v)`` intersect only one side of each ``G[C_i]``.
    """
    neighbors = graph.neighbors(v)
    for a in neighbors:
        for b in neighbors:
            if a != b and graph.has_edge(a, b):
                return False, f"N(v) not independent: edge ({a!r}, {b!r})"
        if graph.has_edge(a, a):
            return False, f"N(v) not independent: loop at {a!r}"

    decomp = shatter_decomposition(graph, v)
    for index, comp in enumerate(decomp.components, start=1):
        sub = graph.induced_subgraph(comp)
        result = bipartition(sub)
        if not result.is_bipartite:
            return False, f"component {index} is not bipartite"
        coloring = result.coloring
        assert coloring is not None
        # Colors of component nodes adjacent to N(v); they must be uniform
        # per component (condition 3, "N^2(v) touches one part only").
        touched = {
            coloring[w]
            for u in neighbors
            for w in graph.neighbors(u)
            if w in comp
        }
        if len(touched) > 1:
            return False, f"N^2(v) touches both sides of component {index}"
    return True, ""
