"""The ``r``-forgetful property (paper Section 1.3, Fig. 1, Lemma 2.1).

A graph ``G`` is *r-forgetful* if for every node ``v`` and every neighbor
``u`` of ``v`` there is a path ``P = (v_0 = v, v_1, ..., v_r)`` of length
``r`` such that the distances from the path to everything ``u`` can see
(``N^r(u)``) grow monotonically — the intuition being that, having arrived
at ``v`` from ``u``, one can escape ``v`` without backtracking through
``u``'s ``r``-neighborhood.

Two formalizations are implemented, selected by *mode*:

``"strict"``
    The paper's literal text: for every ``w ∈ N^r(u)``, ``dist(v_i, w)``
    is strictly increasing in ``i`` starting from ``i = 0``.  **This is
    unsatisfiable for r >= 2**: the path's first step ``v_1`` lies in
    ``N^r(u)`` (``dist(u, v_1) <= 2 <= r``) yet ``dist(v_1, v_1) = 0 <
    dist(v_0, v_1)``.  For ``r = 1`` it matches the paper's examples.
    The test suite machine-checks this impossibility; the Fig. 1
    experiment reports it.

``"escape"`` (default)
    The intent-based reading that Lemma 2.1's proof actually uses:
    ``dist(v_i, w)`` must be *strictly* increasing for ``w ∈ {u, v}``
    (so the path walks straight away from the arrival edge, gaining one
    hop per step) and non-decreasing for every other ``w ∈ N^r(u)``
    that the path does not itself traverse (the path may cut straight
    through ``N^r(u)`` — unavoidable, since every first step lands in
    it — but it may never turn back toward a watched node it leaves
    aside).  Under this reading the guaranteed diameter bound is
    ``diam >= r + 1``, large cycles ``C_{~4r+}`` and tori are
    r-forgetful, and boundary nodes of finite grids and leaves of trees
    produce defects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from ..errors import GraphError
from .graph import Graph, Node
from .traversal import ball, bfs_distances

ForgetfulMode = Literal["strict", "escape"]


@dataclass(frozen=True)
class ForgetfulReport:
    """Result of an ``r``-forgetful check.

    *escape_paths* maps each ordered pair ``(v, u)`` (``u`` a neighbor of
    ``v``) to a witnessing escape path when one exists; *defects* lists
    the pairs with no escape path.  The graph is r-forgetful iff *defects*
    is empty.
    """

    radius: int
    mode: ForgetfulMode
    escape_paths: dict[tuple[Node, Node], tuple[Node, ...]] = field(default_factory=dict)
    defects: list[tuple[Node, Node]] = field(default_factory=list)

    @property
    def is_forgetful(self) -> bool:
        return not self.defects

    @property
    def defect_count(self) -> int:
        return len(self.defects)


class _DistanceCache:
    """Per-graph BFS cache shared across escape-path searches."""

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self._dist: dict[Node, dict[Node, int]] = {}

    def dist(self, source: Node, target: Node) -> int:
        if source not in self._dist:
            self._dist[source] = bfs_distances(self.graph, source)
        # Nodes outside the component count as infinitely far away.
        return self._dist[source].get(target, self.graph.order + 1)


def find_escape_path(
    graph: Graph,
    v: Node,
    u: Node,
    radius: int,
    mode: ForgetfulMode = "escape",
    cache: _DistanceCache | None = None,
) -> tuple[Node, ...] | None:
    """An escape path for the ordered pair ``(v, u)``, or ``None``.

    *u* must be a neighbor of *v*.  See the module docstring for the two
    monotonicity modes.
    """
    if not graph.has_edge(v, u):
        raise GraphError(f"find_escape_path: {u!r} is not a neighbor of {v!r}")
    if radius < 1:
        raise GraphError("find_escape_path needs radius >= 1")
    if cache is None:
        cache = _DistanceCache(graph)
    watched = sorted(ball(graph, u, radius), key=repr)

    def step_ok(path: list[Node], nxt: Node) -> bool:
        """Per-step pruning: distances to u and v must strictly grow."""
        current = path[-1]
        if mode == "strict":
            return all(
                cache.dist(w, nxt) > cache.dist(w, current) for w in watched
            )
        return (
            cache.dist(u, nxt) > cache.dist(u, current)
            and cache.dist(v, nxt) > cache.dist(v, current)
        )

    def complete_ok(path: list[Node]) -> bool:
        """Escape-mode completion check: off-path watched nodes may never
        get closer along the path (the path itself may cut through
        N^r(u), but it must never turn back toward any part of it that
        it does not traverse)."""
        if mode == "strict":
            return True  # fully enforced per step
        interior = set(path[1:])
        for w in watched:
            if w in interior:
                continue
            for i in range(len(path) - 1):
                if cache.dist(w, path[i + 1]) < cache.dist(w, path[i]):
                    return False
        return True

    def extend(path: list[Node]) -> tuple[Node, ...] | None:
        if len(path) == radius + 1:
            return tuple(path) if complete_ok(path) else None
        for nxt in sorted(graph.neighbors(path[-1]), key=repr):
            if nxt in path:
                continue
            if step_ok(path, nxt):
                found = extend(path + [nxt])
                if found is not None:
                    return found
        return None

    return extend([v])


def forgetful_report(graph: Graph, radius: int, mode: ForgetfulMode = "escape") -> ForgetfulReport:
    """Check every ``(v, u)`` pair; collect escape paths and defects."""
    cache = _DistanceCache(graph)
    report = ForgetfulReport(radius=radius, mode=mode)
    for v in graph.nodes:
        for u in sorted(graph.neighbors(v), key=repr):
            path = find_escape_path(graph, v, u, radius, mode=mode, cache=cache)
            if path is None:
                report.defects.append((v, u))
            else:
                report.escape_paths[(v, u)] = path
    return report


def is_r_forgetful(graph: Graph, radius: int, mode: ForgetfulMode = "escape") -> bool:
    """True iff *graph* is ``radius``-forgetful under the given *mode*."""
    return forgetful_report(graph, radius, mode=mode).is_forgetful


def forgetful_radius(graph: Graph, max_radius: int, mode: ForgetfulMode = "escape") -> int:
    """Largest ``r <= max_radius`` with *graph* r-forgetful (0 if none).

    Every graph is vacuously 0-forgetful (the empty escape path), so the
    result is at least 0.  Under both modes the property is antitone in
    ``r`` (a prefix of an escape path works for smaller ``r`` against a
    smaller watched set), so the first failing radius ends the scan.
    """
    best = 0
    for r in range(1, max_radius + 1):
        if is_r_forgetful(graph, r, mode=mode):
            best = r
        else:
            break
    return best
