"""Graph generators for the families used throughout the paper.

Every generator returns a :class:`~repro.graphs.graph.Graph` with integer
nodes ``0..n-1`` and a deterministic structure, so instances (and hence
views, neighborhood graphs, and experiment outputs) are reproducible.

The families map onto the paper as follows:

* paths / stars / caterpillars / pendant variants — minimum-degree-1 class
  ``H1`` of Theorem 1.1;
* even cycles — class ``H2``;
* grids and trees — the ``r``-forgetful graphs of the lower bound
  (Theorem 1.2, Fig. 1);
* watermelon graphs — Theorem 1.4;
* theta / tadpole / barbell and friends — graphs with shatter points and
  the no-instance stock for soundness checks.
"""

from __future__ import annotations

import heapq
import random

from ..errors import GraphError
from .graph import Graph


def empty_graph(n: int) -> Graph:
    """``n`` isolated nodes (used by the Lemma 6.2 padding trick)."""
    _require(n >= 0, "empty_graph needs n >= 0")
    return Graph(nodes=range(n))


def path_graph(n: int) -> Graph:
    """The path ``P_n`` on nodes ``0..n-1``."""
    _require(n >= 1, "path_graph needs n >= 1")
    return Graph(nodes=range(n), edges=[(i, i + 1) for i in range(n - 1)])


def cycle_graph(n: int) -> Graph:
    """The cycle ``C_n``; even ``n`` gives the class H2 of Theorem 1.1."""
    _require(n >= 3, "cycle_graph needs n >= 3")
    return Graph(edges=[(i, (i + 1) % n) for i in range(n)])


def star_graph(leaves: int) -> Graph:
    """A star: center ``0`` joined to ``leaves`` leaves ``1..leaves``."""
    _require(leaves >= 1, "star_graph needs at least one leaf")
    return Graph(edges=[(0, i) for i in range(1, leaves + 1)])


def complete_graph(n: int) -> Graph:
    """The clique ``K_n`` (a no-instance of 2-col for ``n >= 3``)."""
    _require(n >= 1, "complete_graph needs n >= 1")
    g = Graph(nodes=range(n))
    for i in range(n):
        for j in range(i + 1, n):
            g.add_edge(i, j)
    return g


def complete_bipartite_graph(a: int, b: int) -> Graph:
    """``K_{a,b}`` with parts ``0..a-1`` and ``a..a+b-1``."""
    _require(a >= 1 and b >= 1, "complete_bipartite_graph needs both parts non-empty")
    g = Graph(nodes=range(a + b))
    for i in range(a):
        for j in range(a, a + b):
            g.add_edge(i, j)
    return g


def grid_graph(rows: int, cols: int) -> Graph:
    """The ``rows × cols`` grid; the canonical r-forgetful yes-instance."""
    _require(rows >= 1 and cols >= 1, "grid_graph needs positive dimensions")
    g = Graph(nodes=range(rows * cols))
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                g.add_edge(v, v + 1)
            if r + 1 < rows:
                g.add_edge(v, v + cols)
    return g


def binary_tree(height: int) -> Graph:
    """Complete binary tree of the given *height* (height 0 = one node)."""
    _require(height >= 0, "binary_tree needs height >= 0")
    n = 2 ** (height + 1) - 1
    g = Graph(nodes=range(n))
    for v in range(1, n):
        g.add_edge(v, (v - 1) // 2)
    return g


def spider_graph(legs: int, leg_length: int) -> Graph:
    """*legs* disjoint paths of *leg_length* edges glued at a center ``0``."""
    _require(legs >= 1 and leg_length >= 1, "spider_graph needs positive parameters")
    g = Graph(nodes=[0])
    nxt = 1
    for _ in range(legs):
        prev = 0
        for _ in range(leg_length):
            g.add_edge(prev, nxt)
            prev = nxt
            nxt += 1
    return g


def caterpillar_graph(spine: int, legs_per_node: int = 1) -> Graph:
    """A path of *spine* nodes with pendant leaves attached to each."""
    _require(spine >= 1 and legs_per_node >= 0, "caterpillar needs spine >= 1")
    g = path_graph(spine)
    nxt = spine
    for v in range(spine):
        for _ in range(legs_per_node):
            g.add_edge(v, nxt)
            nxt += 1
    return g


def pan_graph(cycle_len: int, tail_len: int = 1) -> Graph:
    """A cycle with a pendant path (a "pan"); min degree 1, one cycle."""
    _require(cycle_len >= 3 and tail_len >= 1, "pan_graph needs cycle >= 3, tail >= 1")
    g = cycle_graph(cycle_len)
    prev = 0
    for i in range(tail_len):
        nxt = cycle_len + i
        g.add_edge(prev, nxt)
        prev = nxt
    return g


def tadpole_graph(cycle_len: int, tail_len: int) -> Graph:
    """Alias of :func:`pan_graph` under its other common name."""
    return pan_graph(cycle_len, tail_len)


def theta_graph(a: int, b: int, c: int) -> Graph:
    """Two hubs joined by three internally disjoint paths of lengths a,b,c.

    Theta graphs are the smallest watermelon graphs with three paths and
    the canonical min-degree-2, two-cycle instances needed by the lower
    bound of Section 5.
    """
    return watermelon_graph([a, b, c])


def watermelon_graph(path_lengths: list[int]) -> Graph:
    """A watermelon graph (Section 7.2): endpoints ``0`` and ``1`` joined by
    internally disjoint paths whose *lengths* (edge counts) are given.

    Every length must be at least 2, per the paper's definition.
    """
    _require(len(path_lengths) >= 1, "watermelon_graph needs at least one path")
    _require(all(length >= 2 for length in path_lengths), "watermelon paths need length >= 2")
    g = Graph(nodes=[0, 1])
    nxt = 2
    for length in path_lengths:
        prev = 0
        for _ in range(length - 1):
            g.add_edge(prev, nxt)
            prev = nxt
            nxt += 1
        g.add_edge(prev, 1)
    return g


def barbell_graph(clique: int, bridge: int) -> Graph:
    """Two ``K_clique`` cliques joined by a path of *bridge* edges."""
    _require(clique >= 3 and bridge >= 1, "barbell needs clique >= 3, bridge >= 1")
    g = complete_graph(clique)
    offset = clique
    # Second clique.
    for i in range(clique):
        for j in range(i + 1, clique):
            g.add_edge(offset + i, offset + j)
    # Bridge path from node 0 to node offset.
    prev = 0
    for i in range(bridge - 1):
        nxt = 2 * clique + i
        g.add_edge(prev, nxt)
        prev = nxt
    g.add_edge(prev, offset)
    return g


def book_graph(pages: int) -> Graph:
    """*pages* triangles sharing one common edge ``{0, 1}`` (odd cycles)."""
    _require(pages >= 1, "book_graph needs pages >= 1")
    g = Graph(edges=[(0, 1)])
    for i in range(pages):
        v = 2 + i
        g.add_edge(0, v)
        g.add_edge(1, v)
    return g


def friendship_graph(triangles: int) -> Graph:
    """*triangles* triangles sharing the single hub ``0``."""
    _require(triangles >= 1, "friendship_graph needs triangles >= 1")
    g = Graph(nodes=[0])
    nxt = 1
    for _ in range(triangles):
        a, b = nxt, nxt + 1
        nxt += 2
        g.add_edge(0, a)
        g.add_edge(0, b)
        g.add_edge(a, b)
    return g


def lollipop_with_pendants(cycle_len: int, pendants: int) -> Graph:
    """An odd or even cycle with *pendants* leaves on node 0 (class H1 stock)."""
    _require(cycle_len >= 3 and pendants >= 1, "needs cycle >= 3 and pendants >= 1")
    g = cycle_graph(cycle_len)
    for i in range(pendants):
        g.add_edge(0, cycle_len + i)
    return g


def random_tree(n: int, seed: int) -> Graph:
    """A uniformly random labelled tree via a random Prüfer sequence."""
    _require(n >= 1, "random_tree needs n >= 1")
    if n == 1:
        return Graph(nodes=[0])
    if n == 2:
        return Graph(edges=[(0, 1)])
    rng = random.Random(seed)
    prufer = [rng.randrange(n) for _ in range(n - 2)]
    return tree_from_prufer(prufer)


def tree_from_prufer(prufer: list[int]) -> Graph:
    """Decode a Prüfer sequence into the tree it encodes."""
    n = len(prufer) + 2
    _require(all(0 <= x < n for x in prufer), "Prüfer entries out of range")
    degree = [1] * n
    for x in prufer:
        degree[x] += 1
    g = Graph(nodes=range(n))
    leaves = [v for v in range(n) if degree[v] == 1]
    heapq.heapify(leaves)
    for x in prufer:
        leaf = heapq.heappop(leaves)
        g.add_edge(leaf, x)
        degree[x] -= 1
        if degree[x] == 1:
            heapq.heappush(leaves, x)
    u = heapq.heappop(leaves)
    v = heapq.heappop(leaves)
    g.add_edge(u, v)
    return g


def random_bipartite_graph(a: int, b: int, p: float, seed: int) -> Graph:
    """Random bipartite graph: each cross edge present with probability *p*."""
    _require(a >= 1 and b >= 1, "random_bipartite_graph needs both parts non-empty")
    _require(0.0 <= p <= 1.0, "edge probability must lie in [0, 1]")
    rng = random.Random(seed)
    g = Graph(nodes=range(a + b))
    for i in range(a):
        for j in range(a, a + b):
            if rng.random() < p:
                g.add_edge(i, j)
    return g


def random_graph(n: int, p: float, seed: int) -> Graph:
    """Erdős–Rényi ``G(n, p)`` (no-instance stock for soundness checks)."""
    _require(n >= 1, "random_graph needs n >= 1")
    _require(0.0 <= p <= 1.0, "edge probability must lie in [0, 1]")
    rng = random.Random(seed)
    g = Graph(nodes=range(n))
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                g.add_edge(i, j)
    return g


def hypercube_graph(dim: int) -> Graph:
    """The ``dim``-dimensional hypercube ``Q_dim`` (bipartite, regular)."""
    _require(dim >= 1, "hypercube_graph needs dim >= 1")
    g = Graph(nodes=range(2**dim))
    for v in range(2**dim):
        for bit in range(dim):
            w = v ^ (1 << bit)
            if v < w:
                g.add_edge(v, w)
    return g


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise GraphError(message)


def toroidal_grid_graph(rows: int, cols: int) -> Graph:
    """The ``rows × cols`` torus (grid with wraparound).

    Unlike the finite grid, the torus has no boundary, so it satisfies the
    r-forgetful property everywhere once it is large enough; it is
    bipartite iff both dimensions are even.
    """
    _require(rows >= 3 and cols >= 3, "toroidal_grid_graph needs dimensions >= 3")
    g = Graph(nodes=range(rows * cols))
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            g.add_edge(v, r * cols + (c + 1) % cols)
            g.add_edge(v, ((r + 1) % rows) * cols + c)
    return g
