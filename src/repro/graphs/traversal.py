"""Breadth-first traversal primitives: distances, balls, shortest paths.

These are the building blocks for views (``N^r(v)``), the ``r``-forgetful
property, and diameter computations, so they are written for clarity and
determinism: BFS visits neighbors in sorted order so that results are
reproducible across runs.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from ..errors import DisconnectedGraphError, NodeNotFoundError
from .graph import Graph, Node


def _sorted_neighbors(graph: Graph, v: Node) -> list[Node]:
    return sorted(graph.neighbors(v), key=repr)


def bfs_distances(graph: Graph, source: Node, limit: int | None = None) -> dict[Node, int]:
    """Distances from *source* to every node within *limit* hops.

    Unreachable nodes are omitted.  With ``limit=None`` the whole component
    is explored.
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    dist: dict[Node, int] = {source: 0}
    queue: deque[Node] = deque([source])
    while queue:
        u = queue.popleft()
        if limit is not None and dist[u] >= limit:
            continue
        for w in _sorted_neighbors(graph, u):
            if w not in dist:
                dist[w] = dist[u] + 1
                queue.append(w)
    return dist


def distance(graph: Graph, u: Node, v: Node) -> int:
    """Hop distance between *u* and *v*; raises if disconnected."""
    dist = bfs_distances(graph, u)
    if v not in dist:
        if v not in graph:
            raise NodeNotFoundError(v)
        raise DisconnectedGraphError(f"nodes {u!r} and {v!r} are in different components")
    return dist[v]


def ball(graph: Graph, center: Node, radius: int) -> set[Node]:
    """The ball ``N^radius(center)``: nodes at distance at most *radius*."""
    return set(bfs_distances(graph, center, limit=radius))


def shortest_path(graph: Graph, source: Node, target: Node) -> list[Node]:
    """A deterministic shortest path from *source* to *target* (inclusive)."""
    if source not in graph:
        raise NodeNotFoundError(source)
    if target not in graph:
        raise NodeNotFoundError(target)
    parent: dict[Node, Node | None] = {source: None}
    queue: deque[Node] = deque([source])
    while queue:
        u = queue.popleft()
        if u == target:
            break
        for w in _sorted_neighbors(graph, u):
            if w not in parent:
                parent[w] = u
                queue.append(w)
    if target not in parent:
        raise DisconnectedGraphError(
            f"nodes {source!r} and {target!r} are in different components"
        )
    path: list[Node] = []
    cursor: Node | None = target
    while cursor is not None:
        path.append(cursor)
        cursor = parent[cursor]
    path.reverse()
    return path


def connected_components(graph: Graph) -> list[set[Node]]:
    """Connected components, each a node set, in deterministic order."""
    seen: set[Node] = set()
    components: list[set[Node]] = []
    for v in graph.nodes:
        if v in seen:
            continue
        comp = set(bfs_distances(graph, v))
        seen |= comp
        components.append(comp)
    return components


def is_connected(graph: Graph) -> bool:
    """True for the empty graph and for graphs with a single component."""
    if graph.order == 0:
        return True
    return len(bfs_distances(graph, graph.nodes[0])) == graph.order


def eccentricity(graph: Graph, v: Node) -> int:
    """Max distance from *v* to any node (graph must be connected)."""
    dist = bfs_distances(graph, v)
    if len(dist) != graph.order:
        raise DisconnectedGraphError("eccentricity requires a connected graph")
    return max(dist.values())


def diameter(graph: Graph) -> int:
    """``diam(G)``; raises on disconnected or empty graphs."""
    if graph.order == 0:
        raise DisconnectedGraphError("diameter of an empty graph")
    return max(eccentricity(graph, v) for v in graph.nodes)


def view_subgraph_nodes_and_edges(
    graph: Graph, center: Node, radius: int
) -> tuple[dict[Node, int], set[tuple[Node, Node]]]:
    """Node distances and edge set of the paper's view graph ``G_v^r``.

    ``G_v^r`` is the union of all paths of length at most *radius* starting
    at *center*: its node set is ``N^radius(center)`` and its edges are the
    edges with at least one endpoint at distance strictly less than
    *radius* (an edge between two distance-``r`` nodes lies on no such
    path and is therefore invisible; see Fig. 2 of the paper).
    """
    dist = bfs_distances(graph, center, limit=radius)
    edges: set[tuple[Node, Node]] = set()
    for u, v in graph.edges:
        if u in dist and v in dist and min(dist[u], dist[v]) < radius:
            edges.add((u, v))
    return dist, edges


def non_backtracking_walk(
    graph: Graph, start: Node, length: int, avoid_immediate: Node | None = None
) -> list[Node]:
    """A deterministic non-backtracking walk of *length* edges from *start*.

    Requires minimum degree at least 2 whenever the walk must turn (a
    degree-1 node forces backtracking).  Used by the walk-surgery machinery
    of Section 5.2.  ``avoid_immediate`` forbids the first step from going
    to that node.
    """
    walk = [start]
    previous = avoid_immediate
    current = start
    for _ in range(length):
        candidates = [w for w in _sorted_neighbors(graph, current) if w != previous]
        if not candidates:
            raise DisconnectedGraphError(
                f"non-backtracking walk stuck at {current!r} (degree-1 node)"
            )
        nxt = candidates[0]
        walk.append(nxt)
        previous, current = current, nxt
    return walk


def path_edges(path: Iterable[Node]) -> list[tuple[Node, Node]]:
    """The consecutive edge list of a node path."""
    nodes = list(path)
    return [(nodes[i], nodes[i + 1]) for i in range(len(nodes) - 1)]
