"""Core undirected graph type used throughout the library.

The paper (Section 2) works with finite undirected graphs where loops are
allowed.  Nodes are arbitrary hashable objects, although the rest of the
library conventionally uses small integers.

The class is deliberately minimal and explicit: adjacency sets, a stable
node insertion order, and the handful of structural operations the
certification machinery needs (induced subgraphs, unions, copies).
Algorithms (BFS, bipartiteness, diameter, ...) live in
:mod:`repro.graphs.traversal` and :mod:`repro.graphs.properties`.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator

from ..errors import EdgeNotFoundError, GraphError, NodeNotFoundError

Node = Hashable
Edge = tuple[Node, Node]


def edge_key(u: Node, v: Node) -> Edge:
    """Canonical representation of the undirected edge ``{u, v}``.

    Endpoints are ordered by ``repr`` so that arbitrary hashable node types
    get a deterministic edge key; for the integer nodes used in practice
    this is simply numeric order.
    """
    if isinstance(u, int) and isinstance(v, int):
        return (u, v) if u <= v else (v, u)
    return (u, v) if repr(u) <= repr(v) else (v, u)


class Graph:
    """A finite undirected graph with optional loops.

    >>> g = Graph.from_edges([(0, 1), (1, 2)])
    >>> sorted(g.neighbors(1))
    [0, 2]
    >>> g.degree(1)
    2
    """

    __slots__ = ("_adj",)

    def __init__(self, nodes: Iterable[Node] = (), edges: Iterable[Edge] = ()) -> None:
        self._adj: dict[Node, set[Node]] = {}
        for v in nodes:
            self.add_node(v)
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(cls, edges: Iterable[Edge]) -> "Graph":
        """Build a graph from an edge list; nodes are inferred."""
        return cls(edges=edges)

    def add_node(self, v: Node) -> None:
        """Add node *v* (no-op if already present)."""
        self._adj.setdefault(v, set())

    def add_edge(self, u: Node, v: Node) -> None:
        """Add the undirected edge ``{u, v}``; endpoints are added as needed.

        Loops (``u == v``) are allowed, following the paper's convention.
        """
        self.add_node(u)
        self.add_node(v)
        self._adj[u].add(v)
        self._adj[v].add(u)

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the edge ``{u, v}``; raises if absent."""
        if not self.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        self._adj[u].discard(v)
        self._adj[v].discard(u)

    def remove_node(self, v: Node) -> None:
        """Remove node *v* and all incident edges; raises if absent."""
        if v not in self._adj:
            raise NodeNotFoundError(v)
        for u in list(self._adj[v]):
            self._adj[u].discard(v)
        del self._adj[v]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> list[Node]:
        """Nodes in insertion order."""
        return list(self._adj)

    @property
    def order(self) -> int:
        """Number of nodes."""
        return len(self._adj)

    @property
    def edges(self) -> list[Edge]:
        """All edges, each reported once in canonical form."""
        seen: set[Edge] = set()
        out: list[Edge] = []
        for u, nbrs in self._adj.items():
            for v in nbrs:
                key = edge_key(u, v)
                if key not in seen:
                    seen.add(key)
                    out.append(key)
        return out

    @property
    def size(self) -> int:
        """Number of edges (loops count once)."""
        return len(self.edges)

    def __contains__(self, v: Node) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adj)

    def has_node(self, v: Node) -> bool:
        """True if *v* is a node of the graph."""
        return v in self._adj

    def has_edge(self, u: Node, v: Node) -> bool:
        """True if ``{u, v}`` is an edge of the graph."""
        return u in self._adj and v in self._adj[u]

    def has_loop(self) -> bool:
        """True if any node has a loop."""
        return any(v in nbrs for v, nbrs in self._adj.items())

    def neighbors(self, v: Node) -> set[Node]:
        """The open neighborhood ``N(v)`` (a fresh set)."""
        if v not in self._adj:
            raise NodeNotFoundError(v)
        return set(self._adj[v])

    def closed_neighborhood(self, v: Node) -> set[Node]:
        """The closed neighborhood ``N[v] = N(v) ∪ {v}``."""
        return self.neighbors(v) | {v}

    def degree(self, v: Node) -> int:
        """The degree of *v* (a loop contributes 1 here)."""
        if v not in self._adj:
            raise NodeNotFoundError(v)
        return len(self._adj[v])

    def min_degree(self) -> int:
        """``δ(G)``; raises on the empty graph."""
        if not self._adj:
            raise GraphError("min_degree() of an empty graph")
        return min(len(nbrs) for nbrs in self._adj.values())

    def max_degree(self) -> int:
        """``Δ(G)``; raises on the empty graph."""
        if not self._adj:
            raise GraphError("max_degree() of an empty graph")
        return max(len(nbrs) for nbrs in self._adj.values())

    def degree_sequence(self) -> list[int]:
        """Sorted (non-increasing) degree sequence."""
        return sorted((len(nbrs) for nbrs in self._adj.values()), reverse=True)

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------

    def copy(self) -> "Graph":
        """An independent copy of this graph."""
        g = Graph()
        g._adj = {v: set(nbrs) for v, nbrs in self._adj.items()}
        return g

    def induced_subgraph(self, keep: Iterable[Node]) -> "Graph":
        """The subgraph induced by the node set *keep* (``G[U]``)."""
        keep_set = set(keep)
        missing = keep_set - set(self._adj)
        if missing:
            raise NodeNotFoundError(sorted(missing, key=repr)[0])
        g = Graph()
        for v in self._adj:
            if v in keep_set:
                g.add_node(v)
        for u, v in self.edges:
            if u in keep_set and v in keep_set:
                g.add_edge(u, v)
        return g

    def subtract_closed_neighborhood(self, v: Node) -> "Graph":
        """``G - N[v]``, used by the shatter-point machinery (Section 7.1)."""
        return self.induced_subgraph(set(self._adj) - self.closed_neighborhood(v))

    def disjoint_union(self, other: "Graph") -> "Graph":
        """Disjoint union; nodes are re-tagged ``(0, v)`` and ``(1, v)``."""
        g = Graph()
        for v in self._adj:
            g.add_node((0, v))
        for v in other._adj:
            g.add_node((1, v))
        for u, v in self.edges:
            g.add_edge((0, u), (0, v))
        for u, v in other.edges:
            g.add_edge((1, u), (1, v))
        return g

    def relabeled(self, mapping: dict[Node, Node]) -> "Graph":
        """A copy with nodes renamed through *mapping* (must be injective)."""
        if len(set(mapping.values())) != len(mapping):
            raise GraphError("relabeling mapping is not injective")
        missing = set(self._adj) - set(mapping)
        if missing:
            raise GraphError(f"relabeling mapping misses nodes: {sorted(missing, key=repr)}")
        g = Graph()
        for v in self._adj:
            g.add_node(mapping[v])
        for u, v in self.edges:
            g.add_edge(mapping[u], mapping[v])
        return g

    def to_integer_nodes(self) -> tuple["Graph", dict[Node, int]]:
        """Relabel nodes to ``0..n-1`` in insertion order; returns the map."""
        mapping = {v: i for i, v in enumerate(self._adj)}
        return self.relabeled(mapping), mapping

    # ------------------------------------------------------------------
    # Comparison and display
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            set(self._adj) == set(other._adj)
            and {v: nbrs for v, nbrs in self._adj.items()}
            == {v: nbrs for v, nbrs in other._adj.items()}
        )

    def __hash__(self) -> int:  # pragma: no cover - explicit unhashability
        raise TypeError("Graph is mutable and unhashable; use encoding.graph_key()")

    def __repr__(self) -> str:
        return f"Graph(order={self.order}, size={self.size})"


class FrozenGraph(Graph):
    """An immutable :class:`Graph`: every mutator raises.

    The family caches of :mod:`repro.graphs.families` hand these out on
    the ``mutable=False`` fast path, so a sweep shares one object per
    representative instead of paying a defensive copy per hit.  Use
    :meth:`Graph.copy` (inherited — it returns a plain mutable
    :class:`Graph`) when a mutable variant is needed.
    """

    __slots__ = ()

    def __init__(self, nodes: Iterable[Node] = (), edges: Iterable[Edge] = ()) -> None:
        staging = Graph(nodes, edges)
        object.__setattr__(self, "_adj", staging._adj)

    @classmethod
    def freeze(cls, graph: Graph) -> "FrozenGraph":
        """An immutable snapshot of *graph* (adjacency is copied)."""
        frozen = cls.__new__(cls)
        object.__setattr__(
            frozen, "_adj", {v: set(nbrs) for v, nbrs in graph._adj.items()}
        )
        return frozen

    def add_node(self, v: Node) -> None:
        raise GraphError("FrozenGraph is immutable; copy() for a mutable graph")

    def add_edge(self, u: Node, v: Node) -> None:
        raise GraphError("FrozenGraph is immutable; copy() for a mutable graph")

    def remove_edge(self, u: Node, v: Node) -> None:
        raise GraphError("FrozenGraph is immutable; copy() for a mutable graph")

    def remove_node(self, v: Node) -> None:
        raise GraphError("FrozenGraph is immutable; copy() for a mutable graph")

    def __repr__(self) -> str:
        return f"FrozenGraph(order={self.order}, size={self.size})"
