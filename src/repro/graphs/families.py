"""Enumeration of small graph families.

Lemma 3.1 constructs the accepting neighborhood graph ``V(D, n)`` by
iterating over *all* labeled yes-instances on at most ``n`` nodes.  The
enumerators here supply the graph part of that iteration: all connected
graphs up to isomorphism, all bipartite ones, and the promise classes of
the paper's theorems (minimum degree 1, even cycles, shatter-point graphs,
watermelons).

Enumeration is exact and deterministic, with two interchangeable
generators emitting byte-identical streams: the legacy edge-subset walk
(all ``2^(n choose 2)`` masks, deduplicated with the exact canonical
machinery) and the orderly generator of :mod:`repro.symmetry.orderly`
(each isomorphism class constructed exactly once — the default, selected
by ``perf.CONFIG.symmetry``).  The orderly path is practical up to
``n = 8``; the legacy walk up to ``n = 7``.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from itertools import combinations

from ..perf.config import CONFIG
from ..perf.stats import GLOBAL_STATS
from .graph import FrozenGraph, Graph
from .properties import (
    is_bipartite,
    is_cycle_graph,
    is_even_cycle,
    is_path_graph,
    is_tree,
)
from .shatter import has_shatter_point
from .watermelon import is_watermelon

#: ``(n, connected_only) -> tuple of frozen representatives``.  The
#: Lemma 3.1 sweeps re-enumerate the same families for every scheme and
#: every bound; caching the representative lists makes repeat sweeps
#: enumeration-free.  Entries are :class:`FrozenGraph` — ``mutable=True``
#: hits yield defensive copies, ``mutable=False`` hits yield the cached
#: objects themselves.  Both generators produce the identical stream, so
#: the cache is shared regardless of which one filled it.
_FAMILY_CACHE: dict[tuple[int, bool], tuple[FrozenGraph, ...]] = {}


def clear_family_cache() -> None:
    """Drop the memoized family enumerations (cold-path benchmarks)."""
    _FAMILY_CACHE.clear()


def family_cache_snapshot() -> dict[tuple[int, bool], tuple[FrozenGraph, ...]]:
    """A picklable snapshot of the family cache (worker preloading)."""
    return dict(_FAMILY_CACHE)


def prime_family_cache(
    snapshot: dict[tuple[int, bool], tuple[FrozenGraph, ...]],
) -> int:
    """Fill the cache from a parent-process *snapshot* without
    overwriting entries; returns how many were added.  Called by the
    pool initializer of :mod:`repro.perf.parallel` so workers never
    re-enumerate families the parent already has."""
    added = 0
    for key, graphs in snapshot.items():
        if key not in _FAMILY_CACHE:
            _FAMILY_CACHE[key] = tuple(graphs)
            added += 1
    if added:
        GLOBAL_STATS.incr("family_cache_primed", added)
    return added


def warm_graph_families(lo: int, hi: int, connected_only: bool = True) -> int:
    """Enumerate (and cache) the families of sizes ``lo+1 .. hi``.

    The engine calls this under its ``symmetry:generate`` span so
    generation cost is attributed to generation rather than smeared over
    the sweep.  No-op per size already cached; returns the number of
    sizes enumerated.  Without ``CONFIG.family_cache`` there is nothing
    to warm."""
    if not CONFIG.family_cache:
        return 0
    warmed = 0
    for size in range(max(1, lo + 1), hi + 1):
        if (size, connected_only) not in _FAMILY_CACHE:
            for _ in all_graphs_exactly(size, connected_only=connected_only, mutable=False):
                pass
            warmed += 1
    return warmed


def all_graphs_exactly(
    n: int,
    connected_only: bool = True,
    mutable: bool = True,
    generator: str | None = None,
) -> Iterator[Graph]:
    """All simple graphs on exactly *n* nodes, up to isomorphism.

    Nodes are ``0..n-1``.  With *connected_only* the disconnected ones are
    skipped.  Loops are not generated (a loop is never 2-colorable, and the
    paper's instances are simple).

    Results are cached per ``(n, connected_only)`` (see
    ``perf.CONFIG.family_cache``).  With ``mutable=True`` every yielded
    graph is an independent copy; ``mutable=False`` yields shared
    :class:`FrozenGraph` objects instead — the fast path for the sweep,
    which never mutates representatives.

    *generator* picks the enumeration algorithm: ``"legacy"`` (edge-
    subset walk), ``"orderly"`` (canonical augmentation), or ``None`` to
    follow ``CONFIG.symmetry`` (``"off"`` → legacy, else orderly).  The
    emitted stream is byte-identical either way.
    """
    if n <= 0:
        return
    if CONFIG.family_cache:
        cached = _FAMILY_CACHE.get((n, connected_only))
        if cached is not None:
            GLOBAL_STATS.incr("family_cache_hits")
            for g in cached:
                yield g.copy() if mutable else g
            return
        GLOBAL_STATS.incr("family_cache_misses")
        representatives: list[FrozenGraph] = []
        for g in _generate_graphs_exactly(n, connected_only, generator):
            frozen = FrozenGraph.freeze(g)
            representatives.append(frozen)
            yield g if mutable else frozen
        # Commit only after full exhaustion, so an abandoned generator
        # never caches a truncated family.
        _FAMILY_CACHE[(n, connected_only)] = tuple(representatives)
    else:
        for g in _generate_graphs_exactly(n, connected_only, generator):
            yield g if mutable else FrozenGraph.freeze(g)


def _generate_graphs_exactly(
    n: int, connected_only: bool, generator: str | None
) -> Iterator[Graph]:
    """Dispatch to the selected enumeration algorithm."""
    if generator is None:
        generator = "legacy" if CONFIG.symmetry == "off" else "orderly"
    if generator == "orderly":
        from ..symmetry.orderly import orderly_graphs_exactly  # noqa: PLC0415

        return orderly_graphs_exactly(n, connected_only)
    if generator == "legacy":
        return _enumerate_graphs_exactly(n, connected_only)
    raise ValueError(f"unknown family generator {generator!r}; use 'legacy' or 'orderly'")


def _enumerate_graphs_exactly(n: int, connected_only: bool) -> Iterator[Graph]:
    """The edge-subset enumeration behind :func:`all_graphs_exactly`.

    Connectivity and the cheap isomorphism invariant are computed on
    integer-bitset adjacency (no :class:`Graph` is built for rejected
    masks); survivors are deduplicated with the exact isomorphism test,
    which is faster than full canonical forms at these orders.
    """
    if n == 1:
        yield Graph(nodes=[0])
        return
    possible_edges = list(combinations(range(n), 2))
    full = (1 << n) - 1
    nodes = range(n)
    buckets: dict[tuple, list[tuple[list[int], list[int]]]] = {}
    for mask in range(1 << len(possible_edges)):
        edge_count = mask.bit_count()
        if connected_only and edge_count < n - 1:
            continue
        adj = [0] * n
        for i, (a, b) in enumerate(possible_edges):
            if mask >> i & 1:
                adj[a] |= 1 << b
                adj[b] |= 1 << a
        if connected_only:
            reach = 1 | adj[0]
            frontier = reach & ~1
            while frontier:
                nxt = 0
                bits = frontier
                while bits:
                    low = bits & -bits
                    nxt |= adj[low.bit_length() - 1]
                    bits ^= low
                frontier = nxt & ~reach
                reach |= frontier
            if reach != full:
                continue
        deg = [adj[v].bit_count() for v in nodes]
        profile = []
        for v in nodes:
            neighbor_degs = []
            bits = adj[v]
            while bits:
                low = bits & -bits
                neighbor_degs.append(deg[low.bit_length() - 1])
                bits ^= low
            neighbor_degs.sort()
            profile.append((deg[v], tuple(neighbor_degs)))
        profile.sort()
        prekey = (edge_count, tuple(profile))
        bucket = buckets.setdefault(prekey, [])
        if any(_bitset_isomorphic(adj, deg, other, other_deg, n) for other, other_deg in bucket):
            continue
        bucket.append((adj, deg))
        yield Graph(
            nodes=nodes,
            edges=[e for i, e in enumerate(possible_edges) if mask >> i & 1],
        )


def _bitset_isomorphic(
    adj1: list[int], deg1: list[int], adj2: list[int], deg2: list[int], n: int
) -> bool:
    """Exact isomorphism test on bitset adjacency (same degree profile
    assumed — callers bucket by it first)."""
    # Assign high-degree nodes first: fewer candidates, earlier pruning.
    order = sorted(range(n), key=lambda v: -deg1[v])
    assigned: list[tuple[int, int]] = []
    used = 0

    def backtrack(depth: int) -> bool:
        nonlocal used
        if depth == n:
            return True
        v = order[depth]
        row = adj1[v]
        dv = deg1[v]
        for w in range(n):
            if used >> w & 1 or deg2[w] != dv:
                continue
            row2 = adj2[w]
            ok = True
            for a, b in assigned:
                if (row >> a & 1) != (row2 >> b & 1):
                    ok = False
                    break
            if ok:
                assigned.append((v, w))
                used |= 1 << w
                if backtrack(depth + 1):
                    return True
                assigned.pop()
                used ^= 1 << w
        return False

    return backtrack(0)


def _iso_invariant(g: Graph) -> tuple:
    """Cheap isomorphism invariant: per-node (degree, sorted neighbor
    degrees), sorted."""
    deg = {v: g.degree(v) for v in g.nodes}
    profile = sorted(
        (deg[v], tuple(sorted(deg[u] for u in g.neighbors(v)))) for v in g.nodes
    )
    return (g.order, g.size, tuple(profile))


def enumerate_graphs_exactly_reference(n: int, connected_only: bool = True) -> Iterator[Graph]:
    """Object-based reference enumeration (the pre-bitset algorithm).

    Builds a :class:`Graph` for every edge subset and deduplicates with
    the exact isomorphism search.  Kept as a differential-testing oracle
    for :func:`_enumerate_graphs_exactly` and as the seed-equivalent
    baseline of the neighborhood benchmarks; never used on the hot path.
    """
    from .encoding import find_isomorphism  # noqa: PLC0415
    from .properties import is_connected  # noqa: PLC0415

    if n <= 0:
        return
    if n == 1:
        yield Graph(nodes=[0])
        return
    possible_edges = list(combinations(range(n), 2))
    buckets: dict[tuple, list[Graph]] = {}
    for mask in range(1 << len(possible_edges)):
        g = Graph(
            nodes=range(n),
            edges=[e for i, e in enumerate(possible_edges) if mask >> i & 1],
        )
        if connected_only and not is_connected(g):
            continue
        bucket = buckets.setdefault(_iso_invariant(g), [])
        if any(find_isomorphism(g, h) is not None for h in bucket):
            continue
        bucket.append(g)
        yield g


def all_graphs_up_to(
    n: int,
    connected_only: bool = True,
    mutable: bool = True,
    generator: str | None = None,
) -> Iterator[Graph]:
    """All simple graphs on at most *n* nodes, up to isomorphism."""
    for k in range(1, n + 1):
        yield from all_graphs_exactly(
            k, connected_only=connected_only, mutable=mutable, generator=generator
        )


def _filtered(n: int, predicate: Callable[[Graph], bool]) -> Iterator[Graph]:
    for g in all_graphs_up_to(n):
        if predicate(g):
            yield g


def bipartite_graphs_up_to(n: int) -> Iterator[Graph]:
    """All connected bipartite graphs on at most *n* nodes (yes-instances)."""
    return _filtered(n, is_bipartite)


def non_bipartite_graphs_up_to(n: int) -> Iterator[Graph]:
    """All connected non-bipartite graphs on at most *n* nodes (no-instances)."""
    return _filtered(n, lambda g: not is_bipartite(g))


def min_degree_one_graphs_up_to(n: int) -> Iterator[Graph]:
    """Connected graphs with ``δ(G) = 1`` (class H1 of Theorem 1.1)."""
    return _filtered(n, lambda g: g.order >= 2 and g.min_degree() == 1)


def bipartite_min_degree_one_graphs_up_to(n: int) -> Iterator[Graph]:
    """Bipartite members of H1 — the yes-instances of Lemma 4.1."""
    return _filtered(
        n, lambda g: g.order >= 2 and g.min_degree() == 1 and is_bipartite(g)
    )


def even_cycles_up_to(n: int) -> Iterator[Graph]:
    """Even cycles ``C_4, C_6, ...`` up to *n* nodes (class H2).

    Constructed directly (filtering the full graph family would be
    exponential in ``n`` for no reason)."""
    from .generators import cycle_graph  # noqa: PLC0415

    for m in range(4, n + 1, 2):
        yield cycle_graph(m)


def shatter_graphs_up_to(n: int) -> Iterator[Graph]:
    """Connected graphs admitting a shatter point (class of Theorem 1.3)."""
    return _filtered(n, has_shatter_point)


def bipartite_shatter_graphs_up_to(n: int) -> Iterator[Graph]:
    """Bipartite shatter-point graphs — yes-instances of Theorem 1.3."""
    return _filtered(n, lambda g: has_shatter_point(g) and is_bipartite(g))


def watermelon_graphs_up_to(n: int) -> Iterator[Graph]:
    """Watermelon graphs on at most *n* nodes (class of Theorem 1.4)."""
    return _filtered(n, is_watermelon)


def count_family(family: Iterator[Graph]) -> int:
    """Number of graphs in an enumerated family (consumes the iterator)."""
    return sum(1 for _ in family)


def watermelon_family_up_to(n: int) -> Iterator[Graph]:
    """Watermelon graphs on at most *n* nodes by direct construction.

    Equivalent to :func:`watermelon_graphs_up_to` (machine-checked in the
    tests) but polynomial instead of filtering all ``2^(n choose 2)``
    edge subsets: single paths, cycles, and every multiset of ``k >= 3``
    path lengths that fits the node budget.
    """
    from .generators import cycle_graph, path_graph, watermelon_graph  # noqa: PLC0415

    # Single-path watermelons: paths with at least 2 edges.
    for m in range(3, n + 1):
        yield path_graph(m)
    # Two-path watermelons: cycles of length >= 4 (each arc length >= 2).
    for m in range(4, n + 1):
        yield cycle_graph(m)
    # k >= 3 internally disjoint paths: nodes used = 2 + sum(l_i - 1).
    def length_multisets(budget: int, minimum: int, k_left: int):
        if k_left == 0:
            yield []
            return
        for first in range(minimum, budget - (k_left - 1) + 2):
            if (first - 1) * k_left > budget:
                break
            for rest in length_multisets(budget - (first - 1), first, k_left - 1):
                yield [first] + rest

    for k in range(3, n):  # each path needs >= 1 internal node
        budget = n - 2
        if k > budget:
            break
        for lengths in length_multisets(budget, 2, k):
            yield watermelon_graph(lengths)


# ----------------------------------------------------------------------
# Named graph families (the campaign layer's family axis)
# ----------------------------------------------------------------------

#: name -> membership predicate (``None`` means "no filter": every graph
#: the Lemma 3.1 sweep would enumerate).  A campaign cell names one of
#: these to restrict the sweep's graph part; the predicate composes with
#: — it never replaces — the scheme's own ``is_yes_instance`` filter.
GRAPH_FAMILIES: dict[str, Callable[[Graph], bool] | None] = {
    "all": None,
    "bipartite": is_bipartite,
    "trees": is_tree,
    "paths": is_path_graph,
    "cycles": is_cycle_graph,
    "even-cycles": is_even_cycle,
    "min-degree-one": lambda g: g.order >= 2 and g.min_degree() == 1,
    "shatter": has_shatter_point,
    "watermelons": is_watermelon,
}


def graph_family_names() -> list[str]:
    """Registered family names, in registration order (``"all"`` first)."""
    return list(GRAPH_FAMILIES)


def graph_family_predicate(name: str) -> Callable[[Graph], bool] | None:
    """The membership predicate for a registered family name.

    ``None`` for ``"all"``; raises ``ValueError`` for unknown names so
    a typo in a campaign spec fails before any sweep runs."""
    try:
        return GRAPH_FAMILIES[name]
    except KeyError:
        raise ValueError(
            f"unknown graph family {name!r}; known: "
            f"{', '.join(graph_family_names())}"
        ) from None
