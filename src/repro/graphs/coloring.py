"""Exact graph coloring for small graphs.

Lemma 3.2 characterizes hiding via the ``k``-colorability of the accepting
neighborhood graph, so we need an exact ``k``-coloring procedure (not a
heuristic): a negative answer must be a proof.  Backtracking with
saturation-first ordering (DSATUR-style) is exact and fast at the sizes
the neighborhood graphs reach.
"""

from __future__ import annotations

from ..errors import GraphError
from .graph import Graph, Node


def k_coloring(graph: Graph, k: int) -> dict[Node, int] | None:
    """A proper ``k``-coloring of *graph*, or ``None`` if none exists."""
    if k < 0:
        raise GraphError("k_coloring needs k >= 0")
    if graph.has_loop():
        return None
    if graph.order == 0:
        return {}
    if k == 0:
        return None
    if k >= 2:
        from .properties import bipartition  # noqa: PLC0415

        split = bipartition(graph)
        if split.is_bipartite:
            assert split.coloring is not None
            return dict(split.coloring)
        if k == 2:
            return None

    order = sorted(graph.nodes, key=lambda v: (-graph.degree(v), repr(v)))
    coloring: dict[Node, int] = {}
    # DSATUR bookkeeping: for every uncolored node, how many colored
    # neighbors use each color.  Maintained on assign/unassign, so picking
    # the next node never rescans neighborhoods — the saturation of v is
    # just len(neighbor_colors[v]).  The recursion assigns and unassigns
    # in strict stack order, so while a node is colored its own counts go
    # untouched and are exact again by the time it is uncolored.
    neighbor_colors: dict[Node, dict[int, int]] = {v: {} for v in order}

    def assign(v: Node, color: int) -> None:
        coloring[v] = color
        for u in graph.neighbors(v):
            if u not in coloring:
                counts = neighbor_colors[u]
                counts[color] = counts.get(color, 0) + 1

    def unassign(v: Node, color: int) -> None:
        del coloring[v]
        for u in graph.neighbors(v):
            if u not in coloring:
                counts = neighbor_colors[u]
                if counts[color] == 1:
                    del counts[color]
                else:
                    counts[color] -= 1

    def choose_next() -> Node | None:
        # `order` is sorted by (degree desc, repr), so scanning it and
        # keeping the first strict maximum reproduces the original
        # (-saturation, -degree, repr) tie-break exactly.
        best = None
        best_saturation = -1
        for v in order:
            if v in coloring:
                continue
            saturation = len(neighbor_colors[v])
            if saturation > best_saturation:
                best, best_saturation = v, saturation
        return best

    def backtrack() -> bool:
        v = choose_next()
        if v is None:
            return True
        used = set(neighbor_colors[v])
        for color in range(k):
            if color in used:
                continue
            assign(v, color)
            if backtrack():
                return True
            unassign(v, color)
            if color > max((coloring[u] for u in coloring), default=-1):
                # Symmetry breaking: trying a strictly larger fresh color
                # than any used so far is equivalent to this one.
                break
        return False

    return dict(coloring) if backtrack() else None


def is_k_colorable(graph: Graph, k: int) -> bool:
    """True iff *graph* admits a proper ``k``-coloring."""
    return k_coloring(graph, k) is not None


def chromatic_number(graph: Graph, max_k: int | None = None) -> int:
    """The chromatic number, by trying ``k = 0, 1, 2, ...``.

    *max_k* bounds the search (default: the number of nodes, which always
    suffices for loop-free graphs).  Raises on graphs with loops.
    """
    if graph.has_loop():
        raise GraphError("chromatic number undefined for graphs with loops")
    bound = graph.order if max_k is None else max_k
    for k in range(bound + 1):
        if is_k_colorable(graph, k):
            return k
    raise GraphError(f"graph is not {bound}-colorable; raise max_k")


def greedy_coloring(graph: Graph) -> dict[Node, int]:
    """Greedy coloring in degree order — an upper-bound baseline used by
    benchmarks to contrast exact and heuristic results."""
    coloring: dict[Node, int] = {}
    for v in sorted(graph.nodes, key=lambda v: (-graph.degree(v), repr(v))):
        used = {coloring[u] for u in graph.neighbors(v) if u in coloring}
        color = 0
        while color in used:
            color += 1
        coloring[v] = color
    return coloring
