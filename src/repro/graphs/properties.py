"""Graph properties used by the paper: bipartiteness, cycles, girth, shape.

The central predicate is :func:`bipartition`, which either returns a proper
2-coloring or an explicit odd-cycle witness — both sides are needed:
completeness proofs consume the coloring, while hiding proofs (Lemma 3.2)
consume odd cycles of the accepting neighborhood graph.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..errors import GraphError
from .graph import Graph, Node
from .traversal import bfs_distances, connected_components, is_connected


@dataclass(frozen=True)
class BipartitionResult:
    """Outcome of a bipartiteness test.

    Exactly one of *coloring* and *odd_cycle* is set.  *odd_cycle* is a
    closed walk given as a node list ``[v0, ..., vk, v0]`` of odd length.
    """

    coloring: dict[Node, int] | None
    odd_cycle: list[Node] | None

    @property
    def is_bipartite(self) -> bool:
        return self.coloring is not None


def bipartition(graph: Graph) -> BipartitionResult:
    """Proper 2-coloring of *graph*, or an odd-cycle witness.

    A loop counts as an odd cycle of length 1, consistent with the paper's
    convention that loops are allowed but never properly colorable.
    """
    for v in graph.nodes:
        if graph.has_edge(v, v):
            return BipartitionResult(coloring=None, odd_cycle=[v, v])

    color: dict[Node, int] = {}
    parent: dict[Node, Node | None] = {}
    for root in graph.nodes:
        if root in color:
            continue
        color[root] = 0
        parent[root] = None
        queue: deque[Node] = deque([root])
        while queue:
            u = queue.popleft()
            for w in sorted(graph.neighbors(u), key=repr):
                if w not in color:
                    color[w] = 1 - color[u]
                    parent[w] = u
                    queue.append(w)
                elif color[w] == color[u]:
                    return BipartitionResult(
                        coloring=None, odd_cycle=_odd_cycle_from_conflict(parent, u, w)
                    )
    return BipartitionResult(coloring=color, odd_cycle=None)


def _odd_cycle_from_conflict(
    parent: dict[Node, Node | None], u: Node, w: Node
) -> list[Node]:
    """Reconstruct an odd closed walk from a same-color BFS edge ``{u, w}``."""
    ancestors_u = _ancestry(parent, u)
    ancestors_w = _ancestry(parent, w)
    common = None
    ancestors_w_set = set(ancestors_w)
    for node in ancestors_u:
        if node in ancestors_w_set:
            common = node
            break
    if common is None:  # pragma: no cover - BFS tree guarantees a common root
        raise GraphError("conflict edge endpoints share no BFS ancestor")
    up = ancestors_u[: ancestors_u.index(common) + 1]
    down = ancestors_w[: ancestors_w.index(common) + 1]
    # Walk u -> ... -> common -> ... -> w -> u.
    cycle = up + down[-2::-1]
    cycle.append(u)
    return cycle


def _ancestry(parent: dict[Node, Node | None], v: Node) -> list[Node]:
    chain = [v]
    while parent[chain[-1]] is not None:
        chain.append(parent[chain[-1]])
    return chain


def is_bipartite(graph: Graph) -> bool:
    """True iff *graph* has a proper 2-coloring."""
    return bipartition(graph).is_bipartite


def find_odd_cycle(graph: Graph) -> list[Node] | None:
    """An odd closed walk ``[v0, ..., v0]`` if one exists, else ``None``."""
    return bipartition(graph).odd_cycle


def is_odd_closed_walk(graph: Graph, walk: list[Node]) -> bool:
    """True iff *walk* is a closed walk of odd length along edges of
    *graph*, in the ``[v0, ..., vk, v0]`` convention of
    :func:`find_odd_cycle`.

    Used to validate non-bipartiteness witnesses regardless of which
    detector produced them (BFS bipartition or the streaming
    :class:`~repro.graphs.incremental.ParityForest`).
    """
    if len(walk) < 2 or walk[0] != walk[-1]:
        return False
    if (len(walk) - 1) % 2 == 0:
        return False
    return all(graph.has_edge(u, v) for u, v in zip(walk, walk[1:]))


def proper_coloring_ok(graph: Graph, coloring: dict[Node, object]) -> bool:
    """True iff *coloring* assigns distinct values across every edge."""
    return all(
        u in coloring and v in coloring and coloring[u] != coloring[v]
        for u, v in graph.edges
    )


def is_cycle_graph(graph: Graph) -> bool:
    """True iff *graph* is a single cycle ``C_n`` with ``n >= 3``."""
    return (
        graph.order >= 3
        and is_connected(graph)
        and all(graph.degree(v) == 2 for v in graph.nodes)
        and not graph.has_loop()
    )


def is_even_cycle(graph: Graph) -> bool:
    """True iff *graph* is a cycle of even length (class H2, Theorem 1.1)."""
    return is_cycle_graph(graph) and graph.order % 2 == 0


def is_path_graph(graph: Graph) -> bool:
    """True iff *graph* is a simple path ``P_n`` with ``n >= 1``."""
    if graph.order == 0 or not is_connected(graph) or graph.has_loop():
        return False
    if graph.order == 1:
        return graph.size == 0
    degrees = graph.degree_sequence()
    return degrees.count(1) == 2 and all(d in (1, 2) for d in degrees)


def is_tree(graph: Graph) -> bool:
    """True iff *graph* is connected and acyclic."""
    return is_connected(graph) and graph.size == graph.order - 1 and not graph.has_loop()


def girth(graph: Graph) -> int | None:
    """Length of a shortest cycle, or ``None`` for forests.

    A loop has girth 1; parallel edges cannot occur in this representation.
    """
    if graph.has_loop():
        return 1
    best: int | None = None
    for root in graph.nodes:
        dist = {root: 0}
        parent: dict[Node, Node | None] = {root: None}
        queue: deque[Node] = deque([root])
        while queue:
            u = queue.popleft()
            for w in sorted(graph.neighbors(u), key=repr):
                if w not in dist:
                    dist[w] = dist[u] + 1
                    parent[w] = u
                    queue.append(w)
                elif parent[u] != w:
                    cycle_len = dist[u] + dist[w] + 1
                    if best is None or cycle_len < best:
                        best = cycle_len
    return best


def cycle_count_lower_bound(graph: Graph) -> int:
    """The cycle-space dimension ``m - n + c`` (counts independent cycles).

    Section 5.2 requires yes-instances "containing at least two cycles";
    this is the standard way to make that count precise.
    """
    return graph.size - graph.order + len(connected_components(graph))


def has_at_least_two_cycles(graph: Graph) -> bool:
    """True iff the cycle space of *graph* has dimension at least 2."""
    return cycle_count_lower_bound(graph) >= 2


def odd_components_all_bipartite(graph: Graph, accepted: set[Node]) -> bool:
    """True iff the subgraph induced by *accepted* is bipartite.

    This is exactly the strong (promise) soundness condition of Section 2.3
    specialized to 2-col: the accepting nodes must induce a bipartite graph.
    """
    return is_bipartite(graph.induced_subgraph(accepted))


def distance_profile(graph: Graph, v: Node) -> list[int]:
    """Histogram of distances from *v*: entry ``d`` counts nodes at dist d."""
    dist = bfs_distances(graph, v)
    if not dist:
        return []
    profile = [0] * (max(dist.values()) + 1)
    for d in dist.values():
        profile[d] += 1
    return profile
