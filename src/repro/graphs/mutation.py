"""Graph mutations: controlled perturbations for adversarial testing.

The soundness checkers need no-instance stock *near* yes-instances —
graphs a malicious prover could hope to pass off as valid because most
of the structure is honest.  These helpers produce such neighbors:
odd-cycle insertions, edge swaps, and subdivisions.
"""

from __future__ import annotations

import random
from collections.abc import Iterator

from ..errors import GraphError
from .graph import Graph, Node
from .properties import is_bipartite


def with_edge_added(graph: Graph, u: Node, v: Node) -> Graph:
    """A copy of *graph* with the edge ``{u, v}`` added."""
    out = graph.copy()
    out.add_edge(u, v)
    return out


def with_edge_removed(graph: Graph, u: Node, v: Node) -> Graph:
    """A copy of *graph* with the edge ``{u, v}`` removed."""
    out = graph.copy()
    out.remove_edge(u, v)
    return out


def subdivide_edge(graph: Graph, u: Node, v: Node, new_node: Node) -> Graph:
    """Replace the edge ``{u, v}`` by a path ``u - new_node - v``.

    Subdividing an edge flips the parity of every cycle through it — a
    single subdivision can turn a yes-instance into a no-instance.
    """
    if not graph.has_edge(u, v):
        raise GraphError(f"cannot subdivide missing edge ({u!r}, {v!r})")
    if graph.has_node(new_node):
        raise GraphError(f"subdivision node {new_node!r} already exists")
    out = graph.copy()
    out.remove_edge(u, v)
    out.add_edge(u, new_node)
    out.add_edge(new_node, v)
    return out


def odd_cycle_neighbors(graph: Graph, limit: int | None = None) -> Iterator[Graph]:
    """Non-bipartite graphs one edge-addition away from *graph*.

    For a bipartite input these are exactly the additions joining two
    same-side nodes — the closest no-instances a cheating prover could
    target.
    """
    count = 0
    nodes = graph.nodes
    for i, u in enumerate(nodes):
        for v in nodes[i + 1 :]:
            if graph.has_edge(u, v) or u == v:
                continue
            candidate = with_edge_added(graph, u, v)
            if not is_bipartite(candidate):
                yield candidate
                count += 1
                if limit is not None and count >= limit:
                    return


def random_edge_swap(graph: Graph, seed: int, attempts: int = 50) -> Graph:
    """Degree-preserving double edge swap: ``{a,b},{c,d} → {a,d},{c,b}``.

    Returns a (possibly identical) copy if no valid swap is found within
    *attempts* tries.
    """
    rng = random.Random(seed)
    out = graph.copy()
    edges = out.edges
    if len(edges) < 2:
        return out
    for _ in range(attempts):
        (a, b), (c, d) = rng.sample(edges, 2)
        if len({a, b, c, d}) < 4:
            continue
        if out.has_edge(a, d) or out.has_edge(c, b):
            continue
        out.remove_edge(a, b)
        out.remove_edge(c, d)
        out.add_edge(a, d)
        out.add_edge(c, b)
        return out
    return out


def parity_attack_targets(graph: Graph, limit: int = 5) -> list[Graph]:
    """A small stock of no-instances derived from a yes-instance, for
    adversarial soundness sweeps: odd-cycle edge additions first, then a
    subdivision if the graph has an edge on a cycle."""
    targets = list(odd_cycle_neighbors(graph, limit=limit))
    if len(targets) < limit:
        for u, v in graph.edges:
            candidate = subdivide_edge(graph, u, v, ("sub", u, v))
            if not is_bipartite(candidate):
                targets.append(candidate)
                if len(targets) >= limit:
                    break
    return targets
