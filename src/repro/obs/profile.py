"""Span self-time profiling: where a traced run's wall time actually
went.

A span tree records *inclusive* durations — ``decide_hiding`` covers
everything beneath it — which answers "how long did the run take" but
not "which stage should I optimize".  This module post-processes
:meth:`Tracer.finished_spans` records into:

* **Exclusive self time per span name** (:func:`self_times`): a span's
  duration minus the duration of its direct children, aggregated by
  name with call counts.  Summed over all names, self time reconciles
  with the root spans' inclusive total (up to clock jitter — children
  are clamped so a child that outlasts its parent never produces
  negative self time).
* **Folded stacks** (:func:`folded_stacks` / :func:`write_folded`):
  ``root;child;grandchild <usec>`` lines, the interchange format every
  flamegraph renderer (Brendan Gregg's ``flamegraph.pl``, speedscope,
  inferno) consumes directly.
* **A rendered table** (:func:`render_profile`): the CLI surface behind
  ``repro report profile <run>`` and ``repro hiding --profile``.

All pure functions over plain span dicts — usable on a live tracer, an
exported JSONL file, or the ``spans`` section of a persisted run report.
"""

from __future__ import annotations

from pathlib import Path

from .trace import format_seconds, span_tree


def _walk(node: dict, path: tuple, out: list) -> None:
    duration = node["duration_s"] or 0.0
    child_total = 0.0
    stack = path + (node["name"],)
    for child in node["children"]:
        child_total += child["duration_s"] or 0.0
        _walk(child, stack, out)
    # Clock jitter can make children sum past the parent; clamp so the
    # reconciliation invariant (self times sum to inclusive root time)
    # survives instead of going negative.
    self_s = max(0.0, duration - child_total)
    out.append((stack, node["name"], self_s, duration))


def _flatten(records: list[dict]) -> list[tuple]:
    """(stack, name, self_s, duration_s) per span, via the span tree."""
    out: list[tuple] = []
    for root in span_tree(records):
        _walk(root, (), out)
    return out


def self_times(records: list[dict]) -> dict[str, dict]:
    """Aggregate exclusive self time by span name.

    Returns ``{name: {"calls": int, "total_s": float, "self_s": float}}``
    where ``total_s`` is the summed inclusive duration of every span
    with that name and ``self_s`` excludes time covered by children.
    """
    agg: dict[str, dict] = {}
    for _stack, name, self_s, duration in _flatten(records):
        entry = agg.get(name)
        if entry is None:
            entry = agg[name] = {"calls": 0, "total_s": 0.0, "self_s": 0.0}
        entry["calls"] += 1
        entry["total_s"] += duration
        entry["self_s"] += self_s
    return agg


def total_self_time(records: list[dict]) -> float:
    """Sum of exclusive self time over every span — equals the summed
    inclusive duration of the root spans (children are carved out, never
    double-counted)."""
    return sum(self_s for _stack, _name, self_s, _dur in _flatten(records))


def folded_stacks(records: list[dict]) -> list[str]:
    """Flamegraph-compatible folded-stack lines, sorted for determinism.

    One line per distinct root-to-span path: ``a;b;c <usec>`` where the
    count is the path's aggregated *self* time in integer microseconds.
    Zero-self-time paths (pure containers) are omitted — they still
    appear in the graph as the prefix of their children.
    """
    by_stack: dict[str, int] = {}
    for stack, _name, self_s, _dur in _flatten(records):
        usec = int(round(self_s * 1e6))
        if usec <= 0:
            continue
        key = ";".join(stack)
        by_stack[key] = by_stack.get(key, 0) + usec
    return [f"{stack} {usec}" for stack, usec in sorted(by_stack.items())]


def write_folded(records: list[dict], path: str | Path) -> Path:
    """Write the folded-stack export to *path*; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = folded_stacks(records)
    path.write_text("\n".join(lines) + ("\n" if lines else ""), encoding="utf-8")
    return path


def render_profile(records: list[dict], wall_time_s: float | None = None) -> str:
    """The self-time table, hottest span name first.

    With *wall_time_s* (e.g. ``Provenance.wall_time_s``), a footer
    reconciles the span total against the externally measured wall time
    — the acceptance check that the profiler accounts for the run it
    claims to explain.
    """
    agg = self_times(records)
    if not agg:
        return "(no spans recorded)"
    rows = sorted(agg.items(), key=lambda item: -item[1]["self_s"])
    grand_self = sum(entry["self_s"] for _name, entry in rows)
    name_w = max(len("span"), max(len(name) for name, _ in rows))
    lines = [
        f"{'span':<{name_w}}  {'calls':>6}  {'self':>10}  {'total':>10}  {'self%':>6}"
    ]
    for name, entry in rows:
        share = (entry["self_s"] / grand_self * 100.0) if grand_self else 0.0
        lines.append(
            f"{name:<{name_w}}  {entry['calls']:>6}  "
            f"{format_seconds(entry['self_s']):>10}  "
            f"{format_seconds(entry['total_s']):>10}  "
            f"{share:>5.1f}%"
        )
    lines.append(f"{'':<{name_w}}  {'':>6}  {format_seconds(grand_self):>10}  (span total)")
    if wall_time_s is not None and wall_time_s > 0:
        # Uncapped on purpose: a ratio far from 100% (either side) means
        # the span tree and the external wall measurement disagree.
        covered = grand_self / wall_time_s
        lines.append(
            f"reconciliation: span total {format_seconds(grand_self)} vs "
            f"{format_seconds(wall_time_s)} measured wall time "
            f"({covered:.1%})"
        )
    return "\n".join(lines)
