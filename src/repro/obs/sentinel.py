"""Benchmark-regression sentinel: the ``BENCH_*.json`` trajectory,
finally read.

Every benchmark run already writes timing rows; nothing compared them
run-over-run, so a kernel or symmetry-layer slowdown would ship
silently.  The sentinel closes that loop with three stdlib pieces:

* **History** — an append-only JSONL file (default
  ``.repro_runs/bench_history.jsonl``, honoring ``$REPRO_RUNS_DIR``),
  one record per benchmark row per run, keyed by
  ``(benchmark, section, regime, scheme, n, cpu_count)``.  ``cpu_count``
  is part of the key because a 2-core CI runner and a 16-core laptop
  are different machines, not a regression.
* **Check** — :func:`check_regressions` compares fresh rows against the
  *trailing median* of their key's history (robust to one-off noise
  spikes in either direction) with a noise-aware threshold: a row is a
  regression only when ``seconds_best`` exceeds ``threshold ×`` the
  median (default 1.4, far above timer jitter) *and* the key has at
  least *min_samples* prior samples — young keys report
  ``insufficient_history`` (or ``new``), never failures.
* **Verdict block** — :func:`verdict_block` is the machine-readable
  summary ``benchmarks/run_benchmarks.py`` embeds into the BENCH
  payloads; ``repro bench check`` renders it and exits nonzero on
  confirmed regressions (advisory mode available for seeding CI).

Timer discipline: the rows being judged were measured upstream with
``perf_counter``; the only wall-clock here is the ``created`` metadata
stamp on history records.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from statistics import median

from .report import runs_dir

#: Schema tag for history records and verdict blocks.
SENTINEL_SCHEMA = "repro.bench-sentinel/v1"

#: Fresh-vs-trailing-median ratio above which a row is a regression.
DEFAULT_THRESHOLD = 1.4

#: Prior samples a key needs before a verdict can be "regression".
DEFAULT_MIN_SAMPLES = 3

#: Trailing-median window: only this many most-recent samples per key
#: feed the baseline, so ancient (pre-optimization) history ages out.
TRAILING_WINDOW = 9

#: The identity of one timing series.
KEY_FIELDS = ("benchmark", "section", "regime", "scheme", "n", "cpu_count")


def history_path(path: str | Path | None = None) -> Path:
    """The history file: *path* if given, else
    ``<runs_dir>/bench_history.jsonl``."""
    if path is not None:
        return Path(path)
    return runs_dir() / "bench_history.jsonl"


def row_key(row: dict) -> tuple:
    """The series key of one (history or fresh) row."""
    return tuple(row.get(field) for field in KEY_FIELDS)


def _section_rows(payload: dict) -> list[tuple[str, dict, int | None]]:
    """``(section, row, cpu_count)`` triples from one BENCH payload:
    the top-level ``rows`` list is section ``"main"``; every dict value
    with its own ``rows`` list is a named section."""
    cpu = payload.get("cpu_count")
    out: list[tuple[str, dict, int | None]] = []
    for row in payload.get("rows", []) or []:
        out.append(("main", row, cpu))
    for name, section in payload.items():
        if isinstance(section, dict):
            for row in section.get("rows", []) or []:
                out.append((name, row, cpu))
    return out


def extract_rows(payload: dict, created: float | None = None) -> list[dict]:
    """Flatten one BENCH payload into sentinel history rows.

    Only timing rows participate (``seconds_best`` present); parity and
    summary blocks stay out of the history.  *created* defaults to the
    current wall clock — metadata only, never compared.
    """
    benchmark = payload.get("benchmark", "unknown")
    created = created if created is not None else time.time()
    rows = []
    for section, row, cpu in _section_rows(payload):
        seconds = row.get("seconds_best")
        if not isinstance(seconds, (int, float)):
            continue
        rows.append(
            {
                "schema": SENTINEL_SCHEMA,
                "created": created,
                "benchmark": benchmark,
                "section": section,
                "regime": row.get("regime", ""),
                "scheme": row.get("scheme", ""),
                "n": row.get("n"),
                "cpu_count": cpu,
                "seconds_best": float(seconds),
                "seconds_mean": row.get("seconds_mean"),
            }
        )
    return rows


def load_history(path: str | Path | None = None) -> list[dict]:
    """History records in file (append) order; missing file is empty
    history, malformed lines are skipped (the file is append-only and a
    crashed run may leave a torn tail)."""
    file = history_path(path)
    if not file.exists():
        return []
    records = []
    for line in file.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict) and "seconds_best" in record:
            records.append(record)
    return records


def append_history(rows: list[dict], path: str | Path | None = None) -> Path:
    """Append *rows* (one JSON line each); returns the file written."""
    file = history_path(path)
    file.parent.mkdir(parents=True, exist_ok=True)
    with file.open("a", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True) + "\n")
    return file


def check_regressions(
    fresh: list[dict],
    history: list[dict],
    threshold: float = DEFAULT_THRESHOLD,
    min_samples: int = DEFAULT_MIN_SAMPLES,
) -> list[dict]:
    """Judge every fresh row against its key's trailing history.

    Returns one verdict per fresh row: the key fields plus
    ``seconds_best``, ``baseline_median``, ``ratio``, ``samples`` and a
    ``status`` in ``{"ok", "regression", "new", "insufficient_history"}``.
    History order matters — the baseline is the median of the *last*
    :data:`TRAILING_WINDOW` samples per key.
    """
    by_key: dict[tuple, list[float]] = {}
    for record in history:
        by_key.setdefault(row_key(record), []).append(record["seconds_best"])
    verdicts = []
    for row in fresh:
        key = row_key(row)
        samples = by_key.get(key, [])
        verdict = {field: row.get(field) for field in KEY_FIELDS}
        verdict["seconds_best"] = row["seconds_best"]
        verdict["samples"] = len(samples)
        if not samples:
            verdict.update(status="new", baseline_median=None, ratio=None)
        elif len(samples) < min_samples:
            verdict.update(
                status="insufficient_history", baseline_median=None, ratio=None
            )
        else:
            baseline = median(samples[-TRAILING_WINDOW:])
            ratio = row["seconds_best"] / baseline if baseline > 0 else float("inf")
            verdict.update(
                status="regression" if ratio > threshold else "ok",
                baseline_median=round(baseline, 6),
                ratio=round(ratio, 3),
            )
        verdicts.append(verdict)
    return verdicts


def verdict_block(
    fresh: list[dict],
    history: list[dict],
    threshold: float = DEFAULT_THRESHOLD,
    min_samples: int = DEFAULT_MIN_SAMPLES,
) -> dict:
    """The machine-readable sentinel summary embedded in BENCH payloads."""
    verdicts = check_regressions(
        fresh, history, threshold=threshold, min_samples=min_samples
    )
    counts: dict[str, int] = {}
    for verdict in verdicts:
        counts[verdict["status"]] = counts.get(verdict["status"], 0) + 1
    return {
        "schema": SENTINEL_SCHEMA,
        "threshold": threshold,
        "min_samples": min_samples,
        "status": "regression" if counts.get("regression") else "ok",
        "counts": counts,
        "verdicts": verdicts,
    }


def render_verdicts(verdicts: list[dict], verbose: bool = False) -> str:
    """Human-readable verdict table — regressions always shown, healthy
    rows summarized unless *verbose*."""
    if not verdicts:
        return "bench sentinel: no timing rows to check"
    lines = []
    shown = 0
    for verdict in verdicts:
        if verdict["status"] in ("ok", "new", "insufficient_history") and not verbose:
            continue
        shown += 1
        key = "/".join(
            str(verdict[field]) for field in KEY_FIELDS if verdict[field] not in (None, "")
        )
        if verdict["baseline_median"] is not None:
            detail = (
                f"{verdict['seconds_best']:.4f}s vs median "
                f"{verdict['baseline_median']:.4f}s (x{verdict['ratio']:.2f}, "
                f"{verdict['samples']} samples)"
            )
        else:
            detail = f"{verdict['seconds_best']:.4f}s ({verdict['samples']} samples)"
        lines.append(f"  {verdict['status']:<22} {key}  {detail}")
    counts: dict[str, int] = {}
    for verdict in verdicts:
        counts[verdict["status"]] = counts.get(verdict["status"], 0) + 1
    summary = ", ".join(f"{name}={count}" for name, count in sorted(counts.items()))
    header = f"bench sentinel: {len(verdicts)} rows checked ({summary})"
    return "\n".join([header] + lines) if lines else header
