"""Observability for the hiding-decision engine: tracing, metrics,
logging, and run reports — stdlib-only, zero-cost when off.

* :mod:`repro.obs.trace` — :class:`Tracer` / :class:`Span`: the
  hierarchical span tree of a run (``decide_hiding`` → plan resolution →
  backend → sweep → chunk/cache spans), thread-safe, with process-pool
  worker spans merged via :meth:`Tracer.adopt` and a JSONL exporter.
  :data:`NULL_TRACER` is the free disabled default.
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry`: counters, gauges,
  and fixed-bucket histograms.  Backs :class:`~repro.perf.stats.PerfStats`
  via :meth:`PerfStats.bind_metrics`, so the existing counter vocabulary
  feeds the registry without touching call sites.
* :mod:`repro.obs.report` — :class:`RunReport`: span tree + metrics +
  provenance + plan fingerprint, content-addressed under
  ``.repro_runs/``, with :func:`diff_reports` (decision drift vs perf
  deltas) and :func:`validate_report` (the CI schema gate).
* :mod:`repro.obs.logs` — the ``repro.*`` logger hierarchy
  (:func:`get_logger`, :func:`setup_logging`).
"""

from .logs import ROOT_LOGGER_NAME, get_logger, parse_level, setup_logging
from .metrics import (
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    GLOBAL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .report import (
    REPORT_SCHEMA,
    RunReport,
    diff_reports,
    plan_fingerprint,
    render_diff,
    runs_dir,
    validate_report,
)
from .trace import (
    NULL_SPAN,
    NULL_TRACER,
    SPAN_FIELDS,
    Span,
    Tracer,
    format_seconds,
    render_span_tree,
    span_tree,
    tree_coverage,
    validate_span,
    worker_span,
)

__all__ = [
    "DEFAULT_SIZE_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "GLOBAL_METRICS",
    "NULL_SPAN",
    "NULL_TRACER",
    "REPORT_SCHEMA",
    "ROOT_LOGGER_NAME",
    "SPAN_FIELDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunReport",
    "Span",
    "Tracer",
    "diff_reports",
    "format_seconds",
    "get_logger",
    "parse_level",
    "plan_fingerprint",
    "render_diff",
    "render_span_tree",
    "runs_dir",
    "setup_logging",
    "span_tree",
    "tree_coverage",
    "validate_report",
    "validate_span",
    "worker_span",
]
