"""Observability for the hiding-decision engine: tracing, metrics,
logging, and run reports — stdlib-only, zero-cost when off.

* :mod:`repro.obs.trace` — :class:`Tracer` / :class:`Span`: the
  hierarchical span tree of a run (``decide_hiding`` → plan resolution →
  backend → sweep → chunk/cache spans), thread-safe, with process-pool
  worker spans merged via :meth:`Tracer.adopt` and a JSONL exporter.
  :data:`NULL_TRACER` is the free disabled default.
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry`: counters, gauges,
  and fixed-bucket histograms.  Backs :class:`~repro.perf.stats.PerfStats`
  via :meth:`PerfStats.bind_metrics`, so the existing counter vocabulary
  feeds the registry without touching call sites.
* :mod:`repro.obs.report` — :class:`RunReport`: span tree + metrics +
  provenance + plan fingerprint, content-addressed under
  ``.repro_runs/``, with :func:`diff_reports` (decision drift vs perf
  deltas) and :func:`validate_report` (the CI schema gate).
* :mod:`repro.obs.logs` — the ``repro.*`` logger hierarchy
  (:func:`get_logger`, :func:`setup_logging`).
* :mod:`repro.obs.progress` — :class:`ProgressBus`: the live-telemetry
  pub/sub bus (``cell_started`` / ``instances_scanned`` deltas /
  ``cell_finished`` / ETA), with the :class:`TTYRenderer` and
  :class:`JSONLSink` stock subscribers.  :data:`NULL_PROGRESS` is the
  free disabled default; :data:`GLOBAL_PROGRESS` the process-wide bus.
* :mod:`repro.obs.profile` — span self-time profiling over
  :meth:`Tracer.finished_spans`: exclusive time per span name
  (:func:`self_times`), flamegraph-compatible folded stacks
  (:func:`folded_stacks` / :func:`write_folded`), and the
  :func:`render_profile` table behind ``repro report profile``.
* :mod:`repro.obs.export` — metrics exposition: a registry as
  Prometheus text (:func:`to_prometheus`, with :func:`parse_prometheus`
  as the round-trip gate) or flat JSON (:func:`to_flat_json`).
* :mod:`repro.obs.sentinel` — the benchmark-regression sentinel:
  append-only timing history under ``.repro_runs/`` and the
  trailing-median check behind ``repro bench check``.
"""

from .export import metric_name, parse_prometheus, to_flat_json, to_prometheus
from .logs import ROOT_LOGGER_NAME, get_logger, parse_level, setup_logging
from .metrics import (
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    GLOBAL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .profile import (
    folded_stacks,
    render_profile,
    self_times,
    total_self_time,
    write_folded,
)
from .progress import (
    EVENT_KINDS,
    GLOBAL_PROGRESS,
    NO_PROGRESS_ENV,
    NULL_PROGRESS,
    JSONLSink,
    ProgressBus,
    TTYRenderer,
    counting_instances,
    progress_enabled,
)
from .report import (
    REPORT_SCHEMA,
    RunReport,
    diff_reports,
    plan_fingerprint,
    render_diff,
    runs_dir,
    validate_report,
)
from .sentinel import (
    DEFAULT_MIN_SAMPLES,
    DEFAULT_THRESHOLD,
    SENTINEL_SCHEMA,
    append_history,
    check_regressions,
    extract_rows,
    history_path,
    load_history,
    render_verdicts,
    verdict_block,
)
from .trace import (
    NULL_SPAN,
    NULL_TRACER,
    SPAN_FIELDS,
    Span,
    Tracer,
    format_seconds,
    render_span_tree,
    span_tree,
    tree_coverage,
    validate_span,
    worker_span,
)

__all__ = [
    "DEFAULT_MIN_SAMPLES",
    "DEFAULT_SIZE_BUCKETS",
    "DEFAULT_THRESHOLD",
    "DEFAULT_TIME_BUCKETS",
    "EVENT_KINDS",
    "GLOBAL_METRICS",
    "GLOBAL_PROGRESS",
    "NO_PROGRESS_ENV",
    "NULL_PROGRESS",
    "NULL_SPAN",
    "NULL_TRACER",
    "REPORT_SCHEMA",
    "ROOT_LOGGER_NAME",
    "SENTINEL_SCHEMA",
    "SPAN_FIELDS",
    "Counter",
    "Gauge",
    "Histogram",
    "JSONLSink",
    "MetricsRegistry",
    "ProgressBus",
    "RunReport",
    "Span",
    "TTYRenderer",
    "Tracer",
    "append_history",
    "check_regressions",
    "counting_instances",
    "diff_reports",
    "extract_rows",
    "folded_stacks",
    "format_seconds",
    "get_logger",
    "history_path",
    "load_history",
    "metric_name",
    "parse_level",
    "parse_prometheus",
    "plan_fingerprint",
    "progress_enabled",
    "render_diff",
    "render_profile",
    "render_span_tree",
    "render_verdicts",
    "runs_dir",
    "self_times",
    "setup_logging",
    "span_tree",
    "to_flat_json",
    "to_prometheus",
    "total_self_time",
    "tree_coverage",
    "validate_report",
    "validate_span",
    "verdict_block",
    "worker_span",
]
