"""Metrics exposition: a :class:`MetricsRegistry` as Prometheus text or
flat JSON.

The future service layer (ROADMAP: certification-as-a-service) scrapes
whatever this module renders, so the formats are pinned here rather
than improvised at an HTTP handler later:

* :func:`to_prometheus` — the Prometheus text exposition format
  (version 0.0.4): ``# TYPE`` headers, counters suffixed ``_total`` by
  the caller's naming (names are passed through, only sanitized),
  histograms as *cumulative* ``_bucket{le="..."}`` series closed by
  ``le="+Inf"`` plus ``_sum``/``_count``.
* :func:`parse_prometheus` — the minimal inverse, enough to round-trip
  what :func:`to_prometheus` writes (the format-stability test in
  ``tests/test_export.py`` pins render → parse → equality).
* :func:`to_flat_json` — one flat ``{"metric_name": value}`` document
  for dashboards that want JSON; histogram series flatten to
  ``name_bucket_le_<bound>`` keys next to ``name_sum``/``name_count``.

Stdlib-only, pure functions; nothing here mutates a registry.
"""

from __future__ import annotations

import re

from .metrics import MetricsRegistry

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(name: str, prefix: str = "repro") -> str:
    """Sanitize *name* into a legal Prometheus metric name, prefixed."""
    full = f"{prefix}_{name}" if prefix else name
    full = _NAME_BAD_CHARS.sub("_", full)
    if not _NAME_OK.match(full):
        full = "_" + full
    return full


def _format_value(value: float | int) -> str:
    """Canonical sample rendering: integers stay integral, floats use
    repr (shortest round-trippable form)."""
    if isinstance(value, bool):  # bools are ints; refuse the trap
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_le(bound: float | int) -> str:
    return _format_value(float(bound))


def to_prometheus(registry: MetricsRegistry, prefix: str = "repro") -> str:
    """Render *registry* in the Prometheus text exposition format.

    Deterministic: metrics sort by exposed name within each kind, so the
    output is diffable across runs (and byte-stable for the round-trip
    test).  Gauges that were never set are skipped — Prometheus has no
    notion of a null sample.
    """
    lines: list[str] = []
    counters = sorted(
        (metric_name(name, prefix), c.value) for name, c in registry.counters.items()
    )
    for name, value in counters:
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_format_value(value)}")
    gauges = sorted(
        (metric_name(name, prefix), g.value)
        for name, g in registry.gauges.items()
        if g.value is not None
    )
    for name, value in gauges:
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_format_value(value)}")
    histograms = sorted(
        (metric_name(name, prefix), h) for name, h in registry.histograms.items()
    )
    for name, hist in histograms:
        lines.append(f"# TYPE {name} histogram")
        cumulative = 0
        for bound, count in zip(hist.buckets, hist.bucket_counts):
            cumulative += count
            lines.append(
                f'{name}_bucket{{le="{_format_le(bound)}"}} {cumulative}'
            )
        lines.append(f'{name}_bucket{{le="+Inf"}} {hist.count}')
        lines.append(f"{name}_sum {_format_value(hist.total)}")
        lines.append(f"{name}_count {hist.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def to_flat_json(registry: MetricsRegistry, prefix: str = "repro") -> dict:
    """One flat ``{exposed_name: value}`` document (JSON-serializable)."""
    doc: dict[str, float | int] = {}
    for name, counter in registry.counters.items():
        doc[metric_name(name, prefix)] = counter.value
    for name, gauge in registry.gauges.items():
        if gauge.value is not None:
            doc[metric_name(name, prefix)] = gauge.value
    for name, hist in registry.histograms.items():
        exposed = metric_name(name, prefix)
        cumulative = 0
        for bound, count in zip(hist.buckets, hist.bucket_counts):
            cumulative += count
            doc[f"{exposed}_bucket_le_{_format_le(bound)}"] = cumulative
        doc[f"{exposed}_bucket_le_Inf"] = hist.count
        doc[f"{exposed}_sum"] = hist.total
        doc[f"{exposed}_count"] = hist.count
    return dict(sorted(doc.items()))


_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)$"
)


def _parse_number(text: str) -> float | int:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    if text == "NaN":
        return float("nan")
    try:
        return int(text)
    except ValueError:
        return float(text)


def parse_prometheus(text: str) -> dict:
    """Parse text-exposition output back into plain data.

    Returns ``{"types": {name: kind}, "samples": [(name, labels, value)]}``
    where ``labels`` is a (possibly empty) dict.  Covers exactly the
    subset :func:`to_prometheus` emits — this is a format-stability
    check, not a general Prometheus client.
    """
    types: dict[str, str] = {}
    samples: list[tuple[str, dict, float | int]] = []
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"unparseable exposition line {lineno}: {line!r}")
        labels: dict[str, str] = {}
        raw = match.group("labels")
        if raw:
            for pair in raw.split(","):
                key, _, value = pair.partition("=")
                labels[key.strip()] = value.strip().strip('"')
        samples.append((match.group("name"), labels, _parse_number(match.group("value"))))
    return {"types": types, "samples": samples}
