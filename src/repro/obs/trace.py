"""Hierarchical tracing for the hiding-decision pipeline.

A :class:`Tracer` records a tree of :class:`Span` objects — one span per
pipeline stage (``decide_hiding`` → plan resolution → backend → sweep →
chunk scans / cache tiers) — with wall-clock timing and free-form
attributes (instances scanned, early-exit point, cache tier hit, worker
pid).  Design constraints, in order:

1. **Zero cost when off.**  Every instrumented call site holds a tracer
   reference; the default is the process-wide :data:`NULL_TRACER`, whose
   ``span()`` is a no-op context manager yielding a shared dummy span.
   Hot loops are never instrumented per event — spans are per stage,
   chunk, or sweep, so a traced run carries a few dozen spans, not
   thousands.
2. **Thread- and process-safe.**  Span stacks are thread-local (each
   thread nests independently under the tracer's root); the finished-span
   list is lock-guarded.  ``ProcessPoolExecutor`` workers cannot share a
   tracer object, so they build plain span *records* (dicts, via
   :func:`worker_span`) and the parent re-parents them into its own tree
   with :meth:`Tracer.adopt` — every worker span ends up with a parent in
   the merged tree.
3. **Plain-dict export.**  A finished span serializes to a flat dict
   (see :data:`SPAN_FIELDS`); :meth:`Tracer.export_jsonl` writes one span
   per line.  :func:`span_tree` rebuilds the hierarchy from the flat
   list, and :func:`tree_coverage` measures how much of a root span's
   wall time its children account for.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from contextlib import contextmanager
from pathlib import Path

#: Every exported span record carries exactly these keys.
SPAN_FIELDS = (
    "name",
    "span_id",
    "parent_id",
    "trace_id",
    "start_time",
    "duration_s",
    "status",
    "attributes",
)


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


class Span:
    """One timed stage of a run.  Mutable while open; finished spans are
    exported as dicts and never touched again."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "trace_id",
        "start_time",
        "duration_s",
        "status",
        "attributes",
        "_t0",
    )

    def __init__(self, name: str, trace_id: str, parent_id: str | None) -> None:
        self.name = name
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.start_time = time.time()
        self.duration_s: float | None = None
        self.status = "ok"
        self.attributes: dict = {}
        self._t0 = time.perf_counter()

    def set_attribute(self, key: str, value) -> None:
        self.attributes[key] = value

    def set_attributes(self, **attributes) -> None:
        self.attributes.update(attributes)

    def finish(self) -> None:
        if self.duration_s is None:
            self.duration_s = time.perf_counter() - self._t0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "start_time": self.start_time,
            "duration_s": self.duration_s if self.duration_s is not None else 0.0,
            "status": self.status,
            "attributes": dict(self.attributes),
        }


class _NullSpan:
    """Shared do-nothing span handed out by the null tracer."""

    __slots__ = ()
    span_id = None
    attributes: dict = {}

    def set_attribute(self, key: str, value) -> None:
        pass

    def set_attributes(self, **attributes) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects a span tree for one run (``active`` is True)."""

    active = True

    def __init__(self, trace_id: str | None = None) -> None:
        self.trace_id = trace_id if trace_id is not None else _new_id()
        self._lock = threading.Lock()
        self._finished: list[dict] = []
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span(self) -> Span | None:
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str, **attributes):
        """Open a child span of the current one (root if none is open)."""
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        span = Span(name, self.trace_id, parent)
        if attributes:
            span.attributes.update(attributes)
        stack.append(span)
        try:
            yield span
        except BaseException:
            span.status = "error"
            raise
        finally:
            stack.pop()
            span.finish()
            with self._lock:
                self._finished.append(span.to_dict())

    def adopt(self, records: list[dict], parent: Span | None = None) -> None:
        """Merge span records produced elsewhere (pool workers) into this
        tree.  Records whose ``parent_id`` is unknown here are re-parented
        under *parent* (default: the current span), and every record is
        restamped with this tracer's ``trace_id``."""
        if not records:
            return
        if parent is None:
            parent = self.current_span()
        parent_id = parent.span_id if parent is not None else None
        local_ids = {record["span_id"] for record in records}
        with self._lock:
            for record in records:
                record = dict(record)
                record["trace_id"] = self.trace_id
                if record["parent_id"] not in local_ids:
                    record["parent_id"] = parent_id
                self._finished.append(record)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def finished_spans(self) -> list[dict]:
        """Finished span records, in completion order."""
        with self._lock:
            return [dict(record) for record in self._finished]

    def export_jsonl(self, path: str | Path) -> Path:
        """Write one span record per line; returns the path written."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        lines = [
            json.dumps(record, sort_keys=True, ensure_ascii=False)
            for record in self.finished_spans()
        ]
        path.write_text("\n".join(lines) + ("\n" if lines else ""), encoding="utf-8")
        return path


class _NullTracer(Tracer):
    """The disabled tracer: every operation is a no-op."""

    active = False

    def __init__(self) -> None:  # no lock, no storage
        self.trace_id = None

    @contextmanager
    def span(self, name: str, **attributes):
        yield NULL_SPAN

    def current_span(self) -> None:
        return None

    def adopt(self, records: list[dict], parent: Span | None = None) -> None:
        pass

    def finished_spans(self) -> list[dict]:
        return []


NULL_TRACER = _NullTracer()


# ----------------------------------------------------------------------
# Tree reconstruction and analysis (pure functions over span records)
# ----------------------------------------------------------------------


def span_tree(records: list[dict]) -> list[dict]:
    """Nest flat span records into a tree: each node gains a ``children``
    list; returns the roots (spans whose parent is absent)."""
    by_id = {record["span_id"]: {**record, "children": []} for record in records}
    roots = []
    for node in by_id.values():
        parent = by_id.get(node["parent_id"])
        if parent is not None:
            parent["children"].append(node)
        else:
            roots.append(node)
    for node in by_id.values():
        node["children"].sort(key=lambda child: child["start_time"])
    roots.sort(key=lambda node: node["start_time"])
    return roots


def tree_coverage(records: list[dict]) -> float:
    """Fraction of the first root span's wall time accounted for by its
    direct children (1.0 when there is nothing to cover)."""
    roots = span_tree(records)
    if not roots:
        return 1.0
    root = roots[0]
    total = root["duration_s"] or 0.0
    if total <= 0.0:
        return 1.0
    covered = sum(child["duration_s"] or 0.0 for child in root["children"])
    return min(1.0, covered / total)


def render_span_tree(records: list[dict], indent: str = "  ") -> str:
    """Human-readable span tree (the CLI's ``--trace`` output)."""
    lines: list[str] = []

    def walk(node: dict, depth: int) -> None:
        duration = node["duration_s"] or 0.0
        attrs = ", ".join(f"{k}={v}" for k, v in sorted(node["attributes"].items()))
        suffix = f"  [{attrs}]" if attrs else ""
        marker = "" if node["status"] == "ok" else f"  !{node['status']}"
        lines.append(
            f"{indent * depth}{node['name']}  {format_seconds(duration)}{suffix}{marker}"
        )
        for child in node["children"]:
            walk(child, depth + 1)

    for root in span_tree(records):
        walk(root, 0)
    return "\n".join(lines) if lines else "(no spans recorded)"


def format_seconds(seconds: float) -> str:
    """Honest wall-time formatting across six orders of magnitude: never
    prints ``0.0 ms`` for a sub-millisecond or unrecorded duration."""
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f} ms"
    if seconds > 0.0:
        return f"{seconds * 1e6:.0f} µs"
    return "0 s"


# ----------------------------------------------------------------------
# Worker-side span records (no Tracer object crosses the pool boundary)
# ----------------------------------------------------------------------


@contextmanager
def worker_span(name: str, records: list[dict] | None, **attributes):
    """Record one span as a plain dict appended to *records* — the
    process-pool worker side of :meth:`Tracer.adopt`.  The record has no
    parent; the adopting tracer re-parents it under the live span that
    collected the worker's result.  ``records=None`` (an untraced run)
    records nothing."""
    if records is None:
        yield NULL_SPAN
        return
    span = Span(name, trace_id="", parent_id=None)
    span.attributes.update(attributes)
    try:
        yield span
    except BaseException:
        span.status = "error"
        raise
    finally:
        span.finish()
        records.append(span.to_dict())


def validate_span(record: dict) -> list[str]:
    """Schema check for one span record; returns human-readable errors."""
    errors = []
    for field in SPAN_FIELDS:
        if field not in record:
            errors.append(f"span missing field {field!r}")
    if not isinstance(record.get("name"), str) or not record.get("name"):
        errors.append("span name must be a non-empty string")
    duration = record.get("duration_s")
    if not isinstance(duration, (int, float)) or duration < 0:
        errors.append(f"span duration_s must be a non-negative number, got {duration!r}")
    if not isinstance(record.get("attributes"), dict):
        errors.append("span attributes must be a dict")
    return errors
