"""Counters, gauges, and fixed-bucket histograms for the decision path.

A :class:`MetricsRegistry` is the structured successor of the flat
:class:`~repro.perf.stats.PerfStats` counter bag: counters keep the
existing vocabulary (``instances_scanned``, ``disk_hits``, ...), gauges
record point-in-time values (views in the graph at exit), and histograms
capture distributions (per-decision latency, stage durations) that a
single accumulated total cannot show.

The registry *backs* ``PerfStats`` rather than replacing it: a stats
object bound via :meth:`PerfStats.bind_metrics` mirrors every counter
increment into the registry and feeds each ``time_stage`` interval into a
``<stage>_seconds`` histogram, so the hundreds of existing ``incr`` call
sites light up the metrics layer without being touched.  Worker-local
registries merge with :meth:`MetricsRegistry.merge` exactly like
worker-local stats do.

Everything here is stdlib-only and cheap: a counter increment is one
dict lookup + add; an unbound stats object pays a single attribute test.
"""

from __future__ import annotations

import bisect

#: Default histogram buckets, in seconds: 100 µs to 30 s, roughly one
#: bucket per half order of magnitude — wide enough for a disk reload
#: and a full materialized sweep to land in different buckets.
DEFAULT_TIME_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)

#: Default buckets for dimensionless size distributions (views per
#: labeling, instances per chunk, ...).
DEFAULT_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


class Counter:
    """Monotonic integer counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Last-write-wins point-in-time value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float | int | None = None

    def set(self, value: float | int) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram: counts per upper bound plus an overflow
    bucket, with running count/sum for mean derivation."""

    __slots__ = ("buckets", "bucket_counts", "count", "total")

    def __init__(self, buckets: tuple = DEFAULT_TIME_BUCKETS) -> None:
        self.buckets = tuple(buckets)
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def to_dict(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.total,
        }


class MetricsRegistry:
    """Named counters, gauges, and histograms for one run (or process)."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Instrument accessors (create on first use)
    # ------------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter()
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge()
        return gauge

    def histogram(self, name: str, buckets: tuple | None = None) -> Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(
                buckets if buckets is not None else DEFAULT_TIME_BUCKETS
            )
        return histogram

    # ------------------------------------------------------------------
    # Recording conveniences
    # ------------------------------------------------------------------

    def incr(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float | int) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float, buckets: tuple | None = None) -> None:
        self.histogram(name, buckets).observe(value)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry (worker-local measurements) into this
        one.  Histograms with mismatched buckets fall back to replaying
        the foreign mean ``count`` times — lossy but never wrong about
        totals."""
        for name, counter in other.counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other.gauges.items():
            if gauge.value is not None:
                self.gauge(name).set(gauge.value)
        for name, histogram in other.histograms.items():
            mine = self.histogram(name, histogram.buckets)
            if mine.buckets == histogram.buckets:
                for i, count in enumerate(histogram.bucket_counts):
                    mine.bucket_counts[i] += count
                mine.count += histogram.count
                mine.total += histogram.total
            elif histogram.count:
                mean = histogram.total / histogram.count
                for _ in range(histogram.count):
                    mine.observe(mean)

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()

    def as_dict(self) -> dict:
        return {
            "counters": {name: c.value for name, c in sorted(self.counters.items())},
            "gauges": {name: g.value for name, g in sorted(self.gauges.items())},
            "histograms": {
                name: h.to_dict() for name, h in sorted(self.histograms.items())
            },
        }

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self.counters)}, "
            f"gauges={len(self.gauges)}, histograms={len(self.histograms)})"
        )


#: Process-wide registry, mirroring :data:`repro.perf.stats.GLOBAL_STATS`
#: for callers that never build an isolated run context.
GLOBAL_METRICS = MetricsRegistry()
