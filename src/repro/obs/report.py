"""Run reports: one content-addressed JSON file per observed run.

A :class:`RunReport` freezes everything observable about one hiding
decision (or one benchmark/runner batch) into a single payload:

* the **span tree** recorded by the run's :class:`~repro.obs.trace.Tracer`
  (flat records; rebuild with :func:`~repro.obs.trace.span_tree`),
* the **metrics** registry dump and the raw :class:`PerfStats` counters,
* the decision itself — ``hiding`` flag, canonical-witness length, and a
  digest of :meth:`~repro.engine.verdict.Verdict.decision_fingerprint` —
  plus the full :class:`~repro.engine.verdict.Provenance` record,
* the resolved :class:`~repro.engine.plan.ExecutionPlan` and its
  fingerprint, so two reports can be compared plan-for-plan,
* a **consistency** block cross-checking the metrics counters against
  the provenance counts (they must agree exactly on a fresh sweep).

Reports are written under ``.repro_runs/`` (or ``$REPRO_RUNS_DIR``) with
the content digest as the file name; :func:`diff_reports` compares two
reports and separates *decision drift* (different answer, witness, plan,
or scan counts — a correctness signal) from informational perf deltas
(wall time, cache-tier traffic).  :func:`validate_report` is the schema
gate CI runs against freshly emitted reports.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from pathlib import Path
from typing import Any

from .logs import get_logger
from .metrics import MetricsRegistry
from .trace import Tracer, format_seconds, render_span_tree, span_tree, tree_coverage, validate_span

log = get_logger("obs.report")

#: Schema identifier embedded in (and required of) every report.
REPORT_SCHEMA = "repro.run-report/v1"

#: Top-level keys every report must carry.
REQUIRED_KEYS = (
    "schema",
    "created",
    "trace_id",
    "plan",
    "plan_fingerprint",
    "decision",
    "provenance",
    "metrics",
    "stats",
    "spans",
    "wall_time_s",
    "span_coverage",
)

#: provenance field → stats/metrics counter expected to agree exactly.
_CONSISTENCY_MAP = (
    ("instances_scanned", "instances_scanned"),
    ("views", "stream_views"),
    ("edges", "stream_edges"),
)


def runs_dir() -> Path:
    """Where reports land: ``$REPRO_RUNS_DIR`` or ``./.repro_runs``."""
    env = os.environ.get("REPRO_RUNS_DIR")
    return Path(env) if env else Path(".repro_runs")


def _digest(payload: dict) -> str:
    canonical = json.dumps(payload, sort_keys=True, ensure_ascii=False)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:32]


def plan_fingerprint(plan: Any) -> str | None:
    """Digest of a (resolved) plan's content — worker count included, so
    "identical plan" means identical execution recipe."""
    if plan is None:
        return None
    payload = dataclasses.asdict(plan) if dataclasses.is_dataclass(plan) else dict(plan)
    canonical = json.dumps(payload, sort_keys=True, ensure_ascii=False, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


class RunReport:
    """An immutable-by-convention report payload plus IO helpers."""

    def __init__(self, payload: dict) -> None:
        self.payload = payload

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_run(
        cls,
        *,
        tracer: Tracer,
        metrics: MetricsRegistry | None = None,
        stats=None,
        verdict=None,
        plan=None,
        scheme: str | None = None,
        n: int | None = None,
        meta: dict | None = None,
    ) -> "RunReport":
        """Assemble a report from one run's observability objects.

        *verdict*/*plan* are the engine's ``Verdict``/``ExecutionPlan``
        (duck-typed so batch reports without a single decision can omit
        them); *meta* carries free-form extras (regime name, benchmark
        row, experiment ids).
        """
        spans = tracer.finished_spans()
        roots = span_tree(spans)
        wall = roots[0]["duration_s"] if roots else 0.0
        decision = provenance = None
        if verdict is not None:
            provenance = dataclasses.asdict(verdict.provenance)
            decision = {
                "hiding": verdict.hiding,
                "k": verdict.k,
                "witness_length": (
                    None if verdict.witness is None else len(verdict.witness)
                ),
                "fingerprint": hashlib.sha256(
                    verdict.decision_fingerprint()
                ).hexdigest()[:32],
            }
        stats_dump = (
            stats.as_dict() if stats is not None else {"counters": {}, "timers": {}}
        )
        metrics_dump = (
            metrics.as_dict()
            if metrics is not None
            else {"counters": {}, "gauges": {}, "histograms": {}}
        )
        payload = {
            "schema": REPORT_SCHEMA,
            "created": time.time(),
            "trace_id": tracer.trace_id,
            "scheme": scheme,
            "n": n,
            "plan": (
                dataclasses.asdict(plan) if dataclasses.is_dataclass(plan) else plan
            ),
            "plan_fingerprint": plan_fingerprint(plan),
            "decision": decision,
            "provenance": provenance,
            "metrics": metrics_dump,
            "stats": stats_dump,
            "spans": spans,
            "wall_time_s": wall,
            "span_coverage": round(tree_coverage(spans), 4),
            "consistency": _consistency(provenance, stats_dump, metrics_dump),
        }
        if meta:
            payload["meta"] = meta
        return cls(payload)

    # ------------------------------------------------------------------
    # IO
    # ------------------------------------------------------------------

    @property
    def digest(self) -> str:
        return _digest(self.payload)

    def write(
        self, path: str | Path | None = None, directory: str | Path | None = None
    ) -> Path:
        """Write the content-addressed canonical file (and, when *path*
        is given, an identical copy there).  Returns the canonical path."""
        blob = json.dumps(self.payload, indent=2, sort_keys=True, ensure_ascii=False)
        root = Path(directory) if directory is not None else runs_dir()
        root.mkdir(parents=True, exist_ok=True)
        canonical = root / f"{self.digest}.json"
        canonical.write_text(blob + "\n", encoding="utf-8")
        if path is not None:
            out = Path(path)
            if out.parent != Path(""):
                out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(blob + "\n", encoding="utf-8")
        log.info("run report %s written to %s", self.digest, canonical)
        return canonical

    @classmethod
    def load(
        cls, ref: str | Path, directory: str | Path | None = None
    ) -> "RunReport":
        """Load a report by path, or by digest under the runs dir."""
        path = Path(ref)
        if not path.is_file():
            root = Path(directory) if directory is not None else runs_dir()
            candidate = root / f"{ref}.json"
            if not candidate.is_file():
                raise FileNotFoundError(f"no run report at {ref!r} or {candidate}")
            path = candidate
        return cls(json.loads(path.read_text(encoding="utf-8")))

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def render(self) -> str:
        """Human summary: header, consistency, metrics counters, spans."""
        p = self.payload
        lines = [
            f"run report {self.digest}",
            f"  schema:        {p['schema']}",
            f"  trace id:      {p['trace_id']}",
            f"  scheme / n:    {p.get('scheme')} / {p.get('n')}",
            f"  wall time:     {format_seconds(p['wall_time_s'])}",
            f"  span coverage: {p['span_coverage']:.1%}",
        ]
        if p.get("decision"):
            d = p["decision"]
            lines.append(
                f"  decision:      hiding={d['hiding']} k={d['k']} "
                f"witness_length={d['witness_length']} fp={d['fingerprint'][:12]}"
            )
        plan = p.get("plan")
        if plan:
            provenance = p.get("provenance") or {}
            symmetry = plan.get("symmetry") or "auto"
            pruned = provenance.get("symmetry_pruned", False)
            lines.append(
                f"  plan:          backend={plan.get('backend')} "
                f"symmetry={symmetry}"
                f"{' (orbit-pruned)' if pruned else ''}"
            )
        if p.get("plan_fingerprint"):
            lines.append(f"  plan fp:       {p['plan_fingerprint']}")
        consistency = p.get("consistency")
        if consistency:
            verdict = "OK" if consistency["ok"] else "MISMATCH"
            lines.append(f"  consistency:   {verdict}")
            for name, check in sorted(consistency["checks"].items()):
                lines.append(
                    f"    {name}: metric={check['metric']} "
                    f"provenance={check['provenance']}"
                )
        counters = p["stats"].get("counters", {})
        if counters:
            lines.append("  counters:")
            for name in sorted(counters):
                lines.append(f"    {name:<28s} {counters[name]}")
        lines.append("  spans:")
        for line in render_span_tree(p["spans"]).splitlines():
            lines.append(f"    {line}")
        return "\n".join(lines)


def _consistency(
    provenance: dict | None, stats_dump: dict, metrics_dump: dict
) -> dict | None:
    """Cross-check provenance counts against the run's counters.

    Only counters the run actually recorded participate (a disk reload
    scans nothing; a k != 2 materialized sweep has no stream counters),
    so a passing block means every comparable pair agreed exactly.
    """
    if provenance is None:
        return None
    counters = dict(metrics_dump.get("counters", {}))
    for name, value in stats_dump.get("counters", {}).items():
        counters.setdefault(name, value)
    checks = {}
    for provenance_field, counter_name in _CONSISTENCY_MAP:
        if counter_name not in counters:
            continue
        checks[provenance_field] = {
            "metric": counters[counter_name],
            "provenance": provenance[provenance_field],
        }
    return {
        "ok": all(c["metric"] == c["provenance"] for c in checks.values()),
        "checks": checks,
    }


# ----------------------------------------------------------------------
# Validation (the CI schema gate)
# ----------------------------------------------------------------------


def validate_report(payload: dict) -> list[str]:
    """Schema + integrity check; returns a list of problems ([] = valid).

    Beyond key presence, this verifies the span records themselves and
    the tree invariants: every ``parent_id`` resolves inside the report,
    and a non-empty span set has at least one root.
    """
    errors: list[str] = []
    if not isinstance(payload, dict):
        return ["report payload must be a JSON object"]
    if payload.get("schema") != REPORT_SCHEMA:
        errors.append(
            f"schema must be {REPORT_SCHEMA!r}, got {payload.get('schema')!r}"
        )
    for key in REQUIRED_KEYS:
        if key not in payload:
            errors.append(f"missing required key {key!r}")
    spans = payload.get("spans", [])
    if not isinstance(spans, list):
        errors.append("spans must be a list")
        spans = []
    ids = set()
    for i, record in enumerate(spans):
        if not isinstance(record, dict):
            errors.append(f"span {i} is not an object")
            continue
        for problem in validate_span(record):
            errors.append(f"span {i}: {problem}")
        ids.add(record.get("span_id"))
    roots = 0
    for i, record in enumerate(spans):
        if not isinstance(record, dict):
            continue
        parent = record.get("parent_id")
        if parent is None:
            roots += 1
        elif parent not in ids:
            errors.append(
                f"span {i} ({record.get('name')!r}) has dangling parent {parent!r}"
            )
    if spans and roots == 0:
        errors.append("span set has no root span")
    coverage = payload.get("span_coverage")
    if coverage is not None and not (
        isinstance(coverage, (int, float)) and 0.0 <= coverage <= 1.0
    ):
        errors.append(f"span_coverage must be in [0, 1], got {coverage!r}")
    for section, keys in (("metrics", ("counters", "gauges", "histograms")),
                          ("stats", ("counters", "timers"))):
        block = payload.get(section)
        if block is not None:
            if not isinstance(block, dict):
                errors.append(f"{section} must be an object")
            else:
                for key in keys:
                    if key not in block:
                        errors.append(f"{section} missing {key!r}")
    decision = payload.get("decision")
    if decision is not None:
        for key in ("hiding", "k", "fingerprint"):
            if key not in decision:
                errors.append(f"decision missing {key!r}")
    consistency = payload.get("consistency")
    if consistency is not None and not isinstance(consistency.get("ok"), bool):
        errors.append("consistency.ok must be a boolean")
    return errors


# ----------------------------------------------------------------------
# Diffing
# ----------------------------------------------------------------------


def diff_reports(a: "RunReport | dict", b: "RunReport | dict") -> dict:
    """Compare two reports; separates decision drift from perf deltas.

    *Decision drift* — the two runs answered differently: scheme/n, plan
    fingerprint, hiding flag, decision fingerprint, witness length, or
    the provenance scan counts disagree.  Everything else (wall time,
    cache-tier traffic, span counts) is reported as information only.
    """
    pa = a.payload if isinstance(a, RunReport) else a
    pb = b.payload if isinstance(b, RunReport) else b
    drift: list[str] = []
    info: list[str] = []

    def check(label: str, va, vb) -> None:
        if va != vb:
            drift.append(f"{label}: {va!r} != {vb!r}")

    check("scheme", pa.get("scheme"), pb.get("scheme"))
    check("n", pa.get("n"), pb.get("n"))
    check("plan_fingerprint", pa.get("plan_fingerprint"), pb.get("plan_fingerprint"))
    da, db = pa.get("decision"), pb.get("decision")
    if (da is None) != (db is None):
        drift.append("decision: present in one report only")
    elif da is not None:
        check("decision.hiding", da.get("hiding"), db.get("hiding"))
        check("decision.fingerprint", da.get("fingerprint"), db.get("fingerprint"))
        check(
            "decision.witness_length",
            da.get("witness_length"),
            db.get("witness_length"),
        )
    va, vb = pa.get("provenance"), pb.get("provenance")
    if va is not None and vb is not None:
        for field in ("instances_scanned", "views", "edges"):
            check(f"provenance.{field}", va.get(field), vb.get(field))
        if va.get("backend") != vb.get("backend"):
            info.append(f"backend: {va.get('backend')} vs {vb.get('backend')}")
    wall_a, wall_b = pa.get("wall_time_s", 0.0), pb.get("wall_time_s", 0.0)
    info.append(
        f"wall time: {format_seconds(wall_a)} vs {format_seconds(wall_b)}"
    )
    ca = pa.get("stats", {}).get("counters", {})
    cb = pb.get("stats", {}).get("counters", {})
    for name in sorted(set(ca) | set(cb)):
        if ca.get(name, 0) != cb.get(name, 0):
            info.append(f"counter {name}: {ca.get(name, 0)} vs {cb.get(name, 0)}")
    return {"decision_drift": bool(drift), "drift": drift, "info": info}


def render_diff(diff: dict) -> str:
    lines = []
    if diff["decision_drift"]:
        lines.append("DECISION DRIFT:")
        lines.extend(f"  {item}" for item in diff["drift"])
    else:
        lines.append("no decision drift")
    if diff["info"]:
        lines.append("perf / traffic deltas (informational):")
        lines.extend(f"  {item}" for item in diff["info"])
    return "\n".join(lines)
