"""The ``repro.*`` logger hierarchy.

Every module logs through :func:`get_logger`, which namespaces under the
single ``repro`` root logger — so one :func:`setup_logging` call (or a
stdlib ``logging.config`` setup targeting ``"repro"``) controls the whole
repository.  Nothing is configured at import time: library users who
never call :func:`setup_logging` see the stdlib default (warnings and
above to stderr via the last-resort handler), and the CLI's
``--log-level`` flag is just ``setup_logging(level)``.

Logger names mirror the package layout::

    repro.engine         decision routing, cache-tier hits
    repro.perf.persist   disk store reads/writes/skips
    repro.perf.parallel  pool fallbacks and chunk scheduling
    repro.obs.report     run-report emission
"""

from __future__ import annotations

import logging

ROOT_LOGGER_NAME = "repro"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
    "critical": logging.CRITICAL,
}

#: Handler installed by :func:`setup_logging`, kept so repeated calls
#: reconfigure instead of stacking duplicate handlers.
_HANDLER: logging.Handler | None = None


def get_logger(name: str) -> logging.Logger:
    """The logger ``repro.<name>`` (or the root ``repro`` logger for
    an empty name)."""
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name.startswith(ROOT_LOGGER_NAME + ".") or name == ROOT_LOGGER_NAME:
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def parse_level(level: str | int) -> int:
    """``"debug"``/``"INFO"``/numeric → stdlib level number."""
    if isinstance(level, int):
        return level
    try:
        return _LEVELS[level.strip().lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; use one of {', '.join(_LEVELS)}"
        ) from None


def setup_logging(level: str | int = "warning", stream=None) -> logging.Logger:
    """Attach (or re-level) one stderr handler on the ``repro`` root
    logger.  Idempotent: repeated calls adjust the level of the same
    handler rather than installing another one."""
    global _HANDLER
    root = logging.getLogger(ROOT_LOGGER_NAME)
    resolved = parse_level(level)
    if _HANDLER is None or (stream is not None and _HANDLER.stream is not stream):
        if _HANDLER is not None:
            root.removeHandler(_HANDLER)
        _HANDLER = logging.StreamHandler(stream)
        _HANDLER.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)-7s %(name)s: %(message)s")
        )
        root.addHandler(_HANDLER)
    root.setLevel(resolved)
    _HANDLER.setLevel(resolved)
    # The dedicated handler replaces propagation to the stdlib root.
    root.propagate = False
    return root
