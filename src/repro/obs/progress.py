"""Live progress: a zero-dependency pub/sub event bus with TTY and
JSONL subscribers.

Long campaigns and deep sweeps previously ran dark — the only feedback
was the final report.  A :class:`ProgressBus` gives every layer a place
to announce structured events (``campaign_started``, ``cell_started``,
``instances_scanned`` deltas, ``cell_finished``, ``decision_*``,
``generation_level``) without knowing who, if anyone, is listening.
Design constraints mirror :mod:`repro.obs.trace`:

1. **Zero cost when off.**  ``emit()`` starts with one truthiness test
   on the subscriber list; with no subscribers nothing else runs — no
   dict is built, no timestamp is read.  :data:`NULL_PROGRESS` is the
   inert null object for call sites that want a bus-shaped default.
2. **Purely observational.**  Events never feed back into decisions:
   cache keys, verdicts, and decision fingerprints are byte-identical
   whether a bus has a thousand subscribers or none (the acceptance
   contract pins this under ``REPRO_NO_PROGRESS=1``).  A subscriber that
   raises is dropped from the fan-out for that event and counted in
   :attr:`ProgressBus.errors` — it cannot abort the run it watches.
3. **Two stock subscribers.**  :class:`TTYRenderer` keeps a single
   carriage-return status line on a terminal (rate + EMA-based ETA),
   auto-disabled when the stream is not a tty or ``REPRO_NO_PROGRESS``
   is set; :class:`JSONLSink` appends one JSON object per event, with
   wall-clock ``ts`` and whatever ``trace_id`` the emitter attached, so
   event streams join against span exports and run reports.

Timer discipline: every rate, EMA, and redraw interval here derives from
``time.perf_counter()``; ``time.time()`` appears only as the ``ts``
metadata stamped on emitted/serialized events.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from typing import IO, Callable, Iterable, Iterator

#: Environment variable that force-disables progress rendering (any
#: non-empty value).  Checked by :func:`progress_enabled`, not by the
#: bus itself — emitters stay oblivious to rendering policy.
NO_PROGRESS_ENV = "REPRO_NO_PROGRESS"

#: The event vocabulary.  Emitters may attach any extra payload keys;
#: these names are the contract subscribers dispatch on.
EVENT_KINDS = (
    "campaign_started",
    "cell_started",
    "cell_finished",
    "campaign_finished",
    "decision_started",
    "instances_scanned",
    "decision_finished",
    "generation_level",
    "experiment_started",
    "experiment_finished",
    "shard_started",
    "shard_finished",
    "shard_checkpoint_hit",
)

Subscriber = Callable[[dict], None]


class ProgressBus:
    """Synchronous pub/sub fan-out for progress events.

    Subscribers are plain callables taking one dict.  Emission is
    in-line (no queue, no thread): ordering seen by a subscriber is
    exactly emission order, which the process-pool ordering tests rely
    on.
    """

    __slots__ = ("_subscribers", "errors")

    def __init__(self) -> None:
        self._subscribers: list[Subscriber] = []
        #: Events swallowed because a subscriber raised.
        self.errors = 0

    @property
    def active(self) -> bool:
        """True when at least one subscriber would see an event."""
        return bool(self._subscribers)

    def subscribe(self, subscriber: Subscriber) -> Subscriber:
        """Register *subscriber*; returns it (decorator-friendly)."""
        self._subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self, subscriber: Subscriber) -> None:
        """Remove *subscriber* if present (idempotent)."""
        try:
            self._subscribers.remove(subscriber)
        except ValueError:
            pass

    def emit(self, event: str, **payload) -> None:
        """Deliver ``{"event": event, "ts": <wall clock>, **payload}`` to
        every subscriber, in subscription order.  One truthiness test
        when nobody is listening."""
        subscribers = self._subscribers
        if not subscribers:
            return
        record = {"event": event, "ts": time.time()}
        record.update(payload)
        for subscriber in list(subscribers):
            try:
                subscriber(record)
            except Exception:
                self.errors += 1

    def __repr__(self) -> str:
        return f"ProgressBus(subscribers={len(self._subscribers)})"


class _NullProgressBus(ProgressBus):
    """The disabled bus: emission is a no-op and subscription refuses —
    :data:`NULL_PROGRESS` is shared process-wide, so accepting a
    subscriber would silently leak it into unrelated runs."""

    __slots__ = ()

    def subscribe(self, subscriber: Subscriber) -> Subscriber:
        raise RuntimeError(
            "NULL_PROGRESS is the shared disabled bus; build a ProgressBus() "
            "(or use GLOBAL_PROGRESS) to subscribe"
        )

    def emit(self, event: str, **payload) -> None:
        pass

    @property
    def active(self) -> bool:
        return False


#: The inert default for bus-shaped parameters.
NULL_PROGRESS = _NullProgressBus()

#: Process-wide bus for call sites with no :class:`RunContext` in reach
#: (the orderly generator, module-level helpers).  Contexts default to
#: this bus too, so one subscription observes a whole process unless a
#: run opts into an isolated bus.
GLOBAL_PROGRESS = ProgressBus()


def progress_enabled(stream: IO | None = None) -> bool:
    """Whether a live TTY renderer should attach: *stream* (default
    stderr) is a terminal and ``REPRO_NO_PROGRESS`` is unset/empty."""
    if os.environ.get(NO_PROGRESS_ENV):
        return False
    stream = stream if stream is not None else sys.stderr
    isatty = getattr(stream, "isatty", None)
    return bool(isatty and isatty())


def counting_instances(
    instances: Iterable,
    bus: ProgressBus,
    every: int = 256,
    **fields,
) -> Iterator:
    """Wrap an instance stream, emitting ``instances_scanned`` deltas on
    *bus* every *every* instances (plus a final flush).  The wrapper
    yields the stream unchanged — consumers cannot tell it is there —
    and call sites should only install it when ``bus.active``.
    """
    count = 0
    pending = 0
    for instance in instances:
        yield instance
        count += 1
        pending += 1
        if pending >= every:
            bus.emit("instances_scanned", delta=pending, total=count, **fields)
            pending = 0
    if pending:
        bus.emit("instances_scanned", delta=pending, total=count, **fields)


def _format_eta(seconds: float) -> str:
    """Compact ``H:MM:SS`` / ``M:SS`` remaining-time rendering."""
    seconds = max(0, int(round(seconds)))
    hours, rest = divmod(seconds, 3600)
    minutes, secs = divmod(rest, 60)
    if hours:
        return f"{hours}:{minutes:02d}:{secs:02d}"
    return f"{minutes}:{secs:02d}"


class TTYRenderer:
    """Single-line live status on a terminal stream.

    Tracks campaign position (``cells_done/total_cells``), instance
    throughput over a sliding window, and an exponential moving average
    of per-cell wall time that turns the campaign spec's known cell
    count into an ETA.  Redraws are rate-limited (*min_interval*
    seconds of ``perf_counter`` time) so hot instance streams cannot
    saturate the terminal.
    """

    #: EMA smoothing for per-cell wall time (0 < alpha <= 1).
    alpha = 0.3

    def __init__(self, stream: IO | None = None, min_interval: float = 0.1) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self._last_draw = 0.0
        self._line_len = 0
        # Campaign state
        self.total_cells: int | None = None
        self.cells_done = 0
        self.ema_cell_s: float | None = None
        self._current_label: str | None = None
        # Throughput state (instances)
        self._instances = 0
        self._rate_window_t0 = time.perf_counter()
        self._rate_window_n = 0
        self._rate: float | None = None

    # ------------------------------------------------------------------
    # Subscriber protocol
    # ------------------------------------------------------------------

    def __call__(self, record: dict) -> None:
        event = record.get("event")
        if event == "campaign_started":
            self.total_cells = record.get("total_cells")
            self.cells_done = 0
            self._draw(force=True)
        elif event == "cell_started":
            self._current_label = record.get("label")
            self._instances = 0
            self._draw()
        elif event == "cell_finished":
            self.cells_done += 1
            wall = record.get("wall_time_s")
            if isinstance(wall, (int, float)):
                if self.ema_cell_s is None:
                    self.ema_cell_s = float(wall)
                else:
                    self.ema_cell_s += self.alpha * (wall - self.ema_cell_s)
            self._current_label = None
            self._draw(force=True)
        elif event == "campaign_finished":
            self.close()
        elif event == "decision_started":
            self._current_label = record.get("label")
            self._instances = 0
            self._draw()
        elif event == "instances_scanned":
            delta = record.get("delta", 0)
            self._instances += delta
            self._observe_rate(delta)
            self._draw()
        elif event == "decision_finished":
            if self.total_cells is None:
                # Standalone decision (no campaign frame): clear the line.
                self.close()
            else:
                self._draw()

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def _observe_rate(self, delta: int) -> None:
        self._rate_window_n += delta
        now = time.perf_counter()
        elapsed = now - self._rate_window_t0
        if elapsed >= 0.5:
            self._rate = self._rate_window_n / elapsed
            self._rate_window_t0 = now
            self._rate_window_n = 0

    def eta_seconds(self) -> float | None:
        """Remaining campaign time from the per-cell EMA, or ``None``
        before the first cell finishes / outside a campaign."""
        if self.total_cells is None or self.ema_cell_s is None:
            return None
        remaining = max(0, self.total_cells - self.cells_done)
        return remaining * self.ema_cell_s

    def _compose(self) -> str:
        parts = []
        if self.total_cells is not None:
            parts.append(f"[{self.cells_done}/{self.total_cells}]")
        if self._current_label:
            parts.append(str(self._current_label))
        if self._instances:
            parts.append(f"{self._instances} inst")
        if self._rate:
            parts.append(f"{self._rate:,.0f} inst/s")
        eta = self.eta_seconds()
        if eta is not None:
            parts.append(f"ETA {_format_eta(eta)}")
        return " · ".join(parts)

    def _draw(self, force: bool = False) -> None:
        now = time.perf_counter()
        if not force and (now - self._last_draw) < self.min_interval:
            return
        self._last_draw = now
        line = self._compose()
        pad = max(0, self._line_len - len(line))
        try:
            self.stream.write("\r" + line + " " * pad)
            self.stream.flush()
        except (OSError, ValueError):
            return
        self._line_len = len(line)

    def close(self) -> None:
        """Clear the status line (end of run)."""
        if self._line_len:
            try:
                self.stream.write("\r" + " " * self._line_len + "\r")
                self.stream.flush()
            except (OSError, ValueError):
                pass
            self._line_len = 0


class JSONLSink:
    """Append every event as one JSON line — joinable with span exports
    via the ``trace_id`` payload emitters attach."""

    def __init__(self, target: str | Path | IO) -> None:
        if hasattr(target, "write"):
            self._stream: IO = target  # type: ignore[assignment]
            self._owned = False
        else:
            path = Path(target)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = path.open("a", encoding="utf-8")
            self._owned = True

    def __call__(self, record: dict) -> None:
        self._stream.write(
            json.dumps(record, sort_keys=True, ensure_ascii=False, default=str) + "\n"
        )

    def close(self) -> None:
        try:
            self._stream.flush()
        except (OSError, ValueError):
            pass
        if self._owned:
            self._stream.close()
