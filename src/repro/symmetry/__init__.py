"""Symmetry layer: orderly generation and automorphism-orbit pruning.

The Lemma 3.1 sweep is invariant under instance automorphisms (the
paper's schemes are anonymous — Theorem 1.1 — and its impossibility
machinery reduces to order-invariant decoders, Lemmas 5.2/6.2).  This
package exploits that:

* :mod:`~repro.symmetry.canon` — exact canonical labelings on bitset
  adjacency (prefix-incremental form for generation, minimal edge mask
  for legacy-identical emission);
* :mod:`~repro.symmetry.orderly` — McKay-style canonical augmentation:
  each isomorphism class generated exactly once, no post-hoc dedup,
  byte-identical to the legacy edge-subset stream;
* :mod:`~repro.symmetry.groups` — automorphism groups (generators +
  node orbits), memoized and seeded by the generator;
* :mod:`~repro.symmetry.prune` — labeling-orbit and base-signature
  pruning with exact suppressed-instance accounting.

Surface: the ``symmetry`` knob of
:class:`repro.engine.plan.ExecutionPlan` / ``perf.CONFIG.symmetry``
(``auto`` | ``on`` | ``off``).
"""

from .canon import colex_canonical, min_edge_mask
from .groups import (
    AutomorphismGroup,
    automorphism_group,
    clear_automorphism_cache,
    seed_automorphisms,
)
from .orderly import clear_orderly_cache, count_classes, orderly_graphs_exactly
from .prune import SymmetryAccount, base_signature, instance_stabilizer

__all__ = [
    "AutomorphismGroup",
    "SymmetryAccount",
    "automorphism_group",
    "base_signature",
    "clear_automorphism_cache",
    "clear_orderly_cache",
    "colex_canonical",
    "count_classes",
    "instance_stabilizer",
    "min_edge_mask",
    "orderly_graphs_exactly",
    "seed_automorphisms",
]
