"""Automorphism groups of small graphs.

The symmetry layer needs, per family representative, the full
automorphism group: node orbits drive the emission labeler's candidate
restriction, port/identifier stabilizers drive the labeling-orbit
pruning of :func:`repro.certification.enumeration.
unanimously_accepted_labelings`, and base signatures collapse isomorphic
``(ports, ids)`` bases (see :mod:`repro.symmetry.prune`).

Groups come from :func:`repro.symmetry.canon.colex_canonical` — the set
of minimizing assignments *is* the automorphism group — and are memoized
by labelled :func:`repro.graphs.encoding.graph_key`.  The orderly
generator seeds the cache at emission time (it has just computed every
group anyway), so a sweep over generated families never recomputes one.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graphs.encoding import graph_key
from ..graphs.graph import Graph, Node
from ..perf.cache import LRUCache
from ..perf.stats import GLOBAL_STATS
from .canon import automorphisms_from_perms, colex_canonical

#: ``graph_key -> tuple of index permutations``.  The key identifies the
#: labelled graph up to insertion-order indices, which is exactly the
#: space the stored permutations act on, so one entry serves every graph
#: object with the same labelled structure regardless of node names.
_AUT_CACHE = LRUCache(65536)


def clear_automorphism_cache() -> None:
    """Drop all memoized automorphism groups (cold-path benchmarks)."""
    _AUT_CACHE.clear()


@dataclass(frozen=True)
class AutomorphismGroup:
    """The automorphism group of one graph.

    *nodes* lists the graph's nodes in insertion order; *perms* the group
    elements as permutations of insertion-order indices (``perms[m][i]``
    = image index of node ``nodes[i]``), identity first.
    """

    nodes: tuple[Node, ...]
    perms: tuple[tuple[int, ...], ...]

    @property
    def order(self) -> int:
        """``|Aut(G)|``."""
        return len(self.perms)

    @property
    def is_trivial(self) -> bool:
        return len(self.perms) == 1

    def orbits(self) -> tuple[tuple[int, ...], ...]:
        """Node-index orbits, each sorted, ordered by smallest member."""
        n = len(self.nodes)
        parent = list(range(n))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for sigma in self.perms:
            for v in range(n):
                rv, ri = find(v), find(sigma[v])
                if rv != ri:
                    parent[ri] = rv
        groups: dict[int, list[int]] = {}
        for v in range(n):
            groups.setdefault(find(v), []).append(v)
        return tuple(tuple(sorted(members)) for _, members in sorted(groups.items()))

    def node_orbits(self) -> tuple[tuple[Node, ...], ...]:
        """The orbits as node labels instead of indices."""
        return tuple(
            tuple(self.nodes[i] for i in orbit) for orbit in self.orbits()
        )

    def orbit_representatives(self) -> tuple[int, ...]:
        """The smallest index of each orbit."""
        return tuple(orbit[0] for orbit in self.orbits())

    def generators(self) -> tuple[tuple[int, ...], ...]:
        """A (greedily reduced) generating set, identity excluded."""
        n = len(self.nodes)
        identity = tuple(range(n))
        gens: list[tuple[int, ...]] = []
        known = {identity}
        for sigma in self.perms:
            if sigma in known:
                continue
            gens.append(sigma)
            # Close the generated subgroup (tiny groups; BFS is plenty).
            frontier = list(known)
            while frontier:
                tau = frontier.pop()
                for g in gens:
                    prod = tuple(g[tau[i]] for i in range(n))
                    if prod not in known:
                        known.add(prod)
                        frontier.append(prod)
        return tuple(gens)


def automorphism_group(graph: Graph) -> AutomorphismGroup:
    """The automorphism group of *graph* (memoized by labelled key)."""
    nodes = tuple(graph.nodes)
    key = graph_key(graph)
    perms = _AUT_CACHE.get(key)
    if perms is not None:
        GLOBAL_STATS.incr("aut_cache_hits")
        return AutomorphismGroup(nodes=nodes, perms=perms)
    GLOBAL_STATS.incr("aut_cache_misses")
    n = len(nodes)
    index = {v: i for i, v in enumerate(nodes)}
    adj = [0] * n
    for u, v in graph.edges:
        adj[index[u]] |= 1 << index[v]
        adj[index[v]] |= 1 << index[u]
    _, min_perms = colex_canonical(adj, n)
    perms = automorphisms_from_perms(min_perms, n) if n else ((),)
    _AUT_CACHE.put(key, perms)
    return AutomorphismGroup(nodes=nodes, perms=perms)


def seed_automorphisms(graph: Graph, perms: tuple[tuple[int, ...], ...]) -> None:
    """Pre-populate the cache (the orderly generator calls this at
    emission time with the group it computed during generation)."""
    _AUT_CACHE.put(graph_key(graph), perms)
