"""Exact canonical labelings on bitset adjacency.

Two complementary canonical labelings drive the orderly generator
(:mod:`repro.symmetry.orderly`):

* :func:`colex_canonical` — the *prefix-incremental* form used for the
  generation invariant.  Positions are assigned in ascending order and
  position ``p`` contributes the column bits ``(0,p) .. (p-1,p)``, so a
  partial assignment fixes a prefix of the form and the DFS prunes on
  it.  The search is restricted to degree-respecting assignments (nodes
  sorted by ascending degree get contiguous position blocks, mirroring
  the block convention of :func:`repro.graphs.encoding.canonical_form`);
  the restricted minimum is still an exact isomorphism invariant because
  the restricted assignment set is itself isomorphism-invariant.  All
  minimizing assignments are returned, which yields the full
  automorphism group for free.

* :func:`min_edge_mask` — the *emission* form: the smallest edge-subset
  mask (bit ``i`` = ``combinations(range(n), 2)[i]``) over all
  relabelings.  This is exactly the representative the legacy
  edge-subset enumerator of :mod:`repro.graphs.families` keeps (it walks
  masks in ascending order and yields the first of each class), so the
  orderly generator can reproduce the legacy stream byte for byte.
  Minimizing the mask integer means comparing bits most-significant
  first — rows descending, columns descending — so here positions are
  assigned in *descending* order and no degree restriction applies (the
  legacy minimum ranges over all relabelings).

Both operate on adjacency bitsets: ``adj[v]`` has bit ``u`` set iff
``{u, v}`` is an edge.  Graphs are loop-free (the families never emit
loops).
"""

from __future__ import annotations

#: Sentinel "larger than any bit" used to pad the best-so-far array past
#: the compared prefix; comparisons read it as "everything beats me".
_UNSET = 2


def colex_canonical(
    adj: list[int], n: int
) -> tuple[tuple[int, ...], tuple[tuple[int, ...], ...]]:
    """The colex-minimal degree-respecting form of *adj* and all of its
    minimizing assignments.

    Returns ``(form, perms)`` where *form* is the bit tuple (positions
    ``p = 1..n-1`` contribute bits ``(q, p)`` for ``q = 0..p-1``) and
    *perms* lists every minimizing assignment as a position-to-node
    tuple.  ``perms[0]`` composed with the inverse of any other entry is
    an automorphism, and every automorphism arises that way, so
    ``len(perms)`` is the order of the automorphism group.
    """
    degs = [adj[v].bit_count() for v in range(n)]
    pos_deg = sorted(degs)
    total = n * (n - 1) // 2
    best = [_UNSET] * total
    best_perms: list[tuple[int, ...]] = []
    assigned = [0] * n
    used = 0

    def rec(p: int, off: int) -> None:
        nonlocal used
        if p == n:
            best_perms.append(tuple(assigned))
            return
        target = pos_deg[p]
        for v in range(n):
            if used >> v & 1 or degs[v] != target:
                continue
            row = adj[v]
            i = off
            worse = False
            for q in range(p):
                bit = row >> assigned[q] & 1
                b = best[i]
                if bit > b:
                    worse = True
                    break
                if bit < b:
                    # Strict improvement: this prefix dethrones the best.
                    best[i] = bit
                    for q2 in range(q + 1, p):
                        best[off + q2] = row >> assigned[q2] & 1
                    for j in range(off + p, total):
                        best[j] = _UNSET
                    del best_perms[:]
                    break
                i += 1
            if worse:
                continue
            assigned[p] = v
            used |= 1 << v
            rec(p + 1, off + p)
            used ^= 1 << v

    rec(0, 0)
    return tuple(best), tuple(best_perms)


def automorphisms_from_perms(
    perms: tuple[tuple[int, ...], ...], n: int
) -> tuple[tuple[int, ...], ...]:
    """The automorphism group from the minimizing assignments.

    Each returned entry is a node permutation ``sigma`` (``sigma[v]`` =
    image of node ``v``); the identity comes first.
    """
    p0 = perms[0]
    pos0 = [0] * n
    for p, v in enumerate(p0):
        pos0[v] = p
    return tuple(tuple(pm[pos0[v]] for v in range(n)) for pm in perms)


def min_edge_mask(
    adj: list[int], n: int, first_candidates: tuple[int, ...] | None = None
) -> tuple[int, tuple[int, ...]]:
    """The minimal edge-subset mask of *adj* over all relabelings.

    Bit ``i`` of the mask corresponds to ``combinations(range(n), 2)[i]``
    — the convention of the legacy family enumerator, whose per-class
    representative is exactly this minimum.  Returns ``(mask, perm)``
    with *perm* a minimizing position-to-node assignment.

    *first_candidates* optionally restricts the node placed at position
    ``n - 1`` (the most significant row).  Restricting it to one node
    per automorphism orbit is sound — precomposing an assignment with an
    automorphism never changes the mask — and prunes the search by a
    factor of the orbit sizes.
    """
    if n == 1:
        return 0, (0,)
    total = n * (n - 1) // 2
    best = [_UNSET] * total
    best_perm: tuple[int, ...] | None = None
    assigned = [0] * n
    used = 0

    def rec(depth: int) -> None:
        nonlocal used, best_perm
        if depth == n:
            best_perm = tuple(assigned)
            return
        p = n - 1 - depth
        if depth == 0:
            candidates = first_candidates if first_candidates is not None else range(n)
            for v in candidates:
                assigned[p] = v
                used |= 1 << v
                rec(1)
                used ^= 1 << v
            return
        off = (n - 2 - p) * (n - 1 - p) // 2
        for v in range(n):
            if used >> v & 1:
                continue
            row = adj[v]
            i = off
            worse = False
            improved = False
            for b in range(n - 1, p, -1):
                bit = row >> assigned[b] & 1
                if improved:
                    best[i] = bit
                elif bit > best[i]:
                    worse = True
                    break
                elif bit < best[i]:
                    improved = True
                    best[i] = bit
                i += 1
            if worse:
                continue
            if improved:
                for j in range(off + depth, total):
                    best[j] = _UNSET
            assigned[p] = v
            used |= 1 << v
            rec(depth + 1)
            used ^= 1 << v

    rec(0)
    assert best_perm is not None
    mask = 0
    i = 0
    for a in range(n - 2, -1, -1):
        row_base = a * n - a * (a + 1) // 2 - a - 1
        for b in range(n - 1, a, -1):
            if best[i] == 1:
                mask |= 1 << (row_base + b)
            i += 1
    return mask, best_perm
