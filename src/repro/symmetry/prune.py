"""Orbit pruning of the Lemma 3.1 labeling sweep.

Decoder verdicts are invariant under instance automorphisms: relabeling
a labeled instance through a graph automorphism that preserves ports
(and identifiers, when the decoder sees them) permutes the multiset of
node views without changing any of them.  The sweep may therefore

* decide only one labeling per orbit of the base's **stabilizer** (the
  automorphisms fixing ports/ids) and suppress the rest, and
* skip entire ``(ports, ids)`` bases whose **signature** — the orbit of
  their port/id tables under the graph's automorphism group — was
  already scanned: every labeled instance of the duplicate base is a
  relabeling of one from the representative base, contributing the
  identical canonical views and edges.

Suppressed instances never reach the builders, so the engine adds
:attr:`SymmetryAccount.instances_suppressed` back into
``Provenance.instances_scanned`` (and the matching stats counter) after
the sweep — reports and the obs consistency block stay truthful about
the brute-force-equivalent count.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graphs.graph import Graph
from ..local.identifiers import IdentifierAssignment
from ..local.ports import PortAssignment
from .groups import AutomorphismGroup


@dataclass
class SymmetryAccount:
    """Running totals of what a pruned sweep skipped.

    * ``labelings_total`` — labelings enumerated (pruned or not) by the
      exhaustive unanimity loops; the denominator of the orbit-pruning
      ratio reported by the benchmarks.
    * ``labelings_pruned`` — labelings skipped as non-minimal orbit
      members (never decided).
    * ``bases_total`` / ``bases_pruned`` — ``(ports, ids)`` bases seen /
      skipped as signature duplicates.
    * ``instances_suppressed`` — labeled yes-instances the brute-force
      sweep would have yielded that the pruned sweep did not; the engine
      folds this back into ``instances_scanned``.
    """

    labelings_total: int = 0
    labelings_pruned: int = 0
    bases_total: int = 0
    bases_pruned: int = 0
    instances_suppressed: int = 0

    @property
    def pruning_ratio(self) -> float:
        """``labelings_pruned / labelings_total`` (0.0 when nothing ran)."""
        if not self.labelings_total:
            return 0.0
        return self.labelings_pruned / self.labelings_total

    def as_tuple(self) -> tuple[int, int, int, int, int]:
        """The counters as a flat tuple — the wire format shard workers
        use to report per-instance deltas (see :mod:`repro.shard`)."""
        return (
            self.labelings_total,
            self.labelings_pruned,
            self.bases_total,
            self.bases_pruned,
            self.instances_suppressed,
        )

    def add_delta(self, delta: tuple[int, int, int, int, int]) -> None:
        """Fold a counter delta (same field order as :meth:`as_tuple`)."""
        self.labelings_total += delta[0]
        self.labelings_pruned += delta[1]
        self.bases_total += delta[2]
        self.bases_pruned += delta[3]
        self.instances_suppressed += delta[4]


def instance_stabilizer(
    group: AutomorphismGroup,
    graph: Graph,
    ports: PortAssignment,
    ids: IdentifierAssignment,
    include_ids: bool,
) -> tuple[tuple[int, ...], ...]:
    """The automorphisms fixing *ports* (and *ids* when the decoder sees
    identifiers) — the subgroup under which labelings of this base may
    be orbit-pruned.  Index permutations, identity first.
    """
    nodes = group.nodes
    index = {v: i for i, v in enumerate(nodes)}
    neighbor_idx = [
        [index[u] for u in graph.neighbors(v)] for v in nodes
    ]
    stabilizer = []
    for sigma in group.perms:
        ok = True
        for i, v in enumerate(nodes):
            w = nodes[sigma[i]]
            if include_ids and ids.id_of(v) != ids.id_of(w):
                ok = False
                break
            for j in neighbor_idx[i]:
                if ports.port(v, nodes[j]) != ports.port(w, nodes[sigma[j]]):
                    ok = False
                    break
            if not ok:
                break
        if ok:
            stabilizer.append(sigma)
    return tuple(stabilizer)


def base_signature(
    group: AutomorphismGroup,
    graph: Graph,
    ports: PortAssignment,
    ids: IdentifierAssignment,
    include_ids: bool,
) -> tuple:
    """A canonical key for the ``(ports, ids)`` base under ``Aut(G)``.

    Two bases of the same graph get equal signatures iff one is the
    other transported through a graph automorphism — in which case their
    labeled yes-instances are relabelings of each other and produce
    identical view/edge streams.  The signature is the minimum, over the
    group, of the base's port table (and id row, when the decoder sees
    identifiers) relabeled through the automorphism.
    """
    nodes = group.nodes
    n = len(nodes)
    index = {v: i for i, v in enumerate(nodes)}
    neighbor_idx = [
        sorted(index[u] for u in graph.neighbors(v)) for v in nodes
    ]
    best = None
    for sigma in group.perms:
        inverse = [0] * n
        for i, image in enumerate(sigma):
            inverse[image] = i
        port_rows = tuple(
            tuple(
                ports.port(nodes[inverse[i]], nodes[inverse[j]])
                for j in neighbor_idx[i]
            )
            for i in range(n)
        )
        if include_ids:
            candidate = (
                port_rows,
                tuple(ids.id_of(nodes[inverse[i]]) for i in range(n)),
            )
        else:
            candidate = (port_rows,)
        if best is None or candidate < best:
            best = candidate
    assert best is not None
    return best
