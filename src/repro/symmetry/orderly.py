"""Orderly (canonical-augmentation) generation of small graphs.

McKay-style generation of all graphs on ``n`` nodes up to isomorphism,
each class emitted exactly once with **no post-hoc dedup**: level ``k``
representatives are built by attaching a new vertex to a level ``k - 1``
representative, and a child survives two filters —

1. *parent-side*: the new vertex's neighborhood subset must be the
   minimum of its orbit under ``Aut(parent)`` (isomorphic extensions of
   one parent differ by exactly such an orbit move);
2. *child-side*: the new vertex must lie in the canonical-deletion orbit
   of the child — the set of nodes some minimizing assignment of
   :func:`repro.symmetry.canon.colex_canonical` puts at the last
   position.  Deleting the canonical vertex of any class lands on a
   unique parent class, so each class is reached from exactly one
   ``(parent, subset-orbit)`` pair.

Levels memoize *all* graphs (disconnected parents breed connected
children); connectivity is filtered at emission only.  Emission
reproduces the legacy edge-subset enumerator byte for byte: each class
is labeled by its minimal edge mask (:func:`repro.symmetry.canon.
min_edge_mask`) — the exact representative the mask walk of
:func:`repro.graphs.families._enumerate_graphs_exactly` keeps — and
classes are emitted in ascending mask order, so downstream sweeps,
early-exit witnesses, and verdict fingerprints are identical whichever
enumerator ran.  The automorphism group computed during generation is
transported to the emitted labeling and seeded into the group cache.

Both the level build and the emission labeling have an array-native
fast path (:mod:`repro.kernel.generate`): when numpy is importable and
``CONFIG.generation_kernel`` is not ``"off"``, the orbit-minimality
subset filter, the colex canonicalization of candidate children, and
the per-class minimal edge mask all run as batched frontier searches
over ``(batch, nodes)`` bitset matrices.  The batched paths are exact —
levels and emission streams are byte-identical to the scalar DFS — so
the kernel mode never enters any cache identity.
"""

from __future__ import annotations

from collections.abc import Iterator
from itertools import combinations

from ..graphs.graph import Graph
from ..kernel import numpy_or_none
from ..obs.progress import GLOBAL_PROGRESS
from ..kernel.generate import (
    batch_automorphisms,
    batch_colex_canonical,
    batch_deletion_flags,
    batch_min_edge_mask,
    generation_supported,
    orbit_minimal_subsets,
    subset_bit_matrix,
)
from ..perf.config import CONFIG
from ..perf.stats import GLOBAL_STATS
from .canon import automorphisms_from_perms, colex_canonical, min_edge_mask
from .groups import AutomorphismGroup, seed_automorphisms

#: Graphs per batched-canonicalization block.  Chunking bounds the
#: frontier arrays' peak memory; block boundaries are unobservable (each
#: graph's search is independent and blocks run in order).
_GENERATION_BLOCK = 2048

#: Version of the generation algorithm (levels, filters, emission
#: labeling).  Folded into shard-checkpoint keys so persisted subtree
#: results can never survive an algorithm change that would alter the
#: emission stream they cache.
GENERATION_VERSION = 1


def _generation_np():
    """The numpy module when the generation kernel should engage, else
    ``None`` (knob off, numpy missing, or ``REPRO_DISABLE_NUMPY``)."""
    if CONFIG.generation_kernel == "off":
        return None
    return numpy_or_none()

#: ``size -> tuple of (adjacency rows, automorphism index perms)`` for
#: *all* graphs (connected and not) on that many nodes, one per class.
_LEVELS: dict[int, tuple[tuple[tuple[int, ...], tuple[tuple[int, ...], ...]], ...]] = {}


def clear_orderly_cache() -> None:
    """Drop the memoized generation levels (cold-path benchmarks)."""
    _LEVELS.clear()


def _level(
    n: int,
) -> tuple[tuple[tuple[int, ...], tuple[tuple[int, ...], ...]], ...]:
    """Representatives of all graphs on exactly *n* nodes (memoized)."""
    cached = _LEVELS.get(n)
    if cached is not None:
        return cached
    if n == 1:
        entries = (((0,), ((0,),)),)
        vectorized = False
    else:
        parents = _level(n - 1)
        np = _generation_np()
        vectorized = np is not None and generation_supported(n)
        if vectorized:
            entries = _build_level_batched(n, parents, np)
        else:
            entries = _build_level(n, parents)
    _LEVELS[n] = entries
    # No RunContext threads through the process-memoized generator, so
    # level completions announce on the process-wide bus (free when
    # nobody subscribed).  Memo hits stay silent — nothing was built.
    GLOBAL_PROGRESS.emit(
        "generation_level", n=n, graphs=len(entries), vectorized=vectorized
    )
    return entries


def level_entries(
    n: int,
) -> tuple[tuple[tuple[int, ...], tuple[tuple[int, ...], ...]], ...]:
    """Public accessor for the memoized level-*n* representatives.

    Each entry is ``(adjacency rows, automorphism perms)`` for one
    isomorphism class of *all* graphs (connected and not) on exactly
    ``n`` nodes, in generation order.  The shard layer slices this tuple
    into subtree roots: the descendants of a contiguous root range,
    concatenated in range order, are exactly the corresponding contiguous
    slice of every deeper level."""
    return _level(n)


def build_level(
    k: int, parents: tuple[tuple[tuple[int, ...], tuple[tuple[int, ...], ...]], ...]
) -> tuple[tuple[tuple[int, ...], tuple[tuple[int, ...], ...]], ...]:
    """One augmentation level from an *arbitrary* parent-entry tuple.

    Unlike :func:`_level` this neither reads nor writes the level memo,
    so shard workers can expand the subtree under any slice of a level's
    entries.  Because both underlying builds process parents in order
    (subsets ascending per parent), expanding a partition of level ``k-1``
    slice by slice and concatenating the results reproduces the full
    level entry for entry."""
    np = _generation_np()
    if np is not None and generation_supported(k):
        return _build_level_batched(k, parents, np)
    return _build_level(k, parents)


def _build_level(
    k: int, parents: tuple[tuple[tuple[int, ...], tuple[tuple[int, ...], ...]], ...]
) -> tuple[tuple[tuple[int, ...], tuple[tuple[int, ...], ...]], ...]:
    """Scalar reference level build — the exact semantics the batched
    path below must reproduce entry for entry."""
    m = k - 1  # index of the new vertex
    out = []
    for rows_p, auts_p in parents:
        nontrivial = auts_p[1:]
        for s in range(1 << m):
            # Parent-side filter: keep the orbit-minimal subset only.
            rejected = False
            for sigma in nontrivial:
                t = 0
                bits = s
                while bits:
                    low = bits & -bits
                    t |= 1 << sigma[low.bit_length() - 1]
                    bits ^= low
                if t < s:
                    rejected = True
                    break
            if rejected:
                continue
            child = [row | ((s >> i & 1) << m) for i, row in enumerate(rows_p)]
            child.append(s)
            # The canonical last position holds a maximum-degree node, so
            # a new vertex of smaller degree can never be accepted; skip
            # the canonical form entirely for those.
            if s.bit_count() != max(row.bit_count() for row in child):
                continue
            GLOBAL_STATS.incr("canonicalizations")
            _, perms = colex_canonical(child, k)
            # Child-side filter: new vertex in the canonical-deletion orbit.
            if not any(pm[m] == m for pm in perms):
                continue
            out.append((tuple(child), automorphisms_from_perms(perms, k)))
    return tuple(out)


def _build_level_batched(
    k: int,
    parents: tuple[tuple[tuple[int, ...], tuple[tuple[int, ...], ...]], ...],
    np,
) -> tuple[tuple[tuple[int, ...], tuple[tuple[int, ...], ...]], ...]:
    """Array-native level build: both orderly filters and the canonical
    form run as batched numpy searches (:mod:`repro.kernel.generate`).

    Byte-identical to :func:`_build_level`: subsets are filtered in
    ascending order per parent, surviving candidates keep (parent-major,
    subset-ascending) order through one batched colex canonicalization,
    and the emitted ``(rows, automorphisms)`` entries — including the
    automorphism tuples' internal order — match the scalar DFS exactly.
    """
    m = k - 1  # index of the new vertex
    GLOBAL_STATS.incr("orderly_levels_vectorized")
    bits = subset_bit_matrix(m, np)
    popcnt = bits.sum(axis=1, dtype=np.int64)
    batches = []
    for rows_p, auts_p in parents:
        nontrivial = auts_p[1:]
        sigma = (
            np.array(nontrivial, dtype=np.int64)
            if nontrivial
            else np.zeros((0, m), dtype=np.int64)
        )
        # Parent-side filter: keep the orbit-minimal subset only.
        keep = orbit_minimal_subsets(bits, sigma, np)
        # The canonical last position holds a maximum-degree node, so a
        # new vertex of smaller degree can never be accepted; drop those
        # before the canonical form is ever computed (scalar skip).
        deg_p = np.array([row.bit_count() for row in rows_p], dtype=np.int64)
        np.logical_and(keep, popcnt >= (deg_p[None, :] + bits).max(axis=1), out=keep)
        kept = np.nonzero(keep)[0]
        if not len(kept):
            continue
        kids = np.empty((len(kept), k), dtype=np.int64)
        kids[:, :m] = np.array(rows_p, dtype=np.int64)[None, :] | (bits[kept] << m)
        kids[:, m] = kept
        batches.append(kids)
    if not batches:
        return ()
    candidates = np.concatenate(batches, axis=0)
    out = []
    for start in range(0, len(candidates), _GENERATION_BLOCK):
        chunk = candidates[start : start + _GENERATION_BLOCK]
        perms, gid = batch_colex_canonical(chunk, k, np, stats=GLOBAL_STATS)
        # Child-side filter: new vertex in the canonical-deletion orbit.
        flags = batch_deletion_flags(perms, gid, len(chunk), m, np)
        auts = batch_automorphisms(perms, gid, len(chunk), k, np)
        bounds = np.searchsorted(gid, np.arange(len(chunk) + 1, dtype=np.int64))
        rows_list = chunk.tolist()
        auts_list = auts.tolist()
        for g in np.nonzero(flags)[0].tolist():
            lo, hi = int(bounds[g]), int(bounds[g + 1])
            out.append(
                (
                    tuple(rows_list[g]),
                    tuple(tuple(a) for a in auts_list[lo:hi]),
                )
            )
    return tuple(out)


def _bitset_connected(rows: tuple[int, ...], n: int) -> bool:
    full = (1 << n) - 1
    reach = 1 | rows[0]
    frontier = reach & ~1
    while frontier:
        nxt = 0
        bits = frontier
        while bits:
            low = bits & -bits
            nxt |= rows[low.bit_length() - 1]
            bits ^= low
        frontier = nxt & ~reach
        reach |= frontier
    return reach == full


def emit_entries(
    entries: tuple[tuple[tuple[int, ...], tuple[tuple[int, ...], ...]], ...],
    n: int,
    connected_only: bool = True,
) -> Iterator[tuple[int, Graph]]:
    """Label and emit generation *entries* of size *n* as
    ``(min_edge_mask, Graph)`` pairs in ascending mask order.

    This is the emission half of :func:`orderly_graphs_exactly`, exposed
    so shard workers can emit their subtree's slice of a level: distinct
    classes have distinct minimal edge masks, so merging shard emissions
    by mask reproduces the full level's globally sorted stream byte for
    byte.  Emitted graphs carry their transported automorphism group
    into the cache of :mod:`repro.symmetry.groups`.
    """
    possible_edges = list(combinations(range(n), 2))
    pending = []
    for rows, auts in entries:
        if connected_only and not _bitset_connected(rows, n):
            continue
        group = AutomorphismGroup(nodes=tuple(range(n)), perms=auts)
        pending.append((rows, auts, group.orbit_representatives()))
    labeled = []
    np = _generation_np()
    if np is not None and generation_supported(n) and len(pending) > 1:
        # Batched emission labeling: one frontier search over the whole
        # level instead of one scalar DFS per class.
        for start in range(0, len(pending), _GENERATION_BLOCK):
            chunk = pending[start : start + _GENERATION_BLOCK]
            rows_matrix = np.array([rows for rows, _, _ in chunk], dtype=np.int64)
            firsts = [reps for _, _, reps in chunk]
            masks, perms = batch_min_edge_mask(
                rows_matrix, n, firsts, np, stats=GLOBAL_STATS
            )
            masks_list = masks.tolist()
            perms_list = perms.tolist()
            for i, (rows, auts, _) in enumerate(chunk):
                labeled.append((masks_list[i], tuple(perms_list[i]), rows, auts))
    else:
        for rows, auts, reps in pending:
            GLOBAL_STATS.incr("canonicalizations")
            mask, perm = min_edge_mask(list(rows), n, first_candidates=reps)
            labeled.append((mask, perm, rows, auts))
    labeled.sort(key=lambda entry: entry[0])
    for mask, perm, rows, auts in labeled:
        graph = Graph(
            nodes=range(n),
            edges=[e for i, e in enumerate(possible_edges) if mask >> i & 1],
        )
        # Transport the group through the emission labeling: emitted node
        # p is generation node perm[p].
        pos = [0] * n
        for p, v in enumerate(perm):
            pos[v] = p
        emitted_auts = tuple(
            tuple(pos[sigma[perm[p]]] for p in range(n)) for sigma in auts
        )
        seed_automorphisms(graph, emitted_auts)
        yield mask, graph


def orderly_graphs_exactly(n: int, connected_only: bool = True) -> Iterator[Graph]:
    """All graphs on exactly *n* nodes up to isomorphism, emitted in the
    legacy enumerator's exact order and labeling.

    Drop-in replacement for the edge-subset walk of
    :mod:`repro.graphs.families` — byte-identical stream — that visits
    each isomorphism class once instead of all ``2^(n choose 2)`` masks.
    Emitted graphs carry their automorphism group into the cache of
    :mod:`repro.symmetry.groups`.
    """
    if n <= 0:
        return
    GLOBAL_STATS.incr("orderly_generations")
    for _mask, graph in emit_entries(_level(n), n, connected_only=connected_only):
        yield graph


def count_classes(n: int, connected_only: bool = False) -> int:
    """Number of isomorphism classes on exactly *n* nodes (test hook)."""
    if n <= 0:
        return 0
    if not connected_only:
        return len(_level(n))
    return sum(1 for rows, _ in _level(n) if _bitset_connected(rows, n))
