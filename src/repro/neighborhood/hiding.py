"""The hiding characterization (Lemma 3.2) as executable checks.

``D`` hides a ``k``-coloring iff ``V(D, n)`` is not ``k``-colorable for
some ``n``.  Both directions are runnable:

* **hiding witness** — an odd closed walk (for ``k = 2``) or a
  non-``k``-colorability certificate of the (sub-)neighborhood graph;
* **non-hiding witness** — a proper ``k``-coloring of the full
  ``V(D, n)``, compiled into an extraction decoder
  (:mod:`repro.neighborhood.extraction`) that recovers a coloring on any
  unanimously accepted instance.
"""

from __future__ import annotations

import warnings
from collections.abc import Iterable
from dataclasses import dataclass

from ..certification.lcp import LCP
from ..graphs.graph import Graph
from ..local.instance import Instance
from ..local.views import View
from .aviews import labeled_yes_instances
from .ngraph import NeighborhoodGraph, build_neighborhood_graph_auto

#: Sentinel distinguishing "caller never passed streaming=" (route via
#: the config knob, no deprecation) from an explicit legacy routing ask.
_UNSET = object()

#: Deprecation shims warn exactly once per process per shim name.
_WARNED: set[str] = set()


def _warn_once(name: str, message: str) -> None:
    if name in _WARNED:
        return
    _WARNED.add(name)
    warnings.warn(message, DeprecationWarning, stacklevel=3)


def _reset_deprecation_guards() -> None:
    """Test hook: make the next shim call warn again."""
    _WARNED.clear()


@dataclass(frozen=True)
class HidingVerdict:
    """Outcome of a hiding check.

    *hiding* is ``True`` when a non-``k``-colorability witness exists in
    the scanned portion of ``V(D, n)`` (sound regardless of coverage),
    ``False`` when the scan was the full Lemma 3.1 enumeration and the
    graph is ``k``-colorable, and ``None`` when a partial scan found no
    witness (inconclusive).
    """

    k: int
    hiding: bool | None
    ngraph: NeighborhoodGraph
    odd_cycle: tuple[View, ...] | None = None
    coloring: dict[int, int] | None = None

    def summary(self) -> str:
        if self.hiding:
            witness = (
                f"odd closed walk of {len(self.odd_cycle) - 1} views"
                if self.odd_cycle
                else "non-k-colorable neighborhood graph"
            )
            return f"hiding (k={self.k}): YES — {witness}"
        if self.hiding is False:
            return f"hiding (k={self.k}): NO — V(D, n) is {self.k}-colorable"
        return f"hiding (k={self.k}): inconclusive on partial scan"


def hiding_verdict_from_instances(
    lcp: LCP, labeled: Iterable[Instance], exhaustive: bool = False
) -> HidingVerdict:
    """Check hiding over the neighborhood subgraph spanned by *labeled*."""
    ngraph = build_neighborhood_graph_auto(lcp, labeled)
    return classic_verdict(lcp, ngraph, exhaustive=exhaustive)


def hiding_verdict_up_to(
    lcp: LCP,
    n: int,
    port_limit: int = 64,
    id_order_types: bool = False,
    include_all_accepted_labelings: bool = True,
    labeling_limit: int = 20_000,
    streaming: bool | None = _UNSET,  # type: ignore[assignment]
) -> HidingVerdict:
    """Check hiding over the full Lemma 3.1 enumeration up to *n* nodes.

    The result is conclusive both ways *for this n* (hiding may still
    kick in at larger ``n`` when the verdict is non-hiding).  Results are
    memoized per (scheme, decoder, parameters) — the enumeration is
    deterministic, and the returned verdict is immutable by convention.

    This is now a thin front over :func:`repro.engine.decide_hiding`:
    the call builds an :class:`~repro.engine.ExecutionPlan` via the
    engine's plan resolver and returns ``verdict.legacy``.  Passing
    ``streaming=`` explicitly is deprecated — build a plan instead
    (``ExecutionPlan(backend="materialized")`` for callers that need the
    complete ``V(D, n)``, e.g. chromatic-number measurements).  Without
    the keyword, the backend follows the session config, as before.
    """
    from ..engine import decide_hiding, resolve_plan  # noqa: PLC0415

    if streaming is _UNSET:
        streaming = None
    else:
        _warn_once(
            "hiding_verdict_up_to.streaming",
            "hiding_verdict_up_to(streaming=...) is deprecated; build an "
            "ExecutionPlan and call repro.engine.decide_hiding instead",
        )
    plan = resolve_plan(
        streaming=streaming,
        port_limit=port_limit,
        id_order_types=id_order_types,
        include_all_accepted_labelings=include_all_accepted_labelings,
        labeling_limit=labeling_limit,
    )
    return decide_hiding(lcp, n, plan).legacy


def hiding_verdict_on_witnesses(
    lcp: LCP, graphs: Iterable[Graph], id_bound: int, port_limit: int = 16
) -> HidingVerdict:
    """Check hiding over prover-labeled instances of chosen graphs."""
    labeled = labeled_yes_instances(
        lcp, graphs, port_limit=port_limit, id_bound=id_bound
    )
    ngraph = build_neighborhood_graph_auto(lcp, labeled)
    return classic_verdict(lcp, ngraph, exhaustive=False)


def classic_verdict(
    lcp: LCP, ngraph: NeighborhoodGraph, exhaustive: bool
) -> HidingVerdict:
    if lcp.k == 2:
        odd_cycle = ngraph.find_odd_cycle()
        if odd_cycle is not None:
            return HidingVerdict(
                k=2, hiding=True, ngraph=ngraph, odd_cycle=tuple(odd_cycle)
            )
        coloring = ngraph.proper_coloring(2)
        return HidingVerdict(
            k=2,
            hiding=(False if exhaustive else None),
            ngraph=ngraph,
            coloring=coloring,
        )
    coloring = ngraph.proper_coloring(lcp.k)
    if coloring is None:
        return HidingVerdict(k=lcp.k, hiding=True, ngraph=ngraph)
    return HidingVerdict(
        k=lcp.k, hiding=(False if exhaustive else None), ngraph=ngraph, coloring=coloring
    )
