"""The hiding characterization (Lemma 3.2) as executable checks.

``D`` hides a ``k``-coloring iff ``V(D, n)`` is not ``k``-colorable for
some ``n``.  Both directions are runnable:

* **hiding witness** — an odd closed walk (for ``k = 2``) or a
  non-``k``-colorability certificate of the (sub-)neighborhood graph;
* **non-hiding witness** — a proper ``k``-coloring of the full
  ``V(D, n)``, compiled into an extraction decoder
  (:mod:`repro.neighborhood.extraction`) that recovers a coloring on any
  unanimously accepted instance.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from ..certification.lcp import LCP
from ..graphs.graph import Graph
from ..local.instance import Instance
from ..local.views import View
from .aviews import labeled_yes_instances, yes_instances_up_to
from .ngraph import NeighborhoodGraph, build_neighborhood_graph_auto


@dataclass(frozen=True)
class HidingVerdict:
    """Outcome of a hiding check.

    *hiding* is ``True`` when a non-``k``-colorability witness exists in
    the scanned portion of ``V(D, n)`` (sound regardless of coverage),
    ``False`` when the scan was the full Lemma 3.1 enumeration and the
    graph is ``k``-colorable, and ``None`` when a partial scan found no
    witness (inconclusive).
    """

    k: int
    hiding: bool | None
    ngraph: NeighborhoodGraph
    odd_cycle: tuple[View, ...] | None = None
    coloring: dict[int, int] | None = None

    def summary(self) -> str:
        if self.hiding:
            witness = (
                f"odd closed walk of {len(self.odd_cycle) - 1} views"
                if self.odd_cycle
                else "non-k-colorable neighborhood graph"
            )
            return f"hiding (k={self.k}): YES — {witness}"
        if self.hiding is False:
            return f"hiding (k={self.k}): NO — V(D, n) is {self.k}-colorable"
        return f"hiding (k={self.k}): inconclusive on partial scan"


def hiding_verdict_from_instances(
    lcp: LCP, labeled: Iterable[Instance], exhaustive: bool = False
) -> HidingVerdict:
    """Check hiding over the neighborhood subgraph spanned by *labeled*."""
    ngraph = build_neighborhood_graph_auto(lcp, labeled)
    return _verdict(lcp, ngraph, exhaustive=exhaustive)


#: Memo for full Lemma 3.1 sweeps — they are deterministic per scheme and
#: parameters, and several experiments/tests ask for the same ones.
_SWEEP_CACHE: dict[tuple, "HidingVerdict"] = {}


def hiding_verdict_up_to(
    lcp: LCP,
    n: int,
    port_limit: int = 64,
    id_order_types: bool = False,
    include_all_accepted_labelings: bool = True,
    labeling_limit: int = 20_000,
    streaming: bool | None = None,
) -> HidingVerdict:
    """Check hiding over the full Lemma 3.1 enumeration up to *n* nodes.

    The result is conclusive both ways *for this n* (hiding may still
    kick in at larger ``n`` when the verdict is non-hiding).  Results are
    memoized per (scheme, decoder, parameters) — the enumeration is
    deterministic, and the returned verdict is immutable by convention.

    *streaming* routes the sweep through the early-exit engine of
    :mod:`repro.neighborhood.streaming` (default: the global
    ``CONFIG.streaming`` knob).  The hiding flag is identical either way,
    but on hiding verdicts the streamed graph covers only the scanned
    prefix of ``V(D, n)`` — callers that need the complete graph (e.g.
    chromatic-number measurements) must pass ``streaming=False``.
    """
    from ..perf.config import CONFIG

    if streaming is None:
        streaming = CONFIG.streaming
    if streaming:
        from .streaming import streaming_hiding_verdict_up_to

        return streaming_hiding_verdict_up_to(
            lcp,
            n,
            port_limit=port_limit,
            id_order_types=id_order_types,
            include_all_accepted_labelings=include_all_accepted_labelings,
            labeling_limit=labeling_limit,
        )
    cache_key = (
        type(lcp).__name__,
        lcp.name,
        lcp.decoder.name,
        lcp.k,
        lcp.radius,
        n,
        port_limit,
        id_order_types,
        include_all_accepted_labelings,
        labeling_limit,
    )
    cached = _SWEEP_CACHE.get(cache_key)
    if cached is not None:
        return cached
    labeled = yes_instances_up_to(
        lcp,
        n,
        port_limit=port_limit,
        id_order_types=id_order_types,
        include_all_accepted_labelings=include_all_accepted_labelings,
        labeling_limit=labeling_limit,
    )
    ngraph = build_neighborhood_graph_auto(lcp, labeled)
    verdict = _verdict(lcp, ngraph, exhaustive=True)
    _SWEEP_CACHE[cache_key] = verdict
    return verdict


def hiding_verdict_on_witnesses(
    lcp: LCP, graphs: Iterable[Graph], id_bound: int, port_limit: int = 16
) -> HidingVerdict:
    """Check hiding over prover-labeled instances of chosen graphs."""
    labeled = labeled_yes_instances(
        lcp, graphs, port_limit=port_limit, id_bound=id_bound
    )
    ngraph = build_neighborhood_graph_auto(lcp, labeled)
    return _verdict(lcp, ngraph, exhaustive=False)


def _verdict(lcp: LCP, ngraph: NeighborhoodGraph, exhaustive: bool) -> HidingVerdict:
    if lcp.k == 2:
        odd_cycle = ngraph.find_odd_cycle()
        if odd_cycle is not None:
            return HidingVerdict(
                k=2, hiding=True, ngraph=ngraph, odd_cycle=tuple(odd_cycle)
            )
        coloring = ngraph.proper_coloring(2)
        return HidingVerdict(
            k=2,
            hiding=(False if exhaustive else None),
            ngraph=ngraph,
            coloring=coloring,
        )
    coloring = ngraph.proper_coloring(lcp.k)
    if coloring is None:
        return HidingVerdict(k=lcp.k, hiding=True, ngraph=ngraph)
    return HidingVerdict(
        k=lcp.k, hiding=(False if exhaustive else None), ngraph=ngraph, coloring=coloring
    )
