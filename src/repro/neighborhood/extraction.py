"""The extraction decoder of Lemma 3.2's converse direction.

Given a proper ``k``-coloring ``c`` of ``V(D, n)``, the decoder ``D'``
makes every node (1) construct ``V(D, n)``, (2) compute the canonical
coloring ``c``, (3) find its own view in ``V(D, n)``, and (4) output
``c(view)``.  Steps (1)–(2) are precompiled here (all nodes compute the
same deterministic object, exactly as the proof argues), so the runtime
decoder is a lookup table from canonical views to colors.

On any unanimously accepted labeled yes-instance, neighboring nodes hold
neighboring views of ``V(D, n)``, so the outputs form a proper
``k``-coloring — demonstrated against the revealing baseline in the
Lemma 3.2 experiment, and impossible for the hiding schemes (their
neighborhood graphs have no proper ``k``-coloring to compile).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..certification.lcp import LCP
from ..graphs.graph import Node
from ..graphs.properties import proper_coloring_ok
from ..local.algorithms import LocalAlgorithm
from ..local.instance import Instance
from ..local.views import View
from .ngraph import NeighborhoodGraph

UNKNOWN_VIEW = -1
"""Output emitted when a node's view never occurs in the scanned
``V(D, n)`` (cannot happen on instances covered by the enumeration)."""


class ExtractionDecoder(LocalAlgorithm):
    """``D'``: map each node's view to its color in ``V(D, n)``."""

    def __init__(self, ngraph: NeighborhoodGraph, coloring: dict[int, int]) -> None:
        self.radius = ngraph.radius
        self.anonymous = not ngraph.include_ids
        self._table: dict[View, int] = {
            view: coloring[index] for view, index in ngraph.index.items()
        }

    def run(self, view: View) -> int:
        return self._table.get(view, UNKNOWN_VIEW)

    @property
    def table_size(self) -> int:
        return len(self._table)

    @property
    def name(self) -> str:
        return f"ExtractionDecoder(views={len(self._table)})"


def build_extraction_decoder(ngraph: NeighborhoodGraph, k: int) -> ExtractionDecoder | None:
    """Compile ``D'`` from a ``k``-colorable neighborhood graph.

    Returns ``None`` when ``V(D, n)`` is not ``k``-colorable — by
    Lemma 3.2 exactly the hiding case.
    """
    coloring = ngraph.proper_coloring(k)
    if coloring is None:
        return None
    return ExtractionDecoder(ngraph, coloring)


@dataclass(frozen=True)
class ExtractionOutcome:
    """Result of running ``D'`` on one accepted instance.

    *extracted* is the per-node output; *proper* says whether it is a
    proper coloring of the whole instance (the paper's extraction
    success condition); *correct_fraction* is the quantified-hiding
    measure from the paper's future-work discussion: the largest fraction
    of nodes on which the output agrees with *some* proper coloring
    restricted to a maximal properly-colored node set — here simplified
    to the fraction of nodes with no monochromatic incident edge.
    """

    extracted: dict[Node, int]
    proper: bool
    correct_fraction: float


def run_extraction(
    decoder: ExtractionDecoder, lcp: LCP, instance: Instance
) -> ExtractionOutcome:
    """Run ``D'`` on a labeled instance and grade the output."""
    if not lcp.check(instance).unanimous:
        raise ValueError("extraction is defined on unanimously accepted instances")
    extracted = decoder.run_on(instance)
    graph = instance.graph
    proper = proper_coloring_ok(graph, extracted) and all(
        0 <= extracted[v] < lcp.k for v in graph.nodes
    )
    consistent_nodes = sum(
        1
        for v in graph.nodes
        if 0 <= extracted[v] < lcp.k
        and all(extracted[v] != extracted[u] for u in graph.neighbors(v))
    )
    fraction = consistent_nodes / graph.order if graph.order else 1.0
    return ExtractionOutcome(
        extracted=extracted, proper=proper, correct_fraction=fraction
    )
