"""Enumeration of labeled yes-instances and their accepting views.

``AViews(D, n)`` (Section 3) is the set of views that some node of some
labeled yes-instance on at most ``n`` nodes holds while accepting.  Two
enumeration regimes are provided:

* the **faithful Lemma 3.1 sweep** — all yes-instance graphs up to
  isomorphism, all port assignments (bounded), identifier assignments by
  order type (bounded), and certificate assignments; practical for small
  ``n`` and essential for the extraction direction of Lemma 3.2;
* the **witness regime** — a caller-chosen list of labeled yes-instances
  (this is what the paper's hiding proofs do with their ``I1``/``I2``
  pairs); any odd cycle found among these views is a sound
  non-2-colorability witness for the full neighborhood graph.

Certificate assignments per instance come from the honest prover
(``all_certifications``) and, optionally, from exhaustively enumerating
the LCP's finite alphabet and keeping the unanimously accepted ones —
the literal "there exists a labeling accepted at v" of the definition.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from ..certification.enumeration import unanimously_accepted_labelings
from ..certification.lcp import LCP
from ..graphs.families import (
    all_graphs_exactly,
    all_graphs_up_to,
    graph_family_predicate,
)
from ..graphs.graph import Graph
from ..local.identifiers import IdentifierAssignment, all_order_types
from ..local.instance import Instance
from ..local.labeling import count_labelings, labeling_key, node_sort_order
from ..local.ports import PortAssignment, all_port_assignments, count_port_assignments


def symmetry_pruning_effective(lcp: LCP, symmetry: str) -> bool:
    """Whether orbit pruning applies: ``"on"`` forces it, ``"auto"``
    activates it for anonymous schemes (whose decoders cannot see the
    identifiers that would break orbit equivalence cheaply), ``"off"``
    never."""
    return symmetry == "on" or (symmetry == "auto" and lcp.anonymous)


def labeled_yes_instances(
    lcp: LCP,
    graphs: Iterable[Graph],
    port_limit: int = 64,
    id_order_types: bool = False,
    id_bound: int | None = None,
    include_all_accepted_labelings: bool = False,
    labeling_limit: int = 20_000,
    symmetry: str = "off",
    account=None,
    kernel: str | None = None,
    kernel_labeling_limit: int | None = None,
    stats=None,
    family: str = "all",
    alphabet_limit: int | None = None,
) -> Iterator[Instance]:
    """Labeled yes-instances of *lcp* over the given graphs.

    * Ports: exhaustive when the count fits *port_limit*, else canonical
      plus seeded random ones.
    * Identifiers: canonical ``1..n`` by default; with *id_order_types*
      every order type (``n!`` of them — tiny graphs only), which is the
      right granularity for order-invariant and identifier-sensitive
      decoders.
    * Labelings: the prover's full certification set; plus, when
      *include_all_accepted_labelings* and the alphabet is finite and the
      space fits *labeling_limit*, every unanimously accepted labeling.
    * Symmetry (``"auto"`` | ``"on"`` | ``"off"``; see
      :func:`symmetry_pruning_effective`): when pruning is effective,
      ``(ports, ids)`` bases that are automorphic images of an earlier
      base are skipped whole, and labelings within a base are pruned to
      stabilizer-orbit minima.  The yielded stream is a subsequence of
      the brute stream whose suppressed members contribute no new
      canonical views or edges, so builder event order — and with it
      early-exit witnesses and verdict fingerprints — is unchanged.
      Suppressed counts accumulate on *account*
      (:class:`repro.symmetry.prune.SymmetryAccount`); the engine folds
      them back into ``Provenance.instances_scanned``.
    * Kernel: *kernel* (``None`` | ``"batch"``) selects the unanimity
      sweep's inner-loop evaluator — ``"batch"`` routes through the
      vectorized block kernel of :mod:`repro.kernel` when numpy is
      available, falling back to the scalar loop otherwise; *stats*
      receives its batch counters.  The yielded stream is identical
      either way.
    * Raised admission: *kernel_labeling_limit* (when above
      *labeling_limit*) admits a base's exhaustive unanimity pass only
      where the batch kernel actually evaluates it — ``kernel ==
      "batch"``, numpy importable, and the space indexable
      (:func:`repro.kernel.batch.kernel_supports`) — so the block-
      streamed kernel can afford labeling spaces the scalar route must
      refuse while scalar-route behavior stays byte-identical.
    * Campaign axes: *family* names a registered graph family
      (:data:`repro.graphs.families.GRAPH_FAMILIES`) whose predicate
      pre-filters the graph stream (``"all"`` keeps every graph), and
      *alphabet_limit* caps the unanimity pass to the first letters of
      the scheme's certificate alphabet.  Both default to the full
      pre-campaign sweep.
    """
    predicate = graph_family_predicate(family)
    pruning = symmetry_pruning_effective(lcp, symmetry)
    if pruning and account is None:
        from ..symmetry.prune import SymmetryAccount  # noqa: PLC0415

        account = SymmetryAccount()
    include_ids = not lcp.anonymous
    for graph in graphs:
        if predicate is not None and not predicate(graph):
            continue
        if not lcp.is_yes_instance(graph):
            continue
        node_order = node_sort_order(graph)
        group = None
        if pruning:
            from ..symmetry.groups import automorphism_group  # noqa: PLC0415

            group = automorphism_group(graph)
            if group.is_trivial:
                group = None
        ports_list: list[PortAssignment]
        if count_port_assignments(graph) <= port_limit:
            ports_list = list(all_port_assignments(graph))
        else:
            ports_list = [PortAssignment.canonical(graph)]
            ports_list += [
                PortAssignment.random(graph, seed) for seed in range(1, port_limit)
            ]
        if id_order_types:
            id_list = list(all_order_types(graph))
        else:
            id_list = [IdentifierAssignment.canonical(graph)]
        bound = id_bound if id_bound is not None else graph.order
        #: base signature -> brute-equivalent instance count of the
        #: representative base (yields + suppressed), charged whole to
        #: every later automorphic duplicate.
        base_counts: dict[tuple, int] = {}
        for ports in ports_list:
            for ids in id_list:
                base = Instance(graph=graph, ports=ports, ids=ids, id_bound=bound)
                if account is not None:
                    account.bases_total += 1
                signature = None
                if group is not None:
                    from ..symmetry.prune import base_signature, instance_stabilizer  # noqa: PLC0415

                    signature = base_signature(group, graph, ports, ids, include_ids)
                    duplicate_of = base_counts.get(signature)
                    if duplicate_of is not None:
                        account.bases_pruned += 1
                        account.instances_suppressed += duplicate_of
                        continue
                suppressed_before = (
                    account.instances_suppressed if account is not None else 0
                )
                produced = 0
                seen = set()
                for labeling in lcp.prover.all_certifications(base):
                    key = labeling_key(labeling, node_order)
                    if key in seen:
                        continue
                    seen.add(key)
                    produced += 1
                    yield base.with_labeling(labeling)
                if include_all_accepted_labelings:
                    alphabet = lcp.certificate_alphabet(graph)
                    if alphabet is not None and alphabet_limit is not None:
                        alphabet = alphabet[:alphabet_limit]
                    effective_limit = labeling_limit
                    if (
                        alphabet is not None
                        and kernel_labeling_limit is not None
                        and kernel_labeling_limit > effective_limit
                        and kernel == "batch"
                    ):
                        from ..kernel import kernel_supports, numpy_or_none  # noqa: PLC0415

                        if numpy_or_none() is not None and kernel_supports(
                            graph, alphabet
                        ):
                            effective_limit = kernel_labeling_limit
                    if alphabet is not None and (
                        count_labelings(graph, len(alphabet)) <= effective_limit
                    ):
                        stabilizer = (
                            instance_stabilizer(group, graph, ports, ids, include_ids)
                            if group is not None
                            else None
                        )
                        for labeling in unanimously_accepted_labelings(
                            lcp.decoder,
                            base,
                            alphabet,
                            lcp.radius,
                            include_ids=include_ids,
                            seen=seen,
                            stabilizer=stabilizer,
                            account=account,
                            kernel=kernel,
                            stats=stats,
                        ):
                            produced += 1
                            yield base.with_labeling(labeling)
                if signature is not None:
                    base_counts[signature] = produced + (
                        account.instances_suppressed - suppressed_before
                    )


def yes_instances_up_to(
    lcp: LCP,
    n: int,
    port_limit: int = 64,
    id_order_types: bool = False,
    include_all_accepted_labelings: bool = False,
    labeling_limit: int = 20_000,
    symmetry: str = "off",
    account=None,
    kernel: str | None = None,
    kernel_labeling_limit: int | None = None,
    stats=None,
    family: str = "all",
    alphabet_limit: int | None = None,
) -> Iterator[Instance]:
    """The Lemma 3.1 sweep: labeled yes-instances on at most *n* nodes.

    Graphs are enumerated up to isomorphism over all connected graphs,
    filtered by :meth:`LCP.is_yes_instance` (promise class +
    ``k``-colorability — bipartiteness for the paper's ``k = 2``).
    """
    # No pre-filter here: labeled_yes_instances applies is_yes_instance
    # itself, and filtering twice would double the bipartiteness checks.
    yield from labeled_yes_instances(
        lcp,
        all_graphs_up_to(n, mutable=False),
        port_limit=port_limit,
        id_order_types=id_order_types,
        id_bound=n,
        include_all_accepted_labelings=include_all_accepted_labelings,
        labeling_limit=labeling_limit,
        symmetry=symmetry,
        account=account,
        kernel=kernel,
        kernel_labeling_limit=kernel_labeling_limit,
        stats=stats,
        family=family,
        alphabet_limit=alphabet_limit,
    )


def yes_instances_between(
    lcp: LCP,
    lo: int,
    hi: int,
    port_limit: int = 64,
    id_order_types: bool = False,
    include_all_accepted_labelings: bool = False,
    labeling_limit: int = 20_000,
    symmetry: str = "off",
    account=None,
    kernel: str | None = None,
    kernel_labeling_limit: int | None = None,
    stats=None,
    family: str = "all",
    alphabet_limit: int | None = None,
) -> Iterator[Instance]:
    """The suffix of the Lemma 3.1 sweep: sizes ``lo+1 .. hi`` only.

    Because :func:`yes_instances_up_to` enumerates graph sizes in
    ascending order, the sweep at ``hi`` is exactly the sweep at ``lo``
    followed by this suffix — the prefix property the streaming engine's
    cross-``n`` warm start relies on.  Anonymous schemes only: views
    carry no identifiers there, so the ``id_bound`` difference between
    the two sweeps cannot reach the neighborhood graph.
    """

    def suffix_graphs() -> Iterator[Graph]:
        for size in range(lo + 1, hi + 1):
            yield from all_graphs_exactly(size, mutable=False)

    yield from labeled_yes_instances(
        lcp,
        suffix_graphs(),
        port_limit=port_limit,
        id_order_types=id_order_types,
        id_bound=hi,
        include_all_accepted_labelings=include_all_accepted_labelings,
        labeling_limit=labeling_limit,
        symmetry=symmetry,
        account=account,
        kernel=kernel,
        kernel_labeling_limit=kernel_labeling_limit,
        stats=stats,
        family=family,
        alphabet_limit=alphabet_limit,
    )
