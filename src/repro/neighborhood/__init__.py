"""The accepting neighborhood graph ``V(D, n)`` and the hiding
characterization of Lemma 3.2, with the extraction decoder for the
converse direction."""

from .aviews import labeled_yes_instances, yes_instances_between, yes_instances_up_to
from .extraction import (
    UNKNOWN_VIEW,
    ExtractionDecoder,
    ExtractionOutcome,
    build_extraction_decoder,
    run_extraction,
)
from .hiding import (
    HidingVerdict,
    hiding_verdict_from_instances,
    hiding_verdict_on_witnesses,
    hiding_verdict_up_to,
)
from .ngraph import (
    GraphConsumer,
    NeighborhoodGraph,
    build_neighborhood_graph,
    build_neighborhood_graph_auto,
)
from .streaming import (
    StreamingHidingEngine,
    clear_streaming_state,
    streaming_hiding_verdict_up_to,
)

__all__ = [
    "ExtractionDecoder",
    "ExtractionOutcome",
    "GraphConsumer",
    "HidingVerdict",
    "NeighborhoodGraph",
    "StreamingHidingEngine",
    "UNKNOWN_VIEW",
    "build_extraction_decoder",
    "build_neighborhood_graph",
    "build_neighborhood_graph_auto",
    "clear_streaming_state",
    "hiding_verdict_from_instances",
    "hiding_verdict_on_witnesses",
    "hiding_verdict_up_to",
    "labeled_yes_instances",
    "run_extraction",
    "streaming_hiding_verdict_up_to",
    "yes_instances_between",
    "yes_instances_up_to",
]
