"""The accepting neighborhood graph ``V(D, n)`` (Section 3, Lemma 3.1).

Nodes are accepting views; edges join yes-instance-compatible views (two
views held by adjacent nodes of a common labeled yes-instance, both
accepting).  The builder records *provenance* — for every view and edge,
one concrete (instance, node) pair realizing it — because the
realizability machinery of Section 5 and the figure experiments need to
trace views back to instances.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from ..certification.lcp import LCP
from ..graphs.graph import Graph, Node
from ..graphs.coloring import k_coloring
from ..graphs.properties import bipartition
from ..local.instance import Instance
from ..local.views import View, extract_all_views
from ..obs.trace import NULL_TRACER, Tracer
from ..perf.cache import memoized_decide
from ..perf.config import CONFIG
from ..perf.stats import GLOBAL_STATS, PerfStats


@dataclass
class NeighborhoodGraph:
    """``V(D, n)`` (or a subgraph of it spanned by chosen instances)."""

    radius: int
    include_ids: bool
    views: list[View] = field(default_factory=list)
    index: dict[View, int] = field(default_factory=dict)
    edges: set[tuple[int, int]] = field(default_factory=set)
    #: One (instance, node) witness per view index.
    view_witness: dict[int, tuple[Instance, Node]] = field(default_factory=dict)
    #: One (instance, (u, v)) witness per edge.
    edge_witness: dict[tuple[int, int], tuple[Instance, tuple[Node, Node]]] = field(
        default_factory=dict
    )
    #: Adjacency lists over view indices, maintained alongside ``edges``
    #: so neighborhood queries don't scan the full edge set.
    adjacency: dict[int, list[int]] = field(default_factory=dict)
    instances_scanned: int = 0
    #: False for graphs reconstructed from the persistent cache, whose
    #: view/edge witnesses (instance provenance) did not survive the
    #: round trip.
    has_provenance: bool = True

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_view(self, view: View, instance: Instance, node: Node) -> int:
        """Register an accepting view; returns its index."""
        return self.add_view_tracked(view, instance, node)[0]

    def add_view_tracked(
        self, view: View, instance: Instance, node: Node
    ) -> tuple[int, bool]:
        """Register an accepting view; returns ``(index, created)``.

        *created* tells streaming consumers whether this event introduced
        a new node of ``V(D, n)`` (views repeat massively across
        instances, and consumers must see each node exactly once).
        """
        existing = self.index.get(view)
        if existing is not None:
            return existing, False
        idx = len(self.views)
        self.views.append(view)
        self.index[view] = idx
        self.view_witness[idx] = (instance, node)
        return idx, True

    def add_edge(self, i: int, j: int, instance: Instance, edge: tuple[Node, Node]) -> None:
        """Register a yes-instance-compatible pair."""
        self.add_edge_tracked(i, j, instance, edge)

    def add_edge_tracked(
        self, i: int, j: int, instance: Instance, edge: tuple[Node, Node]
    ) -> bool:
        """Register a compatible pair; returns whether the edge is new."""
        key = (i, j) if i <= j else (j, i)
        if key in self.edges:
            return False
        self.edges.add(key)
        self.edge_witness[key] = (instance, edge)
        self.adjacency.setdefault(i, []).append(j)
        if j != i:
            self.adjacency.setdefault(j, []).append(i)
        return True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def order(self) -> int:
        return len(self.views)

    @property
    def size(self) -> int:
        return len(self.edges)

    def to_graph(self) -> Graph:
        """``V(D, n)`` as a plain graph on view indices."""
        g = Graph(nodes=range(len(self.views)))
        for i, j in self.edges:
            g.add_edge(i, j)
        return g

    def is_k_colorable(self, k: int) -> bool:
        """Whether ``V(D, n) ∈ G(k-col)`` — the Lemma 3.2 pivot."""
        return k_coloring(self.to_graph(), k) is not None

    def proper_coloring(self, k: int) -> dict[int, int] | None:
        """A canonical proper ``k``-coloring of the view graph, if any.

        This is the deterministic coloring ``c`` from the proof of
        Lemma 3.2; the extraction decoder is built on top of it.
        """
        return k_coloring(self.to_graph(), k)

    def find_odd_cycle(self) -> list[View] | None:
        """An odd closed walk of views, or ``None`` if bipartite.

        A non-``None`` result *proves* the LCP hiding for ``k = 2``
        (Lemma 3.2), even when this object only covers a subgraph of the
        full ``V(D, n)``.
        """
        split = bipartition(self.to_graph())
        if split.odd_cycle is None:
            return None
        return [self.views[i] for i in split.odd_cycle]

    def neighbors_of(self, view: View) -> list[View]:
        """Neighboring views, via the maintained adjacency lists."""
        idx = self.index[view]
        return [self.views[j] for j in self.adjacency.get(idx, [])]


def _labeled_views(lcp: LCP, instance: Instance, stats: PerfStats) -> dict[Node, View]:
    """Views of every node of *instance*, through the layout cache.

    The templates of one ``(graph, ports, ids)`` base are extracted once;
    subsequent labelings of the same base only swap label tuples.
    """
    include_ids = not lcp.anonymous
    if not CONFIG.layout_cache:
        views = extract_all_views(instance, lcp.radius, include_ids=include_ids)
        stats.incr("views_extracted", len(views))
        return views
    from ..perf.cache import default_layout_cache  # noqa: PLC0415

    return default_layout_cache().labeled_views(
        instance, lcp.radius, include_ids, stats=stats
    )


class GraphConsumer:
    """Contract for consumers driven by the neighborhood-graph builders.

    The builders changed contract from "return a finished graph" to
    "drive a consumer": as the scan discovers each *new* view and edge of
    ``V(D, n)``, it calls :meth:`on_view` / :meth:`on_edge` immediately —
    before the next instance is even enumerated.  A consumer that sets
    ``done`` stops the scan on the spot (the streaming hiding engine does
    this the moment a non-``k``-colorability witness exists).

    The event order is identical between the serial and parallel builders
    for any worker count or chunking, so an early exit fires at the same
    event everywhere — the parity guarantee the tests pin.
    """

    #: Builders stop scanning as soon as this turns True.
    done: bool = False

    def on_view(self, idx: int, view: View) -> None:
        """A new node of ``V(D, n)`` (called once per distinct view)."""

    def on_edge(self, i: int, j: int) -> None:
        """A new edge of ``V(D, n)`` (called once per distinct edge)."""


def build_neighborhood_graph(
    lcp: LCP,
    labeled_instances: Iterable[Instance],
    stats: PerfStats | None = None,
    consumer: GraphConsumer | None = None,
    into: NeighborhoodGraph | None = None,
    tracer: Tracer | None = None,
) -> NeighborhoodGraph:
    """Scan labeled yes-instances and assemble (a subgraph of) ``V(D, n)``.

    Every scanned instance contributes its accepting views as nodes and
    its edges-with-both-endpoints-accepting as neighborhood-graph edges.
    Feeding the full Lemma 3.1 enumeration
    (:func:`repro.neighborhood.aviews.yes_instances_up_to`) yields the
    exact ``V(D, n)`` (up to the enumeration bounds); feeding a hand-built
    witness list yields the subgraph the paper's hiding proofs use.

    With a *consumer*, every new view/edge is streamed out as it is
    found, and the scan stops (mid-instance, mid-enumeration) as soon as
    ``consumer.done`` is set — this is what makes the hiding decision
    early-exit without materializing the rest of the graph, and because
    the instance stream is a generator, the un-scanned suffix is never
    even enumerated.  *into* continues an existing graph instead of
    starting fresh (the cross-``n`` warm start: ``V(D, n-1)`` embeds into
    ``V(D, n)``).

    The scan goes through the performance layer (:mod:`repro.perf`): view
    layouts are extracted once per ``(graph, ports, ids)`` base and
    re-labeled per instance, and decoder verdicts are memoized per
    canonical view.  Both caches are semantics-preserving (layouts never
    depend on labels; decoders are pure functions of the view) and can be
    disabled via :data:`repro.perf.CONFIG`.
    """
    stats = stats or GLOBAL_STATS
    tracer = tracer if tracer is not None else NULL_TRACER
    ngraph = into if into is not None else NeighborhoodGraph(
        radius=lcp.radius, include_ids=not lcp.anonymous
    )
    decide = memoized_decide(lcp.decoder, stats=stats)
    scanned = 0
    stopped = False
    # One-slot edge-list cache: the enumeration yields all labelings of a
    # base consecutively, so the graph object repeats in runs.
    last_graph = None
    last_edges: list = []
    with tracer.span("build:serial") as build_span:
        with stats.time_stage("neighborhood_build"):
            for instance in labeled_instances:
                scanned += 1
                views = _labeled_views(lcp, instance, stats)
                votes = {v: decide(view) for v, view in views.items()}
                indices = {}
                for v, accepted in votes.items():
                    if not accepted:
                        continue
                    idx, created = ngraph.add_view_tracked(views[v], instance, v)
                    indices[v] = idx
                    if created and consumer is not None:
                        consumer.on_view(idx, views[v])
                        if consumer.done:
                            stopped = True
                            break
                if stopped:
                    stats.incr("streaming_early_exits")
                    break
                if instance.graph is not last_graph:
                    last_graph = instance.graph
                    last_edges = last_graph.edges
                for u, v in last_edges:
                    if votes.get(u) and votes.get(v):
                        created = ngraph.add_edge_tracked(
                            indices[u], indices[v], instance, (u, v)
                        )
                        if created and consumer is not None:
                            consumer.on_edge(indices[u], indices[v])
                            if consumer.done:
                                stopped = True
                                break
                if stopped:
                    stats.incr("streaming_early_exits")
                    break
        build_span.set_attributes(
            instances_scanned=scanned,
            views=ngraph.order,
            edges=ngraph.size,
            early_exit=stopped,
        )
        if stopped:
            build_span.set_attribute("early_exit_at_instance", scanned)
    ngraph.instances_scanned += scanned
    stats.incr("instances_scanned", scanned)
    return ngraph


def build_neighborhood_graph_auto(
    lcp: LCP,
    labeled_instances: Iterable[Instance],
    workers: int | None = None,
    stats: PerfStats | None = None,
    consumer: GraphConsumer | None = None,
    into: NeighborhoodGraph | None = None,
    tracer: Tracer | None = None,
) -> NeighborhoodGraph:
    """Serial or parallel build, per *workers* (default: the global config).

    The parallel builder produces an identical graph and fires consumer
    events in the identical order; this dispatcher is what the CLI's
    ``--workers`` flag, the experiment runner, and the streaming hiding
    engine feed.
    """
    effective = CONFIG.workers if workers is None else workers
    if effective and effective > 1:
        from ..perf.parallel import build_neighborhood_graph_parallel  # noqa: PLC0415

        return build_neighborhood_graph_parallel(
            lcp,
            labeled_instances,
            workers=effective,
            stats=stats,
            consumer=consumer,
            into=into,
            tracer=tracer,
        )
    return build_neighborhood_graph(
        lcp, labeled_instances, stats=stats, consumer=consumer, into=into, tracer=tracer
    )
