"""The streaming hiding engine: early-exit witness search over ``V(D, n)``.

Lemma 3.2 reduces hiding to "``V(D, n)`` is not ``k``-colorable for some
``n``", and the bipartiteness companion paper (arXiv:2502.13854) observes
that the ``k = 2`` witness is just an odd closed walk.  The materialized
pipeline (:func:`repro.neighborhood.hiding.hiding_verdict_up_to`) pays
for every view and edge of the full enumeration before it even starts
coloring; the engine here fuses the two phases:

1. **Incremental decision.** The builders drive the engine as a
   :class:`~repro.neighborhood.ngraph.GraphConsumer`: every new view and
   edge is fed, the moment it is discovered, into an incremental
   odd-cycle detector (union-find with parity, ``k = 2``) or an
   incremental DSATUR re-solver with conflict-driven restarts (general
   ``k``).  The scan stops — mid-instance, mid-enumeration — the moment a
   non-``k``-colorability witness exists; the witness is reported as the
   actual :class:`~repro.local.views.View` sequence, as in the paper's
   Figures 3–6.
2. **Cross-``n`` warm start.** ``V(D, n-1)`` embeds into ``V(D, n)``
   (for anonymous schemes the enumeration at ``n`` literally extends the
   one at ``n - 1``), so consecutive sweeps resume from the previous
   state: a found witness answers instantly for every larger ``n``, and a
   completed coloring is extended instead of re-derived from scratch.
3. **Persistent cross-run cache.** Completed sweeps are written to the
   on-disk store of :mod:`repro.perf.persist` (content-addressed,
   JSON-lines, versioned), so repeated experiment/CLI runs skip the
   enumeration entirely.

Parity guarantee: for every LCP, the streaming verdict's ``hiding`` flag
equals the materialized one, the witness is a genuine odd closed walk of
adjacent views, and on non-hiding sweeps the streamed graph *is* the full
``V(D, n)`` (identical views, edges, and extraction decoder).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..certification.lcp import LCP
from ..graphs.incremental import IncrementalKColoring, ParityForest
from ..local.views import View
from ..perf.config import CONFIG
from ..perf.stats import GLOBAL_STATS, PerfStats
from .aviews import yes_instances_between, yes_instances_up_to
from .hiding import HidingVerdict
from .ngraph import GraphConsumer, NeighborhoodGraph, build_neighborhood_graph_auto

#: Engine revision; folded into warm-state and disk keys so algorithmic
#: changes can never resurrect stale state.
ENGINE_VERSION = 1


class StreamingHidingEngine(GraphConsumer):
    """Consumes builder events and decides ``k``-colorability on the fly.

    Owns the :class:`NeighborhoodGraph` being grown (``self.ngraph``) so
    warm starts can hand the same graph back to the builder via ``into``.
    """

    def __init__(
        self,
        k: int,
        radius: int,
        include_ids: bool,
        early_exit: bool = True,
        stats: PerfStats | None = None,
    ) -> None:
        self.k = k
        self.early_exit = early_exit
        self.stats = stats or GLOBAL_STATS
        self.ngraph = NeighborhoodGraph(radius=radius, include_ids=include_ids)
        self.forest = ParityForest() if k == 2 else None
        self.coloring = IncrementalKColoring(k) if k != 2 else None
        #: Odd closed walk over view indices (k = 2 witnesses only).
        self.witness_indices: list[int] | None = None
        #: True once the accumulated subgraph is proved non-k-colorable.
        self.witness_found = False

    # ------------------------------------------------------------------
    # GraphConsumer protocol
    # ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.early_exit and self.witness_found

    def on_view(self, idx: int, view: View) -> None:
        self.stats.incr("stream_views")
        if self.forest is not None:
            self.forest.ensure(idx)
        else:
            self.coloring.add_node(idx)
            if self.coloring.failed and not self.witness_found:
                self.witness_found = True  # only reachable for k == 0

    def on_edge(self, i: int, j: int) -> None:
        self.stats.incr("stream_edges")
        if self.witness_found:
            # Keep the *first* witness (stream order) even in exhaustive
            # mode, so early-exit and full scans report the same walk.
            if self.forest is not None:
                self.forest.add_edge(i, j)
            else:
                self.coloring.add_edge(i, j)
            return
        if self.forest is not None:
            walk = self.forest.add_edge(i, j)
            if walk is not None:
                self.witness_indices = walk
                self.witness_found = True
        else:
            self.coloring.add_edge(i, j)
            if self.coloring.failed:
                self.witness_found = True

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def odd_cycle_views(self) -> tuple[View, ...] | None:
        if self.witness_indices is None:
            return None
        return tuple(self.ngraph.views[i] for i in self.witness_indices)

    def proper_coloring(self) -> dict[int, int] | None:
        """The maintained coloring, or ``None`` once a witness exists."""
        if self.witness_found:
            return None
        if self.forest is not None:
            return self.forest.two_coloring()
        return dict(self.coloring.color)

    def verdict(self, exhaustive: bool = True) -> HidingVerdict:
        if self.witness_found:
            return HidingVerdict(
                k=self.k,
                hiding=True,
                ngraph=self.ngraph,
                odd_cycle=self.odd_cycle_views(),
            )
        return HidingVerdict(
            k=self.k,
            hiding=(False if exhaustive else None),
            ngraph=self.ngraph,
            coloring=self.proper_coloring(),
        )

    def clone(self) -> "StreamingHidingEngine":
        """Deep-enough copy for warm starts: extending the clone never
        mutates the original (memoized verdicts stay immutable)."""
        other = StreamingHidingEngine(
            self.k,
            self.ngraph.radius,
            self.ngraph.include_ids,
            early_exit=self.early_exit,
            stats=self.stats,
        )
        g = self.ngraph
        other.ngraph = NeighborhoodGraph(
            radius=g.radius,
            include_ids=g.include_ids,
            views=list(g.views),
            index=dict(g.index),
            edges=set(g.edges),
            view_witness=dict(g.view_witness),
            edge_witness=dict(g.edge_witness),
            adjacency={k: list(v) for k, v in g.adjacency.items()},
            instances_scanned=g.instances_scanned,
        )
        other.ngraph.has_provenance = g.has_provenance
        other.forest = self.forest.clone() if self.forest is not None else None
        other.coloring = self.coloring.clone() if self.coloring is not None else None
        other.witness_indices = (
            list(self.witness_indices) if self.witness_indices is not None else None
        )
        other.witness_found = self.witness_found
        return other


# ----------------------------------------------------------------------
# The sweep driver: warm starts, memoization, disk persistence
# ----------------------------------------------------------------------


@dataclass
class _SweepState:
    """Last finished streaming sweep for one (LCP, parameters) family."""

    n: int
    engine: StreamingHidingEngine


#: Completed sweep verdicts per full parameter key (mirrors the
#: materialized `_SWEEP_CACHE`, kept separate because witnesses differ).
_STREAM_MEMO: dict[tuple, HidingVerdict] = {}

#: Warm-start states per parameter key *without* ``n``.
_WARM_STATES: dict[tuple, _SweepState] = {}


def clear_streaming_state() -> None:
    """Drop all in-memory streaming memos and warm states (benchmarks)."""
    _STREAM_MEMO.clear()
    _WARM_STATES.clear()


def _family_key(
    lcp: LCP,
    port_limit: int,
    id_order_types: bool,
    include_all_accepted_labelings: bool,
    labeling_limit: int,
    early_exit: bool,
) -> tuple:
    return (
        ENGINE_VERSION,
        type(lcp).__name__,
        lcp.name,
        lcp.decoder.name,
        lcp.k,
        lcp.radius,
        lcp.anonymous,
        port_limit,
        id_order_types,
        include_all_accepted_labelings,
        labeling_limit,
        early_exit,
    )


def _disk_key(family_key: tuple, n: int) -> dict:
    (
        engine_version,
        lcp_type,
        lcp_name,
        decoder_name,
        k,
        radius,
        anonymous,
        port_limit,
        id_order_types,
        include_all,
        labeling_limit,
        early_exit,
    ) = family_key
    return {
        "engine_version": engine_version,
        "lcp_type": lcp_type,
        "lcp_name": lcp_name,
        "decoder": decoder_name,
        "k": k,
        "radius": radius,
        "anonymous": anonymous,
        "n": n,
        "port_limit": port_limit,
        "id_order_types": id_order_types,
        "include_all_accepted_labelings": include_all,
        "labeling_limit": labeling_limit,
        "early_exit": early_exit,
    }


def _serialize_verdict(verdict: HidingVerdict, early_exit: bool) -> dict:
    from ..perf import persist

    g = verdict.ngraph
    return {
        "hiding": verdict.hiding,
        "k": verdict.k,
        "radius": g.radius,
        "include_ids": g.include_ids,
        "early_exit": early_exit,
        "instances_scanned": g.instances_scanned,
        "views": [persist.encode_view(view) for view in g.views],
        "edges": [list(edge) for edge in sorted(g.edges)],
        "odd_cycle": (
            None
            if verdict.odd_cycle is None
            else [g.index[view] for view in verdict.odd_cycle]
        ),
        "coloring": (
            None
            if verdict.coloring is None
            else {str(i): c for i, c in verdict.coloring.items()}
        ),
    }


def _deserialize_verdict(body: dict) -> HidingVerdict:
    from ..perf import persist

    views = [persist.decode_view(payload) for payload in body["views"]]
    ngraph = NeighborhoodGraph(
        radius=body["radius"], include_ids=body["include_ids"]
    )
    ngraph.views = views
    ngraph.index = {view: i for i, view in enumerate(views)}
    for i, j in body["edges"]:
        ngraph.edges.add((i, j))
        ngraph.adjacency.setdefault(i, []).append(j)
        if j != i:
            ngraph.adjacency.setdefault(j, []).append(i)
    ngraph.instances_scanned = body["instances_scanned"]
    # Provenance (instance witnesses per view/edge) does not survive the
    # disk round trip; consumers that trace views back to instances must
    # run a fresh sweep.
    ngraph.has_provenance = False
    odd_cycle = (
        None
        if body["odd_cycle"] is None
        else tuple(views[i] for i in body["odd_cycle"])
    )
    coloring = (
        None
        if body["coloring"] is None
        else {int(i): c for i, c in body["coloring"].items()}
    )
    return HidingVerdict(
        k=body["k"],
        hiding=body["hiding"],
        ngraph=ngraph,
        odd_cycle=odd_cycle,
        coloring=coloring,
    )


def streaming_hiding_verdict_up_to(
    lcp: LCP,
    n: int,
    port_limit: int = 64,
    id_order_types: bool = False,
    include_all_accepted_labelings: bool = True,
    labeling_limit: int = 20_000,
    workers: int | None = None,
    stats: PerfStats | None = None,
    early_exit: bool = True,
    warm_start: bool | None = None,
    disk_cache: bool | None = None,
) -> HidingVerdict:
    """Streaming counterpart of :func:`~repro.neighborhood.hiding.
    hiding_verdict_up_to` — same parameters, same verdict semantics.

    * With *early_exit* (default) the sweep stops at the first witness;
      the verdict's graph then covers only the scanned prefix, which is
      sound for the hiding direction (Lemma 3.2 accepts witnesses in any
      subgraph of ``V(D, n)``).  Pass ``early_exit=False`` to keep the
      incremental decision but still materialize all of ``V(D, n)``.
    * *warm_start* (default: ``CONFIG.warm_start``) resumes from the last
      finished sweep of the same scheme at a smaller ``n`` — anonymous
      schemes only, where the instance stream at ``n`` provably extends
      the one at ``n - 1``.
    * *disk_cache* (default: ``CONFIG.disk_cache``) persists finished
      sweeps across processes; cached graphs carry no instance
      provenance (``ngraph.has_provenance`` is False).
    """
    stats = stats or GLOBAL_STATS
    use_warm = CONFIG.warm_start if warm_start is None else warm_start
    use_disk = CONFIG.disk_cache if disk_cache is None else disk_cache
    family = _family_key(
        lcp,
        port_limit,
        id_order_types,
        include_all_accepted_labelings,
        labeling_limit,
        early_exit,
    )
    full_key = family + (n,)
    cached = _STREAM_MEMO.get(full_key)
    if cached is not None:
        stats.incr("stream_memo_hits")
        return cached

    state = _WARM_STATES.get(family) if use_warm and lcp.anonymous else None

    # A previously found witness answers every larger sweep instantly:
    # V(D, m) ⊇ V(D, n) for m ≥ n keeps the odd walk intact.
    if state is not None and state.n <= n and state.engine.witness_found:
        stats.incr("warm_witness_hits")
        verdict = state.engine.verdict(exhaustive=True)
        _STREAM_MEMO[full_key] = verdict
        if use_disk:
            _persist(family, n, verdict, early_exit, stats)
        return verdict

    if use_disk:
        from ..perf.persist import default_verdict_cache

        body = default_verdict_cache().load(_disk_key(family, n), stats=stats)
        if body is not None:
            with stats.time_stage("disk_cache_load"):
                verdict = _deserialize_verdict(body)
            _STREAM_MEMO[full_key] = verdict
            return verdict

    with stats.time_stage("streaming_sweep"):
        if state is not None and state.n <= n:
            stats.incr("warm_starts")
            engine = state.engine.clone()
            engine.stats = stats
            instances = yes_instances_between(
                lcp,
                state.n,
                n,
                port_limit=port_limit,
                id_order_types=id_order_types,
                include_all_accepted_labelings=include_all_accepted_labelings,
                labeling_limit=labeling_limit,
            )
        else:
            engine = StreamingHidingEngine(
                lcp.k,
                lcp.radius,
                not lcp.anonymous,
                early_exit=early_exit,
                stats=stats,
            )
            instances = yes_instances_up_to(
                lcp,
                n,
                port_limit=port_limit,
                id_order_types=id_order_types,
                include_all_accepted_labelings=include_all_accepted_labelings,
                labeling_limit=labeling_limit,
            )
        build_neighborhood_graph_auto(
            lcp,
            instances,
            workers=workers,
            stats=stats,
            consumer=engine,
            into=engine.ngraph,
        )

    verdict = engine.verdict(exhaustive=True)
    _STREAM_MEMO[full_key] = verdict
    if use_warm and lcp.anonymous:
        _WARM_STATES[family] = _SweepState(n=n, engine=engine)
    if use_disk:
        _persist(family, n, verdict, early_exit, stats)
    return verdict


def _persist(
    family: tuple, n: int, verdict: HidingVerdict, early_exit: bool, stats: PerfStats
) -> None:
    from ..perf.persist import default_verdict_cache

    with stats.time_stage("disk_cache_store"):
        default_verdict_cache().store(
            _disk_key(family, n), _serialize_verdict(verdict, early_exit), stats=stats
        )
