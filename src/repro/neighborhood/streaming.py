"""The streaming hiding engine: early-exit witness search over ``V(D, n)``.

Lemma 3.2 reduces hiding to "``V(D, n)`` is not ``k``-colorable for some
``n``", and the bipartiteness companion paper (arXiv:2502.13854) observes
that the ``k = 2`` witness is just an odd closed walk.  The materialized
pipeline (:func:`repro.neighborhood.hiding.hiding_verdict_up_to`) pays
for every view and edge of the full enumeration before it even starts
coloring; the engine here fuses the two phases:

1. **Incremental decision.** The builders drive the engine as a
   :class:`~repro.neighborhood.ngraph.GraphConsumer`: every new view and
   edge is fed, the moment it is discovered, into an incremental
   odd-cycle detector (union-find with parity, ``k = 2``) or an
   incremental DSATUR re-solver with conflict-driven restarts (general
   ``k``).  The scan stops — mid-instance, mid-enumeration — the moment a
   non-``k``-colorability witness exists; the witness is reported as the
   actual :class:`~repro.local.views.View` sequence, as in the paper's
   Figures 3–6.
2. **Cross-``n`` warm start.** ``V(D, n-1)`` embeds into ``V(D, n)``
   (for anonymous schemes the enumeration at ``n`` literally extends the
   one at ``n - 1``), so consecutive sweeps resume from the previous
   state: a found witness answers instantly for every larger ``n``, and a
   completed coloring is extended instead of re-derived from scratch.
3. **Persistent cross-run cache.** Completed sweeps are written to the
   on-disk store of :mod:`repro.perf.persist` (content-addressed,
   JSON-lines, versioned), so repeated experiment/CLI runs skip the
   enumeration entirely.

Parity guarantee: for every LCP, the streaming verdict's ``hiding`` flag
equals the materialized one, the witness is a genuine odd closed walk of
adjacent views, and on non-hiding sweeps the streamed graph *is* the full
``V(D, n)`` (identical views, edges, and extraction decoder).
"""

from __future__ import annotations

from ..certification.lcp import LCP
from ..graphs.incremental import IncrementalKColoring, ParityForest
from ..local.views import View
from ..perf.stats import GLOBAL_STATS, PerfStats
from .hiding import HidingVerdict
from .ngraph import GraphConsumer, NeighborhoodGraph


def __getattr__(name: str):
    # Back-compat: the canonical engine revision now lives in
    # repro.engine (imported lazily — the engine package imports this
    # module's StreamingHidingEngine).
    if name == "ENGINE_VERSION":
        from ..engine import ENGINE_VERSION  # noqa: PLC0415

        return ENGINE_VERSION
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class StreamingHidingEngine(GraphConsumer):
    """Consumes builder events and decides ``k``-colorability on the fly.

    Owns the :class:`NeighborhoodGraph` being grown (``self.ngraph``) so
    warm starts can hand the same graph back to the builder via ``into``.
    """

    def __init__(
        self,
        k: int,
        radius: int,
        include_ids: bool,
        early_exit: bool = True,
        stats: PerfStats | None = None,
    ) -> None:
        self.k = k
        self.early_exit = early_exit
        self.stats = stats or GLOBAL_STATS
        self.ngraph = NeighborhoodGraph(radius=radius, include_ids=include_ids)
        self.forest = ParityForest() if k == 2 else None
        self.coloring = IncrementalKColoring(k) if k != 2 else None
        #: Odd closed walk over view indices (k = 2 witnesses only).
        self.witness_indices: list[int] | None = None
        #: True once the accumulated subgraph is proved non-k-colorable.
        self.witness_found = False

    # ------------------------------------------------------------------
    # GraphConsumer protocol
    # ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.early_exit and self.witness_found

    def on_view(self, idx: int, view: View) -> None:
        self.stats.incr("stream_views")
        if self.forest is not None:
            self.forest.ensure(idx)
        else:
            self.coloring.add_node(idx)
            if self.coloring.failed and not self.witness_found:
                self.witness_found = True  # only reachable for k == 0

    def on_edge(self, i: int, j: int) -> None:
        self.stats.incr("stream_edges")
        if self.witness_found:
            # Keep the *first* witness (stream order) even in exhaustive
            # mode, so early-exit and full scans report the same walk.
            if self.forest is not None:
                self.forest.add_edge(i, j)
            else:
                self.coloring.add_edge(i, j)
            return
        if self.forest is not None:
            walk = self.forest.add_edge(i, j)
            if walk is not None:
                self.witness_indices = walk
                self.witness_found = True
        else:
            self.coloring.add_edge(i, j)
            if self.coloring.failed:
                self.witness_found = True

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def odd_cycle_views(self) -> tuple[View, ...] | None:
        if self.witness_indices is None:
            return None
        return tuple(self.ngraph.views[i] for i in self.witness_indices)

    def proper_coloring(self) -> dict[int, int] | None:
        """The canonical coloring, or ``None`` once a witness exists.

        For ``k != 2`` the incrementally maintained DSATUR coloring is a
        fail-fast detector, not a canonical witness (its colors depend
        on edge arrival order), so the emitted coloring is re-derived by
        the same exact procedure the materialized path uses — the
        backend-equivalence contract pins the witness bytes, not just
        the verdict.
        """
        if self.witness_found:
            return None
        if self.forest is not None:
            return self.forest.two_coloring()
        return self.ngraph.proper_coloring(self.k)

    def verdict(self, exhaustive: bool = True) -> HidingVerdict:
        if self.witness_found:
            return HidingVerdict(
                k=self.k,
                hiding=True,
                ngraph=self.ngraph,
                odd_cycle=self.odd_cycle_views(),
            )
        return HidingVerdict(
            k=self.k,
            hiding=(False if exhaustive else None),
            ngraph=self.ngraph,
            coloring=self.proper_coloring(),
        )

    def clone(self) -> "StreamingHidingEngine":
        """Deep-enough copy for warm starts: extending the clone never
        mutates the original (memoized verdicts stay immutable)."""
        other = StreamingHidingEngine(
            self.k,
            self.ngraph.radius,
            self.ngraph.include_ids,
            early_exit=self.early_exit,
            stats=self.stats,
        )
        g = self.ngraph
        other.ngraph = NeighborhoodGraph(
            radius=g.radius,
            include_ids=g.include_ids,
            views=list(g.views),
            index=dict(g.index),
            edges=set(g.edges),
            view_witness=dict(g.view_witness),
            edge_witness=dict(g.edge_witness),
            adjacency={k: list(v) for k, v in g.adjacency.items()},
            instances_scanned=g.instances_scanned,
        )
        other.ngraph.has_provenance = g.has_provenance
        other.forest = self.forest.clone() if self.forest is not None else None
        other.coloring = self.coloring.clone() if self.coloring is not None else None
        other.witness_indices = (
            list(self.witness_indices) if self.witness_indices is not None else None
        )
        other.witness_found = self.witness_found
        return other


# ----------------------------------------------------------------------
# Legacy driver surface (now thin fronts over repro.engine)
# ----------------------------------------------------------------------


def clear_streaming_state() -> None:
    """Drop the in-memory streaming memo and warm states (benchmarks).

    The materialized memo is left alone — use
    :func:`repro.engine.clear_engine_state` to drop everything.
    """
    from ..engine import clear_memory_store, clear_warm_states  # noqa: PLC0415

    clear_memory_store("streaming")
    clear_warm_states()


def streaming_hiding_verdict_up_to(
    lcp: LCP,
    n: int,
    port_limit: int = 64,
    id_order_types: bool = False,
    include_all_accepted_labelings: bool = True,
    labeling_limit: int = 20_000,
    workers: int | None = None,
    stats: PerfStats | None = None,
    early_exit: bool = True,
    warm_start: bool | None = None,
    disk_cache: bool | None = None,
) -> HidingVerdict:
    """Deprecated streaming front — build an
    :class:`~repro.engine.ExecutionPlan` with ``backend="streaming"`` and
    call :func:`repro.engine.decide_hiding` instead.  Same parameters,
    same verdict semantics:

    * With *early_exit* (default) the sweep stops at the first witness;
      the verdict's graph then covers only the scanned prefix, which is
      sound for the hiding direction (Lemma 3.2 accepts witnesses in any
      subgraph of ``V(D, n)``).  Pass ``early_exit=False`` to keep the
      incremental decision but still materialize all of ``V(D, n)``.
    * *warm_start* (default: ``CONFIG.warm_start``) resumes from the last
      finished sweep of the same scheme at a smaller ``n`` — anonymous
      schemes only, where the instance stream at ``n`` provably extends
      the one at ``n - 1``.
    * *disk_cache* (default: ``CONFIG.disk_cache``) persists finished
      sweeps across processes; cached graphs carry no instance
      provenance (``ngraph.has_provenance`` is False).
    """
    from ..engine import ExecutionPlan, RunContext, decide_hiding  # noqa: PLC0415
    from .hiding import _warn_once  # noqa: PLC0415

    _warn_once(
        "streaming_hiding_verdict_up_to",
        "streaming_hiding_verdict_up_to() is deprecated; build an "
        'ExecutionPlan(backend="streaming") and call '
        "repro.engine.decide_hiding instead",
    )
    plan = ExecutionPlan(
        backend="streaming",
        workers=workers,
        early_exit=early_exit,
        warm_start=warm_start,
        disk_cache=disk_cache,
        port_limit=port_limit,
        id_order_types=id_order_types,
        include_all_accepted_labelings=include_all_accepted_labelings,
        labeling_limit=labeling_limit,
    )
    ctx = RunContext(stats=stats) if stats is not None else None
    return decide_hiding(lcp, n, plan, ctx=ctx).legacy
