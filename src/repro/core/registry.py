"""Catalog of the paper's LCP schemes, keyed by name.

Used by the CLI, the experiment registry, and the certificate-size table
so that every surface iterates over the same scheme list.
"""

from __future__ import annotations

from collections.abc import Callable

from ..certification.lcp import LCP
from .degree_one import DegreeOneLCP
from .even_cycle import EvenCycleLCP
from .shatter import ShatterLCP
from .trivial import RevealingLCP
from .universal import UniversalLCP
from .union import UnionLCP
from .watermelon import WatermelonLCP

_FACTORIES: dict[str, Callable[[], LCP]] = {
    "revealing": RevealingLCP,
    "degree-one": DegreeOneLCP,
    "even-cycle": EvenCycleLCP,
    "union": UnionLCP,
    "shatter": ShatterLCP,
    "watermelon": WatermelonLCP,
    "universal": UniversalLCP,
}

#: Paper result each scheme reproduces, for reports.
PAPER_REFERENCES: dict[str, str] = {
    "revealing": "Section 1 (classic ⌈log k⌉-bit revealing LCP; non-hiding baseline)",
    "degree-one": "Lemma 4.1 (class H1: δ(G) = 1)",
    "even-cycle": "Lemma 4.2 (class H2: even cycles)",
    "union": "Theorem 1.1 (H1 ∪ H2)",
    "shatter": "Theorem 1.3 (graphs with a shatter point)",
    "watermelon": "Theorem 1.4 (watermelon graphs)",
    "universal": "Section 1.1 (classic O(n²) adjacency-matrix LCP; revealing baseline)",
}

#: Paper-claimed certificate size, for the certificate-size table.
PAPER_SIZE_CLAIMS: dict[str, str] = {
    "revealing": "⌈log k⌉ bits",
    "degree-one": "O(1) bits",
    "even-cycle": "O(1) bits",
    "union": "O(1) bits",
    "shatter": "O(min{Δ², n} + log n) bits",
    "watermelon": "O(log n) bits",
    "universal": "O(n²) bits",
}


def scheme_names() -> list[str]:
    """All registered scheme names, in canonical order."""
    return list(_FACTORIES)


def make_lcp(name: str) -> LCP:
    """Instantiate a scheme by registry name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown LCP scheme {name!r}; known: {', '.join(_FACTORIES)}"
        ) from None
    return factory()


def all_lcps() -> dict[str, LCP]:
    """A fresh instance of every registered scheme."""
    return {name: make_lcp(name) for name in _FACTORIES}
