"""The union LCP of Theorem 1.1 (class ``H = H1 ∪ H2``).

The prover picks the sub-scheme matching the instance (degree-one hiding
for graphs with a degree-1 node, edge-coloring for even cycles) and tags
every certificate with the chosen scheme.  The decoder additionally
requires its whole neighborhood to carry the same tag, so any connected
set of accepting nodes runs under a single sub-scheme — strong soundness
then reduces to the sub-schemes' strong soundness, and hiding is
inherited from either witness family.
"""

from __future__ import annotations

from collections.abc import Iterator

from ..certification.decoder import Decoder
from ..certification.lcp import LCP
from ..certification.prover import Prover, reject_promise
from ..graphs.graph import Graph
from ..graphs.properties import is_even_cycle
from ..local.instance import Instance
from ..local.labeling import Certificate, Labeling
from ..local.views import View
from .degree_one import DegreeOneDecoder, DegreeOneLCP, DegreeOneProver
from .even_cycle import EvenCycleDecoder, EvenCycleLCP, EvenCycleProver

TAG_DEGREE_ONE = "H1"
TAG_EVEN_CYCLE = "H2"


def _untag(view: View, tag: str) -> View | None:
    """Strip the scheme tag off every label, or ``None`` on a tag clash."""
    labels = []
    for local in view.nodes():
        label = view.label_of(local)
        if not (isinstance(label, tuple) and len(label) == 2 and label[0] == tag):
            return None
        labels.append(label[1])
    return View(
        radius=view.radius,
        dist=view.dist,
        edges=view.edges,
        ports=view.ports,
        ids=view.ids,
        id_bound=view.id_bound,
        labels=tuple(labels),
    )


class UnionDecoder(Decoder):
    """Dispatch on the scheme tag; reject mixed-tag neighborhoods."""

    def __init__(self) -> None:
        self.radius = 1
        self.anonymous = True
        self._degree_one = DegreeOneDecoder()
        self._even_cycle = EvenCycleDecoder()

    def decide(self, view: View) -> bool:
        own = view.center_label
        if not (isinstance(own, tuple) and len(own) == 2):
            return False
        tag = own[0]
        if tag == TAG_DEGREE_ONE:
            inner = _untag(view, TAG_DEGREE_ONE)
            return inner is not None and self._degree_one.decide(inner)
        if tag == TAG_EVEN_CYCLE:
            inner = _untag(view, TAG_EVEN_CYCLE)
            return inner is not None and self._even_cycle.decide(inner)
        return False

    @property
    def name(self) -> str:
        return "UnionDecoder"


class UnionProver(Prover):
    """Certify via the sub-scheme the instance belongs to."""

    def __init__(self) -> None:
        self._degree_one = DegreeOneProver()
        self._even_cycle = EvenCycleProver()

    def certify(self, instance: Instance) -> Labeling:
        return next(self.all_certifications(instance))

    def all_certifications(self, instance: Instance) -> Iterator[Labeling]:
        graph = instance.graph
        produced = False
        if graph.order >= 2 and graph.min_degree() == 1:
            for labeling in self._degree_one.all_certifications(instance):
                produced = True
                yield _tagged(labeling, TAG_DEGREE_ONE)
        elif is_even_cycle(graph):
            for labeling in self._even_cycle.all_certifications(instance):
                produced = True
                yield _tagged(labeling, TAG_EVEN_CYCLE)
        if not produced:
            raise reject_promise(instance, "graph is neither in H1 nor in H2")

    @property
    def name(self) -> str:
        return "UnionProver"


def _tagged(labeling: Labeling, tag: str) -> Labeling:
    return Labeling({v: (tag, labeling.of(v)) for v in labeling.nodes()})


class UnionLCP(LCP):
    """Theorem 1.1: strong & hiding anonymous LCP for ``H1 ∪ H2``."""

    def __init__(self) -> None:
        self.k = 2
        self.radius = 1
        self.anonymous = True
        self._prover = UnionProver()
        self._decoder = UnionDecoder()
        self._h1 = DegreeOneLCP()
        self._h2 = EvenCycleLCP()

    @property
    def prover(self) -> Prover:
        return self._prover

    @property
    def decoder(self) -> Decoder:
        return self._decoder

    def promise(self, graph: Graph) -> bool:
        return self._h1.promise(graph) or self._h2.promise(graph)

    def certificate_alphabet(self, graph: Graph) -> list[Certificate]:
        alphabet: list[Certificate] = []
        for certificate in self._h1.certificate_alphabet(graph):
            alphabet.append((TAG_DEGREE_ONE, certificate))
        for certificate in self._h2.certificate_alphabet(graph):
            alphabet.append((TAG_EVEN_CYCLE, certificate))
        return alphabet

    def certificate_bits(self, certificate: Certificate, n: int, id_bound: int) -> int:
        # 1 tag bit plus the larger sub-scheme payload (4 bits).
        return 5
