"""The watermelon LCP of Theorem 1.4 (Section 7.2).

Certificates (``O(log n)`` bits):

* type 1 — an endpoint; content ``(id1, id2)``: the endpoints' identifiers
  in increasing order;
* type 2 — an internal path node; content
  ``(id1, id2, path#, (far_port_1, color_1), (far_port_2, color_2))``:
  the endpoint identifiers, the node's path number, and for each own port
  ``i ∈ {1, 2}`` the far port and the color of that incident edge in a
  2-edge-coloring of the path.

The prover 2-edge-colors every path so that all edges incident to ``v1``
share one color and all edges incident to ``v2`` share one color (possible
in a bipartite watermelon because all path lengths have equal parity);
each path gets a unique number.

The decoder enforces the paper's conditions 1, 2(a–d), 3(a–c); port
claims are checked against the actual ports visible in the view.  Strong
soundness follows the paper's cycle analysis: at most two type-1 nodes can
exist (their actual identifiers must appear in the agreed ``(id1, id2)``
pair), pure type-2 cycles are 2-edge-colored and hence even, and
two-endpoint cycles consist of two paths of equal parity.
"""

from __future__ import annotations

from collections.abc import Iterator

from ..certification.decoder import Decoder
from ..certification.lcp import LCP
from ..certification.prover import Prover, reject_promise
from ..graphs.graph import Graph
from ..graphs.properties import is_bipartite
from ..graphs.watermelon import watermelon_decomposition
from ..local.instance import Instance
from ..local.labeling import Certificate, Labeling
from ..local.views import View

TYPE_ENDPOINT = "end"
TYPE_PATH = "path"


def endpoint_certificate(id1: int, id2: int) -> Certificate:
    """Type-1 certificate of a watermelon endpoint."""
    return (TYPE_ENDPOINT, id1, id2)


def path_certificate(
    id1: int,
    id2: int,
    number: int,
    entry1: tuple[int, int],
    entry2: tuple[int, int],
) -> Certificate:
    """Type-2 certificate of an internal path node.

    ``entry_i = (far_port, color)`` describes the edge at own port ``i``.
    """
    return (TYPE_PATH, id1, id2, number, entry1, entry2)


def _parse(label: object) -> tuple[str, tuple] | None:
    if not isinstance(label, tuple) or not label:
        return None
    kind = label[0]
    if kind == TYPE_ENDPOINT:
        if (
            len(label) == 3
            and isinstance(label[1], int)
            and isinstance(label[2], int)
            and label[1] < label[2]
        ):
            return kind, (label[1], label[2])
    elif kind == TYPE_PATH:
        if len(label) != 6:
            return None
        _kind, id1, id2, number, entry1, entry2 = label
        entries_ok = all(
            isinstance(e, tuple)
            and len(e) == 2
            and isinstance(e[0], int)
            and e[0] >= 1
            and e[1] in (0, 1)
            for e in (entry1, entry2)
        )
        if (
            isinstance(id1, int)
            and isinstance(id2, int)
            and id1 < id2
            and isinstance(number, int)
            and number >= 1
            and entries_ok
            and entry1[1] != entry2[1]
        ):
            return kind, (id1, id2, number, entry1, entry2)
    return None


class WatermelonDecoder(Decoder):
    """One-round decoder for watermelon certificates."""

    def __init__(self) -> None:
        self.radius = 1
        self.anonymous = False

    def decide(self, view: View) -> bool:
        own = _parse(view.center_label)
        if own is None:
            return False
        kind, payload = own
        incident = view.center_neighbors()
        parsed = []
        for w, own_port, far_port in incident:
            other = _parse(view.label_of(w))
            if other is None:
                return False
            parsed.append((w, own_port, far_port, *other))

        # Condition 1: everyone agrees on the endpoint identifier pair.
        id1, id2 = payload[0], payload[1]
        for _w, _op, _fp, _okind, other_payload in parsed:
            if other_payload[0] != id1 or other_payload[1] != id2:
                return False

        if kind == TYPE_ENDPOINT:
            if view.center_id not in (id1, id2):
                return False  # 2(a)
            seen_numbers = set()
            colors_toward_me = set()
            for _w, own_port, far_port, other_kind, other_payload in parsed:
                if other_kind != TYPE_PATH:
                    return False  # 2(b): all neighbors are path nodes
                _i1, _i2, number, entry1, entry2 = other_payload
                if far_port not in (1, 2):
                    return False
                claimed_far, color = (entry1, entry2)[far_port - 1]
                if claimed_far != own_port:
                    return False  # 2(b): reciprocal port claim
                if number in seen_numbers:
                    return False  # 2(c): one touch per path
                seen_numbers.add(number)
                colors_toward_me.add(color)
            if len(colors_toward_me) > 1:
                return False  # 2(d): monochromatic incident edges
            return True

        # kind == TYPE_PATH
        _i1, _i2, number, entry1, entry2 = payload
        if len(incident) != 2:
            return False  # 3(a)
        if sorted(own_port for _w, own_port, _fp in incident) != [1, 2]:
            return False
        for w, own_port, far_port, other_kind, other_payload in parsed:
            claimed_far, color = (entry1, entry2)[own_port - 1]
            if claimed_far != far_port:
                return False  # the port claim must match reality
            if other_kind == TYPE_ENDPOINT:
                if view.id_of(w) not in (id1, id2):
                    return False  # 3(b): endpoint really carries one of the ids
            else:
                _j1, _j2, other_number, other_entry1, other_entry2 = other_payload
                if other_number != number:
                    return False  # 3(c): same path
                if far_port not in (1, 2):
                    return False
                back_far, back_color = (other_entry1, other_entry2)[far_port - 1]
                if back_far != own_port or back_color != color:
                    return False  # 3(c): reciprocal entry agrees
        return True

    @property
    def name(self) -> str:
        return "WatermelonDecoder"


class WatermelonProver(Prover):
    """Certify a bipartite watermelon per the completeness proof.

    ``all_certifications`` enumerates the two global edge-coloring flips
    (start color 0 or 1 at ``v1``); path numbering follows the canonical
    decomposition order.
    """

    def certify(self, instance: Instance) -> Labeling:
        return next(self.all_certifications(instance))

    def all_certifications(self, instance: Instance) -> Iterator[Labeling]:
        graph = instance.graph
        decomp = watermelon_decomposition(graph)
        if decomp is None:
            raise reject_promise(instance, "graph is not a watermelon")
        if not is_bipartite(graph):
            raise reject_promise(instance, "watermelon is not bipartite (odd/even path mix)")
        for flip in (0, 1):
            yield self._build(instance, decomp, flip)

    def _build(self, instance: Instance, decomp, flip: int) -> Labeling:
        graph = instance.graph
        ids = instance.ids
        v1, v2 = decomp.endpoints
        id1, id2 = sorted((ids.id_of(v1), ids.id_of(v2)))
        edge_color: dict[frozenset, int] = {}
        for path in decomp.paths:
            for index in range(len(path) - 1):
                a, b = path[index], path[index + 1]
                edge_color[frozenset((a, b))] = (index + flip) % 2
        labels: dict = {}
        labels[v1] = endpoint_certificate(id1, id2)
        labels[v2] = endpoint_certificate(id1, id2)
        for path_number, path in enumerate(decomp.paths, start=1):
            for node in path[1:-1]:
                entries: list[tuple[int, int] | None] = [None, None]
                for u in graph.neighbors(node):
                    own_port = instance.ports.port(node, u)
                    far_port = instance.ports.port(u, node)
                    entries[own_port - 1] = (far_port, edge_color[frozenset((node, u))])
                assert entries[0] is not None and entries[1] is not None
                labels[node] = path_certificate(
                    id1, id2, path_number, entries[0], entries[1]
                )
        return Labeling(labels)

    @property
    def name(self) -> str:
        return "WatermelonProver"


class WatermelonLCP(LCP):
    """Theorem 1.4: strong & hiding one-round LCP for watermelon graphs."""

    def __init__(self) -> None:
        self.k = 2
        self.radius = 1
        self.anonymous = False
        self._prover = WatermelonProver()
        self._decoder = WatermelonDecoder()

    @property
    def prover(self) -> Prover:
        return self._prover

    @property
    def decoder(self) -> Decoder:
        return self._decoder

    def promise(self, graph: Graph) -> bool:
        """The class H of Theorem 1.4: watermelon graphs."""
        return watermelon_decomposition(graph) is not None

    def certificate_bits(self, certificate: Certificate, n: int, id_bound: int) -> int:
        parsed = _parse(certificate)
        if parsed is None:
            raise ValueError(f"malformed watermelon certificate: {certificate!r}")
        kind, payload = parsed
        id_bits = max(1, id_bound.bit_length())
        type_bits = 1
        if kind == TYPE_ENDPOINT:
            return type_bits + 2 * id_bits
        number_bits = max(1, n.bit_length())
        port_bits = max(1, n.bit_length())  # far ports can address an endpoint's degree
        return type_bits + 2 * id_bits + number_bits + 2 * (port_bits + 1)
