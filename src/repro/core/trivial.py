"""The classic color-revealing LCP for ``k``-coloring (paper Section 1).

Implemented for every ``k >= 2`` — the paper focuses on ``k = 2``, but
Lemma 3.2 is stated for general ``k`` and the k = 3 instantiation is
exercised in the tests (the neighborhood graph is 3-colorable and the
compiled extraction decoder recovers a proper 3-coloring).

Certificates are colors: the prover hands every node its color in a
proper ``k``-coloring and each node checks its neighbors' colors differ
from its own.  The scheme is anonymous, one-round, strongly sound (the
accepting nodes are properly colored by their own certificates), uses
``⌈log k⌉`` bits — and is maximally *non-hiding*: the identity decoder
extracts the coloring, and its accepting neighborhood graph is
``k``-colorable (machine-checked in the Lemma 3.2 experiment).
"""

from __future__ import annotations

from collections.abc import Iterator
from itertools import permutations

from ..errors import PromiseViolationError
from ..graphs.graph import Graph
from ..graphs.properties import bipartition
from ..local.instance import Instance
from ..local.labeling import Certificate, Labeling
from ..local.views import View
from ..certification.decoder import Decoder
from ..certification.lcp import LCP
from ..certification.prover import Prover


class RevealingDecoder(Decoder):
    """Accept iff the center's color is valid and differs from every
    neighbor's color."""

    def __init__(self, k: int = 2) -> None:
        self.k = k
        self.radius = 1
        self.anonymous = True

    def decide(self, view: View) -> bool:
        own = view.center_label
        if not isinstance(own, int) or not 0 <= own < self.k:
            return False
        for w in view.neighbors_in_view(0):
            other = view.label_of(w)
            if not isinstance(other, int) or not 0 <= other < self.k:
                return False
            if other == own:
                return False
        return True

    @property
    def name(self) -> str:
        return f"RevealingDecoder(k={self.k})"


class RevealingProver(Prover):
    """Hand out a proper coloring (both 2-colorings for ``k = 2``)."""

    def __init__(self, k: int = 2) -> None:
        self.k = k

    def certify(self, instance: Instance) -> Labeling:
        return next(self.all_certifications(instance))

    def all_certifications(self, instance: Instance) -> Iterator[Labeling]:
        if self.k == 2:
            split = bipartition(instance.graph)
            if not split.is_bipartite:
                raise PromiseViolationError("graph is not 2-colorable")
            coloring = split.coloring
            assert coloring is not None
            yield Labeling(dict(coloring))
            yield Labeling({v: 1 - c for v, c in coloring.items()})
            return
        from ..graphs.coloring import k_coloring  # noqa: PLC0415

        coloring = k_coloring(instance.graph, self.k)
        if coloring is None:
            raise PromiseViolationError(f"graph is not {self.k}-colorable")
        # The canonical coloring under every color permutation — the full
        # prover freedom the neighborhood-graph enumeration needs.
        for perm in permutations(range(self.k)):
            yield Labeling({v: perm[c] for v, c in coloring.items()})


class RevealingLCP(LCP):
    """The non-hiding baseline every experiment compares against."""

    def __init__(self, k: int = 2) -> None:
        self.k = k
        self.radius = 1
        self.anonymous = True
        self._prover = RevealingProver(k)
        self._decoder = RevealingDecoder(k)

    @property
    def prover(self) -> Prover:
        return self._prover

    @property
    def decoder(self) -> Decoder:
        return self._decoder

    @property
    def name(self) -> str:
        return f"RevealingLCP(k={self.k})"

    def certificate_alphabet(self, graph: Graph) -> list[Certificate]:
        return list(range(self.k))

    def certificate_bits(self, certificate: Certificate, n: int, id_bound: int) -> int:
        return max(1, (self.k - 1).bit_length())
