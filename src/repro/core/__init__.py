"""The paper's LCP schemes: the revealing baseline, the two anonymous
constant-size schemes of Theorem 1.1, their union, and the non-anonymous
schemes of Theorems 1.3 and 1.4."""

from .degree_one import ALPHABET as DEGREE_ONE_ALPHABET
from .degree_one import BOT, TOP, DegreeOneDecoder, DegreeOneLCP, DegreeOneProver
from .even_cycle import EvenCycleDecoder, EvenCycleLCP, EvenCycleProver
from .registry import (
    PAPER_REFERENCES,
    PAPER_SIZE_CLAIMS,
    all_lcps,
    make_lcp,
    scheme_names,
)
from .shatter import (
    ShatterDecoder,
    ShatterLCP,
    ShatterProver,
    component_certificate,
    neighbor_certificate,
    shatter_certificate,
)
from .trivial import RevealingDecoder, RevealingLCP, RevealingProver
from .universal import UniversalDecoder, UniversalLCP, UniversalProver, graph_map_of
from .union import TAG_DEGREE_ONE, TAG_EVEN_CYCLE, UnionDecoder, UnionLCP, UnionProver
from .watermelon import (
    WatermelonDecoder,
    WatermelonLCP,
    WatermelonProver,
    endpoint_certificate,
    path_certificate,
)

__all__ = [
    "BOT",
    "DEGREE_ONE_ALPHABET",
    "DegreeOneDecoder",
    "DegreeOneLCP",
    "DegreeOneProver",
    "EvenCycleDecoder",
    "EvenCycleLCP",
    "EvenCycleProver",
    "PAPER_REFERENCES",
    "PAPER_SIZE_CLAIMS",
    "RevealingDecoder",
    "RevealingLCP",
    "RevealingProver",
    "ShatterDecoder",
    "ShatterLCP",
    "ShatterProver",
    "TAG_DEGREE_ONE",
    "TAG_EVEN_CYCLE",
    "TOP",
    "UnionDecoder",
    "UniversalDecoder",
    "UniversalLCP",
    "UniversalProver",
    "UnionLCP",
    "UnionProver",
    "WatermelonDecoder",
    "WatermelonLCP",
    "WatermelonProver",
    "all_lcps",
    "component_certificate",
    "endpoint_certificate",
    "graph_map_of",
    "make_lcp",
    "neighbor_certificate",
    "path_certificate",
    "scheme_names",
    "shatter_certificate",
]
