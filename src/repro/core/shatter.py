"""The shatter-point LCP of Theorem 1.3 (Section 7.1).

Certificates (``O(min{Δ², n} + log n)`` bits), following the paper:

* type 0 — the shatter point ``v``; content: its claimed identifier;
* type 1 — a neighbor of ``v``; content: the claimed identifier of ``v``
  plus a *colors vector* recording, for each component of ``G - N[v]``,
  the color of the side that ``N(v)`` touches;
* type 2 — a node of a component ``C_i``; content: the claimed identifier
  of ``v``, the component number ``i``, and the node's color in a
  2-coloring of ``G[C_i]``.

Reproduction note (documented in EXPERIMENTS.md): the decoder exactly as
written in the brief announcement admits strong-soundness
counterexamples.  Two local checks repair it, and both are arguably what
the authors intended:

1. **Anchored type-0 identifier** — a type-1 node requires its unique
   type-0 neighbor's claimed identifier to equal that neighbor's *actual*
   identifier (the paper's ``id^u = id^w`` read as ``Id(w)``).  Without
   this, a far-away "rogue" type-1 node can be vouched for by a rejecting
   type-0 pendant and stitch two components together at odd parity.
2. **Common touch color** — the colors of a type-1 node's type-2
   neighbors must all agree (the color the paper calls ``c^u`` in the
   strong-soundness proof; the proof asserts this uniqueness but the
   listed conditions do not enforce it).  Without it, a 5-cycle through
   two type-1 nodes with a shared rejecting type-0 pendant is accepted.

Both weakenings are available as constructor flags so the test suite can
exhibit the counterexamples.
"""

from __future__ import annotations

from collections.abc import Iterator
from itertools import product

from ..certification.decoder import Decoder
from ..certification.lcp import LCP
from ..certification.prover import Prover, reject_promise
from ..graphs.graph import Graph, Node
from ..graphs.properties import bipartition
from ..graphs.shatter import ShatterDecomposition, shatter_decomposition, shatter_points
from ..local.instance import Instance
from ..local.labeling import Certificate, Labeling
from ..local.views import View

TYPE_SHATTER = "shatter"
TYPE_NEIGHBOR = "nbr"
TYPE_COMPONENT = "comp"


def shatter_certificate(claimed_id: int) -> Certificate:
    """Type-0 certificate of the shatter point."""
    return (TYPE_SHATTER, claimed_id)


def neighbor_certificate(claimed_id: int, colors: tuple[int, ...]) -> Certificate:
    """Type-1 certificate of a shatter-point neighbor."""
    return (TYPE_NEIGHBOR, claimed_id, tuple(colors))


def component_certificate(claimed_id: int, number: int, color: int) -> Certificate:
    """Type-2 certificate of a component node."""
    return (TYPE_COMPONENT, claimed_id, number, color)


def _parse(label: object) -> tuple[str, tuple] | None:
    """Split a certificate into (type, payload); ``None`` if malformed."""
    if not isinstance(label, tuple) or not label:
        return None
    kind = label[0]
    if kind == TYPE_SHATTER:
        if len(label) == 2 and isinstance(label[1], int):
            return kind, (label[1],)
    elif kind == TYPE_NEIGHBOR:
        if (
            len(label) == 3
            and isinstance(label[1], int)
            and isinstance(label[2], tuple)
            and len(label[2]) >= 1
            and all(c in (0, 1) for c in label[2])
        ):
            return kind, (label[1], label[2])
    elif kind == TYPE_COMPONENT:
        if (
            len(label) == 4
            and isinstance(label[1], int)
            and isinstance(label[2], int)
            and label[2] >= 1
            and label[3] in (0, 1)
        ):
            return kind, (label[1], label[2], label[3])
    return None


class ShatterDecoder(Decoder):
    """One-round decoder for the shatter-point certificates."""

    def __init__(self, anchored_type0_id: bool = True, common_touch_color: bool = True) -> None:
        self.radius = 1
        self.anonymous = False
        self.anchored_type0_id = anchored_type0_id
        self.common_touch_color = common_touch_color

    def decide(self, view: View) -> bool:
        own = _parse(view.center_label)
        if own is None:
            return False
        kind, payload = own
        neighbors = view.neighbors_in_view(0)
        parsed = []
        for w in neighbors:
            other = _parse(view.label_of(w))
            if other is None:
                return False
            parsed.append((w, *other))

        if kind == TYPE_SHATTER:
            (claimed,) = payload
            if claimed != view.center_id:
                return False
            contents = set()
            for _w, other_kind, other_payload in parsed:
                if other_kind != TYPE_NEIGHBOR:
                    return False
                other_claimed, other_colors = other_payload
                if other_claimed != view.center_id:
                    return False
                contents.add((other_claimed, other_colors))
            return len(contents) <= 1

        if kind == TYPE_NEIGHBOR:
            claimed, colors = payload
            type0 = [
                (w, p) for w, other_kind, p in parsed if other_kind == TYPE_SHATTER
            ]
            if any(other_kind == TYPE_NEIGHBOR for _w, other_kind, _p in parsed):
                return False  # 2(a): no type-1 neighbors
            if len(type0) != 1:
                return False  # 2(b): unique type-0 neighbor
            w0, (w0_claimed,) = type0[0]
            if w0_claimed != claimed:
                return False
            if self.anchored_type0_id and view.id_of(w0) != claimed:
                return False  # repair 1: the anchor really carries that id
            touch_colors = set()
            for _w, other_kind, other_payload in parsed:
                if other_kind != TYPE_COMPONENT:
                    continue
                other_claimed, number, color = other_payload
                if other_claimed != claimed:
                    return False
                if number > len(colors):
                    return False
                if colors[number - 1] != color:
                    return False  # 2(c)
                touch_colors.add(color)
            if self.common_touch_color and len(touch_colors) > 1:
                return False  # repair 2: one common touch color c^u
            return True

        # kind == TYPE_COMPONENT
        claimed, number, color = payload
        for _w, other_kind, other_payload in parsed:
            if other_kind == TYPE_SHATTER:
                return False  # 3(a)
            if other_kind == TYPE_NEIGHBOR:
                other_claimed, other_colors = other_payload
                if other_claimed != claimed:
                    return False
                if number > len(other_colors) or other_colors[number - 1] != color:
                    return False  # 3(b)
            else:
                other_claimed, other_number, other_color = other_payload
                if other_claimed != claimed:
                    return False
                if other_number != number or other_color == color:
                    return False  # 3(c)
        return True

    @property
    def name(self) -> str:
        flags = []
        if not self.anchored_type0_id:
            flags.append("no-anchor")
        if not self.common_touch_color:
            flags.append("no-common-color")
        suffix = f"[{','.join(flags)}]" if flags else ""
        return f"ShatterDecoder{suffix}"


class ShatterProver(Prover):
    """Certify around a shatter point per the paper's completeness proof.

    Per-component colorings are oriented so that the side touched by
    ``N(v)`` carries a chosen color; orientations must give every type-1
    node a single touch color, so components touched by a common neighbor
    are oriented together.  ``all_certifications`` enumerates shatter
    points and all consistent orientation blocks (the freedom the hiding
    construction of Section 7.1 exploits).
    """

    def __init__(self, max_orientation_blocks: int = 6) -> None:
        self.max_orientation_blocks = max_orientation_blocks

    def certify(self, instance: Instance) -> Labeling:
        return next(self.all_certifications(instance))

    def all_certifications(self, instance: Instance) -> Iterator[Labeling]:
        graph = instance.graph
        split = bipartition(graph)
        if not split.is_bipartite:
            raise reject_promise(instance, "graph is not 2-colorable")
        points = shatter_points(graph)
        if not points:
            raise reject_promise(instance, "graph admits no shatter point")
        for point in points:
            yield from self._certifications_at(instance, point)

    def _certifications_at(self, instance: Instance, point: Node) -> Iterator[Labeling]:
        graph = instance.graph
        decomp = shatter_decomposition(graph, point)
        component_colorings = []
        for comp in decomp.components:
            comp_split = bipartition(graph.induced_subgraph(comp))
            assert comp_split.coloring is not None
            component_colorings.append(comp_split.coloring)

        # For each component, the color (under the fixed base coloring) of
        # the side touched by N(v).
        touched_base_color: list[int | None] = []
        for index, comp in enumerate(decomp.components):
            touched = {
                component_colorings[index][w]
                for u in decomp.neighbors
                for w in graph.neighbors(u)
                if w in comp
            }
            if len(touched) > 1:
                # Lemma 7.1 condition 3 fails; cannot certify at this point.
                return
            touched_base_color.append(touched.pop() if touched else None)

        blocks = self._orientation_blocks(graph, decomp)
        if len(blocks) > self.max_orientation_blocks:
            blocks = blocks[: self.max_orientation_blocks]
            tails = [b for b in blocks]  # enumerate only the prefix blocks
        else:
            tails = blocks
        for choice in product((0, 1), repeat=len(tails)):
            # touch_color[i]: the certificate color of component i's side
            # touched by N(v).
            touch_color = [0] * len(decomp.components)
            for block, bit in zip(tails, choice):
                for comp_index in block:
                    touch_color[comp_index] = bit
            yield self._build_labeling(
                instance, decomp, component_colorings, touched_base_color, touch_color
            )

    def _orientation_blocks(
        self, graph: Graph, decomp: ShatterDecomposition
    ) -> list[list[int]]:
        """Group component indices that must share a touch color.

        Components touched by a common type-1 node are merged (union-find)
        so every enumerated orientation satisfies the common-touch-color
        check.
        """
        parent = list(range(len(decomp.components)))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a: int, b: int) -> None:
            parent[find(a)] = find(b)

        comp_of: dict[Node, int] = {}
        for index, comp in enumerate(decomp.components):
            for w in comp:
                comp_of[w] = index
        for u in decomp.neighbors:
            touched = {comp_of[w] for w in graph.neighbors(u) if w in comp_of}
            touched = sorted(touched)
            for other in touched[1:]:
                union(touched[0], other)
        blocks: dict[int, list[int]] = {}
        for index in range(len(decomp.components)):
            blocks.setdefault(find(index), []).append(index)
        return [blocks[root] for root in sorted(blocks)]

    def _build_labeling(
        self,
        instance: Instance,
        decomp: ShatterDecomposition,
        component_colorings: list[dict[Node, int]],
        touched_base_color: list[int | None],
        touch_color: list[int],
    ) -> Labeling:
        graph = instance.graph
        point_id = instance.ids.id_of(decomp.point)
        colors_vector = tuple(touch_color)
        labels: dict[Node, Certificate] = {}
        labels[decomp.point] = shatter_certificate(point_id)
        for u in decomp.neighbors:
            labels[u] = neighbor_certificate(point_id, colors_vector)
        for index, comp in enumerate(decomp.components):
            base = component_colorings[index]
            touched = touched_base_color[index]
            # Flip the base coloring so the touched side gets touch_color.
            flip = 0 if touched is None else (touched ^ touch_color[index])
            for w in comp:
                labels[w] = component_certificate(
                    point_id, index + 1, base[w] ^ flip
                )
        for v in graph.nodes:
            if v not in labels:
                raise reject_promise(instance, f"node {v!r} unreachable from shatter structure")
        return Labeling(labels)

    @property
    def name(self) -> str:
        return "ShatterProver"


class ShatterLCP(LCP):
    """Theorem 1.3: strong & hiding one-round LCP for shatter-point graphs.

    Certificates use ``O(min{Δ², n} + log n)`` bits; the scheme is
    non-anonymous (certificates embed the shatter point's identifier).
    """

    def __init__(self, anchored_type0_id: bool = True, common_touch_color: bool = True) -> None:
        self.k = 2
        self.radius = 1
        self.anonymous = False
        self._prover = ShatterProver()
        self._decoder = ShatterDecoder(
            anchored_type0_id=anchored_type0_id,
            common_touch_color=common_touch_color,
        )

    @property
    def prover(self) -> Prover:
        return self._prover

    @property
    def decoder(self) -> Decoder:
        return self._decoder

    def promise(self, graph: Graph) -> bool:
        """The class H of Theorem 1.3: graphs admitting a shatter point."""
        return bool(shatter_points(graph))

    def certificate_bits(self, certificate: Certificate, n: int, id_bound: int) -> int:
        id_bits = max(1, id_bound.bit_length())
        parsed = _parse(certificate)
        if parsed is None:
            raise ValueError(f"malformed shatter certificate: {certificate!r}")
        kind, payload = parsed
        type_bits = 2
        if kind == TYPE_SHATTER:
            return type_bits + id_bits
        if kind == TYPE_NEIGHBOR:
            return type_bits + id_bits + len(payload[1])
        comp_bits = max(1, n.bit_length())
        return type_bits + id_bits + comp_bits + 1
