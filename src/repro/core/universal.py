"""The universal LCP (paper Section 1.1).

"Every Turing-computable graph property P admits an LCP with certificates
of size O(n²): simply provide the entire adjacency matrix of the input
graph to every vertex, along with their corresponding node identifiers."

Every node receives the *global map* — the claimed graph as a set of
identifier pairs — and checks (1) all neighbors claim the same map,
(2) the map is connected and contains its own identifier, (3) its own
row of the map matches its actual neighborhood (visible at radius 1),
and (4) the map satisfies the property.  On connected inputs this is
complete and sound: if every node accepts, a BFS over the shared map
shows it is isomorphic to the real graph, so the property really holds.

The scheme is the paper's contrast case twice over: certificates are
Θ(n²) bits (vs O(1)–O(log n) for the specialized schemes), and for
``P = bipartiteness`` it is maximally revealing — the map hands every
node a full coloring.  It is *not* strongly sound in general (an
accepting subset certifies the map's property, not the subset's), which
is exactly why the paper needs bespoke constructions.
"""

from __future__ import annotations

from collections.abc import Callable

from ..certification.decoder import Decoder
from ..certification.lcp import LCP
from ..certification.prover import Prover, reject_promise
from ..graphs.graph import Graph
from ..graphs.properties import is_bipartite
from ..graphs.traversal import is_connected
from ..local.instance import Instance
from ..local.labeling import Certificate, Labeling
from ..local.views import View

GraphMap = tuple[tuple[int, ...], tuple[tuple[int, int], ...]]
"""A claimed graph: (sorted identifiers, sorted identifier-pair edges)."""


def graph_map_of(instance: Instance) -> GraphMap:
    """Encode an instance's graph as an identifier map."""
    ids = instance.ids
    nodes = tuple(sorted(ids.id_of(v) for v in instance.graph.nodes))
    edges = tuple(
        sorted(
            (min(ids.id_of(u), ids.id_of(v)), max(ids.id_of(u), ids.id_of(v)))
            for u, v in instance.graph.edges
        )
    )
    return (nodes, edges)


def _map_ok(candidate: object) -> bool:
    if not (isinstance(candidate, tuple) and len(candidate) == 2):
        return False
    nodes, edges = candidate
    if not (isinstance(nodes, tuple) and isinstance(edges, tuple)):
        return False
    if not all(isinstance(i, int) and i >= 1 for i in nodes):
        return False
    if len(set(nodes)) != len(nodes):
        return False
    node_set = set(nodes)
    for e in edges:
        if not (isinstance(e, tuple) and len(e) == 2):
            return False
        a, b = e
        if a not in node_set or b not in node_set or a >= b:
            return False
    return len(set(edges)) == len(edges)


def _map_to_graph(candidate: GraphMap) -> Graph:
    nodes, edges = candidate
    return Graph(nodes=nodes, edges=edges)


class UniversalDecoder(Decoder):
    """Check the shared map against the local truth and the property."""

    def __init__(self, property_fn: Callable[[Graph], bool], property_name: str) -> None:
        self.radius = 1
        self.anonymous = False
        self._property_fn = property_fn
        self._property_name = property_name

    def decide(self, view: View) -> bool:
        candidate = view.center_label
        if not _map_ok(candidate):
            return False
        nodes, edges = candidate
        own = view.center_id
        if own not in nodes:
            return False
        # (1) every neighbor carries the identical map.
        for w in view.neighbors_in_view(0):
            if view.label_of(w) != candidate:
                return False
        # (3) the map's row for this node matches the actual neighborhood.
        claimed_neighbors = {b if a == own else a for a, b in edges if own in (a, b)}
        actual_neighbors = {view.id_of(w) for w in view.neighbors_in_view(0)}
        if claimed_neighbors != actual_neighbors:
            return False
        # (2) the map is connected (phantom components could smuggle in
        # nodes whose rows nobody checks).
        claimed_graph = _map_to_graph(candidate)
        if not is_connected(claimed_graph):
            return False
        # (4) the property itself.
        return bool(self._property_fn(claimed_graph))

    @property
    def name(self) -> str:
        return f"UniversalDecoder({self._property_name})"


class UniversalProver(Prover):
    """Hand the true map to every node."""

    def __init__(self, property_fn: Callable[[Graph], bool], property_name: str) -> None:
        self._property_fn = property_fn
        self._property_name = property_name

    def certify(self, instance: Instance) -> Labeling:
        if not is_connected(instance.graph):
            raise reject_promise(instance, "universal scheme requires a connected graph")
        if not self._property_fn(instance.graph):
            raise reject_promise(instance, f"graph lacks property {self._property_name}")
        return Labeling.uniform(instance.graph, graph_map_of(instance))

    @property
    def name(self) -> str:
        return f"UniversalProver({self._property_name})"


class UniversalLCP(LCP):
    """The O(n²)-bit LCP for any decidable property (here: bipartiteness
    by default, matching the paper's 2-col focus)."""

    def __init__(
        self,
        property_fn: Callable[[Graph], bool] = is_bipartite,
        property_name: str = "bipartite",
        k: int = 2,
    ) -> None:
        self.k = k
        self.radius = 1
        self.anonymous = False
        self._prover = UniversalProver(property_fn, property_name)
        self._decoder = UniversalDecoder(property_fn, property_name)
        self._property_name = property_name

    @property
    def prover(self) -> Prover:
        return self._prover

    @property
    def decoder(self) -> Decoder:
        return self._decoder

    @property
    def name(self) -> str:
        return f"UniversalLCP({self._property_name})"

    def promise(self, graph: Graph) -> bool:
        """Connected graphs (the classical statement's setting)."""
        return is_connected(graph)

    def certificate_bits(self, certificate: Certificate, n: int, id_bound: int) -> int:
        if not _map_ok(certificate):
            raise ValueError(f"malformed universal certificate: {certificate!r}")
        nodes, edges = certificate
        id_bits = max(1, id_bound.bit_length())
        return len(nodes) * id_bits + len(edges) * 2 * id_bits
