"""The even-cycle LCP of Lemma 4.2 (class ``H2``: even cycles).

The prover reveals a proper **2-edge-coloring** of the cycle instead of a
node coloring.  On a cycle, 2-colorability and 2-edge-colorability
coincide, and the nodes can verify the edge coloring locally — but no node
learns its own color, so the scheme hides the 2-coloring *everywhere*
(unlike the degree-one scheme, which hides it at a single node).

Certificate encoding.  The paper writes a certificate as two entries of
(port-pair, color); we use the equivalent positional form: entry ``j``
(for the node's own port ``j ∈ {1, 2}``) is a pair
``(far_port, color)`` claiming that the edge leaving through own port
``j`` arrives at the neighbor's port ``far_port`` and is colored
``color``.  The decoder checks the claims against the actual ports in the
view and against the neighbor's own certificate for the shared edge.

Strong soundness is automatic for *all* graphs: accepting nodes have
degree exactly 2 and a locally consistent proper 2-edge-coloring, so any
cycle they induce is 2-edge-colorable and hence even.
"""

from __future__ import annotations

from collections.abc import Iterator

from ..certification.decoder import Decoder
from ..certification.lcp import LCP
from ..certification.prover import Prover, reject_promise
from ..graphs.graph import Graph
from ..graphs.properties import is_even_cycle
from ..local.instance import Instance
from ..local.labeling import Certificate, Labeling
from ..local.views import View

EdgeEntry = tuple[int, int]
EdgeCertificate = tuple[EdgeEntry, EdgeEntry]


def _entry_ok(entry: object) -> bool:
    return (
        isinstance(entry, tuple)
        and len(entry) == 2
        and entry[0] in (1, 2)
        and entry[1] in (0, 1)
    )


def _certificate_ok(certificate: object) -> bool:
    return (
        isinstance(certificate, tuple)
        and len(certificate) == 2
        and all(_entry_ok(e) for e in certificate)
    )


class EvenCycleDecoder(Decoder):
    """Verify a claimed 2-edge-coloring on a degree-2 node."""

    def __init__(self) -> None:
        self.radius = 1
        self.anonymous = True

    def decide(self, view: View) -> bool:
        own = view.center_label
        if not _certificate_ok(own):
            return False
        entries: EdgeCertificate = own  # type: ignore[assignment]
        if entries[0][1] == entries[1][1]:
            return False  # the two incident edges must have distinct colors
        incident = view.center_neighbors()
        if len(incident) != 2:
            return False
        if [own_port for _w, own_port, _far in incident] != [1, 2]:
            return False
        for w, own_port, far_port in incident:
            claimed_far, claimed_color = entries[own_port - 1]
            if claimed_far != far_port:
                return False
            other = view.label_of(w)
            if not _certificate_ok(other):
                return False
            other_entries: EdgeCertificate = other  # type: ignore[assignment]
            # The neighbor's entry for the shared edge (at its own port
            # ``far_port``) must point back at us with the same color.
            back_far, back_color = other_entries[far_port - 1]
            if back_far != own_port or back_color != claimed_color:
                return False
        return True

    @property
    def name(self) -> str:
        return "EvenCycleDecoder"


class EvenCycleProver(Prover):
    """Reveal a proper 2-edge-coloring of an even cycle.

    ``all_certifications`` yields both edge colorings (the alternation
    can start with either color).
    """

    def certify(self, instance: Instance) -> Labeling:
        return next(self.all_certifications(instance))

    def all_certifications(self, instance: Instance) -> Iterator[Labeling]:
        graph = instance.graph
        if not is_even_cycle(graph):
            raise reject_promise(instance, "graph is not an even cycle (outside class H2)")
        order = _cycle_order(graph)
        for flip in (0, 1):
            edge_color: dict[frozenset, int] = {}
            for i, v in enumerate(order):
                w = order[(i + 1) % len(order)]
                edge_color[frozenset((v, w))] = (i + flip) % 2
            labels: dict = {}
            for v in graph.nodes:
                entries: list[EdgeEntry] = [None, None]  # type: ignore[list-item]
                for u in graph.neighbors(v):
                    own_port = instance.ports.port(v, u)
                    far_port = instance.ports.port(u, v)
                    entries[own_port - 1] = (far_port, edge_color[frozenset((v, u))])
                labels[v] = tuple(entries)
            yield Labeling(labels)

    @property
    def name(self) -> str:
        return "EvenCycleProver"


def _cycle_order(graph: Graph) -> list:
    """Nodes of a cycle graph in a deterministic traversal order."""
    start = sorted(graph.nodes, key=repr)[0]
    order = [start]
    prev = None
    current = start
    while True:
        nxt = sorted((w for w in graph.neighbors(current) if w != prev), key=repr)[0]
        if nxt == start:
            return order
        order.append(nxt)
        prev, current = current, nxt


class EvenCycleLCP(LCP):
    """Anonymous, one-round, constant-size strong & hiding LCP for H2."""

    def __init__(self) -> None:
        self.k = 2
        self.radius = 1
        self.anonymous = True
        self._prover = EvenCycleProver()
        self._decoder = EvenCycleDecoder()

    @property
    def prover(self) -> Prover:
        return self._prover

    @property
    def decoder(self) -> Decoder:
        return self._decoder

    def promise(self, graph: Graph) -> bool:
        """Class H2: even cycles."""
        return is_even_cycle(graph)

    def certificate_alphabet(self, graph: Graph) -> list[Certificate]:
        """All 16 well-formed certificates (plus nothing else: malformed
        certificates are rejected on sight, so they cannot help an
        adversary)."""
        entries = [(far, color) for far in (1, 2) for color in (0, 1)]
        return [(e1, e2) for e1 in entries for e2 in entries]

    def certificate_bits(self, certificate: Certificate, n: int, id_bound: int) -> int:
        return 4  # two entries of (far port: 1 bit, color: 1 bit)
