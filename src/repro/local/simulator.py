"""Synchronous message-passing simulation of the LOCAL model.

The paper treats an ``r``-round local algorithm as "the result of the
nodes broadcasting to their neighbors everything they know for ``r``
rounds" (Section 2.2).  This module implements that literally: nodes flood
their knowledge bases for ``r`` synchronous rounds and then reconstruct
their radius-``r`` view from the records they hold.

The point of the simulator is validation and accounting:

* :func:`simulate_views` is proven (in the test suite, over many graphs
  and radii) to reconstruct **exactly** ``extract_view``'s output — in
  particular, edges between two distance-``r`` nodes are invisible in both,
  because a fully resolved edge record needs one exchange to be created
  and ``dist`` more rounds to travel.
* :class:`RunStats` measures message and record volume, giving the
  message-complexity "table" of the benchmark suite.

Fault injection (certificate erasure, per the resilient-labeling-scheme
discussion in Section 1.2) is supported through ``erased_nodes``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ViewError
from ..graphs.graph import Node
from .instance import Instance
from .messages import EdgeRecord, Message, NodeRecord, RoundStats, RunStats
from .views import View, _assemble_view


ERASED = ("__erased__",)
"""Sentinel certificate carried by nodes whose label was erased by a fault."""


@dataclass
class _NodeState:
    """Per-node simulator state: everything the node currently knows."""

    record: NodeRecord
    node_records: set[NodeRecord]
    edge_records: set[EdgeRecord]


class SyncSimulator:
    """Synchronous LOCAL executor for one instance.

    Parameters
    ----------
    instance:
        The network to run on (labeling optional).
    include_ids:
        Whether model-level identifiers are visible (anonymous runs hide
        them from the reconstructed views, as required for anonymous
        decoders).
    erased_nodes:
        Nodes whose certificate is replaced by :data:`ERASED` before the
        run — a crash-erasure fault model.
    """

    def __init__(
        self,
        instance: Instance,
        include_ids: bool = True,
        erased_nodes: set[Node] | None = None,
    ) -> None:
        self.instance = instance
        self.include_ids = include_ids
        self.erased = set(erased_nodes or ())
        self.stats = RunStats()
        self._states: dict[Node, _NodeState] = {}
        for v in instance.graph.nodes:
            label = None
            if instance.labeling is not None:
                label = ERASED if v in self.erased else instance.labeling.of(v)
            record = NodeRecord(
                uid=v,
                ident=instance.ids.id_of(v) if include_ids else None,
                label=label,
            )
            self._states[v] = _NodeState(
                record=record, node_records={record}, edge_records=set()
            )

    def run(self, rounds: int) -> None:
        """Execute *rounds* synchronous flooding rounds."""
        graph = self.instance.graph
        ports = self.instance.ports
        for round_index in range(1, rounds + 1):
            stats = RoundStats(round_index=round_index)
            inboxes: dict[Node, list[tuple[int, Message]]] = {v: [] for v in graph.nodes}
            for v in graph.nodes:
                state = self._states[v]
                for u in graph.neighbors(v):
                    message = Message(
                        sender_record=state.record,
                        sender_port=ports.port(v, u),
                        node_records=frozenset(state.node_records),
                        edge_records=frozenset(state.edge_records),
                    )
                    inboxes[u].append((ports.port(u, v), message))
                    stats.messages += 1
                    stats.record_units += message.size_units()
            for v, arrivals in inboxes.items():
                state = self._states[v]
                for arrival_port, message in arrivals:
                    state.node_records.add(message.sender_record)
                    state.node_records |= message.node_records
                    state.edge_records |= message.edge_records
                    state.edge_records.add(
                        EdgeRecord.canonical(
                            message.sender_record.uid,
                            message.sender_port,
                            state.record.uid,
                            arrival_port,
                        )
                    )
            self.stats.rounds.append(stats)

    def reconstruct_view(self, v: Node, radius: int) -> View:
        """Assemble the radius-*radius* view of *v* from its knowledge.

        Requires ``run(radius)`` (or more rounds) to have happened; the
        reconstruction keeps only nodes within *radius* hops and edges with
        an endpoint strictly inside the ball, mirroring ``G_v^r``.
        """
        state = self._states[v]
        known_nodes = {rec.uid: rec for rec in state.node_records}
        adjacency: dict[Node, list[tuple[Node, int, int]]] = {u: [] for u in known_nodes}
        for rec in state.edge_records:
            if rec.uid_a in adjacency and rec.uid_b in adjacency:
                adjacency[rec.uid_a].append((rec.uid_b, rec.port_a, rec.port_b))
                adjacency[rec.uid_b].append((rec.uid_a, rec.port_b, rec.port_a))

        # BFS over the knowledge graph from v.
        dist = {v: 0}
        frontier = [v]
        while frontier:
            nxt = []
            for x in frontier:
                for y, _px, _py in adjacency[x]:
                    if y not in dist:
                        dist[y] = dist[x] + 1
                        nxt.append(y)
            frontier = nxt
        keep = {x: d for x, d in dist.items() if d <= radius}
        port_lookup: dict[tuple[Node, Node], int] = {}
        edges = set()
        for x in keep:
            for y, px, py in adjacency[x]:
                if y in keep and min(keep[x], keep[y]) < radius:
                    a, b = (x, y) if repr(x) <= repr(y) else (y, x)
                    edges.add((a, b))
                    port_lookup[(x, y)] = px
                    port_lookup[(y, x)] = py

        def port_of(a: Node, b: Node) -> int:
            try:
                return port_lookup[(a, b)]
            except KeyError:
                raise ViewError(f"simulator knowledge lacks port ({a!r}, {b!r})") from None

        ident_of = None
        if self.include_ids:
            def ident_of(x: Node) -> int:  # noqa: F811 - deliberate rebind
                ident = known_nodes[x].ident
                if ident is None:
                    raise ViewError(f"node record for {x!r} carries no identifier")
                return ident

        return _assemble_view(
            radius=radius,
            center=v,
            dist=keep,
            edges=edges,
            port_of=port_of,
            id_of=ident_of,
            id_bound=self.instance.id_bound if self.include_ids else None,
            label_of=lambda x: known_nodes[x].label,
        )


def simulate_views(
    instance: Instance,
    radius: int,
    include_ids: bool = True,
    erased_nodes: set[Node] | None = None,
) -> tuple[dict[Node, View], RunStats]:
    """Run the flooding protocol and reconstruct every node's view."""
    simulator = SyncSimulator(instance, include_ids=include_ids, erased_nodes=erased_nodes)
    simulator.run(radius)
    views = {
        v: simulator.reconstruct_view(v, radius) for v in instance.graph.nodes
    }
    return views, simulator.stats


def run_algorithm_distributed(algorithm, instance: Instance) -> tuple[dict[Node, object], RunStats]:
    """Execute a local algorithm through the message-passing engine.

    Semantically equal to ``algorithm.run_on(instance)`` — the test suite
    enforces this equivalence — but the views are obtained by actual
    flooding, and message statistics are returned.
    """
    views, stats = simulate_views(
        instance, algorithm.radius, include_ids=not algorithm.anonymous
    )
    return {v: algorithm.run(view) for v, view in views.items()}, stats
