"""Labelings — the certificate assignments of the LCP model (Section 2.2).

A labeling maps each node to a certificate.  Certificates in this library
are structured Python values (tuples, small enums) rather than raw
bitstrings; each LCP supplies a codec measuring how many bits its
certificates would occupy, which is what the certificate-size experiments
report.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator
from itertools import product

from ..errors import LabelingError
from ..graphs.graph import Graph, Node

Certificate = Hashable


class Labeling:
    """An immutable assignment of certificates to nodes."""

    __slots__ = ("_labels",)

    def __init__(self, labels: dict[Node, Certificate]) -> None:
        self._labels = dict(labels)

    def of(self, v: Node) -> Certificate:
        """The certificate of node *v*."""
        try:
            return self._labels[v]
        except KeyError:
            raise LabelingError(f"node {v!r} has no label") from None

    def get(self, v: Node, default: Certificate = None) -> Certificate:
        return self._labels.get(v, default)

    def as_dict(self) -> dict[Node, Certificate]:
        return dict(self._labels)

    def nodes(self) -> list[Node]:
        return list(self._labels)

    def validate(self, graph: Graph) -> None:
        """Every node of *graph* must carry a label."""
        missing = set(graph.nodes) - set(self._labels)
        if missing:
            raise LabelingError(f"nodes without labels: {sorted(map(repr, missing))}")

    def with_label(self, v: Node, certificate: Certificate) -> "Labeling":
        """A copy with the label of *v* replaced."""
        labels = dict(self._labels)
        labels[v] = certificate
        return Labeling(labels)

    def relabeled(self, mapping: dict[Node, Node]) -> "Labeling":
        """Transport the labeling through a node renaming."""
        return Labeling({mapping[v]: c for v, c in self._labels.items()})

    @classmethod
    def uniform(cls, graph: Graph, certificate: Certificate) -> "Labeling":
        """The same certificate on every node."""
        return cls({v: certificate for v in graph.nodes})

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Labeling):
            return NotImplemented
        return self._labels == other._labels

    def __repr__(self) -> str:
        return f"Labeling(nodes={len(self._labels)})"


def labeling_key(labeling: Labeling, node_order: tuple[Node, ...] | None = None) -> tuple:
    """A hashable identity key for a labeling: sorted (node, certificate)
    pairs, ordered by node ``repr`` so arbitrary hashable node types get a
    deterministic key.  Two labelings of the same node set get equal keys
    iff they assign the same certificates — the dedup key of the
    enumeration sweeps (Lemma 3.1) and the search prover.

    Callers deduplicating many labelings of one fixed node set can pass a
    precomputed *node_order* (any fixed ordering of exactly the labeled
    nodes); the key is then just the certificate tuple in that order,
    skipping the per-call sort."""
    if node_order is not None:
        return tuple(labeling.of(v) for v in node_order)
    return tuple(sorted(labeling.as_dict().items(), key=lambda kv: repr(kv[0])))


def node_sort_order(graph: Graph) -> tuple[Node, ...]:
    """The deterministic node ordering used by :func:`labeling_key`."""
    return tuple(sorted(graph.nodes, key=repr))


def all_labelings(graph: Graph, alphabet: list[Certificate]) -> Iterator[Labeling]:
    """Every labeling of *graph* over a finite *alphabet*.

    This is the exhaustive adversary for constant-size certificates: the
    strong-soundness checks of Theorem 1.1 quantify over all of these.
    The count is ``|alphabet| ** n``.
    """
    nodes = graph.nodes
    for combo in product(alphabet, repeat=len(nodes)):
        yield Labeling(dict(zip(nodes, combo)))


def count_labelings(graph: Graph, alphabet_size: int) -> int:
    """``alphabet_size ** n`` — the size of the exhaustive adversary space."""
    return alphabet_size**graph.order
