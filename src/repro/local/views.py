"""Radius-``r`` views (paper Section 2.2, Fig. 2).

A view ``view_r(G, prt, Id, I)(v)`` is the structure a node can see after
``r`` communication rounds: the view graph ``G_v^r`` (nodes within distance
``r``, edges lying on paths of length at most ``r`` from ``v``), together
with the restricted port, identifier, and label assignments.

Views must be *values*: hashable, comparable across instances, and
isomorphism-canonical, because the accepting neighborhood graph
``V(D, n)`` (Section 3) has views as its nodes.  Canonicalization renames
view nodes to ``0..k-1`` by **minimal port signatures**: every node is
named by the lexicographically smallest sequence of ``(out_port, in_port)``
pairs along a shortest path from the center.  Ports at a node are distinct,
so a signature determines a unique walk and hence a unique node; the
induced order is invariant under port-preserving rooted isomorphism.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Hashable

from ..errors import ViewError
from ..graphs.graph import Graph, Node
from ..graphs.traversal import view_subgraph_nodes_and_edges
from .instance import Instance

Signature = tuple[tuple[int, int], ...]


@dataclass(frozen=True, eq=False)
class View:
    """A canonicalized radius-``r`` view; the center is local node ``0``.

    Fields (all tuples, indexed by local node where applicable):

    * ``radius`` — the view radius ``r``.
    * ``dist`` — distance from the center (``dist[0] == 0``).
    * ``edges`` — the view-graph edges as sorted local pairs.
    * ``ports`` — for each edge in ``edges``, the pair
      ``(port_at_smaller_endpoint, port_at_larger_endpoint)``.
    * ``ids`` — identifiers, or ``None`` for an anonymous view.
    * ``id_bound`` — the known bound ``N`` (``None`` when anonymous).
    * ``labels`` — certificates (``None`` per node when unlabeled).
    """

    radius: int
    dist: tuple[int, ...]
    edges: tuple[tuple[int, int], ...]
    ports: tuple[tuple[int, int], ...]
    ids: tuple[int, ...] | None
    id_bound: int | None
    labels: tuple[Hashable, ...]

    # Views are the dict keys of the neighborhood graph and the decision
    # memo; each object gets hashed several times per sweep, so the hash
    # is computed once and cached (eq=False above hands __eq__/__hash__
    # to these definitions).

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, View):
            return NotImplemented
        return (
            self.labels == other.labels
            and self.dist == other.dist
            and self.edges == other.edges
            and self.ports == other.ports
            and self.ids == other.ids
            and self.radius == other.radius
            and self.id_bound == other.id_bound
        )

    def __hash__(self) -> int:
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash(
                (
                    self.radius,
                    self.dist,
                    self.edges,
                    self.ports,
                    self.ids,
                    self.id_bound,
                    self.labels,
                )
            )
            object.__setattr__(self, "_hash", cached)
        return cached

    def __getstate__(self) -> dict:
        # Never ship the cached hash across process boundaries: string
        # hashes are per-process (PYTHONHASHSEED), so a worker's cache
        # would be wrong in the parent.
        state = dict(self.__dict__)
        state.pop("_hash", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of nodes in the view."""
        return len(self.dist)

    @property
    def center(self) -> int:
        """The center's local name (always 0)."""
        return 0

    def nodes(self) -> range:
        return range(self.size)

    def label_of(self, local: int) -> Hashable:
        return self.labels[local]

    @property
    def center_label(self) -> Hashable:
        return self.labels[0]

    def id_of(self, local: int) -> int:
        if self.ids is None:
            raise ViewError("view is anonymous; identifiers are hidden")
        return self.ids[local]

    @property
    def center_id(self) -> int:
        return self.id_of(0)

    @property
    def is_anonymous(self) -> bool:
        return self.ids is None

    def has_edge(self, a: int, b: int) -> bool:
        key = (a, b) if a <= b else (b, a)
        return key in set(self.edges)

    def neighbors_in_view(self, local: int) -> list[int]:
        """Neighbors of *local* among the view edges."""
        out = []
        for a, b in self.edges:
            if a == local:
                out.append(b)
            elif b == local:
                out.append(a)
        return sorted(out)

    def degree_in_view(self, local: int) -> int:
        """Degree of *local* within the view.

        This equals the true degree in ``G`` exactly when
        ``dist[local] < radius`` (the node's full neighborhood is inside
        the view graph); for boundary nodes it is only a lower bound.
        """
        return len(self.neighbors_in_view(local))

    @property
    def center_degree(self) -> int:
        """Exact degree of the center (exact for any radius >= 1)."""
        return self.degree_in_view(0)

    def port(self, a: int, b: int) -> int:
        """Port of local node *a* on the view edge ``{a, b}``."""
        key = (a, b) if a <= b else (b, a)
        for edge, (p_lo, p_hi) in zip(self.edges, self.ports):
            if edge == key:
                return p_lo if a <= b else p_hi
        raise ViewError(f"no edge between local nodes {a} and {b}")

    def center_neighbors(self) -> list[tuple[int, int, int]]:
        """Center's incident edges as ``(neighbor, own_port, far_port)``,
        sorted by own port — the canonical one-round payload."""
        out = []
        for w in self.neighbors_in_view(0):
            out.append((w, self.port(0, w), self.port(w, 0)))
        out.sort(key=lambda t: t[1])
        return out

    def neighbor_via_port(self, port: int) -> int:
        """Local node reached from the center through *port*."""
        for w, own, _far in self.center_neighbors():
            if own == port:
                return w
        raise ViewError(f"center has no port {port}")

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    def anonymized(self) -> "View":
        """The same view with identifiers removed."""
        return replace(self, ids=None, id_bound=None)

    def order_normalized(self) -> "View":
        """Identifiers replaced by their local ranks ``1..k``.

        Two views have equal order-normalized forms iff an order-invariant
        decoder must treat them identically (Section 6).
        """
        if self.ids is None:
            raise ViewError("anonymous views have no identifier order")
        ranking = {i: rank for rank, i in enumerate(sorted(self.ids), start=1)}
        return replace(
            self,
            ids=tuple(ranking[i] for i in self.ids),
            id_bound=len(self.ids),
        )

    def unlabeled(self) -> "View":
        """The same view with all certificates removed."""
        return replace(self, labels=tuple(None for _ in self.labels))

    def with_relabeled_ids(self, mapping: dict[int, int]) -> "View":
        """Replace identifiers through an injective *mapping* (old -> new).

        Used by the identifier-replacement step of Lemma 5.2.
        """
        if self.ids is None:
            raise ViewError("anonymous views carry no identifiers")
        new_ids = tuple(mapping.get(i, i) for i in self.ids)
        if len(set(new_ids)) != len(new_ids):
            raise ViewError("identifier relabeling collides inside the view")
        bound = max(self.id_bound or 0, max(new_ids))
        return replace(self, ids=new_ids, id_bound=bound)

    def structure_key(self) -> tuple:
        """Everything except identifiers — the "S" part of Lemma 6.2.

        Two views with equal structure keys differ only in identifier
        values, which is exactly the split the Ramsey argument needs.
        """
        return (self.radius, self.dist, self.edges, self.ports, self.labels)

    def subview_radius1(self, local: int) -> "View":
        """The radius-1 view of *local* inside this view.

        Faithful to the true ``view_1`` in the underlying graph whenever
        ``dist[local] < radius`` (the compatibility definition of
        Section 5.1 only queries such nodes).
        """
        if self.dist[local] >= self.radius:
            raise ViewError(
                f"radius-1 subview of boundary node {local} would be truncated"
            )
        graph = Graph(nodes=self.nodes())
        for a, b in self.edges:
            graph.add_edge(a, b)
        keep = {local} | set(self.neighbors_in_view(local))
        dist = {x: (0 if x == local else 1) for x in keep}
        edges = {
            (a, b)
            for a, b in self.edges
            if a in keep and b in keep and (a == local or b == local)
        }
        return _assemble_view(
            radius=1,
            center=local,
            dist=dist,
            edges=edges,
            port_of=lambda a, b: self.port(a, b),
            id_of=(None if self.ids is None else (lambda x: self.ids[x])),
            id_bound=self.id_bound,
            label_of=lambda x: self.labels[x],
        )

    def to_graph(self) -> Graph:
        """The view graph as a plain :class:`Graph` on local nodes."""
        g = Graph(nodes=self.nodes())
        for a, b in self.edges:
            g.add_edge(a, b)
        return g

    def __repr__(self) -> str:
        anon = "anon" if self.is_anonymous else f"id={self.ids[0]}"
        return (
            f"View(r={self.radius}, size={self.size}, {anon}, "
            f"label={self.labels[0]!r})"
        )


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------


def extract_view(
    instance: Instance,
    v: Node,
    radius: int,
    include_ids: bool = True,
) -> View:
    """The canonical radius-``radius`` view of node *v* in *instance*.

    With ``include_ids=False`` the result is an anonymous view (used for
    anonymous LCPs, where the decoder may not depend on identifiers).
    """
    if radius < 1:
        raise ViewError("views require radius >= 1")
    graph = instance.graph
    dist, edges = view_subgraph_nodes_and_edges(graph, v, radius)
    labeling = instance.labeling
    return _assemble_view(
        radius=radius,
        center=v,
        dist=dist,
        edges=edges,
        port_of=instance.ports.port,
        id_of=(instance.ids.id_of if include_ids else None),
        id_bound=(instance.id_bound if include_ids else None),
        label_of=(labeling.of if labeling is not None else (lambda _x: None)),
    )


def extract_all_views(
    instance: Instance, radius: int, include_ids: bool = True
) -> dict[Node, View]:
    """Views of every node, keyed by graph node."""
    return {
        v: extract_view(instance, v, radius, include_ids=include_ids)
        for v in instance.graph.nodes
    }


def _assemble_view(
    radius: int,
    center,
    dist: dict,
    edges: set[tuple],
    port_of,
    id_of,
    id_bound,
    label_of,
) -> View:
    """Canonicalize a raw (nodes, edges, ports, ids, labels) view."""
    adjacency: dict = {x: [] for x in dist}
    for a, b in edges:
        adjacency[a].append(b)
        adjacency[b].append(a)

    signature: dict = {center: ()}
    # Layered propagation: nodes at distance d get the minimum over
    # signatures of distance-(d-1) neighbors extended by the edge's ports.
    # All candidates for a node have equal length, so lexicographic
    # comparison is well-founded.
    max_dist = max(dist.values(), default=0)
    layers: dict[int, list] = {}
    for x, d in dist.items():
        layers.setdefault(d, []).append(x)
    for d in range(1, max_dist + 1):
        for x in layers.get(d, []):
            candidates: list[Signature] = []
            for y in adjacency[x]:
                if dist[y] == d - 1 and y in signature:
                    candidates.append(signature[y] + ((port_of(y, x), port_of(x, y)),))
            if not candidates:
                raise ViewError(
                    f"view node {x!r} at distance {d} has no predecessor; "
                    "the view graph is not layer-connected"
                )
            signature[x] = min(candidates)

    ordered = sorted(dist, key=lambda x: signature[x])
    local = {x: i for i, x in enumerate(ordered)}
    if local[center] != 0:
        raise ViewError("canonicalization failed to place the center first")

    local_edges = sorted(
        (min(local[a], local[b]), max(local[a], local[b])) for a, b in edges
    )
    inverse = {i: x for x, i in local.items()}
    local_ports = tuple(
        (port_of(inverse[a], inverse[b]), port_of(inverse[b], inverse[a]))
        for a, b in local_edges
    )
    return View(
        radius=radius,
        dist=tuple(dist[inverse[i]] for i in range(len(ordered))),
        edges=tuple(local_edges),
        ports=local_ports,
        ids=(None if id_of is None else tuple(id_of(inverse[i]) for i in range(len(ordered)))),
        id_bound=id_bound,
        labels=tuple(label_of(inverse[i]) for i in range(len(ordered))),
    )


def extract_view_layouts(
    instance: Instance, radius: int, include_ids: bool = True
) -> dict:
    """Views as relabelable templates: ``{node: (template, label_order)}``.

    Canonicalization depends on graph structure, ports, and identifiers —
    never on labels — so a view under a *different labeling* is the same
    template with its ``labels`` tuple swapped.  ``label_order`` lists the
    graph node whose label belongs at each local index.  This turns
    exhaustive-adversary loops (millions of labelings on one instance)
    from full re-extractions into tuple rebuilds; see
    :func:`relabel_view`.
    """
    from .labeling import Labeling  # noqa: PLC0415

    marker = Labeling({v: ("__layout__", v) for v in instance.graph.nodes})
    marked = instance.with_labeling(marker)
    layouts = {}
    for v in instance.graph.nodes:
        view = extract_view(marked, v, radius, include_ids=include_ids)
        order = tuple(label[1] for label in view.labels)
        template = View(
            radius=view.radius,
            dist=view.dist,
            edges=view.edges,
            ports=view.ports,
            ids=view.ids,
            id_bound=view.id_bound,
            labels=(None,) * len(view.labels),
        )
        layouts[v] = (template, order)
    return layouts


def layout_label_columns(label_order, node_index: dict) -> tuple[int, ...]:
    """Column indices a layout template reads from a ``(batch, nodes)``
    label-digit matrix — the array-native face of ``label_order``.

    The batch kernel (:mod:`repro.kernel.batch`) materializes candidate
    labelings as integer digit matrices with one column per graph node
    (in ``node_index`` order); a template's acceptance then depends on
    the digits at exactly these columns, in template-position order.
    Keeping this translation beside :func:`extract_view_layouts` pins
    the two representations together: ``relabel_view`` and the kernel's
    table gather read the same positions by construction.
    """
    return tuple(node_index[u] for u in label_order)


def relabel_view(template: View, label_order, labeling) -> View:
    """Instantiate a layout template under a concrete labeling.

    Clones the template by copying its ``__dict__`` and swapping the
    label tuple, skipping the frozen-dataclass ``__init__`` (seven
    ``object.__setattr__`` calls) — this runs millions of times inside
    the exhaustive-adversary and neighborhood-graph sweeps.  The cached
    hash never carries over: the labels differ.
    """
    view = View.__new__(View)
    state = view.__dict__
    state.update(template.__dict__)
    state.pop("_hash", None)
    state["labels"] = tuple(map(labeling.of, label_order))
    return view


def describe_view(view: View) -> str:
    """Multi-line human-readable rendering of a view (used by the CLI).

    Lists the center, then every view node with its distance, identifier,
    and label, then the edges with both port numbers.
    """
    lines = [
        f"radius-{view.radius} view, {view.size} node(s), "
        f"{'anonymous' if view.is_anonymous else f'N = {view.id_bound}'}"
    ]
    for local in view.nodes():
        ident = "-" if view.ids is None else str(view.ids[local])
        marker = "center" if local == 0 else f"dist {view.dist[local]}"
        lines.append(
            f"  node {local}: {marker:>6s}  id={ident:>3s}  "
            f"label={view.labels[local]!r}"
        )
    for (a, b), (pa, pb) in zip(view.edges, view.ports):
        lines.append(f"  edge {a} -[{pa}:{pb}]- {b}")
    return "\n".join(lines)
