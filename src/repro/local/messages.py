"""Message types and accounting for the synchronous LOCAL simulator.

The simulator's knowledge base is built from two record kinds: node
records (what a node knows about itself) and edge records (a fully
resolved edge, including both port numbers).  Records are engine-level —
they carry an engine uid so knowledge can be assembled, but decoders never
see uids: the reconstructed *view* is the only thing handed to them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable


@dataclass(frozen=True)
class NodeRecord:
    """What a node initially knows about itself.

    ``uid`` is an engine-internal name used purely for assembling
    knowledge (it plays the role of "which physical node"), while ``ident``
    is the model-level identifier (``None`` in anonymous executions).
    Degrees are deliberately absent: a radius-``r`` view does not reveal
    boundary degrees, and including them would make the simulator
    strictly stronger than the model.
    """

    uid: Hashable
    ident: int | None
    label: Hashable


@dataclass(frozen=True)
class EdgeRecord:
    """A fully resolved edge with both endpoint ports.

    Stored in canonical orientation (smaller uid repr first) so the same
    edge learned from both sides deduplicates.
    """

    uid_a: Hashable
    port_a: int
    uid_b: Hashable
    port_b: int

    @staticmethod
    def canonical(uid_a: Hashable, port_a: int, uid_b: Hashable, port_b: int) -> "EdgeRecord":
        if repr(uid_a) <= repr(uid_b):
            return EdgeRecord(uid_a, port_a, uid_b, port_b)
        return EdgeRecord(uid_b, port_b, uid_a, port_a)


@dataclass(frozen=True)
class Message:
    """One message sent through a port in one round.

    *sender_port* is the port the sender used; the receiver independently
    knows its own arrival port.  The payload is the sender's current
    knowledge (sets of records) plus the sender's own node record so the
    receiver can resolve the connecting edge.
    """

    sender_record: NodeRecord
    sender_port: int
    node_records: frozenset[NodeRecord]
    edge_records: frozenset[EdgeRecord]

    def size_units(self) -> int:
        """Crude message size: number of records carried (+1 for header)."""
        return 1 + len(self.node_records) + len(self.edge_records)


@dataclass
class RoundStats:
    """Accounting for a single synchronous round."""

    round_index: int
    messages: int = 0
    record_units: int = 0


@dataclass
class RunStats:
    """Accounting for a whole simulation run."""

    rounds: list[RoundStats] = field(default_factory=list)

    @property
    def total_messages(self) -> int:
        return sum(r.messages for r in self.rounds)

    @property
    def total_record_units(self) -> int:
        return sum(r.record_units for r in self.rounds)
