"""Asynchronous message-passing execution with an α-synchronizer.

The LOCAL model is synchronous, but real networks are not; the classic
bridge is a *synchronizer* (Awerbuch 1985): nodes tag messages with round
numbers and only advance to round ``t + 1`` after receiving every
neighbor's round-``t`` message.  This module implements an event-driven
engine with adversarially scheduled per-message delays and the
α-synchronizer on top, and the test suite proves the end result is
*exactly* the synchronous execution: the reconstructed views equal
``extract_view``'s output for every delay schedule.

This gives the library a genuinely distributed substrate — the paper's
decoders run unchanged over an asynchronous network — and quantifies the
synchronizer's cost (events processed, virtual time span).
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field

from ..errors import ReproError
from ..graphs.graph import Node
from .instance import Instance
from .messages import EdgeRecord, NodeRecord
from .simulator import ERASED
from .views import View, _assemble_view


class AsyncSimulationError(ReproError):
    """The asynchronous engine reached an inconsistent state."""


@dataclass(order=True)
class _Event:
    """A message delivery at a virtual time (the scheduler's clock)."""

    time: float
    sequence: int
    target: Node = field(compare=False)
    arrival_port: int = field(compare=False)
    sender_port: int = field(compare=False)
    round_index: int = field(compare=False)
    sender_record: NodeRecord = field(compare=False)
    node_records: frozenset = field(compare=False)
    edge_records: frozenset = field(compare=False)


@dataclass
class AsyncStats:
    """Accounting for one asynchronous run."""

    events_processed: int = 0
    messages_sent: int = 0
    virtual_time_span: float = 0.0
    max_round_skew: int = 0


class DelaySchedule:
    """Per-message delays.

    ``uniform`` draws i.i.d. delays from ``[low, high)``; ``fifo`` keeps
    per-link FIFO order by making delays monotone per (sender, receiver)
    pair — the α-synchronizer is correct either way, which the tests
    exercise.
    """

    def __init__(self, seed: int, low: float = 0.1, high: float = 10.0, fifo: bool = False):
        self._rng = random.Random(seed)
        self.low = low
        self.high = high
        self.fifo = fifo
        self._last: dict[tuple[Node, Node], float] = {}

    def delay(self, sender: Node, receiver: Node, now: float) -> float:
        raw = self._rng.uniform(self.low, self.high)
        arrival = now + raw
        if self.fifo:
            floor = self._last.get((sender, receiver), 0.0)
            arrival = max(arrival, floor + 1e-9)
            self._last[(sender, receiver)] = arrival
        return arrival


@dataclass
class _AsyncNodeState:
    record: NodeRecord
    node_records: set
    edge_records: set
    round_index: int = 0  # rounds completed
    #: round -> set of ports heard from
    heard: dict[int, set[int]] = field(default_factory=dict)
    #: round -> buffered knowledge from that round's messages
    buffered_nodes: dict[int, set] = field(default_factory=dict)
    buffered_edges: dict[int, set] = field(default_factory=dict)


class AsyncSimulator:
    """Event-driven asynchronous executor with an α-synchronizer.

    Nodes flood their knowledge exactly as in
    :class:`~repro.local.simulator.SyncSimulator`, but messages arrive
    with arbitrary (scheduler-chosen) delays.  A node buffers round-``t``
    messages until it has one from *every* port, then merges them and
    emits its round-``t + 1`` messages.  After ``rounds`` completed
    rounds everywhere, knowledge is identical to the synchronous run's.
    """

    def __init__(self, instance: Instance, schedule: DelaySchedule, include_ids: bool = True,
                 erased_nodes: set[Node] | None = None) -> None:
        self.instance = instance
        self.schedule = schedule
        self.include_ids = include_ids
        self.erased = set(erased_nodes or ())
        self.stats = AsyncStats()
        self._sequence = 0
        self._states: dict[Node, _AsyncNodeState] = {}
        for v in instance.graph.nodes:
            label = None
            if instance.labeling is not None:
                label = ERASED if v in self.erased else instance.labeling.of(v)
            record = NodeRecord(
                uid=v,
                ident=instance.ids.id_of(v) if include_ids else None,
                label=label,
            )
            self._states[v] = _AsyncNodeState(
                record=record, node_records={record}, edge_records=set()
            )

    # ------------------------------------------------------------------

    def run(self, rounds: int) -> None:
        """Execute until every node has completed *rounds* rounds."""
        graph = self.instance.graph
        if rounds < 1 or graph.order == 0:
            return
        queue: list[_Event] = []
        now = 0.0
        for v in graph.nodes:
            self._emit_round(v, 1, now, queue)
        while queue:
            event = heapq.heappop(queue)
            self.stats.events_processed += 1
            now = event.time
            self._deliver(event, rounds, queue)
        self.stats.virtual_time_span = now
        incomplete = [
            v for v, s in self._states.items()
            if s.round_index < rounds and graph.degree(v) > 0
        ]
        if incomplete:
            raise AsyncSimulationError(
                f"nodes never completed round {rounds}: {sorted(map(repr, incomplete))}"
            )

    def _emit_round(self, v: Node, round_index: int, now: float, queue: list) -> None:
        """Send v's round-``round_index`` messages to all neighbors."""
        graph = self.instance.graph
        ports = self.instance.ports
        state = self._states[v]
        for u in graph.neighbors(v):
            self._sequence += 1
            self.stats.messages_sent += 1
            heapq.heappush(
                queue,
                _Event(
                    time=self.schedule.delay(v, u, now),
                    sequence=self._sequence,
                    target=u,
                    arrival_port=ports.port(u, v),
                    sender_port=ports.port(v, u),
                    round_index=round_index,
                    sender_record=state.record,
                    node_records=frozenset(state.node_records),
                    edge_records=frozenset(state.edge_records),
                ),
            )

    def _deliver(self, event: _Event, rounds: int, queue: list) -> None:
        state = self._states[event.target]
        r = event.round_index
        state.heard.setdefault(r, set())
        if event.arrival_port in state.heard[r]:
            raise AsyncSimulationError(
                f"duplicate round-{r} message on port {event.arrival_port} "
                f"at {event.target!r}"
            )
        state.heard[r].add(event.arrival_port)
        state.buffered_nodes.setdefault(r, set())
        state.buffered_edges.setdefault(r, set())
        state.buffered_nodes[r].add(event.sender_record)
        state.buffered_nodes[r] |= event.node_records
        state.buffered_edges[r] |= event.edge_records
        state.buffered_edges[r].add(
            EdgeRecord.canonical(
                event.sender_record.uid,
                event.sender_port,
                state.record.uid,
                event.arrival_port,
            )
        )
        skew = r - (state.round_index + 1)
        self.stats.max_round_skew = max(self.stats.max_round_skew, abs(skew))
        self._try_advance(event.target, rounds, queue, event.time)

    def _try_advance(self, v: Node, rounds: int, queue: list, now: float) -> None:
        """α-synchronizer: advance while the next round is fully heard."""
        graph = self.instance.graph
        degree = graph.degree(v)
        state = self._states[v]
        while True:
            next_round = state.round_index + 1
            if next_round > rounds:
                return
            if len(state.heard.get(next_round, ())) < degree:
                return
            state.node_records |= state.buffered_nodes.pop(next_round, set())
            state.edge_records |= state.buffered_edges.pop(next_round, set())
            state.round_index = next_round
            if next_round < rounds:
                self._emit_round(v, next_round + 1, now, queue)

    # ------------------------------------------------------------------

    def reconstruct_view(self, v: Node, radius: int) -> View:
        """Assemble the radius-*radius* view from async knowledge.

        Identical logic to the synchronous engine's reconstruction; the
        equivalence theorem (test suite) is that the knowledge sets match
        after the synchronizer has run ``radius`` rounds.
        """
        state = self._states[v]
        known_nodes = {rec.uid: rec for rec in state.node_records}
        adjacency: dict[Node, list[tuple[Node, int, int]]] = {u: [] for u in known_nodes}
        for rec in state.edge_records:
            if rec.uid_a in adjacency and rec.uid_b in adjacency:
                adjacency[rec.uid_a].append((rec.uid_b, rec.port_a, rec.port_b))
                adjacency[rec.uid_b].append((rec.uid_a, rec.port_b, rec.port_a))
        dist = {v: 0}
        frontier = [v]
        while frontier:
            nxt = []
            for x in frontier:
                for y, _px, _py in adjacency[x]:
                    if y not in dist:
                        dist[y] = dist[x] + 1
                        nxt.append(y)
            frontier = nxt
        keep = {x: d for x, d in dist.items() if d <= radius}
        port_lookup: dict[tuple[Node, Node], int] = {}
        edges = set()
        for x in keep:
            for y, px, py in adjacency[x]:
                if y in keep and min(keep[x], keep[y]) < radius:
                    a, b = (x, y) if repr(x) <= repr(y) else (y, x)
                    edges.add((a, b))
                    port_lookup[(x, y)] = px
                    port_lookup[(y, x)] = py

        ident_of = None
        if self.include_ids:
            def ident_of(x: Node) -> int:  # noqa: F811
                ident = known_nodes[x].ident
                if ident is None:
                    raise AsyncSimulationError(f"record for {x!r} has no identifier")
                return ident

        return _assemble_view(
            radius=radius,
            center=v,
            dist=keep,
            edges=edges,
            port_of=lambda a, b: port_lookup[(a, b)],
            id_of=ident_of,
            id_bound=self.instance.id_bound if self.include_ids else None,
            label_of=lambda x: known_nodes[x].label,
        )


def simulate_views_async(
    instance: Instance,
    radius: int,
    seed: int,
    include_ids: bool = True,
    fifo: bool = False,
    erased_nodes: set[Node] | None = None,
) -> tuple[dict[Node, View], AsyncStats]:
    """Run the asynchronous protocol and reconstruct every node's view."""
    schedule = DelaySchedule(seed=seed, fifo=fifo)
    simulator = AsyncSimulator(
        instance, schedule, include_ids=include_ids, erased_nodes=erased_nodes
    )
    simulator.run(radius)
    views = {v: simulator.reconstruct_view(v, radius) for v in instance.graph.nodes}
    return views, simulator.stats
