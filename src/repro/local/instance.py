"""Instances: a graph together with ports, identifiers, and a labeling.

The paper's decoders run on tuples ``(G, prt, Id, I)`` where the input
``I(v) = (N, ℓ(v))`` bundles the identifier bound with the certificate.
:class:`Instance` is that tuple as a value object; the labeling part is
optional so the same instance can be re-labeled by provers and adversaries
without copying the graph.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import CertificationError
from ..graphs.graph import Graph, Node
from .identifiers import IdentifierAssignment
from .labeling import Labeling
from .ports import PortAssignment


@dataclass(frozen=True)
class Instance:
    """A configured network: graph, ports, identifiers, id bound, labels.

    *id_bound* is the paper's ``N = poly(n)``, known to every node.
    *labeling* may be ``None`` for an instance awaiting certificates.
    """

    graph: Graph
    ports: PortAssignment
    ids: IdentifierAssignment
    id_bound: int
    labeling: Labeling | None = None

    @classmethod
    def build(
        cls,
        graph: Graph,
        ports: PortAssignment | None = None,
        ids: IdentifierAssignment | None = None,
        id_bound: int | None = None,
        labeling: Labeling | None = None,
    ) -> "Instance":
        """Assemble an instance, filling in canonical defaults.

        Defaults: canonical ports (sorted-neighbor order), canonical
        identifiers ``1..n``, and ``id_bound = max(n, max id)``.
        """
        if ports is None:
            ports = PortAssignment.canonical(graph)
        if ids is None:
            ids = IdentifierAssignment.canonical(graph)
        if id_bound is None:
            id_bound = max(graph.order, ids.max_id())
        instance = cls(graph=graph, ports=ports, ids=ids, id_bound=id_bound, labeling=labeling)
        instance.validate()
        return instance

    def validate(self) -> None:
        """Check that ports, ids, and labels all fit the graph."""
        self.ports.validate(self.graph)
        self.ids.validate(self.graph, self.id_bound)
        if self.labeling is not None:
            self.labeling.validate(self.graph)

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self.graph.order

    def with_labeling(self, labeling: Labeling) -> "Instance":
        """The same network carrying a (new) certificate assignment."""
        labeling.validate(self.graph)
        return replace(self, labeling=labeling)

    def without_labeling(self) -> "Instance":
        return replace(self, labeling=None)

    def with_ids(self, ids: IdentifierAssignment, id_bound: int | None = None) -> "Instance":
        """The same network with different identifiers."""
        bound = id_bound if id_bound is not None else max(self.id_bound, ids.max_id())
        ids.validate(self.graph, bound)
        return replace(self, ids=ids, id_bound=bound)

    def require_labeling(self) -> Labeling:
        """The labeling, or an error if certificates were never assigned."""
        if self.labeling is None:
            raise CertificationError("instance has no labeling; assign certificates first")
        return self.labeling

    def relabeled_nodes(self, mapping: dict[Node, Node]) -> "Instance":
        """Rename the nodes of the whole instance through *mapping*."""
        return Instance(
            graph=self.graph.relabeled(mapping),
            ports=self.ports.relabeled(mapping),
            ids=self.ids.relabeled(mapping),
            id_bound=self.id_bound,
            labeling=self.labeling.relabeled(mapping) if self.labeling else None,
        )

    def __repr__(self) -> str:
        labeled = "labeled" if self.labeling is not None else "unlabeled"
        return f"Instance(n={self.n}, N={self.id_bound}, {labeled})"
