"""Local algorithms and decoders (paper Section 2.2).

An ``r``-round local algorithm is a computable map from radius-``r`` views
to outputs.  A *decoder* additionally reads certificates; a *binary
decoder* outputs accept/reject.  The predicates here check anonymity and
order-invariance the way the paper defines them — by quantifying over
identifier assignments — and :class:`OrderInvariantLift` turns any decoder
into an order-invariant one by normalizing identifiers to ranks.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Hashable

from ..graphs.graph import Node
from .identifiers import all_order_types
from .instance import Instance
from .views import View, extract_all_views, extract_view


class LocalAlgorithm(ABC):
    """An ``r``-round local algorithm: a pure function of the view.

    Subclasses set :attr:`radius` and :attr:`anonymous`.  When *anonymous*
    is true the harness hands the algorithm anonymized views, so it cannot
    depend on identifiers even accidentally.
    """

    radius: int = 1
    anonymous: bool = False

    @abstractmethod
    def run(self, view: View) -> Hashable:
        """Output of the node whose view is *view*."""

    @property
    def name(self) -> str:
        return type(self).__name__

    def view_of(self, instance: Instance, v: Node) -> View:
        """The view this algorithm would receive at node *v*."""
        return extract_view(instance, v, self.radius, include_ids=not self.anonymous)

    def run_on(self, instance: Instance) -> dict[Node, Hashable]:
        """Run the algorithm at every node of *instance*."""
        views = extract_all_views(instance, self.radius, include_ids=not self.anonymous)
        return {v: self.run(view) for v, view in views.items()}


class FunctionAlgorithm(LocalAlgorithm):
    """Wrap a plain function ``View -> output`` as a local algorithm."""

    def __init__(self, fn, radius: int = 1, anonymous: bool = False, name: str | None = None):
        self._fn = fn
        self.radius = radius
        self.anonymous = anonymous
        self._name = name or getattr(fn, "__name__", "FunctionAlgorithm")

    def run(self, view: View) -> Hashable:
        return self._fn(view)

    @property
    def name(self) -> str:
        return self._name


class OrderInvariantLift(LocalAlgorithm):
    """Force order-invariance: identifiers are replaced by ranks ``1..k``.

    This is the executable form of the decoders produced by the Ramsey
    reduction (Lemma 6.2): the lifted algorithm's output depends only on
    the relative order of identifiers in the view.
    """

    def __init__(self, inner: LocalAlgorithm) -> None:
        self._inner = inner
        self.radius = inner.radius
        self.anonymous = inner.anonymous

    def run(self, view: View) -> Hashable:
        if view.is_anonymous:
            return self._inner.run(view)
        return self._inner.run(view.order_normalized())

    @property
    def name(self) -> str:
        return f"OrderInvariant({self._inner.name})"


def is_anonymous_on(algorithm: LocalAlgorithm, instance: Instance, id_samples) -> bool:
    """Empirical anonymity: outputs agree across the given id assignments."""
    reference: dict[Node, Hashable] | None = None
    for ids in id_samples:
        candidate = instance.with_ids(ids)
        outputs = {
            v: algorithm.run(extract_view(candidate, v, algorithm.radius, include_ids=True))
            for v in candidate.graph.nodes
        }
        if reference is None:
            reference = outputs
        elif outputs != reference:
            return False
    return True


def is_order_invariant_on(algorithm: LocalAlgorithm, instance: Instance) -> bool:
    """Empirical order-invariance over all order types of the instance.

    Exhaustive over permutations of ``1..n`` — use on small instances.
    Two assignments with the same relative order must produce identical
    outputs; assignments of different order types may differ.
    """
    seen: dict[View, Hashable] = {}
    for ids in all_order_types(instance.graph):
        candidate = instance.with_ids(ids, id_bound=instance.graph.order)
        for v in candidate.graph.nodes:
            view = extract_view(candidate, v, algorithm.radius, include_ids=True)
            key = view.order_normalized()
            output = algorithm.run(view)
            if key in seen and seen[key] != output:
                return False
            seen[key] = output
    return True
