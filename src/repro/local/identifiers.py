"""Identifier assignments (paper Section 2.2).

An identifier assignment is an injective map ``Id: V(G) -> [N]`` with
``N = poly(n)``; nodes know ``N``.  Order-invariance (Section 6) only cares
about the relative order of identifiers, so the module also provides
order-pattern utilities and enumeration of assignments by order type.
"""

from __future__ import annotations

import random
from collections.abc import Iterator
from itertools import combinations, permutations

from ..errors import IdentifierAssignmentError
from ..graphs.graph import Graph, Node


class IdentifierAssignment:
    """An immutable injective assignment of integer identifiers to nodes."""

    __slots__ = ("_ids", "_nodes")

    def __init__(self, ids: dict[Node, int]) -> None:
        if len(set(ids.values())) != len(ids):
            raise IdentifierAssignmentError("identifier assignment is not injective")
        for v, i in ids.items():
            if not isinstance(i, int) or i < 1:
                raise IdentifierAssignmentError(
                    f"identifier of {v!r} must be a positive integer, got {i!r}"
                )
        self._ids = dict(ids)
        self._nodes = {i: v for v, i in ids.items()}

    def id_of(self, v: Node) -> int:
        """The identifier of node *v*."""
        try:
            return self._ids[v]
        except KeyError:
            raise IdentifierAssignmentError(f"node {v!r} has no identifier") from None

    def node_of(self, identifier: int) -> Node:
        """The node carrying *identifier*."""
        try:
            return self._nodes[identifier]
        except KeyError:
            raise IdentifierAssignmentError(f"no node has identifier {identifier}") from None

    def has_id(self, identifier: int) -> bool:
        return identifier in self._nodes

    def max_id(self) -> int:
        return max(self._ids.values(), default=0)

    def as_dict(self) -> dict[Node, int]:
        return dict(self._ids)

    def validate(self, graph: Graph, id_bound: int) -> None:
        """Check coverage of *graph* and the bound ``Id(v) <= id_bound``."""
        missing = set(graph.nodes) - set(self._ids)
        if missing:
            raise IdentifierAssignmentError(
                f"nodes without identifiers: {sorted(map(repr, missing))}"
            )
        too_big = [v for v, i in self._ids.items() if i > id_bound]
        if too_big:
            raise IdentifierAssignmentError(
                f"identifiers exceed the bound N={id_bound} at {sorted(map(repr, too_big))}"
            )

    @classmethod
    def canonical(cls, graph: Graph) -> "IdentifierAssignment":
        """Identifiers ``1..n`` in node insertion order."""
        return cls({v: i for i, v in enumerate(graph.nodes, start=1)})

    @classmethod
    def random(cls, graph: Graph, id_bound: int, seed: int) -> "IdentifierAssignment":
        """A uniformly random injective assignment into ``[id_bound]``."""
        n = graph.order
        if id_bound < n:
            raise IdentifierAssignmentError(f"id space [{id_bound}] too small for {n} nodes")
        rng = random.Random(seed)
        chosen = rng.sample(range(1, id_bound + 1), n)
        return cls(dict(zip(graph.nodes, chosen)))

    def relabeled(self, mapping: dict[Node, Node]) -> "IdentifierAssignment":
        """Transport the assignment through a node renaming."""
        return IdentifierAssignment({mapping[v]: i for v, i in self._ids.items()})

    def order_rank(self, v: Node) -> int:
        """Rank (0-based) of ``Id(v)`` among all identifiers."""
        return sorted(self._ids.values()).index(self._ids[v])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IdentifierAssignment):
            return NotImplemented
        return self._ids == other._ids

    def __repr__(self) -> str:
        return f"IdentifierAssignment(nodes={len(self._ids)}, max={self.max_id()})"


def all_identifier_assignments(graph: Graph, id_bound: int) -> Iterator[IdentifierAssignment]:
    """Every injective assignment ``V -> [id_bound]`` (tiny graphs only)."""
    nodes = graph.nodes
    n = len(nodes)
    if id_bound < n:
        return
    for chosen in combinations(range(1, id_bound + 1), n):
        for perm in permutations(chosen):
            yield IdentifierAssignment(dict(zip(nodes, perm)))


def all_order_types(graph: Graph) -> Iterator[IdentifierAssignment]:
    """One representative assignment per order type (ids are ``1..n``).

    Order-invariant decoders cannot distinguish assignments with the same
    relative order, so enumerating permutations of ``1..n`` covers all
    behaviors (Lemma 6.2).
    """
    nodes = graph.nodes
    for perm in permutations(range(1, len(nodes) + 1)):
        yield IdentifierAssignment(dict(zip(nodes, perm)))


def same_order_type(a: IdentifierAssignment, b: IdentifierAssignment, nodes: list[Node]) -> bool:
    """True iff *a* and *b* order the given *nodes* identically."""
    ids_a = [a.id_of(v) for v in nodes]
    ids_b = [b.id_of(v) for v in nodes]
    rank_a = sorted(range(len(nodes)), key=lambda i: ids_a[i])
    rank_b = sorted(range(len(nodes)), key=lambda i: ids_b[i])
    return rank_a == rank_b
