"""LOCAL-model substrate: ports, identifiers, labelings, instances, views,
local algorithms, and the synchronous message-passing simulator."""

from .async_simulator import (
    AsyncSimulationError,
    AsyncSimulator,
    AsyncStats,
    DelaySchedule,
    simulate_views_async,
)
from .algorithms import (
    FunctionAlgorithm,
    LocalAlgorithm,
    OrderInvariantLift,
    is_anonymous_on,
    is_order_invariant_on,
)
from .identifiers import (
    IdentifierAssignment,
    all_identifier_assignments,
    all_order_types,
    same_order_type,
)
from .instance import Instance
from .labeling import (
    Certificate,
    Labeling,
    all_labelings,
    count_labelings,
    labeling_key,
    node_sort_order,
)
from .messages import EdgeRecord, Message, NodeRecord, RoundStats, RunStats
from .ports import PortAssignment, all_port_assignments, count_port_assignments
from .simulator import (
    ERASED,
    SyncSimulator,
    run_algorithm_distributed,
    simulate_views,
)
from .views import View, extract_all_views, extract_view

__all__ = [
    "AsyncSimulationError",
    "AsyncSimulator",
    "AsyncStats",
    "Certificate",
    "DelaySchedule",
    "EdgeRecord",
    "ERASED",
    "FunctionAlgorithm",
    "IdentifierAssignment",
    "Instance",
    "Labeling",
    "LocalAlgorithm",
    "Message",
    "NodeRecord",
    "OrderInvariantLift",
    "PortAssignment",
    "RoundStats",
    "RunStats",
    "SyncSimulator",
    "View",
    "all_identifier_assignments",
    "all_labelings",
    "all_order_types",
    "all_port_assignments",
    "count_labelings",
    "labeling_key",
    "node_sort_order",
    "count_port_assignments",
    "extract_all_views",
    "extract_view",
    "is_anonymous_on",
    "is_order_invariant_on",
    "run_algorithm_distributed",
    "same_order_type",
    "simulate_views",
    "simulate_views_async",
]
