"""Port assignments (paper Section 2.2).

A port assignment gives every node ``v`` a private numbering
``1..d(v)`` of its incident edges: ``prt(v, e) <= d(v)`` and distinct
ports for distinct incident edges.  Ports are how anonymous nodes refer to
their neighbors, and the even-cycle LCP's certificates (Lemma 4.2) are
built entirely out of port pairs.
"""

from __future__ import annotations

import math
import random
from collections.abc import Iterator
from itertools import permutations

from ..errors import PortAssignmentError
from ..graphs.graph import Graph, Node


class PortAssignment:
    """An immutable port assignment for a fixed graph.

    Stored as ``{v: {neighbor: port}}``; both directions of an edge carry
    their own independent port.
    """

    __slots__ = ("_ports", "_by_port")

    def __init__(self, ports: dict[Node, dict[Node, int]]) -> None:
        self._ports = {v: dict(nbrs) for v, nbrs in ports.items()}
        self._by_port: dict[Node, dict[int, Node]] = {}
        for v, nbrs in self._ports.items():
            reverse: dict[int, Node] = {}
            for u, p in nbrs.items():
                if p in reverse:
                    raise PortAssignmentError(
                        f"node {v!r} uses port {p} for both {reverse[p]!r} and {u!r}"
                    )
                reverse[p] = u
            self._by_port[v] = reverse

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def port(self, v: Node, u: Node) -> int:
        """The port number of *v* on the edge ``{v, u}``."""
        try:
            return self._ports[v][u]
        except KeyError:
            raise PortAssignmentError(f"no port at {v!r} toward {u!r}") from None

    def neighbor_at(self, v: Node, port: int) -> Node:
        """The neighbor reached from *v* through *port*."""
        try:
            return self._by_port[v][port]
        except KeyError:
            raise PortAssignmentError(f"node {v!r} has no port {port}") from None

    def ports_of(self, v: Node) -> dict[Node, int]:
        """A copy of ``{neighbor: port}`` for node *v*."""
        return dict(self._ports.get(v, {}))

    def edge_ports(self, u: Node, v: Node) -> tuple[int, int]:
        """The pair ``(prt(u, uv), prt(v, uv))``."""
        return self.port(u, v), self.port(v, u)

    # ------------------------------------------------------------------
    # Validation and construction
    # ------------------------------------------------------------------

    def validate(self, graph: Graph) -> None:
        """Check the two conditions of Section 2.2 against *graph*."""
        if graph.has_loop():
            raise PortAssignmentError("port assignments are defined for loop-free graphs")
        for v in graph.nodes:
            nbrs = graph.neighbors(v)
            assigned = self._ports.get(v, {})
            if set(assigned) != nbrs:
                raise PortAssignmentError(
                    f"node {v!r}: ports cover {sorted(map(repr, assigned))}, "
                    f"neighbors are {sorted(map(repr, nbrs))}"
                )
            d = graph.degree(v)
            for u, p in assigned.items():
                if not 1 <= p <= d:
                    raise PortAssignmentError(
                        f"node {v!r}: port {p} toward {u!r} outside 1..{d}"
                    )

    @classmethod
    def canonical(cls, graph: Graph) -> "PortAssignment":
        """Deterministic ports: neighbors in sorted order get ports 1, 2, ..."""
        ports = {
            v: {u: i for i, u in enumerate(sorted(graph.neighbors(v), key=repr), start=1)}
            for v in graph.nodes
        }
        assignment = cls(ports)
        assignment.validate(graph)
        return assignment

    @classmethod
    def random(cls, graph: Graph, seed: int) -> "PortAssignment":
        """Uniformly random proper ports (deterministic per *seed*)."""
        rng = random.Random(seed)
        ports: dict[Node, dict[Node, int]] = {}
        for v in graph.nodes:
            nbrs = sorted(graph.neighbors(v), key=repr)
            numbers = list(range(1, len(nbrs) + 1))
            rng.shuffle(numbers)
            ports[v] = dict(zip(nbrs, numbers))
        assignment = cls(ports)
        assignment.validate(graph)
        return assignment

    def relabeled(self, mapping: dict[Node, Node]) -> "PortAssignment":
        """Transport the assignment through a node renaming."""
        return PortAssignment(
            {
                mapping[v]: {mapping[u]: p for u, p in nbrs.items()}
                for v, nbrs in self._ports.items()
            }
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PortAssignment):
            return NotImplemented
        return self._ports == other._ports

    def __repr__(self) -> str:
        return f"PortAssignment(nodes={len(self._ports)})"


def all_port_assignments(graph: Graph) -> Iterator[PortAssignment]:
    """Every proper port assignment of *graph* (use only on tiny graphs).

    The count is ``∏_v d(v)!``, which explodes quickly; the Lemma 3.1
    builder caps enumeration sizes before calling this.
    """
    nodes = graph.nodes
    neighbor_lists = [sorted(graph.neighbors(v), key=repr) for v in nodes]
    perm_choices = [list(permutations(range(1, len(nbrs) + 1))) for nbrs in neighbor_lists]

    def assemble(index: int, acc: dict[Node, dict[Node, int]]) -> Iterator[PortAssignment]:
        if index == len(nodes):
            yield PortAssignment(acc)
            return
        v = nodes[index]
        for perm in perm_choices[index]:
            acc[v] = dict(zip(neighbor_lists[index], perm))
            yield from assemble(index + 1, acc)
        acc.pop(v, None)

    yield from assemble(0, {})


def count_port_assignments(graph: Graph) -> int:
    """The exact number of proper port assignments (``∏_v d(v)!``)."""
    total = 1
    for v in graph.nodes:
        total *= math.factorial(graph.degree(v))
    return total
