"""The LCP abstraction: prover + decoder + promise + certificate codec.

An :class:`LCP` bundles everything the paper's Section 2 attaches to a
locally checkable proof for ``k``-coloring:

* the *language* parameter ``k`` (we focus on ``k = 2`` like the paper);
* the verification radius ``r`` and whether the scheme is anonymous;
* the *promise class* (a predicate on graphs) for promise problems
  (Section 2.5);
* the prover and the binary decoder;
* a certificate codec used by the certificate-size experiments;
* optionally a finite certificate alphabet enabling the exhaustive
  strong-soundness adversary.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..graphs.coloring import is_k_colorable
from ..graphs.graph import Graph, Node
from ..graphs.properties import is_bipartite
from ..local.instance import Instance
from ..local.labeling import Certificate, Labeling
from .decoder import Decoder
from .prover import Prover


@dataclass(frozen=True)
class AcceptanceResult:
    """Per-node decoder verdicts on one labeled instance."""

    votes: dict[Node, bool]

    @property
    def unanimous(self) -> bool:
        """True iff every node accepts (the yes-side condition)."""
        return all(self.votes.values())

    @property
    def accepting(self) -> set[Node]:
        return {v for v, vote in self.votes.items() if vote}

    @property
    def rejecting(self) -> set[Node]:
        return {v for v, vote in self.votes.items() if not vote}

    def __repr__(self) -> str:
        return f"AcceptanceResult(accepting={len(self.accepting)}, rejecting={len(self.rejecting)})"


class LCP(ABC):
    """A locally checkable proof scheme for ``k``-coloring."""

    #: The coloring parameter of the language ``k-col``.
    k: int = 2
    #: Verification radius ``r``.
    radius: int = 1
    #: Whether the decoder may depend on identifiers.
    anonymous: bool = False

    @property
    @abstractmethod
    def prover(self) -> Prover:
        """The certificate-assigning prover."""

    @property
    @abstractmethod
    def decoder(self) -> Decoder:
        """The distributed verifier."""

    @property
    def name(self) -> str:
        return type(self).__name__

    # ------------------------------------------------------------------
    # Promise class
    # ------------------------------------------------------------------

    def promise(self, graph: Graph) -> bool:
        """Membership in the promise class ``H`` (default: all graphs)."""
        return True

    def is_yes_instance(self, graph: Graph) -> bool:
        """Yes-instances of the promise problem: ``H``-members that are
        properly ``k``-colorable (for ``k = 2``: bipartite)."""
        if self.k == 2:
            return self.promise(graph) and is_bipartite(graph)
        return self.promise(graph) and is_k_colorable(graph, self.k)

    def is_no_instance(self, graph: Graph) -> bool:
        """No-instances: graphs that are not ``k``-colorable at all
        (promise problems leave the rest unconstrained, Section 2.5)."""
        if self.k == 2:
            return not is_bipartite(graph)
        return not is_k_colorable(graph, self.k)

    # ------------------------------------------------------------------
    # Running the scheme
    # ------------------------------------------------------------------

    def check(self, instance: Instance) -> AcceptanceResult:
        """Run the decoder at every node of a labeled instance."""
        instance.require_labeling()
        return AcceptanceResult(votes=self.decoder.decide_all(instance))

    def accepts(self, instance: Instance) -> bool:
        """True iff every node accepts."""
        return self.check(instance).unanimous

    def certify_and_check(self, instance: Instance) -> AcceptanceResult:
        """Prover + decoder round trip on an unlabeled instance."""
        labeling = self.prover.certify(instance)
        return self.check(instance.with_labeling(labeling))

    # ------------------------------------------------------------------
    # Certificates
    # ------------------------------------------------------------------

    def certificate_alphabet(self, graph: Graph) -> list[Certificate] | None:
        """The full finite certificate alphabet for instances on *graph*,
        or ``None`` when the alphabet is too large to enumerate.

        Constant-size LCPs return their (small) alphabet, enabling the
        exhaustive adversary of the strong-soundness checks.
        """
        return None

    @abstractmethod
    def certificate_bits(self, certificate: Certificate, n: int, id_bound: int) -> int:
        """Encoded size, in bits, of one certificate on an ``n``-node
        instance with identifier bound ``N = id_bound``."""

    def labeling_bits(self, labeling: Labeling, n: int, id_bound: int) -> int:
        """The maximum certificate size across a labeling (the paper's
        ``f(n)`` is a per-node bound)."""
        return max(
            self.certificate_bits(labeling.of(v), n, id_bound) for v in labeling.nodes()
        )


# ----------------------------------------------------------------------
# Cell-scoped parameterization (the campaign layer's k and r axes)
# ----------------------------------------------------------------------


class _TolerantProver(Prover):
    """A prover whose enumeration survives off-promise instances.

    Re-parameterizing a scheme to a non-native ``k`` can admit
    yes-instances the base prover was never written for (a triangle is a
    3-colorable member of H1, but the degree-one prover reveals a
    2-coloring and rejects it).  For the Lemma 3.1 sweep that is fine:
    the exhaustive unanimity pass is the literal "some labeling accepted
    at v" of the definition, so the honest prover contributing nothing
    for such an instance is sound.  ``certify`` keeps raising — a direct
    round trip on an off-promise instance should still fail loudly.
    """

    def __init__(self, base: Prover) -> None:
        self.base = base

    @property
    def name(self) -> str:
        return self.base.name

    def certify(self, instance: Instance) -> Labeling:
        return self.base.certify(instance)

    def all_certifications(self, instance: Instance):
        from ..errors import PromiseViolationError  # noqa: PLC0415

        try:
            yield from self.base.all_certifications(instance)
        except PromiseViolationError:
            return


class ParametrizedLCP(LCP):
    """A registry scheme re-parameterized to a different ``k`` and/or
    verification radius ``r`` — the campaign layer's cell-scoped view of
    a scheme.

    Everything except ``k``/``radius`` delegates to the base scheme:
    same promise class, same decoder, same certificate codec, same
    ``name`` (cache keys already carry ``k`` and ``radius`` as separate
    fields, so parameterized sweeps get their own addresses without
    renaming).  Never constructed for the native parameters —
    :func:`parametrized` returns the base object itself there, which is
    what keeps default-cell cache identities byte-identical to the
    pre-campaign layout.
    """

    def __init__(self, base: LCP, k: int | None = None, radius: int | None = None):
        self.base = base
        self.k = k if k is not None else base.k
        self.radius = radius if radius is not None else base.radius
        self.anonymous = base.anonymous
        self._prover = (
            _TolerantProver(base.prover) if self.k != base.k else base.prover
        )

    @property
    def prover(self) -> Prover:
        return self._prover

    @property
    def decoder(self) -> Decoder:
        return self.base.decoder

    @property
    def name(self) -> str:
        return self.base.name

    def promise(self, graph: Graph) -> bool:
        return self.base.promise(graph)

    def certificate_alphabet(self, graph: Graph) -> list[Certificate] | None:
        return self.base.certificate_alphabet(graph)

    def certificate_bits(self, certificate: Certificate, n: int, id_bound: int) -> int:
        return self.base.certificate_bits(certificate, n, id_bound)


def parametrized(lcp: LCP, k: int | None = None, radius: int | None = None) -> LCP:
    """*lcp* with ``k``/``radius`` overridden — or *lcp* itself when both
    requested values are native (``None`` means "keep").

    Raises ``ValueError`` for non-positive parameters.  Unwraps nested
    parameterizations so ``parametrized(parametrized(D, k=3), k=2)``
    never stacks delegation layers.
    """
    if k is not None and k < 1:
        raise ValueError(f"parametrized: k must be >= 1, got {k}")
    if radius is not None and radius < 1:
        raise ValueError(f"parametrized: radius must be >= 1, got {radius}")
    if isinstance(lcp, ParametrizedLCP):
        base = lcp.base
        k = k if k is not None else lcp.k
        radius = radius if radius is not None else lcp.radius
    else:
        base = lcp
    if (k is None or k == base.k) and (radius is None or radius == base.radius):
        return base
    return ParametrizedLCP(base, k=k, radius=radius)
