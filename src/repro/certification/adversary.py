"""Adversarial provers: labeling generators attacking (strong) soundness.

Soundness quantifies over *every* labeling, so checking it is an
adversarial search problem.  Three strategies are provided:

* :class:`ExhaustiveAdversary` — every labeling over a finite alphabet
  (a proof, not just evidence, for constant-size LCPs on small graphs);
* :class:`RandomAdversary` — i.i.d. samples from a certificate pool;
* :class:`GreedyAdversary` — hill climbing that maximizes the number of
  accepting nodes, restarted from random labelings; certificates are
  drawn from a pool, which by default is harvested from the prover's own
  certificates on related yes-instances (the "stitching" attack that the
  paper's lower bound formalizes via realizability, Section 5).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections.abc import Iterator

from ..graphs.graph import Graph
from ..local.instance import Instance
from ..local.labeling import Certificate, Labeling, all_labelings
from .lcp import LCP


class Adversary(ABC):
    """Produces candidate labelings for an instance."""

    @abstractmethod
    def labelings(self, lcp: LCP, instance: Instance) -> Iterator[Labeling]:
        """Candidate certificate assignments to test against the decoder."""

    #: Whether the produced stream covers the whole labeling space.
    exhaustive: bool = False

    @property
    def name(self) -> str:
        return type(self).__name__


class ExhaustiveAdversary(Adversary):
    """Every labeling over the LCP's finite alphabet.

    Only usable when :meth:`LCP.certificate_alphabet` returns a finite
    alphabet; the stream has ``|alphabet| ** n`` elements.
    """

    exhaustive = True

    def __init__(self, max_labelings: int | None = None) -> None:
        self.max_labelings = max_labelings

    def labelings(self, lcp: LCP, instance: Instance) -> Iterator[Labeling]:
        alphabet = lcp.certificate_alphabet(instance.graph)
        if alphabet is None:
            raise ValueError(
                f"{lcp.name} has no finite certificate alphabet; "
                "use a sampling adversary instead"
            )
        count = 0
        for labeling in all_labelings(instance.graph, alphabet):
            if self.max_labelings is not None and count >= self.max_labelings:
                return
            count += 1
            yield labeling


def harvest_certificate_pool(lcp: LCP, instance: Instance, extra_graphs: list[Graph] = ()) -> list[Certificate]:
    """Collect plausible certificates for adversarial use.

    The pool contains (a) the LCP's finite alphabet if any, and (b) every
    certificate the honest prover emits on the given yes-instance graphs —
    the raw material for stitching attacks.
    """
    pool: list[Certificate] = []
    seen: set[Certificate] = set()

    def add(certificate: Certificate) -> None:
        if certificate not in seen:
            seen.add(certificate)
            pool.append(certificate)

    alphabet = lcp.certificate_alphabet(instance.graph)
    if alphabet is not None:
        for certificate in alphabet:
            add(certificate)
    for graph in list(extra_graphs):
        if not lcp.is_yes_instance(graph):
            continue
        donor = Instance.build(graph, id_bound=max(instance.id_bound, graph.order))
        try:
            labeling = lcp.prover.certify(donor)
        except Exception:
            continue
        for v in labeling.nodes():
            add(labeling.of(v))
    return pool


class RandomAdversary(Adversary):
    """I.i.d. random labelings from a certificate pool."""

    exhaustive = False

    def __init__(self, samples: int, seed: int, pool_graphs: list[Graph] = ()) -> None:
        self.samples = samples
        self.seed = seed
        self.pool_graphs = list(pool_graphs)

    def labelings(self, lcp: LCP, instance: Instance) -> Iterator[Labeling]:
        pool = harvest_certificate_pool(lcp, instance, self.pool_graphs)
        if not pool:
            return
        rng = random.Random(self.seed)
        nodes = instance.graph.nodes
        for _ in range(self.samples):
            yield Labeling({v: rng.choice(pool) for v in nodes})


class GreedyAdversary(Adversary):
    """Hill climbing on the number of accepting nodes.

    Starting from random labelings, repeatedly try single-node certificate
    swaps that increase (or keep) the count of accepting nodes; emit every
    improving labeling so the checker can inspect near-misses too.
    """

    exhaustive = False

    def __init__(
        self,
        restarts: int = 8,
        sweeps: int = 4,
        seed: int = 0,
        pool_graphs: list[Graph] = (),
    ) -> None:
        self.restarts = restarts
        self.sweeps = sweeps
        self.seed = seed
        self.pool_graphs = list(pool_graphs)

    def labelings(self, lcp: LCP, instance: Instance) -> Iterator[Labeling]:
        from ..local.views import extract_view_layouts, relabel_view  # noqa: PLC0415

        pool = harvest_certificate_pool(lcp, instance, self.pool_graphs)
        if not pool:
            return
        rng = random.Random(self.seed)
        nodes = instance.graph.nodes
        layouts = extract_view_layouts(
            instance.without_labeling(), lcp.radius, include_ids=not lcp.anonymous
        )

        def score(labeling: Labeling) -> int:
            decide = lcp.decoder.decide
            return sum(
                decide(relabel_view(template, order, labeling))
                for template, order in layouts.values()
            )

        for _restart in range(self.restarts):
            labeling = Labeling({v: rng.choice(pool) for v in nodes})
            best = score(labeling)
            yield labeling
            for _sweep in range(self.sweeps):
                improved = False
                for v in nodes:
                    current = labeling.of(v)
                    for certificate in pool:
                        if certificate == current:
                            continue
                        candidate = labeling.with_label(v, certificate)
                        candidate_score = score(candidate)
                        if candidate_score > best:
                            labeling, best = candidate, candidate_score
                            improved = True
                            yield labeling
                            break
                if not improved:
                    break
