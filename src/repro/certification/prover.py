"""Provers — the omnipotent certificate-assigning side of an LCP.

A prover maps a (yes-)instance to a labeling the decoder will accept
unanimously.  Completeness often leaves the prover choices (which degree-1
node hides the coloring, which of the two 2-colorings is used, which
2-edge-coloring...), so provers can enumerate *all* canonical
certifications; the neighborhood-graph builder feeds on that multiplicity.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterator

from ..errors import PromiseViolationError
from ..local.instance import Instance
from ..local.labeling import Labeling


class Prover(ABC):
    """Assigns certificates to instances of its promise class."""

    @abstractmethod
    def certify(self, instance: Instance) -> Labeling:
        """A canonical accepted labeling for a yes-instance.

        Raises :class:`PromiseViolationError` when the instance is outside
        the promise class (or not a yes-instance).
        """

    def all_certifications(self, instance: Instance) -> Iterator[Labeling]:
        """Every canonical certification the prover can produce.

        Default: just :meth:`certify`.  Override to expose prover freedom
        — the accepting-view enumeration uses all of these.
        """
        yield self.certify(instance)

    @property
    def name(self) -> str:
        return type(self).__name__


class FunctionProver(Prover):
    """Wrap a function ``Instance -> Labeling`` as a prover."""

    def __init__(self, fn, all_fn=None, name: str | None = None):
        self._fn = fn
        self._all_fn = all_fn
        self._name = name or getattr(fn, "__name__", "FunctionProver")

    def certify(self, instance: Instance) -> Labeling:
        return self._fn(instance)

    def all_certifications(self, instance: Instance) -> Iterator[Labeling]:
        if self._all_fn is None:
            yield self.certify(instance)
        else:
            yield from self._all_fn(instance)

    @property
    def name(self) -> str:
        return self._name


def reject_promise(instance: Instance, reason: str) -> PromiseViolationError:
    """Build the standard promise-violation error for provers."""
    return PromiseViolationError(
        f"instance {instance!r} is outside the promise class: {reason}"
    )
