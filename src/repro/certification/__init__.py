"""Certification framework: LCP abstraction, provers, decoders,
property checkers, and adversarial labeling search."""

from .adversary import (
    Adversary,
    ExhaustiveAdversary,
    GreedyAdversary,
    RandomAdversary,
    harvest_certificate_pool,
)
from .checkers import (
    FastVerifier,
    check_completeness,
    check_soundness,
    check_strong_soundness,
    find_strong_soundness_violation,
    instances_for,
)
from .decoder import ACCEPT, REJECT, ConstantDecoder, Decoder, FunctionDecoder
from .enumeration import EnumerativeLCP, SearchProver
from .lcp import LCP, AcceptanceResult
from .prover import FunctionProver, Prover, reject_promise
from .reports import CheckKind, CheckReport, Violation

__all__ = [
    "ACCEPT",
    "AcceptanceResult",
    "Adversary",
    "CheckKind",
    "CheckReport",
    "ConstantDecoder",
    "Decoder",
    "EnumerativeLCP",
    "ExhaustiveAdversary",
    "FastVerifier",
    "FunctionDecoder",
    "FunctionProver",
    "GreedyAdversary",
    "LCP",
    "Prover",
    "REJECT",
    "RandomAdversary",
    "SearchProver",
    "Violation",
    "check_completeness",
    "check_soundness",
    "check_strong_soundness",
    "find_strong_soundness_violation",
    "harvest_certificate_pool",
    "instances_for",
    "reject_promise",
]
