"""Structured results for the certification checkers.

Every checker returns a :class:`CheckReport`: machine-readable, with
explicit counterexamples, so experiments can render paper-style summaries
and tests can assert on precise failure contents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..local.instance import Instance
from ..local.labeling import Labeling


class CheckKind(Enum):
    """Which LCP property a report is about."""

    COMPLETENESS = "completeness"
    SOUNDNESS = "soundness"
    STRONG_SOUNDNESS = "strong-soundness"
    HIDING = "hiding"


@dataclass(frozen=True)
class Violation:
    """A concrete counterexample to an LCP property.

    * completeness: a yes-instance where some node rejects the prover's
      certificates (*rejecting* holds the rejecting nodes);
    * soundness: a no-instance plus labeling accepted unanimously;
    * strong soundness: an instance plus labeling whose accepting nodes
      induce a non-bipartite subgraph (*witness* holds an odd cycle).
    """

    kind: CheckKind
    instance: Instance
    labeling: Labeling
    rejecting: tuple = ()
    witness: tuple = ()
    note: str = ""

    def __repr__(self) -> str:
        return (
            f"Violation({self.kind.value}, n={self.instance.n}, "
            f"note={self.note!r})"
        )


@dataclass
class CheckReport:
    """Aggregated result of one property check.

    *passed* means no violation was found over everything enumerated;
    for exhaustive enumerations this is a proof (for the covered sizes),
    for sampled ones it is evidence — *exhaustive* records which.
    """

    kind: CheckKind
    lcp_name: str
    graphs_checked: int = 0
    instances_checked: int = 0
    labelings_checked: int = 0
    exhaustive: bool = True
    violations: list[Violation] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations

    def merge(self, other: "CheckReport") -> "CheckReport":
        """Combine two reports of the same kind (e.g. across graph sets)."""
        if other.kind is not self.kind:
            raise ValueError("cannot merge reports of different kinds")
        return CheckReport(
            kind=self.kind,
            lcp_name=self.lcp_name,
            graphs_checked=self.graphs_checked + other.graphs_checked,
            instances_checked=self.instances_checked + other.instances_checked,
            labelings_checked=self.labelings_checked + other.labelings_checked,
            exhaustive=self.exhaustive and other.exhaustive,
            violations=self.violations + other.violations,
            notes=self.notes + other.notes,
        )

    def summary(self) -> str:
        status = "PASS" if self.passed else f"FAIL ({len(self.violations)} violations)"
        scope = "exhaustive" if self.exhaustive else "sampled"
        return (
            f"[{self.kind.value}] {self.lcp_name}: {status} — "
            f"{self.graphs_checked} graphs, {self.instances_checked} instances, "
            f"{self.labelings_checked} labelings ({scope})"
        )
