"""Binary decoders — the distributed verifier side of an LCP (Section 2.2).

A decoder is an ``r``-round local algorithm whose input views carry
certificates and whose output is accept (``True``) or reject (``False``).
"""

from __future__ import annotations

from abc import abstractmethod

from ..graphs.graph import Node
from ..local.algorithms import LocalAlgorithm
from ..local.instance import Instance
from ..local.views import View

ACCEPT = True
REJECT = False


class Decoder(LocalAlgorithm):
    """A binary decoder: accepts or rejects based on the local view."""

    @abstractmethod
    def decide(self, view: View) -> bool:
        """Accept (``True``) or reject (``False``) the certificate layout."""

    def run(self, view: View) -> bool:
        return self.decide(view)

    def decide_all(self, instance: Instance) -> dict[Node, bool]:
        """Run the decoder at every node of a labeled instance."""
        return self.run_on(instance)


class FunctionDecoder(Decoder):
    """Wrap a plain predicate ``View -> bool`` as a decoder."""

    def __init__(self, fn, radius: int = 1, anonymous: bool = False, name: str | None = None):
        self._fn = fn
        self.radius = radius
        self.anonymous = anonymous
        self._name = name or getattr(fn, "__name__", "FunctionDecoder")

    def decide(self, view: View) -> bool:
        return bool(self._fn(view))

    @property
    def name(self) -> str:
        return self._name


class ConstantDecoder(Decoder):
    """Accept (or reject) everything — degenerate baselines for the
    impossibility probes: the always-accept decoder is trivially hiding
    but violently unsound, the always-reject one is sound but incomplete."""

    def __init__(self, verdict: bool, radius: int = 1, anonymous: bool = True):
        self.verdict = verdict
        self.radius = radius
        self.anonymous = anonymous

    def decide(self, view: View) -> bool:
        return self.verdict

    @property
    def name(self) -> str:
        return f"ConstantDecoder({self.verdict})"
