"""Wrapping bare decoders as LCPs via brute-force proving.

The impossibility experiments (Theorem 1.2) quantify over decoders, not
over full LCP schemes: a candidate decoder has no prover attached.
:class:`EnumerativeLCP` turns any decoder with a finite certificate
alphabet into an LCP whose "prover" simply searches the labeling space
for unanimously accepted assignments — the existential quantifier of
completeness made executable.
"""

from __future__ import annotations

from collections.abc import Iterator
from itertools import product

from ..errors import PromiseViolationError
from ..graphs.graph import Graph
from ..local.instance import Instance
from ..local.labeling import (
    Certificate,
    Labeling,
    all_labelings,
    count_labelings,
    labeling_key,
    node_sort_order,
)
from ..local.views import relabel_view
from ..perf.cache import layouts_for_instance, memoized_decide
from .decoder import Decoder
from .lcp import LCP
from .prover import Prover


def unanimously_accepted_labelings(
    decoder: Decoder,
    instance: Instance,
    alphabet: list[Certificate],
    radius: int,
    include_ids: bool,
    seen: set[tuple] | None = None,
    stabilizer: tuple | None = None,
    account=None,
    kernel: str | None = None,
    stats=None,
) -> Iterator[Labeling]:
    """Labelings of *instance* over *alphabet* that every node accepts.

    The executable "there exists a labeling accepted at every node" of
    completeness, shared by :class:`SearchProver` and the Lemma 3.1 sweep
    (:func:`repro.neighborhood.aviews.labeled_yes_instances`).  Runs
    through the performance layer: layouts are extracted once per
    instance base and decoder verdicts are memoized per canonical view.

    *seen* deduplicates by :func:`labeling_key`; passing a caller-owned
    set lets the sweep skip labelings its prover already produced (the
    set is updated in place).

    *stabilizer* (index permutations over the graph's insertion-order
    nodes, identity first — see :func:`repro.symmetry.prune.
    instance_stabilizer`) enables orbit pruning: only the minimal
    labeling of each stabilizer orbit is decided and yielded.  Sound
    because the permuted labeling of a port/id-preserving automorphism
    produces the identical multiset of node views.  The labelings this
    suppresses relative to the brute loop are tallied on *account*
    (:class:`repro.symmetry.prune.SymmetryAccount`), which the engine
    folds back into ``instances_scanned``.

    *kernel* selects the inner-loop evaluator: ``None`` for the scalar
    loops below, ``"batch"`` for the vectorized block kernel of
    :mod:`repro.kernel` (same yield stream, ``seen`` mutations, and
    account totals at every yield point).  When numpy is unavailable —
    or the labeling space cannot be indexed — the batch request
    silently falls back to the scalar path, preserving zero-dependency
    operation.  *stats* receives the kernel's batch counters (defaults
    to the process-wide stats).
    """
    layouts = layouts_for_instance(instance, radius, include_ids=include_ids)
    node_order = node_sort_order(instance.graph)
    if seen is None:
        seen = set()
    if kernel is not None:
        if kernel != "batch":
            raise ValueError(f"unknown sweep kernel {kernel!r}; known: batch")
        from ..kernel import numpy_or_none  # noqa: PLC0415

        np = numpy_or_none()
        if np is not None:
            from ..kernel.batch import batch_unanimous_labelings, kernel_supports  # noqa: PLC0415

            if kernel_supports(instance.graph, alphabet):
                yield from batch_unanimous_labelings(
                    decoder,
                    layouts,
                    instance.graph,
                    alphabet,
                    node_order,
                    seen,
                    stabilizer,
                    account,
                    np=np,
                    stats=stats,
                )
                return
    decide = memoized_decide(decoder)
    if stabilizer is not None and len(stabilizer) > 1:
        yield from _orbit_pruned_labelings(
            decide, layouts, instance.graph, alphabet, node_order, seen,
            stabilizer, account,
        )
        return
    for labeling in all_labelings(instance.graph, alphabet):
        if account is not None:
            account.labelings_total += 1
        key = labeling_key(labeling, node_order)
        if key in seen:
            continue
        if all(
            decide(relabel_view(template, order, labeling))
            for template, order in layouts.values()
        ):
            seen.add(key)
            yield labeling


def _orbit_pruned_labelings(
    decide,
    layouts,
    graph: Graph,
    alphabet: list[Certificate],
    node_order: list,
    seen: set[tuple],
    stabilizer: tuple,
    account,
) -> Iterator[Labeling]:
    """The stabilizer-orbit-pruned core of the unanimity search.

    Enumerates labelings as alphabet-index tuples in the exact order of
    :func:`repro.local.labeling.all_labelings` and decides only orbit
    minima (index tuples compare as ints; certificate values may mix
    types).  The yielded stream is a subsequence of the brute stream —
    the minimum of an orbit is the first member product order visits —
    and suppressed orbit mates contribute no new canonical views, so
    builder event streams are unchanged.  Accepted-instance accounting
    is exact: per accepted orbit, the mates neither yielded here nor
    already in *seen* (the prover's keys) are added to
    ``account.instances_suppressed``.
    """
    nodes = graph.nodes
    n = len(nodes)
    node_index = {v: i for i, v in enumerate(nodes)}
    order_pos = [node_index[v] for v in node_order]
    others = stabilizer[1:]
    indices = range(n)
    for t in product(range(len(alphabet)), repeat=n):
        if account is not None:
            account.labelings_total += 1
        is_rep = True
        for sigma in others:
            if tuple(t[sigma[i]] for i in indices) < t:
                is_rep = False
                break
        if not is_rep:
            if account is not None:
                account.labelings_pruned += 1
            continue
        labeling = Labeling({nodes[i]: alphabet[t[i]] for i in indices})
        if not all(
            decide(relabel_view(template, order, labeling))
            for template, order in layouts.values()
        ):
            continue
        orbit = {t}
        for sigma in others:
            orbit.add(tuple(t[sigma[i]] for i in indices))
        keys = {tuple(alphabet[u[j]] for j in order_pos) for u in orbit}
        rep_key = tuple(alphabet[t[j]] for j in order_pos)
        in_seen = sum(1 for key in keys if key in seen)
        if rep_key in seen:
            suppressed = len(orbit) - in_seen
        else:
            suppressed = len(orbit) - in_seen - 1
            seen.add(rep_key)
            yield labeling
        if account is not None:
            account.instances_suppressed += suppressed


class SearchProver(Prover):
    """Find accepted labelings by exhaustive search over an alphabet.

    The search runs through the performance layer: view layouts are
    extracted once per instance base (shared with the neighborhood-graph
    sweep via the process-wide layout cache) and decoder verdicts are
    memoized per canonical view, which collapses the inner loop of the
    ``|alphabet| ** n`` search to mostly cache lookups.
    """

    def __init__(self, decoder: Decoder, alphabet: list[Certificate], search_limit: int = 300_000):
        self._decoder = decoder
        self._alphabet = list(alphabet)
        self.search_limit = search_limit

    def certify(self, instance: Instance) -> Labeling:
        for labeling in self.all_certifications(instance):
            return labeling
        raise PromiseViolationError(
            f"no labeling over {len(self._alphabet)} symbols is unanimously "
            f"accepted on this {instance.n}-node instance"
        )

    def all_certifications(self, instance: Instance) -> Iterator[Labeling]:
        if count_labelings(instance.graph, len(self._alphabet)) > self.search_limit:
            raise PromiseViolationError(
                f"labeling space exceeds the search limit ({self.search_limit})"
            )
        yield from unanimously_accepted_labelings(
            self._decoder,
            instance.without_labeling(),
            self._alphabet,
            self._decoder.radius,
            include_ids=not self._decoder.anonymous,
        )

    @property
    def name(self) -> str:
        return f"SearchProver({self._decoder.name})"


class EnumerativeLCP(LCP):
    """An LCP assembled from a bare decoder and a finite alphabet.

    *promise_fn* optionally restricts the promise class; *k* defaults
    to 2.  Completeness of the result is whatever the search finds — the
    impossibility experiments report incomplete candidates as such.
    """

    def __init__(
        self,
        decoder: Decoder,
        alphabet: list[Certificate],
        promise_fn=None,
        k: int = 2,
        name: str | None = None,
        search_limit: int = 300_000,
    ) -> None:
        self.k = k
        self.radius = decoder.radius
        self.anonymous = decoder.anonymous
        self._decoder = decoder
        self._alphabet = list(alphabet)
        self._prover = SearchProver(decoder, alphabet, search_limit=search_limit)
        self._promise_fn = promise_fn
        self._name = name or f"EnumerativeLCP({decoder.name})"

    @property
    def prover(self) -> Prover:
        return self._prover

    @property
    def decoder(self) -> Decoder:
        return self._decoder

    @property
    def name(self) -> str:
        return self._name

    def promise(self, graph: Graph) -> bool:
        if self._promise_fn is None:
            return True
        return bool(self._promise_fn(graph))

    def certificate_alphabet(self, graph: Graph) -> list[Certificate]:
        return list(self._alphabet)

    def certificate_bits(self, certificate: Certificate, n: int, id_bound: int) -> int:
        return max(1, (len(self._alphabet) - 1).bit_length())
