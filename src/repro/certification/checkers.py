"""Machine checks for completeness, soundness, and strong soundness.

Each checker enumerates (instances × labelings) and returns a
:class:`~repro.certification.reports.CheckReport` with explicit
counterexamples.  The quantifier structure mirrors Section 2:

* completeness — ∀ yes-instance ∀ ports ∀ ids ∃ labeling accepted by all
  (we check the prover's labelings over enumerated/sampled ports & ids);
* soundness — ∀ no-instance ∀ ports ∀ ids ∀ labeling ∃ rejecting node;
* strong soundness — ∀ instance ∀ ports ∀ ids ∀ labeling: accepting nodes
  induce a bipartite graph (for 2-col).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from ..graphs.graph import Graph, Node
from ..graphs.properties import bipartition
from ..local.identifiers import IdentifierAssignment
from ..local.instance import Instance
from ..local.labeling import Labeling
from ..local.ports import PortAssignment, all_port_assignments, count_port_assignments
from ..local.views import extract_view_layouts, relabel_view
from .adversary import Adversary
from .lcp import LCP
from .reports import CheckKind, CheckReport, Violation


class FastVerifier:
    """Run one decoder over many labelings of one instance, cheaply.

    View canonicalization never depends on labels, so the views of every
    labeling share the same templates; only the label tuples change.
    This makes exhaustive-adversary sweeps (``|Σ|^n`` labelings) orders
    of magnitude faster than re-extracting views each time.
    """

    def __init__(self, lcp: LCP, instance: Instance) -> None:
        self._lcp = lcp
        self._layouts = extract_view_layouts(
            instance.without_labeling(), lcp.radius, include_ids=not lcp.anonymous
        )

    def votes(self, labeling: Labeling) -> dict[Node, bool]:
        decide = self._lcp.decoder.decide
        return {
            v: decide(relabel_view(template, order, labeling))
            for v, (template, order) in self._layouts.items()
        }

    def unanimous(self, labeling: Labeling) -> bool:
        decide = self._lcp.decoder.decide
        for _v, (template, order) in self._layouts.items():
            if not decide(relabel_view(template, order, labeling)):
                return False
        return True

    def accepting(self, labeling: Labeling) -> set[Node]:
        return {v for v, vote in self.votes(labeling).items() if vote}


def instances_for(
    graph: Graph,
    port_limit: int = 8,
    id_samples: int = 2,
    id_bound_factor: int = 2,
    seed: int = 0,
) -> Iterator[Instance]:
    """Enumerate (ports × identifiers) configurations of one graph.

    Ports: all assignments when their count is at most *port_limit*, else
    the canonical one plus random ones up to the limit.  Identifiers: the
    canonical ``1..n`` plus *id_samples - 1* random assignments into
    ``[id_bound_factor * n]``.
    """
    n = graph.order
    id_bound = max(1, id_bound_factor * n)

    ports: list[PortAssignment] = []
    if count_port_assignments(graph) <= port_limit:
        ports = list(all_port_assignments(graph))
    else:
        ports = [PortAssignment.canonical(graph)]
        ports += [PortAssignment.random(graph, seed + i) for i in range(1, port_limit)]

    identifier_sets = [IdentifierAssignment.canonical(graph)]
    identifier_sets += [
        IdentifierAssignment.random(graph, id_bound, seed + 100 + i)
        for i in range(max(0, id_samples - 1))
    ]

    for prt in ports:
        for ids in identifier_sets:
            yield Instance(graph=graph, ports=prt, ids=ids, id_bound=id_bound)


def check_completeness(
    lcp: LCP,
    graphs: Iterable[Graph],
    port_limit: int = 8,
    id_samples: int = 2,
    seed: int = 0,
) -> CheckReport:
    """Prover certificates must be unanimously accepted on yes-instances."""
    report = CheckReport(kind=CheckKind.COMPLETENESS, lcp_name=lcp.name)
    for graph in graphs:
        if not lcp.is_yes_instance(graph):
            report.notes.append(f"skipped non-yes-instance graph (n={graph.order})")
            continue
        report.graphs_checked += 1
        for instance in instances_for(graph, port_limit=port_limit, id_samples=id_samples, seed=seed):
            report.instances_checked += 1
            labeling = lcp.prover.certify(instance)
            report.labelings_checked += 1
            result = lcp.check(instance.with_labeling(labeling))
            if not result.unanimous:
                report.violations.append(
                    Violation(
                        kind=CheckKind.COMPLETENESS,
                        instance=instance,
                        labeling=labeling,
                        rejecting=tuple(sorted(result.rejecting, key=repr)),
                        note="prover certificate rejected",
                    )
                )
    return report


def check_soundness(
    lcp: LCP,
    graphs: Iterable[Graph],
    adversary: Adversary,
    port_limit: int = 2,
    id_samples: int = 1,
    seed: int = 0,
) -> CheckReport:
    """No labeling of a no-instance may be unanimously accepted."""
    report = CheckReport(kind=CheckKind.SOUNDNESS, lcp_name=lcp.name)
    report.exhaustive = adversary.exhaustive
    for graph in graphs:
        if not lcp.is_no_instance(graph):
            report.notes.append(f"skipped non-no-instance graph (n={graph.order})")
            continue
        report.graphs_checked += 1
        for instance in instances_for(graph, port_limit=port_limit, id_samples=id_samples, seed=seed):
            report.instances_checked += 1
            verifier = FastVerifier(lcp, instance)
            for labeling in adversary.labelings(lcp, instance):
                report.labelings_checked += 1
                if verifier.unanimous(labeling):
                    report.violations.append(
                        Violation(
                            kind=CheckKind.SOUNDNESS,
                            instance=instance,
                            labeling=labeling,
                            note="no-instance accepted unanimously",
                        )
                    )
    return report


def check_strong_soundness(
    lcp: LCP,
    graphs: Iterable[Graph],
    adversary: Adversary,
    port_limit: int = 2,
    id_samples: int = 1,
    seed: int = 0,
) -> CheckReport:
    """Accepting nodes must induce a 2-colorable subgraph, on *every*
    graph and labeling (Section 2.3) — no promise filter here."""
    report = CheckReport(kind=CheckKind.STRONG_SOUNDNESS, lcp_name=lcp.name)
    report.exhaustive = adversary.exhaustive
    for graph in graphs:
        report.graphs_checked += 1
        for instance in instances_for(graph, port_limit=port_limit, id_samples=id_samples, seed=seed):
            report.instances_checked += 1
            verifier = FastVerifier(lcp, instance)
            for labeling in adversary.labelings(lcp, instance):
                report.labelings_checked += 1
                induced = graph.induced_subgraph(verifier.accepting(labeling))
                split = bipartition(induced)
                if not split.is_bipartite:
                    report.violations.append(
                        Violation(
                            kind=CheckKind.STRONG_SOUNDNESS,
                            instance=instance,
                            labeling=labeling,
                            witness=tuple(split.odd_cycle or ()),
                            note="accepting nodes induce an odd cycle",
                        )
                    )
    return report


def find_strong_soundness_violation(
    lcp: LCP,
    graphs: Iterable[Graph],
    adversary: Adversary,
    port_limit: int = 2,
    seed: int = 0,
) -> Violation | None:
    """First strong-soundness violation found, or ``None``.

    Used by the impossibility probes (Theorem 1.2), where a single
    counterexample settles the question for a candidate decoder.
    """
    for graph in graphs:
        for instance in instances_for(graph, port_limit=port_limit, id_samples=1, seed=seed):
            verifier = FastVerifier(lcp, instance)
            for labeling in adversary.labelings(lcp, instance):
                induced = graph.induced_subgraph(verifier.accepting(labeling))
                split = bipartition(induced)
                if not split.is_bipartite:
                    return Violation(
                        kind=CheckKind.STRONG_SOUNDNESS,
                        instance=instance,
                        labeling=labeling,
                        witness=tuple(split.odd_cycle or ()),
                        note="accepting nodes induce an odd cycle",
                    )
    return None
