"""Vectorized batch kernel for the Lemma 3.1 unanimity sweep.

The hot loop of every experiment asks, for one ``(graph, ports, ids)``
base, which of the ``|alphabet| ** n`` labelings every node accepts.
The scalar loops in :mod:`repro.certification.enumeration` decide one
labeling at a time; this package evaluates them in blocks:

* :mod:`repro.kernel.tables` precomputes, per view-layout template, a
  boolean **acceptance table** indexed by the mixed-radix encoding of
  the certificate choices visible in that view — acceptance depends
  only on the template and the labels at its positions, never on the
  rest of the labeling;
* :mod:`repro.kernel.batch` materializes candidate labelings as a
  ``(batch, nodes)`` integer digit matrix, gathers each node's verdict
  from its table, AND-reduces across nodes, and yields the accepted
  labelings in the exact order — with the exact ``seen``-set and
  :class:`~repro.symmetry.prune.SymmetryAccount` semantics — of the
  scalar generators, so streaming early exit, orbit pruning, and
  warm-start parity all survive.

numpy is optional.  The probe below gates every entry point: without
numpy (or with ``REPRO_DISABLE_NUMPY`` set in the environment) the
kernel reports itself unavailable, callers fall back to the pure-Python
loops, and the package keeps its zero-dependency contract.
"""

from __future__ import annotations

import os

#: Name of the block evaluator, as carried by ``ExecutionPlan`` routing
#: and ``Provenance.kernel``.
KERNEL_BATCH = "batch"

#: Environment switch that forces the pure-Python fallback even when
#: numpy is importable (used by the no-numpy CI leg and fallback tests).
DISABLE_ENV = "REPRO_DISABLE_NUMPY"

#: Probe cache: ``None`` = not probed yet, ``False`` = import failed,
#: otherwise the numpy module itself.
_NUMPY: object = None


def _probe():
    global _NUMPY
    if _NUMPY is None:
        try:
            import numpy  # noqa: PLC0415

            _NUMPY = numpy
        except ImportError:  # pragma: no cover - exercised via DISABLE_ENV
            _NUMPY = False
    return _NUMPY


def numpy_or_none():
    """The numpy module, or ``None`` when missing or disabled.

    The environment switch is re-read on every call so tests (and the
    no-numpy CI leg) can flip availability without reimporting; the
    import itself is probed once per process.
    """
    if os.environ.get(DISABLE_ENV):
        return None
    module = _probe()
    return module if module is not False else None


def kernel_available() -> bool:
    """Whether the batch kernel can run in this process."""
    return numpy_or_none() is not None


def numpy_version() -> str | None:
    """The numpy version string, or ``None`` when unavailable."""
    np = numpy_or_none()
    return None if np is None else np.__version__


from .batch import batch_unanimous_labelings, kernel_supports  # noqa: E402
from .generate import (  # noqa: E402
    MAX_GENERATION_NODES,
    batch_colex_canonical,
    batch_min_edge_mask,
    generation_supported,
)
from .tables import acceptance_table, clear_kernel_tables  # noqa: E402

__all__ = [
    "DISABLE_ENV",
    "KERNEL_BATCH",
    "MAX_GENERATION_NODES",
    "acceptance_table",
    "batch_colex_canonical",
    "batch_min_edge_mask",
    "batch_unanimous_labelings",
    "clear_kernel_tables",
    "generation_supported",
    "kernel_available",
    "kernel_supports",
    "numpy_or_none",
    "numpy_version",
]
