"""Batched canonicalization for the generation-bound sweep path.

The even-cycle sweeps that dominate Lemma 3.1 wall time never enter the
labeling kernel (their ``16^n`` spaces exceed the admission limit); their
cost is the *generator* — :func:`repro.symmetry.canon.colex_canonical`
inside the orderly level build and :func:`repro.symmetry.canon.
min_edge_mask` at emission, both scalar per-graph DFS.  This module runs
the same searches over a whole batch of graphs at once: adjacency
bitsets are stacked into ``(batch, nodes)`` int64 matrices and each DFS
becomes a *level-synchronous frontier* — every partial assignment that
still ties for the minimum is extended one position per step, extension
bit-strings are packed into integer keys, and a vectorized per-graph
minimum filters the frontier.

Exactness, not approximation: a depth-first search with best-prefix
pruning keeps exactly the assignments whose every prefix equals the
running minimum, and the frontier *is* that set, synchronized by
position.  Order is preserved too — frontier rows stay (graph-major,
assignment-lexicographic), which is precisely the DFS emission order of
the scalar code — so the returned permutations match
``colex_canonical``/``min_edge_mask`` element for element and the
orderly generator built on top is byte-identical to the scalar one.

Everything here takes the numpy module as an explicit ``np`` argument
(callers hold the probe result of :func:`repro.kernel.numpy_or_none`);
the module imports nothing from :mod:`repro.symmetry`, so the symmetry
layer can import it without cycles.
"""

from __future__ import annotations

#: Largest node count the packed int64 bit arithmetic supports.  The
#: emission mask needs ``n * (n - 1) / 2`` bits and the frontier keys
#: ``n - 1`` bits, so the mask bound binds first: 62 bits = n <= 11.
#: Orderly generation at n = 12 is out of reach for other reasons long
#: before this guard matters; callers fall back to the scalar DFS.
MAX_GENERATION_NODES = 11


def generation_supported(n: int) -> bool:
    """Whether the batched searches can run for *n*-node graphs."""
    return 1 <= n <= MAX_GENERATION_NODES


def adjacency_matrix(rows_list, n: int, np):
    """Stack per-graph adjacency bitset rows into a ``(batch, n)`` int64
    matrix (the input format of every batched search here)."""
    if not rows_list:
        return np.zeros((0, n), dtype=np.int64)
    return np.array(rows_list, dtype=np.int64)


def popcounts(rows, n: int, np):
    """Per-node degrees of a ``(batch, n)`` bitset matrix (low *n* bits)."""
    shifts = np.arange(n, dtype=np.int64)
    return ((rows[:, :, None] >> shifts[None, None, :]) & 1).sum(
        axis=2, dtype=np.int64
    )


def _group_starts(gid, batch: int, np):
    """First frontier row of each graph.  Frontier ``gid`` arrays are
    always sorted ascending with every graph present (each graph keeps at
    least one minimal assignment), so ``reduceat`` segments are valid."""
    return np.searchsorted(gid, np.arange(batch, dtype=np.int64), side="left")


def _min_filter(keys, gid, batch: int, np):
    """Keep the frontier rows whose key equals their graph's minimum —
    the vectorized best-prefix pruning step."""
    starts = _group_starts(gid, batch, np)
    mins = np.minimum.reduceat(keys, starts)
    return keys == mins[gid]


def batch_colex_canonical(rows, n: int, np, stats=None):
    """All minimizing degree-respecting assignments of every graph in
    *rows*, in the scalar DFS order.

    *rows* is a ``(batch, n)`` int64 adjacency bitset matrix.  Returns
    ``(perms, gid)``: ``perms`` is a ``(total, n)`` int64 matrix of
    position-to-node assignments and ``gid[t]`` the graph index of row
    ``t``.  Rows are grouped by graph in ascending graph order, and
    within one graph appear in exactly the order
    :func:`repro.symmetry.canon.colex_canonical` appends them (its DFS
    tries nodes in ascending order, so minimizers come out
    assignment-lexicographic — which is the frontier order here).
    """
    batch = rows.shape[0]
    if batch == 0:
        return np.zeros((0, n), dtype=np.int64), np.zeros(0, dtype=np.int64)
    if stats is not None:
        stats.incr("generation_kernel_batches")
        stats.incr("canonicalizations", batch)
    node_shifts = np.arange(n, dtype=np.int64)
    degs = popcounts(rows, n, np)
    pos_deg = np.sort(degs, axis=1)

    gid = np.arange(batch, dtype=np.int64)
    assigned = np.zeros((batch, 0), dtype=np.int64)
    used = np.zeros(batch, dtype=np.int64)

    for p in range(n):
        # Valid extensions per state: node unused and of the degree the
        # next position block demands (the scalar loop's two `continue`s).
        cand = ((used[:, None] >> node_shifts[None, :]) & 1) == 0
        cand &= degs[gid] == pos_deg[gid, p][:, None]
        state, v = np.nonzero(cand)  # row-major: state-major, node-ascending
        new_gid = gid[state]
        if p:
            row_bits = rows[new_gid, v]
            ext = (row_bits[:, None] >> assigned[state]) & 1
            keys = ext @ (np.int64(1) << np.arange(p - 1, -1, -1, dtype=np.int64))
            keep = _min_filter(keys, new_gid, batch, np)
            state, v, new_gid = state[keep], v[keep], new_gid[keep]
        assigned = np.concatenate(
            [assigned[state], v[:, None].astype(np.int64)], axis=1
        )
        used = used[state] | (np.int64(1) << v)
        gid = new_gid
    return assigned, gid


def batch_deletion_flags(perms, gid, batch: int, last: int, np):
    """Per-graph flag: does *some* minimizing assignment put node *last*
    at the last position?  (The orderly child-side canonical-deletion
    test, ``any(pm[m] == m for pm in perms)``, over a whole batch.)"""
    flags = np.zeros(batch, dtype=bool)
    np.logical_or.at(flags, gid, perms[:, last] == last)
    return flags


def batch_automorphisms(perms, gid, batch: int, n: int, np):
    """Automorphism node-permutations from the minimizing assignments,
    per graph — the batched :func:`repro.symmetry.canon.
    automorphisms_from_perms`.

    Returns a ``(total, n)`` int64 matrix aligned with *perms*/*gid*:
    row ``t`` is ``perms[t] ∘ inverse(first perm of graph gid[t])`` as a
    node permutation, identity first per graph (the scalar convention).
    """
    starts = _group_starts(gid, batch, np)
    first = perms[starts]  # (batch, n): each graph's perms[0]
    pos0 = np.empty((batch, n), dtype=np.int64)
    cols = np.arange(n, dtype=np.int64)
    pos0[np.arange(batch)[:, None], first] = cols[None, :]
    return perms[np.arange(len(gid))[:, None], pos0[gid]]


def subset_bit_matrix(m: int, np):
    """``(2^m, m)`` matrix: row ``s`` holds the bits of subset ``s``
    (column ``i`` = bit ``i``), the unpacked form every subset filter
    here works on."""
    subsets = np.arange(1 << m, dtype=np.int64)
    return (subsets[:, None] >> np.arange(m, dtype=np.int64)[None, :]) & 1


def orbit_minimal_subsets(bits, perms, np):
    """Boolean mask over subsets ``0 .. 2^m - 1``: is the subset the
    minimum of its orbit under the node permutations *perms*?

    *bits* is the :func:`subset_bit_matrix` for ``m``; *perms* a
    ``(count, m)`` int64 matrix of non-identity permutations (``sigma``
    maps bit ``i`` to bit ``sigma[i]``, the convention of the scalar
    parent-side filter in :mod:`repro.symmetry.orderly`).  A subset is
    rejected exactly when some image is strictly smaller — repacking a
    permuted bit row by powers of two is the scalar loop's ``t``.
    """
    count = 1 << bits.shape[1] if bits.shape[1] else 1
    subsets = np.arange(count, dtype=np.int64)
    keep = np.ones(count, dtype=bool)
    if len(perms) == 0:
        return keep
    weights = np.int64(1) << perms  # (count_perms, m): 2**sigma[i]
    images = bits @ weights.T  # (2^m, count_perms)
    np.logical_and(keep, (images >= subsets[:, None]).all(axis=1), out=keep)
    return keep


def batch_min_edge_mask(rows, n: int, firsts, np, stats=None):
    """Minimal edge-subset masks and final minimizing assignments of a
    batch of graphs — the batched :func:`repro.symmetry.canon.
    min_edge_mask`.

    *rows* is a ``(batch, n)`` int64 bitset matrix; *firsts* gives, per
    graph, the candidate nodes for the last (most significant) position
    in their scalar candidate order (one automorphism-orbit
    representative each, in practice).  Returns ``(masks, perms)`` as a
    ``(batch,)`` int64 vector and a ``(batch, n)`` int64 matrix; the
    returned assignment is the *last* minimizer in DFS order, matching
    the scalar's overwrite-on-tie behavior exactly.
    """
    batch = rows.shape[0]
    if batch == 0:
        return np.zeros(0, dtype=np.int64), np.zeros((0, n), dtype=np.int64)
    if stats is not None:
        stats.incr("generation_kernel_batches")
        stats.incr("canonicalizations", batch)
    if n == 1:
        return np.zeros(batch, dtype=np.int64), np.zeros((batch, 1), dtype=np.int64)
    node_shifts = np.arange(n, dtype=np.int64)

    # Depth 0: seed the frontier with each graph's first-position
    # candidates in their given order (scalar candidate order).
    counts = [len(f) for f in firsts]
    gid = np.repeat(np.arange(batch, dtype=np.int64), counts)
    v0 = np.concatenate([np.asarray(f, dtype=np.int64) for f in firsts])
    assigned = v0[:, None]  # column j = node at position n - 1 - j
    used = np.int64(1) << v0

    for depth in range(1, n):
        cand = ((used[:, None] >> node_shifts[None, :]) & 1) == 0
        state, v = np.nonzero(cand)
        new_gid = gid[state]
        row_bits = rows[new_gid, v]
        # Bits against positions n-1 .. p+1 — assigned's column order is
        # already descending-position, i.e. most significant first.
        ext = (row_bits[:, None] >> assigned[state]) & 1
        keys = ext @ (np.int64(1) << np.arange(depth - 1, -1, -1, dtype=np.int64))
        keep = _min_filter(keys, new_gid, batch, np)
        state, v, new_gid = state[keep], v[keep], new_gid[keep]
        assigned = np.concatenate(
            [assigned[state], v[:, None].astype(np.int64)], axis=1
        )
        used = used[state] | (np.int64(1) << v)
        gid = new_gid

    # The scalar overwrites best_perm on every tying completion, so the
    # *last* frontier row per graph survives.
    last_rows = np.searchsorted(gid, np.arange(batch, dtype=np.int64), side="right") - 1
    final = assigned[last_rows]
    perms = np.empty((batch, n), dtype=np.int64)
    positions = np.arange(n - 1, -1, -1, dtype=np.int64)  # column j -> position
    perms[:, positions] = final

    # Relabeled adjacency bits -> legacy combination-order mask.
    rows_perm = rows[np.arange(batch)[:, None], perms]  # (batch, n) bitsets
    adj = (rows_perm[:, :, None] >> perms[:, None, :]) & 1  # (batch, n, n)
    iu, ju = np.triu_indices(n, k=1)
    # combinations(range(n), 2) order: pair (i, j) with i < j gets the
    # next index in (i-major, j-ascending) order — which is exactly
    # triu_indices order.
    weights = np.int64(1) << np.arange(len(iu), dtype=np.int64)
    masks = (adj[:, iu, ju] * weights[None, :]).sum(axis=1, dtype=np.int64)
    return masks, perms
