"""Per-template acceptance tables for the batch kernel.

A view-layout template (:func:`repro.local.views.extract_view_layouts`)
fixes everything a decoder can see except the certificate values at the
view's local positions.  For a finite alphabet of size ``a`` and a view
of size ``m``, the decoder's verdict is therefore a pure function of the
``a ** m`` possible label tuples — small, because the sweep only runs
when ``a ** n`` fits the plan's ``labeling_limit`` and ``m <= n``.

:func:`acceptance_table` materializes that function once as a boolean
numpy array indexed by the mixed-radix (base ``a``, most-significant
first) encoding of the alphabet indices, in the exact enumeration order
of ``itertools.product``.  Tables are cached process-wide per
``(decoder, template, alphabet)`` — two nodes (or two bases) that share
a template share one table — and built through
:func:`repro.perf.cache.memoized_decide`, so scalar and vectorized
sweeps also share one decision memo.
"""

from __future__ import annotations

from itertools import product

from ..local.views import View
from ..perf.cache import LRUCache, memoized_decide
from ..perf.stats import GLOBAL_STATS, PerfStats

#: ``(id(decoder), template, alphabet) -> (anchor, table)``.  The anchor
#: keeps the decoder alive so its ``id`` cannot be recycled while the
#: entry is mapped (same identity-key discipline as the decision memo).
_TABLES = LRUCache(1024)

#: Pre-seeded tables shipped into pool workers, keyed by
#: ``(decoder.name, template, alphabet)``.  Object ids do not survive
#: pickling, so the seed store keys by the registry name instead — sound
#: because registry decoders are pure functions of their name.  Consulted
#: only on an LRU miss; matches are promoted into :data:`_TABLES` under
#: the local decoder's identity key.
_SEED_TABLES: dict = {}


def clear_kernel_tables() -> None:
    """Drop every cached acceptance table (benchmarks, test isolation)."""
    _TABLES.clear()
    _SEED_TABLES.clear()


def kernel_tables_snapshot() -> dict:
    """Picklable snapshot of the warm acceptance tables.

    Keys switch from the process-local ``id(decoder)`` to the decoder's
    registry ``name`` so the snapshot survives the trip into a worker
    process.  Decoders without a ``name`` attribute are skipped — they
    cannot be re-identified on the far side.
    """
    snapshot = {}
    for (_, template, alphabet), (decoder, table) in _TABLES.items():
        name = getattr(decoder, "name", None)
        if name is not None:
            snapshot[(name, template, alphabet)] = table
    return snapshot


def prime_kernel_tables(snapshot: dict) -> None:
    """Install a :func:`kernel_tables_snapshot` into this process's seed
    store (pool-worker initializer; see :mod:`repro.perf.pool`)."""
    _SEED_TABLES.update(snapshot)


def _template_with_labels(template: View, labels: tuple) -> View:
    # Same fast clone as repro.local.views.relabel_view, but from a raw
    # label tuple instead of a Labeling (the table builder enumerates
    # label combos directly).
    view = View.__new__(View)
    state = view.__dict__
    state.update(template.__dict__)
    state.pop("_hash", None)
    state["labels"] = labels
    return view


def acceptance_table(
    decoder, template: View, alphabet: tuple, np, stats: PerfStats | None = None
):
    """The decoder's verdict for every labeling of *template*.

    Returns a boolean array of length ``len(alphabet) ** template.size``
    where entry ``i`` is the verdict on the label tuple whose alphabet
    indices encode ``i`` in base ``len(alphabet)``, most-significant
    local position first.
    """
    stats = stats or GLOBAL_STATS
    key = (id(decoder), template, alphabet)
    entry = _TABLES.get(key)
    if entry is not None:
        stats.incr("kernel_table_hits")
        return entry[1]
    if _SEED_TABLES:
        name = getattr(decoder, "name", None)
        seeded = _SEED_TABLES.get((name, template, alphabet))
        if seeded is not None:
            stats.incr("kernel_table_seed_hits")
            _TABLES.put(key, (decoder, seeded))
            return seeded
    stats.incr("kernel_table_misses")
    decide = memoized_decide(decoder, stats)
    size = len(alphabet) ** template.size
    table = np.empty(size, dtype=bool)
    for i, combo in enumerate(product(alphabet, repeat=template.size)):
        table[i] = decide(_template_with_labels(template, combo))
    stats.incr("kernel_table_entries", size)
    _TABLES.put(key, (decoder, table))
    return table
