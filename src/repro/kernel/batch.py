"""Block-wise vectorized evaluation of the unanimity sweep.

:func:`batch_unanimous_labelings` is a drop-in for the scalar generators
in :mod:`repro.certification.enumeration`: same yield order, same
``seen``-set updates, and — critically for provenance parity under
streaming early exit — the same
:class:`~repro.symmetry.prune.SymmetryAccount` totals *at every yield
point*.  The scalar generators count candidates lazily as the consumer
pulls; this one evaluates a whole block with numpy but commits counter
ranges only when a labeling is about to be yielded (and the remainder on
exhaustion), so a consumer that closes the generator mid-sweep observes
byte-identical accounting.

Per block of candidate indices ``[start, stop)``:

1. decode the indices into a ``(batch, n)`` digit matrix (mixed radix,
   base ``|alphabet|``, one column per graph node in insertion order —
   the exact enumeration order of
   :func:`repro.local.labeling.all_labelings`);
2. under orbit pruning, keep only stabilizer-orbit minima: a row is a
   representative iff its base-``a`` integer key is ``<=`` the key of
   every stabilizer-permuted copy (integer comparison of the digit
   rows' place values is exactly their lexicographic order);
3. gather each node's verdict from its acceptance table
   (:func:`repro.kernel.tables.acceptance_table`) via the node's layout
   columns and AND-reduce across nodes;
4. post-process the surviving rows in order with the scalar dedup /
   orbit-accounting logic (few rows survive; this part stays Python).
"""

from __future__ import annotations

from collections.abc import Iterator

from ..local.labeling import Labeling
from ..local.views import layout_label_columns
from ..obs.metrics import DEFAULT_SIZE_BUCKETS
from ..perf.config import CONFIG
from ..perf.stats import GLOBAL_STATS, PerfStats
from .tables import acceptance_table

#: Largest labeling space the int64 index arithmetic can address.  The
#: plan's ``labeling_limit`` sits orders of magnitude below this; the
#: guard exists so a pathological caller falls back to the scalar loop
#: instead of overflowing.
MAX_INT64_SPACE = 2**62


def kernel_supports(graph, alphabet) -> bool:
    """Whether the batch kernel can enumerate this labeling space."""
    a = len(alphabet)
    return a >= 1 and graph.order >= 1 and a**graph.order <= MAX_INT64_SPACE


def batch_unanimous_labelings(
    decoder,
    layouts: dict,
    graph,
    alphabet: list,
    node_order: tuple,
    seen: set,
    stabilizer: tuple | None,
    account,
    np,
    stats: PerfStats | None = None,
    block_size: int | None = None,
) -> Iterator[Labeling]:
    """Unanimously accepted labelings of one base, evaluated in blocks.

    Mirrors :func:`repro.certification.enumeration.
    unanimously_accepted_labelings` (and its orbit-pruned core) exactly:
    the yielded stream, the ``seen`` mutations, and the *account* state
    observable at each yield and at exhaustion are identical.
    """
    stats = stats or GLOBAL_STATS
    a = len(alphabet)
    nodes = graph.nodes
    n = len(nodes)
    node_index = {v: i for i, v in enumerate(nodes)}
    order_pos = [node_index[v] for v in node_order]
    total = a**n
    block = block_size or CONFIG.kernel_block_size
    metrics = stats.metrics

    # Column place values: candidate index i has digit matrix row
    # (i // a**(n-1)) % a, ..., i % a — product(alphabet, repeat=n) order.
    place = a ** np.arange(n - 1, -1, -1, dtype=np.int64)
    # Per-node gather plans: verdict of node v on a digit row is
    # table[row[cols] @ weights].
    plans = []
    for template, order in layouts.values():
        table = acceptance_table(decoder, template, tuple(alphabet), np, stats=stats)
        cols = np.array(layout_label_columns(order, node_index), dtype=np.intp)
        weights = a ** np.arange(len(order) - 1, -1, -1, dtype=np.int64)
        plans.append((table, cols, weights))

    perms = None
    others = ()
    if stabilizer is not None and len(stabilizer) > 1:
        others = stabilizer[1:]
        perms = np.array(others, dtype=np.intp)

    for start in range(0, total, block):
        stop = min(start + block, total)
        indices = np.arange(start, stop, dtype=np.int64)
        digits = (indices[:, None] // place[None, :]) % a
        stats.incr("kernel_batches")
        stats.incr("kernel_labelings", stop - start)
        if metrics is not None:
            metrics.observe("kernel_batch_size", stop - start, DEFAULT_SIZE_BUCKETS)

        if perms is not None:
            keys = digits @ place
            is_rep = np.ones(len(indices), dtype=bool)
            for sigma in perms:
                np.logical_and(is_rep, digits[:, sigma] @ place >= keys, out=is_rep)
            rep_rows = np.nonzero(is_rep)[0]
            candidates = digits[rep_rows]
            # Prefix counts of pruned (non-representative) rows, so any
            # in-block range [lo, hi) knows its pruned share.
            pruned_prefix = np.zeros(len(indices) + 1, dtype=np.int64)
            np.cumsum(~is_rep, out=pruned_prefix[1:])
        else:
            rep_rows = None
            candidates = digits
            pruned_prefix = None

        if len(candidates):
            accepted = np.ones(len(candidates), dtype=bool)
            for table, cols, weights in plans:
                np.logical_and(
                    accepted, table[candidates[:, cols] @ weights], out=accepted
                )
            hits = np.nonzero(accepted)[0]
            if rep_rows is not None:
                hits = rep_rows[hits]
        else:
            hits = ()

        # Scalar tail: dedup, orbit accounting, and the lazily committed
        # counters.  ``cursor`` is the first block-local candidate whose
        # labelings_total/pruned increments have not been committed yet.
        cursor = 0
        for p in (hits.tolist() if len(hits) else ()):
            t = tuple(digits[p].tolist())
            if perms is None:
                key = tuple(alphabet[t[j]] for j in order_pos)
                if key in seen:
                    continue
                if account is not None:
                    account.labelings_total += p + 1 - cursor
                cursor = p + 1
                seen.add(key)
                yield Labeling({nodes[i]: alphabet[t[i]] for i in range(n)})
                continue
            orbit = {t}
            for sigma in others:
                orbit.add(tuple(t[sigma[i]] for i in range(n)))
            orbit_keys = {tuple(alphabet[u[j]] for j in order_pos) for u in orbit}
            rep_key = tuple(alphabet[t[j]] for j in order_pos)
            in_seen = sum(1 for key in orbit_keys if key in seen)
            if rep_key in seen:
                if account is not None:
                    account.instances_suppressed += len(orbit) - in_seen
                continue
            suppressed = len(orbit) - in_seen - 1
            if account is not None:
                account.labelings_total += p + 1 - cursor
                account.labelings_pruned += int(
                    pruned_prefix[p + 1] - pruned_prefix[cursor]
                )
            cursor = p + 1
            seen.add(rep_key)
            yield Labeling({nodes[i]: alphabet[t[i]] for i in range(n)})
            # Committed only if the consumer pulls again — exactly like
            # the scalar generator, whose post-yield increment never
            # runs when the sweep early-exits on this labeling.
            if account is not None:
                account.instances_suppressed += suppressed
        if account is not None:
            remaining = len(indices) - cursor
            if remaining:
                account.labelings_total += remaining
                if pruned_prefix is not None:
                    account.labelings_pruned += int(
                        pruned_prefix[len(indices)] - pruned_prefix[cursor]
                    )
