"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  The sub-classes mirror the layers of
the system: graph substrate, LOCAL-model substrate, and the certification
framework.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Invalid graph construction or graph-level query."""


class NodeNotFoundError(GraphError):
    """A queried node is not present in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError):
    """A queried edge is not present in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.edge = (u, v)


class DisconnectedGraphError(GraphError):
    """An operation that requires a connected graph got a disconnected one."""


class PortAssignmentError(ReproError):
    """A port assignment violates the model's constraints (Section 2.2)."""


class IdentifierAssignmentError(ReproError):
    """An identifier assignment is not injective or exceeds the id space."""


class LabelingError(ReproError):
    """A labeling (certificate assignment) is malformed."""


class ViewError(ReproError):
    """A view could not be extracted or canonicalized."""


class PromiseViolationError(ReproError):
    """A prover was asked to certify an instance outside its promise class."""


class CertificationError(ReproError):
    """A certification-framework invariant was violated."""


class RealizabilityError(ReproError):
    """A subgraph of the neighborhood graph could not be realized."""


class ExperimentError(ReproError):
    """An experiment failed to run or produced inconsistent results."""
