"""One shard's work: expand its subtree, sweep it, report exact deltas.

:func:`run_shard` runs inside a pool worker (top-level, so it pickles).
It rebuilds the levels ``depth+1 .. n`` under its root slice with the
memo-free :func:`repro.symmetry.orderly.build_level`, emits each size's
classes in ascending-mask order, and sweeps every emitted graph through
the same :func:`~repro.neighborhood.aviews.labeled_yes_instances` loop
the serial engine runs — one graph at a time, with a fresh
:class:`~repro.symmetry.prune.SymmetryAccount` whose per-yield deltas
let the parent replay the account exactly (including the serial
abandoned-generator semantics of an early exit; see
:func:`repro.perf.parallel._replay_chunk`).

The result is a plain picklable dict::

    {"shard": {...}, "pid", "elapsed_s", "sizes": {size: [block, ...]},
     "stats", "global_stats", "spans"}

where each *block* covers one emitted graph: its mask, the labeled
instances it yielded with their ``(accepting, edges)`` scans and
account deltas, and the trailing delta the generator records after the
graph's last yield.
"""

from __future__ import annotations

import dataclasses
import os
import time

from ..neighborhood.aviews import labeled_yes_instances
from ..obs.trace import worker_span
from ..perf.config import CONFIG
from ..perf.parallel import InstanceScanner
from ..perf.stats import GLOBAL_STATS, PerfStats
from ..symmetry.orderly import build_level, emit_entries
from ..symmetry.prune import SymmetryAccount

#: GLOBAL_STATS counters the worker reports back as deltas — generation
#: work that the serial sweep would have recorded in the parent process.
_GLOBAL_COUNTERS = ("canonicalizations", "orderly_generations")


def run_shard(payload: dict) -> dict:
    """Expand and sweep one shard (pool-worker entry point).

    *payload* keys: ``lcp``, ``n``, ``lo`` (warm-start floor — sizes at
    or below it are skipped), ``shard`` (:class:`~repro.shard.spec.Shard`),
    ``roots`` (the shard's level-``depth`` entry slice), ``bounds``
    (enumeration-bound kwargs), ``symmetry``, ``generation_kernel``,
    ``kernel``, ``traced``.
    """
    lcp = payload["lcp"]
    n = payload["n"]
    lo = payload["lo"]
    shard = payload["shard"]
    start = time.perf_counter()
    stats = PerfStats()
    spans: list[dict] = []
    global_before = {name: GLOBAL_STATS.get(name) for name in _GLOBAL_COUNTERS}
    scanner = InstanceScanner(lcp, stats)
    sizes: dict[int, list] = {}
    with CONFIG.overridden(
        symmetry=payload["symmetry"], generation_kernel=payload["generation_kernel"]
    ):
        with worker_span(
            "worker:shard",
            spans if payload["traced"] else None,
            worker_pid=os.getpid(),
            shard_index=shard.index,
            roots=len(payload["roots"]),
        ):
            entries = payload["roots"]
            for size in range(shard.depth + 1, n + 1):
                entries = build_level(size, entries)
                if size <= lo:
                    continue
                blocks = []
                for mask, graph in emit_entries(entries, size):
                    blocks.append(
                        _sweep_graph(lcp, graph, mask, n, payload, scanner, stats)
                    )
                sizes[size] = blocks
    global_stats = {
        name: GLOBAL_STATS.get(name) - global_before[name]
        for name in _GLOBAL_COUNTERS
        if GLOBAL_STATS.get(name) != global_before[name]
    }
    return {
        "shard": dataclasses.asdict(shard),
        "pid": os.getpid(),
        "elapsed_s": time.perf_counter() - start,
        "sizes": sizes,
        "stats": stats.as_dict(),
        "global_stats": global_stats,
        "spans": spans,
    }


def _sweep_graph(
    lcp, graph, mask: int, n: int, payload: dict, scanner, stats: PerfStats
) -> dict:
    """Sweep one emitted graph; capture instances, scans, and deltas.

    The account is fresh per graph — sound because the serial sweep's
    account mutations are per-graph independent (``base_counts`` resets
    per graph and every counter is purely additive) — so summing the
    deltas across graphs in replay order reproduces the serial totals.
    """
    account = SymmetryAccount()
    previous = account.as_tuple()
    instances: list = []
    results: list = []
    deltas: list = []
    for instance in labeled_yes_instances(
        lcp,
        [graph],
        id_bound=n,
        symmetry=payload["symmetry"],
        account=account,
        kernel=payload["kernel"],
        stats=stats,
        **payload["bounds"],
    ):
        current = account.as_tuple()
        deltas.append(tuple(c - p for c, p in zip(current, previous)))
        previous = current
        instances.append(instance)
        results.append(scanner.scan(instance))
    final = account.as_tuple()
    return {
        "mask": mask,
        "instances": instances,
        "results": results,
        "deltas": deltas,
        "trailing": tuple(f - p for f, p in zip(final, previous)),
    }
