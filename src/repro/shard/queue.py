"""File-based shard queue: claim / complete / lease-expiry.

Multiple hosts pointed at one shared sweep directory drain the same
shard stream without a coordinator.  The protocol is three kinds of
plain files under ``<dir>/``:

* ``manifest.json`` — the sweep identity and shard count, written once
  (first writer wins; later writers verify they plan the same spec);
* ``claims/<shard-id>.claim`` — JSON ``{"owner", "ts", "lease_s"}``,
  created with ``O_CREAT | O_EXCL`` so exactly one host wins a live
  claim.  A claim older than its lease is *expired*: any host may steal
  it by atomically replacing the file (write-tmp + ``os.replace``);
* ``done/<shard-id>.done`` — completion marker, written after the
  shard's checkpoint is durable.

The queue provides **at-least-once** execution: a stolen lease can race
its original owner, and both may compute the shard.  That is safe here
because shard results are deterministic and completion is idempotent —
the checkpoint store's atomic replace makes the last writer's
byte-identical result the survivor.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from ..obs.logs import get_logger

log = get_logger("shard.queue")

#: Default claim lease: generous for real shards, short enough that a
#: crashed host's work is reassigned within one coffee refill.
DEFAULT_LEASE_S = 300.0


class ShardQueue:
    """One host's handle on a shared sweep directory."""

    def __init__(
        self, directory: Path | str, owner: str | None = None, lease_s: float = DEFAULT_LEASE_S
    ) -> None:
        self.root = Path(directory)
        self.owner = owner or f"{os.uname().nodename}:{os.getpid()}"
        self.lease_s = lease_s
        (self.root / "claims").mkdir(parents=True, exist_ok=True)
        (self.root / "done").mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------

    def write_manifest(self, manifest: dict) -> dict:
        """Publish (or verify) the sweep manifest; returns the effective
        one.  First writer wins; a later writer whose manifest differs
        raises — two hosts must never drain incompatible shard streams
        into one directory."""
        path = self.root / "manifest.json"
        tmp = path.with_suffix(".tmp")
        if not path.exists():
            tmp.write_text(json.dumps(manifest, sort_keys=True), encoding="utf-8")
            try:
                # O_EXCL via link-like semantics is overkill here: a racing
                # double-write of identical content is harmless, and a
                # conflicting one is caught by the verify below.
                if not path.exists():
                    os.replace(tmp, path)
            finally:
                tmp.unlink(missing_ok=True)
        effective = json.loads(path.read_text(encoding="utf-8"))
        if effective != json.loads(json.dumps(manifest, sort_keys=True)):
            raise ValueError(
                f"sweep directory {self.root} holds a different manifest; "
                "refusing to mix shard streams"
            )
        return effective

    # ------------------------------------------------------------------
    # Claim / complete / lease
    # ------------------------------------------------------------------

    def _claim_path(self, shard_id: str) -> Path:
        return self.root / "claims" / f"{shard_id}.claim"

    def _done_path(self, shard_id: str) -> Path:
        return self.root / "done" / f"{shard_id}.done"

    def claim(self, shard_id: str) -> bool:
        """Try to own *shard_id*: a fresh claim, or a stolen expired one."""
        if self.is_done(shard_id):
            return False
        path = self._claim_path(shard_id)
        record = json.dumps(
            {"owner": self.owner, "ts": time.time(), "lease_s": self.lease_s}
        )
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return self._steal_if_expired(shard_id, path, record)
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(record)
        return True

    def _steal_if_expired(self, shard_id: str, path: Path, record: str) -> bool:
        holder = self.claim_record(shard_id)
        if holder is None:
            # Unreadable claim: treat as expired — the writer crashed
            # mid-write or the file is corrupt either way.
            age, lease = float("inf"), 0.0
        else:
            age = time.time() - holder.get("ts", 0.0)
            lease = holder.get("lease_s", self.lease_s)
        if age <= lease:
            return False
        tmp = path.with_suffix(".steal")
        tmp.write_text(record, encoding="utf-8")
        os.replace(tmp, path)
        log.info("stole expired claim on %s (age %.0fs > lease %.0fs)", shard_id, age, lease)
        return True

    def claim_record(self, shard_id: str) -> dict | None:
        try:
            return json.loads(self._claim_path(shard_id).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None

    def complete(self, shard_id: str) -> None:
        """Mark *shard_id* done (idempotent; call after the checkpoint
        is durable, never before)."""
        path = self._done_path(shard_id)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(
            json.dumps({"owner": self.owner, "ts": time.time()}), encoding="utf-8"
        )
        os.replace(tmp, path)

    def release(self, shard_id: str) -> None:
        """Drop our claim without completing (shutdown mid-shard)."""
        record = self.claim_record(shard_id)
        if record is not None and record.get("owner") == self.owner:
            self._claim_path(shard_id).unlink(missing_ok=True)

    def is_done(self, shard_id: str) -> bool:
        return self._done_path(shard_id).exists()

    def done_ids(self) -> set[str]:
        return {path.stem for path in (self.root / "done").glob("*.done")}
