"""Sharded orderly generation: subtree work units over a process pool.

The canonical-augmentation tree of :mod:`repro.symmetry.orderly` is
embarrassingly shardable: split level ``d`` (the *shard depth*) into
contiguous root ranges, and the descendants of each range — expanded
with the same in-order level builder — are exactly the corresponding
contiguous slice of every deeper level.  Each :class:`~.spec.Shard`
therefore owns an independent subtree whose emission blocks, partial
:class:`~repro.symmetry.prune.SymmetryAccount` deltas, and span data
merge back into a stream byte-identical to the serial walk.

Layout:

* :mod:`~.spec` — :class:`ShardSpec` / :class:`Shard`: the
  deterministic partition of a level into ordered work units;
* :mod:`~.worker` — :func:`run_shard`: expand one subtree, sweep its
  yes-instances, report scans + account deltas (runs in pool workers);
* :mod:`~.executor` — :func:`run_sharded_sweep`: drain the shard stream
  on a work-stealing pool, checkpoint, merge, and replay in serial
  order;
* :mod:`~.checkpoint` — resumable per-shard results in the
  content-addressed ``.repro_cache/shards/`` store;
* :mod:`~.queue` — the file-based claim/complete/lease queue that lets
  multiple hosts drain one sweep directory.
"""

from .checkpoint import ShardCheckpointStore
from .executor import run_sharded_sweep, sharding_effective
from .queue import ShardQueue
from .spec import Shard, ShardSpec, plan_shards

__all__ = [
    "Shard",
    "ShardCheckpointStore",
    "ShardQueue",
    "ShardSpec",
    "plan_shards",
    "run_sharded_sweep",
    "sharding_effective",
]
