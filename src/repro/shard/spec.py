"""Deterministic partition of an augmentation level into work units.

A :class:`Shard` names a contiguous range of the level-``depth``
generation entries (the *subtree roots*); :func:`plan_shards` balances
the level into an ordered :class:`ShardSpec`.  Both are pure functions
of ``(n, depth, shard_count)`` — every host planning the same sweep
derives the same shard stream, which is what lets the file queue of
:mod:`repro.shard.queue` coordinate by shard id alone.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..symmetry.orderly import GENERATION_VERSION, level_entries

#: Queued shards per worker: more smooths skewed subtrees (the work-
#: stealing pool pulls the next unit the moment one finishes), fewer
#: amortizes per-shard overhead.
SHARDS_PER_WORKER = 4


@dataclass(frozen=True)
class Shard:
    """One subtree work unit: roots ``start .. stop-1`` of level *depth*."""

    index: int
    depth: int
    start: int
    stop: int

    @property
    def id(self) -> str:
        """Stable identity inside one sweep (the queue's file stem)."""
        return f"d{self.depth}-{self.start:06d}-{self.stop:06d}"

    @property
    def roots(self) -> int:
        return self.stop - self.start

    def key_fields(self) -> dict:
        """The shard's contribution to its checkpoint key."""
        return {
            "generation_version": GENERATION_VERSION,
            "depth": self.depth,
            "start": self.start,
            "stop": self.stop,
        }


@dataclass(frozen=True)
class ShardSpec:
    """The full ordered partition of level *depth* for a sweep to *n*."""

    n: int
    depth: int
    total_roots: int
    shards: tuple[Shard, ...]

    def __len__(self) -> int:
        return len(self.shards)


def plan_shards(
    n: int, depth: int, workers: int, shards_per_worker: int = SHARDS_PER_WORKER
) -> ShardSpec:
    """Partition level *depth* into at most ``workers * shards_per_worker``
    contiguous, near-equal root ranges (never an empty shard).

    Requires ``n > depth`` — at or below the shard depth there is no
    subtree to split.  The split is deterministic: same arguments, same
    spec, on every host.
    """
    if n <= depth:
        raise ValueError(f"sharding needs n > depth (got n={n}, depth={depth})")
    total = len(level_entries(depth))
    target = min(total, max(1, workers) * max(1, shards_per_worker))
    shards = []
    for index in range(target):
        start = index * total // target
        stop = (index + 1) * total // target
        shards.append(Shard(index=index, depth=depth, start=start, stop=stop))
    return ShardSpec(n=n, depth=depth, total_roots=total, shards=tuple(shards))
